"""Unit tests for generator-based processes and interruption."""

import pytest

from repro.sim import Environment, Interrupt


def test_process_waits_on_process():
    env = Environment()

    def child():
        yield env.timeout(2.0)
        return 42

    def parent():
        value = yield env.process(child())
        return value + 1

    assert env.run(until=env.process(parent())) == 43
    assert env.now == 2.0


def test_process_waits_on_already_finished_process():
    env = Environment()

    def child():
        yield env.timeout(1.0)
        return "x"

    def parent(child_process):
        yield env.timeout(5.0)
        value = yield child_process
        return (value, env.now)

    child_process = env.process(child())
    result = env.run(until=env.process(parent(child_process)))
    assert result == ("x", 5.0)


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def child():
        yield env.timeout(1.0)
        raise KeyError("lost")

    def parent():
        try:
            yield env.process(child())
        except KeyError:
            return "caught"
        return "missed"

    assert env.run(until=env.process(parent())) == "caught"


def test_unwatched_process_failure_crashes_run():
    env = Environment()

    def child():
        yield env.timeout(1.0)
        raise RuntimeError("unhandled")

    env.process(child())
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_yielding_non_event_is_an_error():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(RuntimeError, match="non-event"):
        env.run()


def test_interrupt_is_catchable():
    env = Environment()

    def sleeper():
        try:
            yield env.timeout(100.0)
        except Interrupt as interrupt:
            return ("interrupted", interrupt.cause, env.now)
        return "slept"

    def interrupter(victim):
        yield env.timeout(3.0)
        victim.interrupt(cause="failure-notice")

    victim = env.process(sleeper())
    env.process(interrupter(victim))
    assert env.run(until=victim) == ("interrupted", "failure-notice", 3.0)


def test_interrupted_process_can_continue():
    env = Environment()

    def sleeper():
        try:
            yield env.timeout(100.0)
        except Interrupt:
            pass
        yield env.timeout(1.0)
        return env.now

    def interrupter(victim):
        yield env.timeout(2.0)
        victim.interrupt()

    victim = env.process(sleeper())
    env.process(interrupter(victim))
    assert env.run(until=victim) == 3.0


def test_uncaught_interrupt_fails_process():
    env = Environment()

    def sleeper():
        yield env.timeout(100.0)

    def interrupter(victim):
        yield env.timeout(1.0)
        victim.interrupt()

    def watcher():
        victim = env.process(sleeper())
        env.process(interrupter(victim))
        with pytest.raises(Interrupt):
            yield victim
        return True

    assert env.run(until=env.process(watcher()))


def test_interrupt_finished_process_raises():
    env = Environment()

    def quick():
        yield env.timeout(1.0)

    process = env.process(quick())
    env.run()
    with pytest.raises(RuntimeError):
        process.interrupt()


def test_is_alive():
    env = Environment()

    def quick():
        yield env.timeout(1.0)

    process = env.process(quick())
    assert process.is_alive
    env.run()
    assert not process.is_alive


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_active_process_tracking():
    env = Environment()
    seen = []

    def proc():
        seen.append(env.active_process)
        yield env.timeout(1.0)
        seen.append(env.active_process)

    process = env.process(proc())
    env.run()
    assert seen == [process, process]
    assert env.active_process is None
