"""Unit tests for named RNG streams."""

from repro.sim import RngStreams
from repro.sim.rng import derive_seed


def test_same_name_same_stream_object():
    streams = RngStreams(seed=1)
    assert streams.stream("net") is streams.stream("net")


def test_streams_are_reproducible():
    first = RngStreams(seed=7).stream("disk")
    second = RngStreams(seed=7).stream("disk")
    assert [first.random() for _ in range(5)] == [
        second.random() for _ in range(5)
    ]


def test_different_names_decorrelated():
    streams = RngStreams(seed=7)
    a = [streams.stream("a").random() for _ in range(5)]
    b = [streams.stream("b").random() for _ in range(5)]
    assert a != b


def test_different_seeds_differ():
    a = RngStreams(seed=1).stream("x").random()
    b = RngStreams(seed=2).stream("x").random()
    assert a != b


def test_spawn_namespaces_child():
    parent = RngStreams(seed=3)
    child_a = parent.spawn("node-a").stream("disk").random()
    child_b = parent.spawn("node-b").stream("disk").random()
    assert child_a != child_b


def test_spawn_is_deterministic():
    a = RngStreams(seed=3).spawn("node").stream("disk").random()
    b = RngStreams(seed=3).spawn("node").stream("disk").random()
    assert a == b


def test_derive_seed_is_stable():
    assert derive_seed(1, "x") == derive_seed(1, "x")
    assert derive_seed(1, "x") != derive_seed(1, "y")
