"""Unit tests for the flat-path kernel and its boundary discipline."""

import pytest

from repro.sim.errors import SimulationError
from repro.mem.page import make_pages
from repro.sim import Environment, flatpath
from repro.swap.base import SwapBackend, VirtualMemory

NPAGES = 16


class NullBackend(SwapBackend):
    """Zero-latency backend so only the MMU's own charges matter."""

    name = "null"

    def __init__(self, env):
        self.env = env
        self.held = set()
        self.discards = 0

    def swap_out(self, page):
        self.held.add(page.page_id)
        yield self.env.timeout(1e-6)

    def swap_in(self, page):
        yield self.env.timeout(1e-6)
        return []

    def discard(self, page):
        self.held.discard(page.page_id)
        self.discards += 1


def make_vm(capacity=NPAGES, windows=(), env=None):
    env = env or Environment()
    backend = NullBackend(env)
    vm = VirtualMemory(
        env, make_pages(NPAGES), capacity, backend,
        prefetch_capacity=4, fallback_windows=windows,
    )
    return env, vm


def test_advance_runs_demand_zero_and_hits_to_the_end():
    env, vm = make_vm()
    addresses = [0, 1, 2, 0, 1, 2, 3]
    writes = [False] * len(addresses)
    index, reason = flatpath.advance(vm, addresses, writes, 0)
    assert (index, reason) == (len(addresses), None)
    assert vm.stats.accesses == len(addresses)
    assert vm.stats.resident_hits == 3
    assert vm.stats.minor_faults == 4
    assert env.now > 0.0  # demand-zero faults flushed the clock
    assert vm.flat_stats.bulk_runs == 1
    assert vm.flat_stats.bulk_accesses == len(addresses)


def test_advance_equals_event_engine_exactly():
    addresses = [0, 1, 2, 3, 0, 1, 4, 5, 2, 0]
    writes = [i % 3 == 0 for i in range(len(addresses))]

    env_a, vm_a = make_vm(capacity=3)
    index, reason = flatpath.advance(vm_a, addresses, writes, 0)

    env_b, vm_b = make_vm(capacity=3)

    def job():
        for page_id, is_write in zip(addresses[:index], writes[:index]):
            yield from vm_b.access(page_id, write=is_write)

    env_b.process(job())
    env_b.run()
    assert env_a.now == env_b.now
    assert vm_a._pending_time == vm_b._pending_time
    assert vm_a.stats.snapshot() == vm_b.stats.snapshot()
    assert list(vm_a.resident) == list(vm_b.resident)
    assert vm_a.swapped_valid == vm_b.swapped_valid


def test_major_fault_is_a_boundary_and_left_untouched():
    env, vm = make_vm(capacity=2)
    # Page 0 evicted clean after 1 and 2 displace it? Use explicit setup:
    vm.swapped_valid.add(5)
    addresses = [0, 1, 5]
    index, reason = flatpath.advance(vm, addresses, [False] * 3, 0)
    assert (index, reason) == (2, "major-fault")
    assert 5 not in vm.resident and 5 in vm.swapped_valid
    assert vm.flat_stats.boundaries["major-fault"] == 1


def test_dirty_eviction_is_a_boundary():
    env, vm = make_vm(capacity=2)
    index, reason = flatpath.advance(vm, [0, 1], [True, True], 0)
    assert reason is None
    # Both resident pages are dirty: the next miss must evict via I/O.
    index, reason = flatpath.advance(vm, [0, 1, 2], [False] * 3, 0)
    assert (index, reason) == (2, "eviction-io")
    assert 2 not in vm.resident


def test_bulk_hold_blocks_the_kernel():
    env, vm = make_vm()
    env.hold_bulk()
    index, reason = flatpath.advance(vm, [0, 1], [False, False], 0)
    assert (index, reason) == (0, "bulk-hold")
    env.release_bulk()
    index, reason = flatpath.advance(vm, [0, 1], [False, False], 0)
    assert (index, reason) == (2, None)


def test_release_without_hold_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.release_bulk()


def test_inside_fault_window_blocks_immediately():
    env, vm = make_vm(windows=((0.0, 1.0),))
    index, reason = flatpath.advance(vm, [0], [False], 0)
    assert (index, reason) == (0, "fault-window")


def test_clock_jump_never_crosses_a_window_start():
    env, vm = make_vm(windows=((1e-9, 1.0),))
    # Access 0 is a demand-zero fault whose flush would land past the
    # window start; the kernel must stop before executing it.
    index, reason = flatpath.advance(vm, [0, 1], [False, False], 0)
    assert (index, reason) == (0, "fault-window")
    assert env.now < 1e-9


def test_imminent_events_block_demand_zero_inlining():
    env, vm = make_vm()
    env.timeout(1e-9)  # would pop before the flush: could interleave
    index, reason = flatpath.advance(vm, [0], [False], 0)
    assert (index, reason) == (0, "sched-events")


def test_far_future_events_do_not_block_demand_zero_inlining():
    env, vm = make_vm()
    env.timeout(1.0)  # pops long after anything this stretch charges
    index, reason = flatpath.advance(vm, [0, 1], [False, False], 0)
    assert (index, reason) == (2, None)
    assert 0.0 < env.now < 1.0  # flushed inline; the event is pending


def test_resident_hits_inline_even_with_scheduled_events():
    env, vm = make_vm()
    index, reason = flatpath.advance(vm, [0], [False], 0)
    assert reason is None
    env.timeout(1.0)
    # Hits never advance the clock, so the pending event is no obstacle.
    index, reason = flatpath.advance(vm, [0, 0, 0], [False, True, False], 0)
    assert (index, reason) == (3, None)
    assert vm.stats.resident_hits == 3


def test_stop_argument_bounds_the_stretch():
    env, vm = make_vm()
    index, reason = flatpath.advance(vm, [0, 1, 2], [False] * 3, 0, stop=2)
    assert (index, reason) == (2, None)
    assert vm.stats.accesses == 2


def test_stats_snapshot_shape():
    env, vm = make_vm()
    flatpath.advance(vm, [0, 0], [False, False], 0)
    snap = vm.flat_stats.snapshot()
    assert snap == {
        "bulk_runs": 1, "bulk_accesses": 2, "boundaries": {}
    }
