"""Extra edge-case tests for events and the kernel."""

import pytest

from repro.sim import Environment, StopProcess
from repro.sim.errors import EventAlreadyTriggered


def test_event_trigger_copies_outcome():
    env = Environment()
    source = env.event()
    sink = env.event()
    source.succeed("payload")
    sink.trigger(source)
    assert sink.triggered and sink.ok
    assert sink.value == "payload"


def test_event_trigger_copies_failure():
    env = Environment()
    source = env.event()
    sink = env.event()
    source.fail(ValueError("boom"))
    sink.trigger(source)
    assert sink.triggered and not sink.ok
    # Drain the heap; nothing should raise because no process waits
    # (failed bare events do not crash the run, only processes do).
    def watcher():
        with pytest.raises(ValueError):
            yield sink
        return True

    assert env.run(until=env.process(watcher()))


def test_double_fail_rejected():
    env = Environment()
    event = env.event()
    event.fail(RuntimeError("x"))
    with pytest.raises(EventAlreadyTriggered):
        event.fail(RuntimeError("y"))


def test_peek_reports_next_timestamp():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(5.0)
    env.timeout(2.0)
    assert env.peek() == 0.0 or env.peek() <= 2.0  # init pushes at now


def test_stop_process_finishes_with_value():
    env = Environment()

    def helper():
        raise StopProcess("early-exit")
        yield  # pragma: no cover

    def proc():
        yield env.timeout(1.0)
        raise StopProcess("done-early")

    assert env.run(until=env.process(proc())) == "done-early"


def test_empty_all_of_fires_immediately():
    env = Environment()
    condition = env.all_of([])
    assert env.run(until=condition) == {}


def test_empty_any_of_fires_immediately():
    env = Environment()
    condition = env.any_of([])
    assert env.run(until=condition) == {}


def test_condition_rejects_foreign_events():
    env_a = Environment()
    env_b = Environment()
    foreign = env_b.event()
    with pytest.raises(ValueError):
        env_a.all_of([foreign])


def test_timeout_value_passthrough():
    env = Environment()
    timeout = env.timeout(1.0, value="tick")
    assert env.run(until=timeout) == "tick"


def test_nested_processes_compose():
    env = Environment()

    def leaf(delay, value):
        yield env.timeout(delay)
        return value

    def mid():
        a = yield env.process(leaf(1.0, 10))
        b = yield env.process(leaf(2.0, 20))
        return a + b

    def top():
        total = yield env.process(mid())
        return total * 2

    assert env.run(until=env.process(top())) == 60
    assert env.now == 3.0
