"""Unit tests for resources, containers and stores."""

import pytest

from repro.sim import Container, Environment, PriorityResource, Resource, Store


def test_resource_capacity_enforced():
    env = Environment()
    resource = Resource(env, capacity=2)
    order = []

    def worker(tag, hold):
        request = resource.request()
        yield request
        order.append((tag, env.now))
        yield env.timeout(hold)
        resource.release(request)

    for tag in ("a", "b", "c"):
        env.process(worker(tag, 10.0))
    env.run()
    started = dict((tag, when) for tag, when in order)
    assert started["a"] == 0.0
    assert started["b"] == 0.0
    assert started["c"] == 10.0


def test_resource_context_manager_releases():
    env = Environment()
    resource = Resource(env, capacity=1)

    def worker():
        with resource.request() as request:
            yield request
            yield env.timeout(1.0)

    def follower():
        yield env.timeout(0.5)
        with resource.request() as request:
            yield request
            return env.now

    env.process(worker())
    follower_process = env.process(follower())
    assert env.run(until=follower_process) == 1.0


def test_resource_double_release_is_noop():
    env = Environment()
    resource = Resource(env, capacity=1)
    request = resource.request()
    env.run()
    resource.release(request)
    resource.release(request)
    assert resource.count == 0


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_cancel_pending_request():
    env = Environment()
    resource = Resource(env, capacity=1)
    first = resource.request()
    second = resource.request()
    second.cancel()
    resource.release(first)
    assert resource.count == 0
    assert not second.triggered


def test_priority_resource_orders_waiters():
    env = Environment()
    resource = PriorityResource(env, capacity=1)
    served = []

    def worker(tag, priority, arrive):
        yield env.timeout(arrive)
        request = resource.request(priority=priority)
        yield request
        served.append(tag)
        yield env.timeout(10.0)
        resource.release(request)

    env.process(worker("holder", 0, 0.0))
    env.process(worker("low", 5, 1.0))
    env.process(worker("high", 1, 2.0))
    env.run()
    assert served == ["holder", "high", "low"]


def test_container_blocks_get_until_available():
    env = Environment()
    container = Container(env, capacity=100, init=0)

    def producer():
        yield env.timeout(5.0)
        yield container.put(10)

    def consumer():
        yield container.get(10)
        return env.now

    env.process(producer())
    consumer_process = env.process(consumer())
    assert env.run(until=consumer_process) == 5.0
    assert container.level == 0


def test_container_blocks_put_at_capacity():
    env = Environment()
    container = Container(env, capacity=10, init=10)

    def producer():
        yield container.put(5)
        return env.now

    def consumer():
        yield env.timeout(3.0)
        yield container.get(5)

    producer_process = env.process(producer())
    env.process(consumer())
    assert env.run(until=producer_process) == 3.0


def test_container_rejects_bad_init():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=5, init=6)


def test_container_rejects_negative_amounts():
    env = Environment()
    container = Container(env)
    with pytest.raises(ValueError):
        container.put(-1)
    with pytest.raises(ValueError):
        container.get(-1)


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    received = []

    def producer():
        for item in ("first", "second", "third"):
            yield store.put(item)
            yield env.timeout(1.0)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            received.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert received == ["first", "second", "third"]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)

    def producer():
        yield store.put("a")
        yield store.put("b")
        return env.now

    def consumer():
        yield env.timeout(4.0)
        yield store.get()

    producer_process = env.process(producer())
    env.process(consumer())
    assert env.run(until=producer_process) == 4.0


def test_store_len():
    env = Environment()
    store = Store(env)
    store.put("x")
    env.run()
    assert len(store) == 1
