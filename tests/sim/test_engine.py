"""Unit tests for the simulation environment and event loop."""

import pytest

from repro.sim import Environment
from repro.sim.engine import EmptySchedule


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(3.5)
    env.run()
    assert env.now == 3.5


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_run_until_time_stops_clock_exactly():
    env = Environment()
    env.timeout(10.0)
    env.run(until=4.0)
    assert env.now == 4.0
    env.run(until=20.0)
    assert env.now == 20.0


def test_run_until_past_raises():
    env = Environment()
    env.run(until=2.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_run_until_event_returns_value():
    env = Environment()

    def proc():
        yield env.timeout(1.0)
        return "done"

    process = env.process(proc())
    assert env.run(until=process) == "done"
    assert env.now == 1.0


def test_run_until_unreachable_event_raises():
    env = Environment()
    orphan = env.event()
    with pytest.raises(EmptySchedule):
        env.run(until=orphan)


def test_step_with_empty_schedule_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_events_fire_in_time_order():
    env = Environment()
    fired = []

    def waiter(delay, tag):
        yield env.timeout(delay)
        fired.append(tag)

    env.process(waiter(3.0, "c"))
    env.process(waiter(1.0, "a"))
    env.process(waiter(2.0, "b"))
    env.run()
    assert fired == ["a", "b", "c"]


def test_same_timestamp_fifo_order():
    env = Environment()
    fired = []

    def waiter(tag):
        yield env.timeout(1.0)
        fired.append(tag)

    for tag in ("x", "y", "z"):
        env.process(waiter(tag))
    env.run()
    assert fired == ["x", "y", "z"]


def test_event_succeed_once_only():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(Exception):
        event.succeed(2)


def test_event_fail_requires_exception():
    env = Environment()
    event = env.event()
    with pytest.raises(TypeError):
        event.fail("not an exception")


def test_event_value_before_trigger_raises():
    env = Environment()
    event = env.event()
    with pytest.raises(AttributeError):
        _ = event.value


def test_event_repr_states():
    env = Environment()
    event = env.event(name="probe")
    assert "pending" in repr(event)
    event.succeed()
    assert "ok" in repr(event)


def test_all_of_collects_values():
    env = Environment()
    first = env.timeout(1.0, value="a")
    second = env.timeout(2.0, value="b")
    both = env.all_of([first, second])
    result = env.run(until=both)
    assert set(result.values()) == {"a", "b"}
    assert env.now == 2.0


def test_any_of_fires_on_first():
    env = Environment()
    fast = env.timeout(1.0, value="fast")
    env.timeout(5.0, value="slow")
    either = env.any_of([fast, env.timeout(5.0, value="slow")])
    result = env.run(until=either)
    assert "fast" in result.values()
    assert env.now == 1.0


def test_all_of_fails_fast():
    env = Environment()

    def failer():
        yield env.timeout(1.0)
        raise RuntimeError("boom")

    def watcher():
        process = env.process(failer())
        both = env.all_of([process, env.timeout(10.0)])
        with pytest.raises(RuntimeError):
            yield both
        return env.now

    watch = env.process(watcher())
    assert env.run(until=watch) == 1.0


def test_run_until_event_already_triggered():
    env = Environment()
    event = env.event()
    event.succeed("early")
    assert env.run(until=event) == "early"


def test_failed_event_raises_from_run():
    env = Environment()

    def proc():
        yield env.timeout(1.0)
        raise ValueError("expected failure")

    process = env.process(proc())
    with pytest.raises(ValueError, match="expected failure"):
        env.run(until=process)
