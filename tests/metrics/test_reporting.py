"""Unit tests for text reporting."""

from repro.metrics import format_series, format_table


def test_format_table_alignment():
    rows = [
        {"name": "alpha", "value": 1.0},
        {"name": "b", "value": 123.456},
    ]
    text = format_table(rows, title="demo")
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1] and "value" in lines[1]
    assert len(lines) == 5


def test_format_table_empty():
    assert "(empty)" in format_table([], title="nothing")
    assert format_table([]) == "(empty)"


def test_format_table_explicit_columns():
    rows = [{"a": 1, "b": 2}]
    text = format_table(rows, columns=["b"])
    assert "a" not in text.splitlines()[0]


def test_format_table_missing_cell():
    rows = [{"a": 1}, {"a": 2, "b": 3}]
    text = format_table(rows, columns=["a", "b"])
    assert text  # no crash; missing cells render empty


def test_format_series():
    text = format_series([(0.0, 10.0), (1.0, 20.0)], title="tput",
                         x_label="t", y_label="ops")
    assert "tput" in text
    assert "t" in text.splitlines()[1]


def test_format_table_renders_none_as_blank():
    rows = [
        {"tier": "disk", "get_mean_s": None, "gets": 0},
        {"tier": "sm", "get_mean_s": 1.5e-6, "gets": 3},
    ]
    text = format_table(rows)
    assert "None" not in text
    assert "1.5e-06" in text
