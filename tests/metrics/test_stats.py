"""Unit tests for metrics primitives."""

import math

import pytest

from repro.metrics import Counter, Histogram, RunningStats, TimeSeries


def test_counter():
    counter = Counter("ops")
    counter.increment()
    counter.increment(5)
    assert counter.value == 6
    with pytest.raises(ValueError):
        counter.increment(-1)


def test_running_stats_mean_variance():
    stats = RunningStats()
    for value in (2.0, 4.0, 6.0):
        stats.record(value)
    assert stats.mean == pytest.approx(4.0)
    assert stats.variance == pytest.approx(4.0)
    assert stats.stdev == pytest.approx(2.0)
    assert stats.minimum == 2.0
    assert stats.maximum == 6.0


def test_running_stats_empty():
    stats = RunningStats()
    assert stats.mean == 0.0
    assert stats.variance == 0.0
    assert stats.snapshot()["min"] is None


def test_running_stats_single_sample():
    stats = RunningStats()
    stats.record(7.0)
    assert stats.mean == 7.0
    assert stats.variance == 0.0


def test_histogram_percentiles():
    histogram = Histogram(least=1.0, factor=2.0, buckets=10)
    for value in (1, 2, 4, 8, 16):
        histogram.record(value)
    assert histogram.percentile(0.0) <= histogram.percentile(1.0)
    assert histogram.percentile(1.0) >= 16


def test_histogram_validation():
    with pytest.raises(ValueError):
        Histogram(least=0)
    histogram = Histogram()
    with pytest.raises(ValueError):
        histogram.percentile(2.0)
    assert histogram.percentile(0.5) == 0.0  # empty


def test_histogram_overflow_bucket():
    histogram = Histogram(least=1.0, factor=2.0, buckets=2)
    histogram.record(1e9)
    assert histogram.total == 1
    assert histogram.percentile(1.0) == histogram.bounds[-1]


def test_timeseries_window_means():
    series = TimeSeries()
    for t in range(10):
        series.record(t * 0.1, float(t))
    windows = series.window_means(0.5)
    assert len(windows) >= 2
    assert windows[0][1] < windows[-1][1]


def test_timeseries_empty_and_validation():
    series = TimeSeries()
    assert series.window_means(1.0) == []
    with pytest.raises(ValueError):
        series.window_means(0)


def test_empty_snapshot_has_no_infinities():
    # An idle tier's latency stats must render cleanly: None min/max
    # (blank table cells), never +/-inf leaking out of the seed values.
    snapshot = RunningStats().snapshot()
    assert snapshot == {
        "count": 0, "mean": 0.0, "stdev": 0.0, "min": None, "max": None,
    }
    assert not any(
        isinstance(v, float) and math.isinf(v) for v in snapshot.values()
    )


def test_snapshot_round_trip_after_records():
    stats = RunningStats()
    for value in (2.0, 4.0, 9.0):
        stats.record(value)
    snapshot = stats.snapshot()
    assert snapshot["count"] == 3
    assert snapshot["min"] == 2.0
    assert snapshot["max"] == 9.0
    assert snapshot["mean"] == pytest.approx(5.0)
