"""Tests for the cluster utilization monitor."""

import pytest

from repro.core import ClusterConfig, DisaggregatedCluster
from repro.hw.latency import KiB, MiB
from repro.metrics.utilization import ClusterUtilizationMonitor


@pytest.fixture
def cluster():
    return DisaggregatedCluster.build(
        ClusterConfig(num_nodes=2, servers_per_node=1,
                      server_memory_bytes=8 * MiB, donation_fraction=0.5,
                      receive_pool_slabs=2, seed=2)
    )


def test_period_validation(cluster):
    with pytest.raises(ValueError):
        ClusterUtilizationMonitor(cluster, period=0)


def test_sample_now_reflects_pool_state(cluster):
    monitor = ClusterUtilizationMonitor(cluster)
    empty = monitor.sample_now()
    assert empty.pool_utilization == 0.0
    server = cluster.virtual_servers[0]
    cluster.put(server, "k", 64 * KiB)
    used = monitor.sample_now()
    assert used.pool_utilization > 0.0
    assert used.pool_capacity == 8 * MiB  # two 4 MiB donations


def test_background_sampling(cluster):
    monitor = ClusterUtilizationMonitor(cluster, period=0.1)
    monitor.start()
    cluster.env.run(until=1.0)
    assert 9 <= len(monitor.samples) <= 11  # float drift at the boundary
    assert monitor.pool_series.samples


def test_summary_shape(cluster):
    monitor = ClusterUtilizationMonitor(cluster)
    assert monitor.summary()["samples"] == 0
    assert monitor.mean_pool_utilization() == 0.0
    monitor.sample_now()
    summary = monitor.summary()
    assert summary["samples"] == 1
    assert 0.0 <= summary["mean_pool_utilization"] <= 1.0
    assert monitor.peak_pool_utilization() >= summary["mean_pool_utilization"] - 1e-12


def test_zero_capacity_pools_sample_cleanly():
    cluster = DisaggregatedCluster.build(
        ClusterConfig(num_nodes=2, servers_per_node=1,
                      server_memory_bytes=8 * MiB, donation_fraction=0.0,
                      receive_pool_slabs=0, send_pool_slabs=0, seed=2)
    )
    monitor = ClusterUtilizationMonitor(cluster)
    sample = monitor.sample_now()
    assert sample.receive_capacity == 0
    assert sample.receive_utilization == 0.0
    assert sample.pool_utilization == 0.0
    summary = monitor.summary()
    assert summary["mean_receive_utilization"] == 0.0
    assert summary["mean_pool_utilization"] == 0.0


def test_node_crash_between_samples_does_not_raise(cluster):
    monitor = ClusterUtilizationMonitor(cluster, period=0.1)
    monitor.start()
    server = cluster.virtual_servers[0]
    cluster.put(server, "k", 64 * KiB)
    cluster.env.run(until=cluster.env.now + 0.25)
    cluster.crash_node("node1")
    cluster.env.run(until=cluster.env.now + 0.5)  # keeps sampling
    assert len(monitor.samples) >= 5
    latest = monitor.samples[-1]
    assert 0.0 <= latest.pool_utilization <= 1.0
    assert 0.0 <= latest.receive_utilization <= 1.0


def test_crash_releases_hosted_bytes_in_samples(cluster):
    monitor = ClusterUtilizationMonitor(cluster)
    node0 = cluster.nodes()[0]

    def reserve():
        reply = yield from node0.rdmc.control_call(
            "node1", {"op": "reserve", "key": "r", "nbytes": 256 * KiB}
        )
        assert reply["ok"]

    cluster.run_process(reserve())
    assert monitor.sample_now().receive_used == 256 * KiB
    cluster.crash_node("node1")  # drop_all releases the hosted entry
    assert monitor.sample_now().receive_used == 0


def test_receive_utilization_counts_hosted_bytes(cluster):
    monitor = ClusterUtilizationMonitor(cluster)
    node0 = cluster.nodes()[0]

    def scenario():
        reply = yield from node0.rdmc.control_call(
            "node1", {"op": "reserve", "key": "r", "nbytes": 256 * KiB}
        )
        assert reply["ok"]
        return True

    cluster.run_process(scenario())
    sample = monitor.sample_now()
    assert sample.receive_utilization > 0.0
