"""Tests for the PBS feedback window (readahead-style scaling)."""

from repro.mem.page import make_pages
from repro.swap.base import PagingStats
from repro.swap.fastswap import FastSwap, FastSwapConfig

from tests.swap.conftest import run


def setup(cluster, node, window=8):
    backend = FastSwap(
        node, cluster, config=FastSwapConfig(sm_fraction=0.0, window=window)
    )

    def scenario():
        yield from backend.setup()

    run(cluster, scenario())
    return backend


def test_window_starts_at_maximum(cluster, node):
    backend = setup(cluster, node, window=8)
    assert backend._pbs_window == 7


def test_window_shrinks_on_wasted_prefetch(cluster, node):
    backend = setup(cluster, node)
    stats = PagingStats()
    backend.bind_page_table({}, stats)
    # 512 issued prefetch pages, zero hits -> halve.
    backend._pbs_feedback(512)
    assert backend._pbs_window == 3
    backend._pbs_feedback(512)
    assert backend._pbs_window == 1
    backend._pbs_feedback(512)
    assert backend._pbs_window == 1  # floor


def test_window_grows_back_on_effective_prefetch(cluster, node):
    backend = setup(cluster, node)
    stats = PagingStats()
    backend.bind_page_table({}, stats)
    backend._pbs_feedback(512)  # collapse first
    backend._pbs_feedback(512)
    assert backend._pbs_window == 1
    stats.prefetch_hits += 400  # 400/512 > grow threshold
    backend._pbs_feedback(512)
    assert backend._pbs_window == 2
    stats.prefetch_hits += 400
    backend._pbs_feedback(512)
    assert backend._pbs_window == 4


def test_window_capped_at_config(cluster, node):
    backend = setup(cluster, node, window=4)
    stats = PagingStats()
    backend.bind_page_table({}, stats)
    stats.prefetch_hits = 10_000
    backend._pbs_feedback(512)
    assert backend._pbs_window <= 3


def test_feedback_needs_epoch_volume(cluster, node):
    backend = setup(cluster, node)
    stats = PagingStats()
    backend.bind_page_table({}, stats)
    backend._pbs_feedback(100)  # below the 512-page epoch
    assert backend._pbs_window == 7


def test_no_stats_means_static_window(cluster, node):
    backend = setup(cluster, node)
    backend.bind_page_table({})  # no stats handle
    backend._pbs_feedback(10_000)
    assert backend._pbs_window == 7


def test_scan_keeps_window_random_shrinks_it(cluster, node):
    """End to end: a scan stream sustains the window; random collapses it."""
    from repro.sim import RngStreams
    from repro.swap.base import VirtualMemory

    pages = make_pages(2048, compressibility_sampler=lambda: 2.0)
    backend = setup(cluster, node)
    mmu = VirtualMemory(cluster.env, pages, 512, backend,
                        prefetch_capacity=256)
    backend.bind_page_table(mmu.pages, mmu.stats)
    rng = RngStreams(4).stream("r")

    def scan_then_random():
        for _ in range(2):
            for page_id in range(2048):
                yield from mmu.access(page_id)
        yield from mmu.flush()
        window_after_scan = backend._pbs_window
        for _ in range(6000):
            yield from mmu.access(rng.randrange(2048))
        yield from mmu.flush()
        return window_after_scan, backend._pbs_window

    after_scan, after_random = run(cluster, scan_then_random())
    assert after_scan == 7
    assert after_random < after_scan
