"""Tests for the NBDX and Infiniswap backends."""


from repro.swap.remote_block import Infiniswap, Nbdx

from tests.swap.conftest import run


def setup_backend(cluster, node, cls, **kwargs):
    backend = cls(node, cluster, **kwargs)

    def scenario():
        yield from backend.setup()

    run(cluster, scenario())
    return backend


def test_nbdx_uses_single_server(cluster, node):
    backend = setup_backend(cluster, node, Nbdx, slabs_per_target=2)
    assert len(backend.areas) == 1


def test_infiniswap_stripes_over_peers(cluster, node):
    backend = setup_backend(
        cluster, node, Infiniswap, slabs_per_target=2,
        rng=cluster.rng.stream("t"),
    )
    assert len(backend.areas) == 3  # all group peers


def test_swap_roundtrip_charges_network(cluster, node, pages):
    backend = setup_backend(cluster, node, Infiniswap, slabs_per_target=2,
                            rng=cluster.rng.stream("t"))

    def scenario():
        yield from backend.swap_out(pages[0])
        extra = yield from backend.swap_in(pages[0])
        return extra

    extra = run(cluster, scenario())
    assert extra == []
    assert backend.remote_writes == 1
    assert backend.remote_reads == 1
    assert cluster.fabric.total_bytes > 4096


def test_swap_area_exhaustion_degrades_to_disk(cluster, node, pages):
    backend = setup_backend(cluster, node, Nbdx, slabs_per_target=1)
    # Fill every reserved area to force exhaustion.
    for area in backend.areas.values():
        area.reserve(("fill", area.node_id), area.capacity_bytes)

    def scenario():
        yield from backend.swap_out(pages[0])
        extra = yield from backend.swap_in(pages[0])
        return extra

    assert run(cluster, scenario()) == []
    assert backend.disk_fallback_writes == 1
    assert backend.disk_fallback_reads == 1
    assert node.hdd.stats.writes == 1


def test_remote_failure_falls_back_to_disk(cluster, node, pages):
    backend = setup_backend(cluster, node, Infiniswap, slabs_per_target=2,
                            rng=cluster.rng.stream("t"))

    def scenario():
        yield from backend.swap_out(pages[0])
        target = backend._location[pages[0].page_id]
        cluster.crash_node(target)
        yield from backend.swap_in(pages[0])
        return True

    run(cluster, scenario())
    assert backend.disk_fallback_reads == 1
    assert node.hdd.stats.reads == 1


def test_discard_frees_area_bytes(cluster, node, pages):
    backend = setup_backend(cluster, node, Infiniswap, slabs_per_target=2,
                            rng=cluster.rng.stream("t"))

    def scenario():
        yield from backend.swap_out(pages[0])
        return True

    run(cluster, scenario())
    used_before = sum(a.used_bytes for a in backend.areas.values())
    backend.discard(pages[0])
    assert sum(a.used_bytes for a in backend.areas.values()) < used_before


def test_infiniswap_slower_than_fastswap_per_page(cluster, node):
    """Block-layer overhead makes per-page remote ops pricier."""
    from repro.swap.fastswap import FastSwap

    assert Infiniswap.EXTRA_OP_OVERHEAD > Nbdx.EXTRA_OP_OVERHEAD
    assert (
        node.config.calibration.cpu.block_layer_overhead
        > FastSwap.REMOTE_PER_PAGE_OVERHEAD
    )
