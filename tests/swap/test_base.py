"""Unit tests for the paging MMU (VirtualMemory)."""

import pytest

from repro.mem.page import make_pages
from repro.sim import Environment
from repro.swap.base import SwapBackend, VirtualMemory


class RecordingBackend(SwapBackend):
    """In-memory backend that records calls and charges fixed costs."""

    name = "recording"

    def __init__(self, env, in_cost=1e-3, out_cost=1e-3):
        self.env = env
        self.in_cost = in_cost
        self.out_cost = out_cost
        self.swapped_out = []
        self.swapped_in = []
        self.discarded = []
        self.prefetch_payload = []

    def swap_out(self, page):
        self.swapped_out.append(page.page_id)
        yield self.env.timeout(self.out_cost)

    def swap_in(self, page):
        self.swapped_in.append(page.page_id)
        yield self.env.timeout(self.in_cost)
        return list(self.prefetch_payload)

    def discard(self, page):
        self.discarded.append(page.page_id)


@pytest.fixture
def env():
    return Environment()


def make_mmu(env, npages=8, capacity=4, **kwargs):
    pages = make_pages(npages)
    backend = RecordingBackend(env)
    mmu = VirtualMemory(env, pages, capacity, backend, **kwargs)
    return mmu, backend, pages


def drive(env, mmu, refs):
    def proc():
        for ref in refs:
            if isinstance(ref, tuple):
                page_id, write = ref
            else:
                page_id, write = ref, False
            yield from mmu.access(page_id, write=write)
        yield from mmu.flush()

    env.run(until=env.process(proc()))


def test_first_touch_is_minor_fault(env):
    mmu, backend, _pages = make_mmu(env)
    drive(env, mmu, [0, 1, 2])
    assert mmu.stats.minor_faults == 3
    assert mmu.stats.major_faults == 0
    assert backend.swapped_in == []


def test_resident_hit(env):
    mmu, _backend, _pages = make_mmu(env)
    drive(env, mmu, [0, 0, 0])
    assert mmu.stats.resident_hits == 2


def test_eviction_triggers_swap_out(env):
    mmu, backend, _pages = make_mmu(env, capacity=2)
    drive(env, mmu, [0, 1, 2])
    assert backend.swapped_out == [0]


def test_refault_is_major_and_swaps_in(env):
    mmu, backend, _pages = make_mmu(env, capacity=2)
    drive(env, mmu, [0, 1, 2, 0])
    assert backend.swapped_in == [0]
    assert mmu.stats.major_faults == 1


def test_lru_order(env):
    mmu, backend, _pages = make_mmu(env, capacity=2)
    # Touch 0 again so 1 becomes the LRU victim.
    drive(env, mmu, [0, 1, 0, 2])
    assert backend.swapped_out == [1]


def test_clean_reeviction_is_free(env):
    mmu, backend, _pages = make_mmu(env, capacity=2)
    drive(env, mmu, [0, 1, 2, 0, 3])
    # 0 was swapped out once, came back clean, so its second eviction
    # reuses the existing swap copy.
    assert backend.swapped_out.count(0) == 1


def test_dirty_reeviction_writes_again(env):
    mmu, backend, _pages = make_mmu(env, capacity=2)
    drive(env, mmu, [0, 1, 2, (0, True), 3, 1, 0])
    assert backend.swapped_out.count(0) == 2


def test_write_invalidation_discards_backend_copy(env):
    mmu, backend, _pages = make_mmu(env, capacity=2)
    drive(env, mmu, [0, 1, 2, 0, (0, True)])
    assert backend.discarded == [0]


def test_prefetched_pages_avoid_major_faults(env):
    mmu, backend, pages = make_mmu(env, capacity=2)
    drive(env, mmu, [0, 1, 2, 3])  # 0 and 1 now swapped
    backend.prefetch_payload = [mmu.pages[1]]
    drive(env, mmu, [0, 1])
    assert backend.swapped_in == [0]  # 1 came via prefetch
    assert mmu.stats.prefetch_hits == 1


def test_prefetch_buffer_bounded(env):
    mmu, backend, pages = make_mmu(env, npages=16, capacity=2,
                                   prefetch_capacity=2)
    drive(env, mmu, list(range(8)))
    backend.prefetch_payload = [mmu.pages[i] for i in range(3, 6)]
    drive(env, mmu, [0])
    assert len(mmu.prefetch) <= 2


def test_completion_time_includes_compute(env):
    mmu, _backend, _pages = make_mmu(env, compute_per_access=1e-3)
    start = env.now
    drive(env, mmu, [0, 0, 0, 0])
    assert env.now - start >= 4e-3


def test_grow_capacity(env):
    mmu, backend, _pages = make_mmu(env, capacity=2)
    mmu.grow_capacity(2)
    drive(env, mmu, [0, 1, 2, 3])
    assert backend.swapped_out == []


def test_capacity_validation(env):
    pages = make_pages(4)
    with pytest.raises(ValueError):
        VirtualMemory(env, pages, 0, RecordingBackend(env))


def test_fault_rate(env):
    mmu, _backend, _pages = make_mmu(env, capacity=2)
    drive(env, mmu, [0, 1, 2, 0])
    assert mmu.stats.fault_rate == pytest.approx(1 / 4)
