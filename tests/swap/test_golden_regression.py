"""Golden regression: the cascade port must not move a single number.

Every value here was captured from the pre-cascade backends (one class
per system, hand-rolled tier ordering) on the standard scaled-down
testbed.  The tier refactor is purely structural, so completion times
must match *bit-identically* — any drift means a timeout, resource
operation or rng draw changed order or magnitude.
"""

import pytest

from repro.experiments.runner import run_kv_workload, run_paging_workload
from repro.swap.fastswap import FastSwapConfig
from repro.workloads.kv import KV_WORKLOADS
from repro.workloads.ml import ML_WORKLOADS

SEED = 7
FIT = 0.6


@pytest.fixture(scope="module")
def spec():
    return ML_WORKLOADS["logistic_regression"].with_overrides(
        pages=512, iterations=2
    )


def run(spec, backend, **kwargs):
    return run_paging_workload(backend, spec, FIT, seed=SEED, **kwargs)


def test_linux_golden(spec):
    result = run(spec, "linux")
    assert result.completion_time == 0.5425969866666702
    assert result.stats["major_faults"] == 46
    assert result.stats["minor_faults"] == 972
    assert result.backend_stats["reads"] == 46
    assert result.backend_stats["writes"] == 546


def test_zswap_golden(spec):
    result = run(spec, "zswap")
    assert result.completion_time == 0.11900403131835877
    assert result.stats["major_faults"] == 417
    assert result.stats["minor_faults"] == 601
    assert result.backend_stats["pool_hits"] == 408
    assert result.backend_stats["pool_misses"] == 9


def test_nbdx_golden(spec):
    result = run(spec, "nbdx")
    assert result.completion_time == 0.029503043587237886
    assert result.stats["major_faults"] == 506
    assert result.backend_stats["remote_reads"] == 506
    assert result.backend_stats["remote_writes"] == 546


def test_infiniswap_golden(spec):
    result = run(spec, "infiniswap")
    assert result.completion_time == 0.03160704358723879
    assert result.stats["major_faults"] == 506
    assert result.backend_stats["remote_reads"] == 506
    assert result.backend_stats["remote_writes"] == 546


def test_fastswap_golden(spec):
    result = run(spec, "fastswap")
    assert result.completion_time == 0.014138907995605368
    assert result.stats["major_faults"] == 88
    assert result.stats["minor_faults"] == 930
    assert result.backend_stats["sm_puts"] == 546
    assert result.backend_stats["sm_gets"] == 88
    assert result.backend_stats["pbs_pages"] == 478


def test_xmempod_matches_fastswap_when_sm_absorbs_all(spec):
    result = run(spec, "xmempod")
    assert result.completion_time == 0.014138907995605368


def test_fastswap_split_ratio_golden(spec):
    result = run(
        spec, "fastswap", fastswap_config=FastSwapConfig(sm_fraction=0.5)
    )
    assert result.completion_time == 0.015050983567301158
    assert result.stats["major_faults"] == 134
    assert result.backend_stats["remote_reads"] == 81
    assert result.backend_stats["sm_puts"] == 281
    assert result.backend_stats["sm_gets"] == 51
    assert result.backend_stats["remote_batches"] == 33
    assert result.backend_stats["remote_pages_out"] == 264
    assert result.backend_stats["pbs_pages"] == 425


def test_fastswap_rdma_only_golden(spec):
    result = run(
        spec, "fastswap", fastswap_config=FastSwapConfig(sm_fraction=0.0)
    )
    assert result.completion_time == 0.01574944699706996
    assert result.stats["major_faults"] == 129
    assert result.backend_stats["remote_reads"] == 128
    assert result.backend_stats["remote_batches"] == 69
    assert result.backend_stats["remote_pages_out"] == 545
    assert result.backend_stats["pbs_pages"] == 409


def test_fastswap_no_compression_golden(spec):
    result = run(
        spec,
        "fastswap",
        fastswap_config=FastSwapConfig(sm_fraction=0.0, compression=False),
    )
    assert result.completion_time == 0.014284117073567502
    assert result.stats["major_faults"] == 129


def test_fastswap_no_pbs_golden(spec):
    result = run(
        spec,
        "fastswap",
        fastswap_config=FastSwapConfig(sm_fraction=0.0, pbs=False),
    )
    assert result.completion_time == 0.017466044272867375
    assert result.stats["major_faults"] == 506
    assert result.backend_stats["remote_reads"] == 505


def test_fastswap_disk_spill_golden(spec):
    # No remote capacity at all: everything spills to the disk tier.
    config = FastSwapConfig(sm_fraction=0.0, slabs_per_target=0)
    result = run(spec, "fastswap", fastswap_config=config)
    assert result.completion_time == 4.094557058329159
    assert result.stats["major_faults"] == 506
    assert result.backend_stats["disk_writes"] == 69
    assert result.backend_stats["disk_reads"] == 505


def test_xmempod_ssd_spill_golden(spec):
    config = FastSwapConfig(sm_fraction=0.0, slabs_per_target=0)
    result = run(spec, "xmempod", fastswap_config=config)
    assert result.completion_time == 0.07555453228759597
    assert result.backend_stats["ssd_writes"] == 69
    assert result.backend_stats["ssd_reads"] == 505


def test_nvm_golden():
    from repro.core.cluster import DisaggregatedCluster
    from repro.experiments.runner import default_cluster_config
    from repro.mem.page import make_pages
    from repro.swap.base import VirtualMemory
    from repro.swap.nvm_swap import NvmSwap

    spec = ML_WORKLOADS["logistic_regression"].with_overrides(
        pages=512, iterations=2
    )
    cluster = DisaggregatedCluster.build(default_cluster_config(seed=SEED))
    node = cluster.nodes()[0]
    backend = NvmSwap(node)
    rng = cluster.rng
    pages = make_pages(
        spec.pages,
        owner="nvm",
        compressibility_sampler=spec.compressibility.sampler(
            rng.stream("pages")
        ),
    )
    mmu = VirtualMemory(
        cluster.env,
        pages,
        max(1, int(spec.pages * FIT)),
        backend,
        cpu=cluster.config.calibration.cpu,
        prefetch_capacity=128,
        compute_per_access=spec.compute_per_access,
    )

    def job():
        yield from backend.setup()
        mmu.stats.start_time = cluster.env.now
        for page_id, is_write in spec.iter_accesses(rng.stream("trace")):
            yield from mmu.access(page_id, write=is_write)
        yield from mmu.flush()
        mmu.stats.end_time = cluster.env.now

    cluster.run_process(job())
    assert mmu.stats.completion_time == 0.015548130761718825
    assert mmu.stats.major_faults == 506
    assert mmu.stats.minor_faults == 512
    assert backend.device.reads == 506
    assert backend.device.writes == 546


def test_kv_goldens():
    spec = KV_WORKLOADS["memcached"].with_overrides(keys=512)
    fast = run_kv_workload("fastswap", spec, 0.5, duration=2.0, seed=SEED)
    assert fast.mean_throughput == 166411.5
    assert fast.operations == 332823
    inf = run_kv_workload("infiniswap", spec, 0.5, duration=2.0, seed=SEED)
    assert inf.mean_throughput == 123963.0
    assert inf.operations == 247926
    z = run_kv_workload("zswap", spec, 0.5, duration=2.0, seed=SEED)
    assert z.mean_throughput == 5396.0
    assert z.operations == 10792
