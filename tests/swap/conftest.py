"""Shared fixtures for swap-backend tests."""

import pytest

from repro.core import ClusterConfig, DisaggregatedCluster
from repro.hw.latency import MiB
from repro.mem.page import make_pages


@pytest.fixture
def cluster():
    return DisaggregatedCluster.build(
        ClusterConfig(
            num_nodes=4,
            servers_per_node=1,
            server_memory_bytes=32 * MiB,
            donation_fraction=0.3,
            receive_pool_slabs=16,
            send_pool_slabs=4,
            replication_factor=1,
            seed=11,
        )
    )


@pytest.fixture
def node(cluster):
    return cluster.nodes()[0]


@pytest.fixture
def pages():
    return make_pages(256, owner="test", compressibility_sampler=lambda: 3.0)


def run(cluster, generator):
    return cluster.run_process(generator)
