"""Tests for the FastSwap hybrid backend."""

import pytest

from repro.mem.page import make_pages
from repro.swap.fastswap import FastSwap, FastSwapConfig

from tests.swap.conftest import run


def setup_fastswap(cluster, node, config=None):
    backend = FastSwap(node, cluster, config=config)

    def scenario():
        yield from backend.setup()

    run(cluster, scenario())
    return backend


def test_adaptive_prefers_shared_memory(cluster, node, pages):
    backend = setup_fastswap(cluster, node)

    def scenario():
        yield from backend.swap_out(pages[0])
        return backend._where[pages[0].page_id][0]

    assert run(cluster, scenario()) == "sm"
    assert backend.sm_puts == 1


def test_compression_reduces_pool_usage(cluster, node):
    compressible = make_pages(32, compressibility_sampler=lambda: 4.0)
    backend = setup_fastswap(cluster, node)

    def scenario():
        for page in compressible:
            yield from backend.swap_out(page)
        return node.shared_pool.used_bytes

    used = run(cluster, scenario())
    assert used == 32 * 1024  # 4 KiB pages at ratio 4 -> 1 KiB chunks


def test_no_compression_stores_raw(cluster, node):
    compressible = make_pages(8, compressibility_sampler=lambda: 4.0)
    backend = setup_fastswap(cluster, node, FastSwapConfig(compression=False))

    def scenario():
        for page in compressible:
            yield from backend.swap_out(page)
        return node.shared_pool.used_bytes

    assert run(cluster, scenario()) == 8 * 4096


def test_fs_rdma_batches_remote_writes(cluster, node, pages):
    config = FastSwapConfig(sm_fraction=0.0, window=8)
    backend = setup_fastswap(cluster, node, config)

    def scenario():
        for page in pages[:16]:
            yield from backend.swap_out(page)
        return True

    run(cluster, scenario())
    assert backend.remote_batches == 2
    assert backend.remote_pages_out == 16
    assert backend.sm_puts == 0


def test_buffered_page_readable_before_flush(cluster, node, pages):
    config = FastSwapConfig(sm_fraction=0.0, window=8)
    backend = setup_fastswap(cluster, node, config)

    def scenario():
        yield from backend.swap_out(pages[0])  # stays in the batch buffer
        start = cluster.env.now
        yield from backend.swap_in(pages[0])
        return cluster.env.now - start

    elapsed = run(cluster, scenario())
    assert elapsed == pytest.approx(FastSwap.BUFFER_HIT_TIME)


def test_drain_flushes_partial_batch(cluster, node, pages):
    config = FastSwapConfig(sm_fraction=0.0, window=8)
    backend = setup_fastswap(cluster, node, config)

    def scenario():
        for page in pages[:3]:
            yield from backend.swap_out(page)
        yield from backend.drain()
        return backend._where[pages[0].page_id][0]

    assert run(cluster, scenario()) == "remote"
    assert backend.remote_batches == 1


def test_pbs_prefetches_neighbours(cluster, node, pages):
    config = FastSwapConfig(sm_fraction=0.0, window=8, pbs=True)
    backend = setup_fastswap(cluster, node, config)
    backend.bind_page_table({p.page_id: p for p in pages})

    def scenario():
        for page in pages[:8]:
            yield from backend.swap_out(page)
        yield from backend.drain()
        extra = yield from backend.swap_in(pages[0])
        return extra

    extra = run(cluster, scenario())
    assert len(extra) == 7
    assert backend.pbs_pages == 7


def test_pbs_disabled_fetches_single_page(cluster, node, pages):
    config = FastSwapConfig(sm_fraction=0.0, window=8, pbs=False)
    backend = setup_fastswap(cluster, node, config)
    backend.bind_page_table({p.page_id: p for p in pages})

    def scenario():
        for page in pages[:8]:
            yield from backend.swap_out(page)
        yield from backend.drain()
        extra = yield from backend.swap_in(pages[0])
        return extra

    assert run(cluster, scenario()) == []


def test_sm_pbs_promotes_from_shared_pool(cluster, node, pages):
    config = FastSwapConfig(sm_fraction=1.0, window=8, pbs=True)
    backend = setup_fastswap(cluster, node, config)
    backend.bind_page_table({p.page_id: p for p in pages})

    def scenario():
        for page in pages[:8]:
            yield from backend.swap_out(page)
        extra = yield from backend.swap_in(pages[0])
        return extra

    extra = run(cluster, scenario())
    assert len(extra) == 7
    assert backend.sm_gets == 1


def test_fixed_ratio_splits_tiers(cluster, node):
    pages = make_pages(256, compressibility_sampler=lambda: 2.0)
    config = FastSwapConfig(sm_fraction=0.5, window=8)
    backend = setup_fastswap(cluster, node, config)

    def scenario():
        for page in pages:
            yield from backend.swap_out(page)
        yield from backend.drain()
        return True

    run(cluster, scenario())
    tiers = [backend._where[p.page_id][0] for p in pages]
    sm = tiers.count("sm")
    remote = tiers.count("remote")
    assert sm > 0 and remote > 0
    assert 0.3 < sm / len(pages) < 0.7


def test_fixed_ratio_is_deterministic(cluster, node):
    config = FastSwapConfig(sm_fraction=0.5)
    backend = setup_fastswap(cluster, node, config)
    first = [backend._wants_shared_memory(i) for i in range(100)]
    second = [backend._wants_shared_memory(i) for i in range(100)]
    assert first == second


def test_discard_frees_shared_pool_space(cluster, node, pages):
    backend = setup_fastswap(cluster, node)

    def scenario():
        yield from backend.swap_out(pages[0])
        backend.discard(pages[0])
        return node.shared_pool.used_bytes

    assert run(cluster, scenario()) == 0


def test_remote_crash_falls_back_to_disk(cluster, node, pages):
    config = FastSwapConfig(sm_fraction=0.0, window=4)
    backend = setup_fastswap(cluster, node, config)

    def scenario():
        for page in pages[:4]:
            yield from backend.swap_out(page)
        target, _stored = backend._where[pages[0].page_id][1]
        cluster.crash_node(target)
        yield from backend.swap_in(pages[0])
        return True

    run(cluster, scenario())
    assert backend.disk_fallback_reads == 1


def test_cluster_full_spills_batches_to_disk(cluster, node):
    pages = make_pages(64, compressibility_sampler=lambda: 1.0)
    config = FastSwapConfig(sm_fraction=0.0, window=8, slabs_per_target=0)
    backend = setup_fastswap(cluster, node, config)
    assert not backend.areas  # nothing reserved

    def scenario():
        for page in pages:
            yield from backend.swap_out(page)
        yield from backend.drain()
        return True

    run(cluster, scenario())
    assert backend.disk_writes > 0
    tiers = {backend._where[p.page_id][0] for p in pages}
    assert tiers == {"disk"}
