"""Tests for the Linux disk swap and zswap backends."""


from repro.hw.latency import MiB
from repro.mem.page import Page, make_pages
from repro.swap.linux_swap import LinuxDiskSwap
from repro.swap.zswap import Zswap

from tests.swap.conftest import run


def test_linux_swap_roundtrip(cluster, node, pages):
    backend = LinuxDiskSwap(node)

    def scenario():
        yield from backend.swap_out(pages[0])
        yield from backend.drain()
        extra = yield from backend.swap_in(pages[0])
        return extra

    run(cluster, scenario())
    assert backend.writes == 1
    assert backend.reads == 1
    assert node.hdd.stats.reads == 1


def test_linux_readahead_returns_neighbours(cluster, node, pages):
    backend = LinuxDiskSwap(node)

    def scenario():
        for page in pages[:8]:
            yield from backend.swap_out(page)
        yield from backend.drain()
        extra = yield from backend.swap_in(pages[0])
        return extra

    extra = run(cluster, scenario())
    # Pages 1..7 sit in adjacent slots: the readahead window covers them.
    assert {p.page_id for p in extra} >= {1, 2, 3, 4, 5, 6, 7}


def test_linux_writeback_is_coalesced(cluster, node, pages):
    backend = LinuxDiskSwap(node)

    def scenario():
        for page in pages[: backend.WRITE_COALESCE_PAGES]:
            yield from backend.swap_out(page)
        yield from backend.drain()
        # Let the background bio complete.
        yield cluster.env.timeout(1.0)

    run(cluster, scenario())
    assert node.hdd.stats.writes == 1  # one merged bio
    assert backend.writes == backend.WRITE_COALESCE_PAGES


def test_linux_swap_out_does_not_block_on_disk(cluster, node, pages):
    backend = LinuxDiskSwap(node)

    def scenario():
        start = cluster.env.now
        yield from backend.swap_out(pages[0])
        return cluster.env.now - start

    elapsed = run(cluster, scenario())
    # Asynchronous writeback: only the submit cost is charged.
    assert elapsed < 1e-4


def test_linux_discard_releases_slot(cluster, node, pages):
    backend = LinuxDiskSwap(node)

    def scenario():
        yield from backend.swap_out(pages[0])
        backend.discard(pages[0])
        return True

    run(cluster, scenario())
    assert pages[0].page_id not in backend._slot_of


def test_zswap_pool_hit_avoids_disk(cluster, node):
    backend = Zswap(node, pool_bytes=4 * MiB)
    page = Page(1, compressibility=4.0)

    def scenario():
        yield from backend.swap_out(page)
        yield from backend.swap_in(page)
        return True

    run(cluster, scenario())
    assert backend.pool_hits == 1
    assert node.hdd.stats.reads == 0


def test_zswap_rejects_incompressible(cluster, node):
    backend = Zswap(node, pool_bytes=4 * MiB)
    page = Page(1, compressibility=1.0)

    def scenario():
        yield from backend.swap_out(page)
        yield from backend.drain()
        yield cluster.env.timeout(1.0)
        return True

    run(cluster, scenario())
    assert backend.rejects == 1
    assert node.hdd.stats.writes == 1


def test_zswap_writeback_on_pressure(cluster, node):
    # Pool fits exactly one compressed half-page pair.
    backend = Zswap(node, pool_bytes=4096)
    pages = make_pages(8, compressibility_sampler=lambda: 4.0)

    def scenario():
        for page in pages:
            yield from backend.swap_out(page)
        return True

    run(cluster, scenario())
    assert backend.writebacks > 0


def test_zswap_miss_falls_through_to_disk(cluster, node):
    backend = Zswap(node, pool_bytes=4096)
    pages = make_pages(8, compressibility_sampler=lambda: 4.0)

    def scenario():
        for page in pages:
            yield from backend.swap_out(page)
        yield from backend.drain()
        yield cluster.env.timeout(1.0)
        # The first page was written back to disk by now.
        yield from backend.swap_in(pages[0])
        return True

    run(cluster, scenario())
    assert backend.pool_misses == 1
    assert node.hdd.stats.reads == 1


def test_zswap_effective_ratio_capped(cluster, node):
    backend = Zswap(node, pool_bytes=64 * MiB)
    pages = make_pages(200, compressibility_sampler=lambda: 8.0)

    def scenario():
        for page in pages:
            yield from backend.swap_out(page)
        return True

    run(cluster, scenario())
    assert backend.store.effective_ratio() <= 2.0
