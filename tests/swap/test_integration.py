"""End-to-end paging runs: the Section V orderings must hold."""

import pytest

from repro.experiments.runner import run_kv_workload, run_paging_workload
from repro.swap.factory import BACKEND_NAMES, make_swap_backend
from repro.swap.fastswap import FastSwapConfig
from repro.workloads.kv import KV_WORKLOADS
from repro.workloads.ml import ML_WORKLOADS


SMALL = ML_WORKLOADS["logistic_regression"].with_overrides(pages=512, iterations=2)


def completion(backend, fit=0.5, **kwargs):
    return run_paging_workload(backend, SMALL, fit, seed=3, **kwargs).completion_time


def test_factory_knows_all_backends(cluster):
    node = cluster.nodes()[0]
    for name in BACKEND_NAMES:
        backend = make_swap_backend(name, node, cluster)
        assert backend.name == name
    with pytest.raises(ValueError):
        make_swap_backend("teleport", node, cluster)


def test_fit_fraction_validation():
    with pytest.raises(ValueError):
        run_paging_workload("linux", SMALL, 0.0)
    with pytest.raises(ValueError):
        run_paging_workload("linux", SMALL, 1.5)


def test_completion_time_ordering():
    """The paper's headline: FastSwap < Infiniswap < Linux."""
    fastswap = completion("fastswap")
    infiniswap = completion("infiniswap")
    linux = completion("linux")
    assert fastswap < infiniswap < linux
    assert linux / fastswap > 10
    assert infiniswap / fastswap > 1.5


def test_nbdx_between_fastswap_and_infiniswap():
    nbdx = completion("nbdx")
    assert completion("fastswap") < nbdx <= completion("infiniswap")


def test_more_memory_helps_every_backend():
    for backend in ("fastswap", "infiniswap", "linux"):
        assert completion(backend, fit=0.75) <= completion(backend, fit=0.5)


def test_full_fit_means_no_majors():
    result = run_paging_workload("linux", SMALL, 1.0, seed=3)
    assert result.stats["major_faults"] == 0


def test_pbs_improves_fastswap():
    with_pbs = completion(
        "fastswap", fastswap_config=FastSwapConfig(sm_fraction=0.0, pbs=True)
    )
    without_pbs = completion(
        "fastswap", fastswap_config=FastSwapConfig(sm_fraction=0.0, pbs=False)
    )
    assert with_pbs < without_pbs


def test_distribution_ratio_monotonic():
    """FS-SM fastest, FS-RDMA slowest, mixes in between (Figure 8)."""
    times = [
        completion("fastswap", fastswap_config=FastSwapConfig(sm_fraction=f))
        for f in (1.0, 0.5, 0.0)
    ]
    assert times[0] <= times[1] <= times[2]


def test_deterministic_given_seed():
    a = run_paging_workload("fastswap", SMALL, 0.5, seed=5)
    b = run_paging_workload("fastswap", SMALL, 0.5, seed=5)
    assert a.completion_time == b.completion_time
    assert a.stats == b.stats


def test_kv_throughput_ordering():
    spec = KV_WORKLOADS["memcached"].with_overrides(keys=512)
    fast = run_kv_workload("fastswap", spec, 0.5, duration=0.5, seed=3)
    slow = run_kv_workload("infiniswap", spec, 0.5, duration=0.5, seed=3)
    assert fast.mean_throughput > slow.mean_throughput
    assert fast.operations > 0
    assert fast.timeline  # windows were recorded


def test_kv_cold_start_recovers():
    spec = KV_WORKLOADS["memcached"].with_overrides(keys=256)
    result = run_kv_workload(
        "fastswap", spec, 0.5, duration=1.0, window=0.1, seed=3, cold_start=True
    )
    rates = [rate for _t, rate in result.timeline]
    assert rates, "no windows recorded"
    # Later windows beat the first one: the hot set faulted back in.
    assert max(rates[len(rates) // 2:]) >= rates[0]
