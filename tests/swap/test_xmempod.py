"""Tests for the XMemPod SSD-tier cascade."""

from repro.mem.page import make_pages
from repro.swap.factory import make_swap_backend
from repro.swap.fastswap import FastSwapConfig

from tests.swap.conftest import run


def make_xmempod(cluster, node, **config_kwargs):
    backend = make_swap_backend(
        "xmempod", node, cluster,
        fastswap_config=FastSwapConfig(**config_kwargs),
    )

    def scenario():
        yield from backend.setup()

    run(cluster, scenario())
    return backend


def test_factory_builds_ssd_variant(cluster, node):
    backend = make_xmempod(cluster, node)
    assert backend.name == "xmempod"
    assert backend.config.ssd_tier


def test_overflow_goes_to_ssd_not_hdd(cluster, node):
    pages = make_pages(32, compressibility_sampler=lambda: 1.0)
    backend = make_xmempod(cluster, node, sm_fraction=0.0, window=8,
                           slabs_per_target=0)

    def scenario():
        for page in pages:
            yield from backend.swap_out(page)
        yield from backend.drain()
        yield from backend.swap_in(pages[0])
        return True

    run(cluster, scenario())
    assert backend.ssd_writes > 0
    assert backend.ssd_reads == 1
    assert backend.disk_writes == 0
    assert node.ssd.stats.writes > 0
    assert node.hdd.stats.writes == 0
    tiers = {backend._where[p.page_id][0] for p in pages}
    assert tiers == {"ssd"}


def test_ssd_tier_faster_than_hdd_tier(cluster, node):
    pages = make_pages(32, compressibility_sampler=lambda: 1.0)

    def timed(backend):
        def scenario():
            yield from backend.setup()
            start = cluster.env.now
            for page in pages:
                yield from backend.swap_out(page)
            yield from backend.drain()
            for page in pages:
                yield from backend.swap_in(page)
            return cluster.env.now - start

        return run(cluster, scenario())

    ssd_backend = make_swap_backend(
        "xmempod", node, cluster,
        fastswap_config=FastSwapConfig(sm_fraction=0.0, slabs_per_target=0),
    )
    ssd_time = timed(ssd_backend)
    hdd_backend = make_swap_backend(
        "fastswap", node, cluster,
        fastswap_config=FastSwapConfig(sm_fraction=0.0, slabs_per_target=0),
    )
    hdd_time = timed(hdd_backend)
    assert ssd_time < hdd_time / 5
