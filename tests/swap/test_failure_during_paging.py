"""Failure injection while a paging workload is running.

The fault-tolerance promise of Section IV-D, exercised end-to-end: a
remote node hosting swap slabs crashes mid-run; the workload must
complete (slower, via disk backups), never crash, and account for the
fallbacks.
"""


from repro.core import ClusterConfig, DisaggregatedCluster
from repro.hw.latency import MiB
from repro.mem.page import make_pages
from repro.swap.base import VirtualMemory
from repro.swap.factory import make_swap_backend
from repro.swap.fastswap import FastSwap, FastSwapConfig
from repro.workloads.ml import ML_WORKLOADS

SPEC = ML_WORKLOADS["logistic_regression"].with_overrides(
    pages=512, iterations=3
)


def run_with_crash(backend_name, crash_at, fs_config=None, seed=3):
    config = ClusterConfig(
        num_nodes=4,
        servers_per_node=1,
        server_memory_bytes=32 * MiB,
        donation_fraction=0.0,  # force the remote tier
        receive_pool_slabs=16,
        replication_factor=1,
        seed=seed,
    )
    cluster = DisaggregatedCluster.build(config)
    node = cluster.nodes()[0]
    backend = make_swap_backend(
        backend_name, node, cluster, rng=cluster.rng.stream("b"),
        fastswap_config=fs_config, slabs_per_target=8,
    )
    pages = make_pages(SPEC.pages, compressibility_sampler=lambda: 2.0)
    mmu = VirtualMemory(
        cluster.env, pages, SPEC.pages // 2, backend,
        cpu=config.calibration.cpu,
        compute_per_access=SPEC.compute_per_access,
    )
    if isinstance(backend, FastSwap):
        backend.bind_page_table(mmu.pages, mmu.stats)

    def crasher():
        yield cluster.env.timeout(crash_at)
        cluster.crash_node("node1")

    def job():
        yield from backend.setup()
        mmu.stats.start_time = cluster.env.now
        for page_id, is_write in SPEC.iter_accesses(cluster.rng.stream("t")):
            yield from mmu.access(page_id, write=is_write)
        yield from mmu.flush()
        mmu.stats.end_time = cluster.env.now

    cluster.env.process(crasher(), name="crasher")
    cluster.run_process(job())
    return cluster, backend, mmu


def test_fastswap_survives_remote_crash():
    cluster, backend, mmu = run_with_crash(
        "fastswap", crash_at=0.02,
        fs_config=FastSwapConfig(sm_fraction=0.0, slabs_per_target=8),
    )
    assert mmu.stats.completion_time > 0
    assert mmu.stats.accesses == mmu.stats.resident_hits + \
        mmu.stats.major_faults + mmu.stats.minor_faults
    # Some reads or batches had to take the disk path.
    assert backend.disk_fallback_reads + backend.disk_writes > 0


def test_infiniswap_survives_remote_crash():
    _cluster, backend, mmu = run_with_crash("infiniswap", crash_at=0.02)
    assert mmu.stats.completion_time > 0
    assert backend.disk_fallback_reads > 0


def test_crash_makes_run_slower_not_wrong():
    _c1, _b1, healthy = run_with_crash(
        "fastswap", crash_at=1e9,  # never fires within the run
        fs_config=FastSwapConfig(sm_fraction=0.0, slabs_per_target=8),
    )
    _c2, _b2, degraded = run_with_crash(
        "fastswap", crash_at=0.02,
        fs_config=FastSwapConfig(sm_fraction=0.0, slabs_per_target=8),
    )
    assert degraded.stats.accesses == healthy.stats.accesses
    assert degraded.stats.completion_time >= healthy.stats.completion_time


def test_fastswap_avoids_crashed_node_for_new_batches():
    cluster, backend, _mmu = run_with_crash(
        "fastswap", crash_at=0.02,
        fs_config=FastSwapConfig(sm_fraction=0.0, slabs_per_target=8),
    )
    # After the crash, fresh batches route to surviving peers only;
    # the crashed node's area stops growing.
    crashed_area = backend.areas.get("node1")
    if crashed_area is not None:
        survivors_used = sum(
            area.used_bytes for node_id, area in backend.areas.items()
            if node_id != "node1"
        )
        assert survivors_used > 0
