"""Tests for the NVM swap tier (paper Section VI)."""

import pytest

from repro.core.errors import NoRemoteCapacity
from repro.hw.latency import MiB, PAGE_SIZE
from repro.swap.nvm_swap import NvmSwap

from tests.swap.conftest import run


def test_roundtrip(cluster, node, pages):
    backend = NvmSwap(node)

    def scenario():
        yield from backend.swap_out(pages[0])
        extra = yield from backend.swap_in(pages[0])
        return extra

    assert run(cluster, scenario()) == []
    assert backend.device.writes == 1
    assert backend.device.reads == 1


def test_capacity_enforced(cluster, node, pages):
    backend = NvmSwap(node, capacity_bytes=2 * PAGE_SIZE)

    def scenario():
        yield from backend.swap_out(pages[0])
        yield from backend.swap_out(pages[1])
        with pytest.raises(NoRemoteCapacity):
            yield from backend.swap_out(pages[2])
        return True

    assert run(cluster, scenario())


def test_rewrite_reuses_reservation(cluster, node, pages):
    backend = NvmSwap(node, capacity_bytes=1 * MiB)

    def scenario():
        yield from backend.swap_out(pages[0])
        yield from backend.swap_out(pages[0])
        return backend.device.used_bytes

    assert run(cluster, scenario()) == PAGE_SIZE


def test_discard_frees_capacity(cluster, node, pages):
    backend = NvmSwap(node, capacity_bytes=1 * MiB)

    def scenario():
        yield from backend.swap_out(pages[0])
        backend.discard(pages[0])
        return backend.device.used_bytes

    assert run(cluster, scenario()) == 0


def test_nvm_slower_than_shm_faster_than_ssd(cluster, node, pages):
    """The §VI ladder at the single-op level."""
    backend = NvmSwap(node)
    calibration = node.config.calibration

    def scenario():
        start = cluster.env.now
        yield from backend.swap_out(pages[0])
        yield from backend.swap_in(pages[0])
        return cluster.env.now - start

    nvm_time = run(cluster, scenario())
    shm_time = 2 * node.shared_pool.op_time(PAGE_SIZE)
    ssd_time = 2 * (
        calibration.ssd.access_time + PAGE_SIZE / calibration.ssd.bandwidth
    )
    assert shm_time < nvm_time < ssd_time
