"""Unit tests for applying fault schedules to a built cluster."""

import pytest

from repro.core.cluster import DisaggregatedCluster
from repro.core.config import ClusterConfig
from repro.faults.driver import FaultDriver
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.hw.latency import MiB


@pytest.fixture
def cluster():
    return DisaggregatedCluster.build(
        ClusterConfig(
            num_nodes=3,
            servers_per_node=1,
            server_memory_bytes=16 * MiB,
            receive_pool_slabs=8,
            seed=3,
        )
    )


def install(cluster, *events, horizon=10.0):
    driver = FaultDriver(cluster, FaultSchedule(events, horizon))
    driver.install()
    return driver


def test_crash_downs_then_reboot_restores(cluster):
    driver = install(
        cluster, FaultEvent("crash", at=1.0, node="node1", until=2.0)
    )
    cluster.env.run(until=1.5)
    assert cluster.is_down("node1")
    assert cluster.node("node1").receive_pool.any_region() is not None
    cluster.env.run(until=5.0)
    assert not cluster.is_down("node1")
    # The reboot re-registered the pools: a usable region again, and
    # the whole donated capacity is free.
    pool = cluster.node("node1").receive_pool
    assert pool.any_region().valid
    assert pool.free_bytes == pool.capacity_bytes
    kinds = [kind for _t, kind, _d in driver.applied]
    assert kinds == ["crash", "reboot"]


def test_server_loss_never_recovers(cluster):
    install(cluster, FaultEvent("server_loss", at=1.0, node="node2"))
    cluster.env.run(until=9.0)
    assert cluster.is_down("node2")
    assert cluster.node("node2").rdms.hosted_bytes == 0


def test_degrade_slows_then_restores(cluster):
    install(
        cluster,
        FaultEvent("degrade", at=1.0, node="node1", until=3.0, factor=4.0),
    )
    cluster.env.run(until=2.0)
    assert cluster.fabric.degrade_factor("node0", "node1") == 4.0
    cluster.env.run(until=4.0)
    assert cluster.fabric.degrade_factor("node0", "node1") == 1.0


def test_partition_cuts_one_path_only(cluster):
    install(
        cluster,
        FaultEvent("partition", at=1.0, node="node1", peer="node2", until=3.0),
    )
    cluster.env.run(until=2.0)
    assert not cluster.fabric.is_reachable("node1", "node2")
    assert cluster.fabric.is_reachable("node0", "node1")
    assert not cluster.is_down("node1")
    cluster.env.run(until=4.0)
    assert cluster.fabric.is_reachable("node1", "node2")


def test_link_flap_heals_quickly(cluster):
    driver = install(
        cluster,
        FaultEvent("link_flap", at=1.0, node="node1", peer="node2", until=1.01),
    )
    cluster.env.run(until=2.0)
    assert cluster.fabric.is_reachable("node1", "node2")
    kinds = [kind for _t, kind, _d in driver.applied]
    assert kinds == ["link_flap", "heal"]


def test_applied_log_orders_by_time(cluster):
    driver = install(
        cluster,
        FaultEvent("crash", at=2.0, node="node1", until=4.0),
        FaultEvent("degrade", at=1.0, node="node2", until=5.0, factor=2.0),
    )
    cluster.env.run(until=6.0)
    times = [when for when, _kind, _detail in driver.applied]
    assert times == sorted(times)
