"""Unit tests for fault events and seeded random schedules."""

import pytest

from repro.faults.schedule import FaultEvent, FaultSchedule, random_schedule
from repro.sim.rng import RngStreams

NODES = ("node1", "node2", "node3")


def make_schedule(seed=0, rate=8.0, horizon=10.0, **kwargs):
    rng = RngStreams(seed).stream("faults/test")
    return random_schedule(rng, NODES, horizon, rate, **kwargs)


class TestFaultEvent:
    def test_validates_kind(self):
        with pytest.raises(ValueError):
            FaultEvent("meteor", 1.0, "node1")

    def test_validates_times(self):
        with pytest.raises(ValueError):
            FaultEvent("crash", -1.0, "node1")
        with pytest.raises(ValueError):
            FaultEvent("crash", 5.0, "node1", until=4.0)

    def test_pair_kinds_need_a_peer(self):
        with pytest.raises(ValueError):
            FaultEvent("partition", 1.0, "node1", until=2.0)

    def test_degrade_needs_a_slowdown(self):
        with pytest.raises(ValueError):
            FaultEvent("degrade", 1.0, "node1", factor=1.0)

    def test_server_loss_is_down_forever(self):
        event = FaultEvent("server_loss", 1.0, "node1")
        assert event.down_until == float("inf")


class TestRandomSchedule:
    def test_same_stream_same_schedule(self):
        assert make_schedule(seed=7).events == make_schedule(seed=7).events

    def test_different_seeds_differ(self):
        schedules = {make_schedule(seed=seed).events for seed in range(6)}
        assert len(schedules) > 1

    def test_events_lie_within_horizon(self):
        schedule = make_schedule(rate=20.0)
        for event in schedule:
            assert 0.0 <= event.at <= schedule.horizon
            assert event.kind in ("crash", "server_loss", "link_flap", "degrade", "partition")
            assert event.node in NODES

    def test_concurrent_down_cap_is_honoured(self):
        for seed in range(8):
            schedule = make_schedule(
                seed=seed, rate=30.0, max_concurrent_down=2, guaranteed_loss=True
            )
            assert schedule.max_concurrent_down() <= 2

    def test_guaranteed_loss_present(self):
        schedule = make_schedule(guaranteed_loss=True)
        losses = schedule.lost_nodes()
        assert len(losses) == 1
        assert losses[0] in NODES

    def test_zero_rate_without_loss_is_empty(self):
        assert len(make_schedule(rate=0.0)) == 0

    def test_json_round_trip(self):
        schedule = make_schedule(rate=15.0, guaranteed_loss=True)
        clone = FaultSchedule.from_json(schedule.to_json())
        assert clone.events == schedule.events
        assert clone.horizon == schedule.horizon

    def test_events_are_time_sorted(self):
        times = [event.at for event in make_schedule(rate=25.0)]
        assert times == sorted(times)

    def test_describe_mentions_counts(self):
        schedule = make_schedule(rate=10.0, guaranteed_loss=True)
        assert "fault(s)" in schedule.describe()
