"""Unit tests for the HDD/SSD models."""

import pytest

from repro.hw import Hdd, Ssd
from repro.hw.latency import KiB
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def run_io(env, generator):
    def wrapper():
        yield from generator
        return env.now

    return env.run(until=env.process(wrapper()))


def test_hdd_random_read_cost(env):
    hdd = Hdd(env)
    elapsed = run_io(env, hdd.read(0, 4 * KiB))
    expected = hdd.spec.access_time + 4 * KiB / hdd.spec.bandwidth
    assert elapsed == pytest.approx(expected)
    assert hdd.stats.reads == 1
    assert hdd.stats.bytes_read == 4 * KiB


def test_hdd_sequential_read_skips_seek(env):
    hdd = Hdd(env)

    def sequence():
        yield from hdd.read(0, 4 * KiB)
        first_done = env.now
        yield from hdd.read(4 * KiB, 4 * KiB)  # contiguous with previous
        return env.now - first_done

    second_cost = env.run(until=env.process(sequence()))
    expected = hdd.spec.sequential_access_time + 4 * KiB / hdd.spec.bandwidth
    assert second_cost == pytest.approx(expected)
    assert hdd.stats.sequential_hits == 1


def test_hdd_nonsequential_pays_full_seek(env):
    hdd = Hdd(env)

    def sequence():
        yield from hdd.read(0, 4 * KiB)
        yield from hdd.read(100 * KiB, 4 * KiB)

    env.run(until=env.process(sequence()))
    assert hdd.stats.sequential_hits == 0


def test_hdd_single_queue_serializes(env):
    hdd = Hdd(env)
    finished = []

    def reader(offset):
        yield from hdd.read(offset, 4 * KiB)
        finished.append(env.now)

    env.process(reader(0))
    env.process(reader(1000 * KiB))
    env.run()
    assert finished[1] > finished[0]


def test_ssd_much_faster_than_hdd(env):
    hdd = Hdd(env)
    ssd = Ssd(env)
    assert ssd.service_time(4 * KiB) < hdd.service_time(4 * KiB) / 10


def test_ssd_parallel_queue(env):
    ssd = Ssd(env)
    finished = []

    def reader(offset):
        yield from ssd.read(offset, 4 * KiB)
        finished.append(env.now)

    for i in range(ssd.spec.queue_depth):
        env.process(reader(i * 1000 * KiB))
    env.run()
    # All fit in the device queue; they finish at the same time.
    assert len(set(finished)) == 1


def test_write_stats(env):
    hdd = Hdd(env)
    run_io(env, hdd.write(0, 8 * KiB))
    assert hdd.stats.writes == 1
    assert hdd.stats.bytes_written == 8 * KiB
    assert hdd.stats.busy_time > 0
    snapshot = hdd.stats.snapshot()
    assert snapshot["writes"] == 1
