"""Tests for the calibration table."""

import pytest

from repro.hw.latency import (
    DEFAULT_CALIBRATION,
    Calibration,
    DiskSpec,
    NetworkSpec,
    PAGE_SIZE,
)


def test_page_size_is_4k():
    assert PAGE_SIZE == 4096


def test_hierarchy_ordering():
    """The paper's Section VI ladder must hold in the defaults."""
    cal = DEFAULT_CALIBRATION
    assert cal.dram.access_time < cal.nvm.read_latency
    assert cal.nvm.read_latency < cal.network.rdma_latency
    assert cal.network.rdma_latency < cal.ssd.access_time
    assert cal.ssd.access_time < cal.hdd.access_time
    assert cal.network.rdma_latency < cal.network.tcp_latency


def test_bandwidth_ordering():
    cal = DEFAULT_CALIBRATION
    assert cal.dram.copy_bandwidth > cal.network.bandwidth
    assert cal.network.bandwidth > cal.network.tcp_bandwidth
    assert cal.network.tcp_bandwidth > cal.ssd.bandwidth
    assert cal.ssd.bandwidth > cal.hdd.bandwidth


def test_with_overrides_replaces_only_named_fields():
    fast_net = NetworkSpec(rdma_latency=0.5e-6)
    cal = DEFAULT_CALIBRATION.with_overrides(network=fast_net)
    assert cal.network.rdma_latency == 0.5e-6
    assert cal.hdd is DEFAULT_CALIBRATION.hdd
    # The default instance is untouched (frozen dataclasses).
    assert DEFAULT_CALIBRATION.network.rdma_latency == 1.5e-6


def test_calibrations_are_frozen():
    with pytest.raises(Exception):
        DEFAULT_CALIBRATION.page_size = 8192


def test_independent_calibration_instances():
    a = Calibration()
    b = Calibration(hdd=DiskSpec(access_time=1e-3))
    assert a.hdd.access_time != b.hdd.access_time


def test_sequential_cheaper_than_random_for_disks():
    cal = DEFAULT_CALIBRATION
    assert cal.hdd.sequential_access_time < cal.hdd.access_time
    assert cal.ssd.sequential_access_time < cal.ssd.access_time


def test_compression_decompress_faster_than_compress():
    cal = DEFAULT_CALIBRATION
    assert cal.compression.decompress_bandwidth > cal.compression.compress_bandwidth
