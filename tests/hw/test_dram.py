"""Unit tests for the DRAM model."""

import pytest

from repro.hw import DramModule
from repro.hw.dram import OutOfMemory
from repro.hw.latency import GiB, KiB
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def test_allocate_and_release(env):
    dram = DramModule(env, capacity_bytes=1 * GiB)
    dram.allocate(512 * KiB)
    assert dram.allocated_bytes == 512 * KiB
    dram.release(512 * KiB)
    assert dram.free_bytes == 1 * GiB


def test_allocate_beyond_capacity_raises(env):
    dram = DramModule(env, capacity_bytes=1024)
    with pytest.raises(OutOfMemory):
        dram.allocate(2048)


def test_release_more_than_allocated_raises(env):
    dram = DramModule(env, capacity_bytes=1024)
    dram.allocate(100)
    with pytest.raises(ValueError):
        dram.release(200)


def test_negative_amounts_rejected(env):
    dram = DramModule(env, capacity_bytes=1024)
    with pytest.raises(ValueError):
        dram.allocate(-1)
    with pytest.raises(ValueError):
        dram.release(-1)


def test_copy_takes_expected_time(env):
    dram = DramModule(env, capacity_bytes=1 * GiB)

    def copier():
        yield from dram.copy(4 * KiB)
        return env.now

    process = env.process(copier())
    elapsed = env.run(until=process)
    expected = dram.spec.access_time + 4 * KiB / dram.spec.copy_bandwidth
    assert elapsed == pytest.approx(expected)
    assert dram.bytes_copied == 4 * KiB


def test_copies_contend_on_channels(env):
    dram = DramModule(env, capacity_bytes=1 * GiB)
    finish_times = []

    def copier():
        yield from dram.copy(4 * KiB)
        finish_times.append(env.now)

    # More concurrent copies than channels: the extras must queue.
    for _ in range(dram.spec.channels + 1):
        env.process(copier())
    env.run()
    single = dram.copy_time(4 * KiB)
    assert max(finish_times) == pytest.approx(2 * single)
    assert sorted(finish_times)[0] == pytest.approx(single)
