"""Unit tests for the NVM tier."""

import pytest

from repro.hw import NvmDevice
from repro.hw.latency import KiB, MiB
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def test_capacity_reservation(env):
    nvm = NvmDevice(env, capacity_bytes=1 * MiB)
    assert nvm.reserve(512 * KiB)
    assert nvm.free_bytes == 512 * KiB
    assert not nvm.reserve(1 * MiB)
    nvm.free(512 * KiB)
    assert nvm.free_bytes == 1 * MiB


def test_free_more_than_reserved_raises(env):
    nvm = NvmDevice(env, capacity_bytes=1 * MiB)
    with pytest.raises(ValueError):
        nvm.free(1)


def test_write_slower_than_read(env):
    nvm = NvmDevice(env, capacity_bytes=1 * MiB)
    assert nvm.write_time(4 * KiB) > nvm.read_time(4 * KiB)


def test_timed_read(env):
    nvm = NvmDevice(env, capacity_bytes=1 * MiB)

    def reader():
        yield from nvm.read(4 * KiB)
        return env.now

    elapsed = env.run(until=env.process(reader()))
    assert elapsed == pytest.approx(nvm.read_time(4 * KiB))
    assert nvm.reads == 1


def test_nvm_between_dram_and_ssd():
    from repro.hw.latency import DEFAULT_CALIBRATION

    cal = DEFAULT_CALIBRATION
    assert cal.dram.access_time < cal.nvm.read_latency < cal.ssd.access_time
