"""Property: a crash mid-migration never loses or duplicates a page.

The dual-entry protocol's whole point (paper Section IV: "only a
completed operation updates the map") is that whatever crashes while a
page is in flight, the owner's map and the hosting tables stay
consistent: every committed record points at exactly the replicas that
physically hold the page, and nobody holds a page the map does not
know about.  A crash of the *source* may lose the page — that is plain
replication-factor-1 crash semantics, identical to no migration running
— but then the map must say so (a dead replica), never dangle half a
move.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.balance.migration import MigrationEngine
from repro.balance.policies import MoveBudget, RebalancePlan
from repro.core.cluster import DisaggregatedCluster
from repro.core.config import ClusterConfig
from repro.metrics.balance import BalanceMetrics

KiB = 1024
MiB = 1024 * 1024
ENTRY = 64 * KiB
ENTRIES = 3
#: One entry's migration takes ~27 us of simulated time; three back to
#: back stay under this window, so crash times drawn from it can land
#: before, inside and after every protocol step.
WINDOW = 1.2e-4


def build():
    config = ClusterConfig(
        num_nodes=3,
        servers_per_node=1,
        server_memory_bytes=16 * MiB,
        donation_fraction=0.0,
        receive_pool_slabs=2,
        send_pool_slabs=2,
        replication_factor=1,
        placement_policy="first_fit",
        seed=0,
    )
    cluster = DisaggregatedCluster.build(config)
    server = cluster.node("node0").servers[0]
    keys = []
    for index in range(ENTRIES):
        cluster.put(server, ("page", index), ENTRY)
        keys.append((server.server_id, ("page", index)))
    return cluster, keys


@given(
    victim=st.sampled_from(["node1", "node2", None]),
    crash_frac=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=25, deadline=None)
def test_crash_mid_migration_never_loses_or_duplicates(victim, crash_frac):
    cluster, keys = build()
    env = cluster.env
    metrics = BalanceMetrics()
    engine = MigrationEngine(cluster, metrics)
    # first_fit put every page on node1; migrate them all to node2.
    plan = RebalancePlan(
        0, migrations=[MoveBudget("node1", "node2", ENTRIES * ENTRY)]
    )
    if victim is not None:

        def crasher():
            yield env.timeout(crash_frac * WINDOW)
            cluster.crash_node(victim)

        env.process(crasher())
    env.run(until=env.process(engine.execute(plan)))

    owner = cluster.node("node0")
    for key in keys:
        record = owner.ldms.remote_record(key)
        # The record survives (the owner never crashes) and the
        # dual-entry window is closed once the plan is done.
        assert record is not None
        assert owner.ldms.map_of(key[0]).pending_move(key) is None
        hosts = {
            node.node_id
            for node in cluster.nodes()
            if key in node.rdms.entries
        }
        replicas = set(record.replica_nodes)
        # No duplicate: nobody hosts a copy the map does not point at.
        assert hosts <= replicas
        # Exactly one replica at replication factor 1.
        assert len(replicas) == 1
        # No loss: the page is physically present unless its replica is
        # the crashed node (a plain crash loss, not a migration bug).
        missing = replicas - hosts
        assert not missing or missing == {victim}
    # Accounting closed out: every started migration either completed
    # or aborted, and completions moved exactly their bytes.
    assert (
        metrics.migrations_completed + metrics.migrations_aborted
        == metrics.migrations_started
    )
    assert metrics.moved_bytes == metrics.migrations_completed * ENTRY
    # Pool accounting matches the hosting tables everywhere.
    for node in cluster.nodes():
        hosted = sum(entry.nbytes for entry in node.rdms.entries.values())
        assert node.receive_pool.used_bytes == hosted


@given(crash_frac=st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=10, deadline=None)
def test_no_crash_migration_is_exact(crash_frac):
    """Without faults the plan moves everything, whatever the timing."""
    cluster, keys = build()
    engine = MigrationEngine(cluster, BalanceMetrics())
    plan = RebalancePlan(
        0, migrations=[MoveBudget("node1", "node2", ENTRIES * ENTRY)]
    )
    moved = cluster.run_process(engine.execute(plan))
    assert moved == ENTRIES * ENTRY
    for key in keys:
        record = cluster.node("node0").ldms.remote_record(key)
        assert record.replica_nodes == ("node2",)
