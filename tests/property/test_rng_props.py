"""Property-based tests for RNG streams and group partitioning."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.groups import GroupManager
from repro.sim import RngStreams


@given(st.integers(0, 2**32), st.text(min_size=1, max_size=20),
       st.text(min_size=1, max_size=20))
@settings(max_examples=60)
def test_streams_reproducible_and_name_sensitive(seed, name_a, name_b):
    first = RngStreams(seed).stream(name_a).random()
    second = RngStreams(seed).stream(name_a).random()
    assert first == second
    if name_a != name_b:
        other = RngStreams(seed).stream(name_b).random()
        # SHA-256-derived seeds: collisions effectively impossible.
        assert other != first


@given(st.integers(0, 2**32),
       st.lists(st.text(min_size=1, max_size=8), min_size=2, max_size=6,
                unique=True))
@settings(max_examples=40)
def test_spawned_children_are_mutually_independent(seed, names):
    parent = RngStreams(seed)
    draws = [parent.spawn(name).stream("x").random() for name in names]
    assert len(set(draws)) == len(draws)


@given(st.integers(1, 40), st.integers(0, 10).filter(lambda g: g != 1))
@settings(max_examples=80)
def test_group_partition_is_exact(num_nodes, group_size):
    node_ids = ["node{}".format(i) for i in range(num_nodes)]
    manager = GroupManager(node_ids, group_size=group_size)
    # Every node is in exactly one group, and groups partition the set.
    seen = []
    for group in manager.groups.values():
        assert len(group.members) >= 1
        seen.extend(group.members)
        for member in group.members:
            assert manager.group_of(member) is group
    assert sorted(seen) == sorted(node_ids)
    # No group is a singleton unless the whole cluster is one node.
    if num_nodes > 1 and 0 < group_size < num_nodes:
        assert all(len(g) >= 2 for g in manager.groups.values())


@given(st.integers(2, 20))
@settings(max_examples=30)
def test_peers_of_everyone_is_symmetric(num_nodes):
    node_ids = ["node{}".format(i) for i in range(num_nodes)]
    manager = GroupManager(node_ids, group_size=0)
    for node in node_ids:
        peers = manager.peers_of(node)
        assert node not in peers
        for peer in peers:
            assert node in manager.peers_of(peer)
