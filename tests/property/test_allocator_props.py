"""Property-based tests for the slab allocator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.allocator import AllocationError, SlabAllocator

SIZE_CLASSES = (512, 1024, 2048, 4096)
SLAB = 64 * 1024
CAPACITY = 8 * SLAB


def fresh():
    return SlabAllocator(CAPACITY, SIZE_CLASSES, slab_bytes=SLAB)


@st.composite
def operations(draw):
    """A sequence of allocate(nbytes) / free(index of live chunk) ops."""
    ops = []
    for _ in range(draw(st.integers(0, 120))):
        if draw(st.booleans()):
            ops.append(("alloc", draw(st.integers(1, 4096))))
        else:
            ops.append(("free", draw(st.integers(0, 200))))
    return ops


@given(operations())
@settings(max_examples=60)
def test_accounting_invariants(ops):
    allocator = fresh()
    live = []
    for op, value in ops:
        if op == "alloc":
            try:
                live.append(allocator.allocate(value))
            except AllocationError:
                pass
        elif live:
            allocator.free(live.pop(value % len(live)))
    # Counters always match the live set.
    assert allocator.allocated_chunks == len(live)
    assert allocator.stored_payload_bytes == sum(c.payload_bytes for c in live)
    assert allocator.stored_chunk_bytes == sum(c.chunk_size for c in live)
    # Bytes are conserved and bounded.
    assert 0 <= allocator.free_bytes <= allocator.capacity_bytes
    assert allocator.stored_chunk_bytes + allocator.free_bytes <= (
        allocator.capacity_bytes
    )
    assert 0.0 <= allocator.utilization() <= 1.0
    assert 0.0 <= allocator.internal_fragmentation() < 1.0
    # Freeing everything returns the pool to pristine state.
    for chunk in live:
        allocator.free(chunk)
    assert allocator.free_bytes == allocator.capacity_bytes
    assert allocator.internal_fragmentation() == 0.0


@given(st.integers(1, 4096))
@settings(max_examples=60)
def test_chunk_always_fits_payload(nbytes):
    allocator = fresh()
    chunk = allocator.allocate(nbytes)
    assert chunk.chunk_size >= nbytes
    assert chunk.chunk_size in SIZE_CLASSES
    # Smallest fitting class is used.
    smaller = [c for c in SIZE_CLASSES if c < chunk.chunk_size]
    assert all(c < nbytes for c in smaller)


@given(st.integers(1, 300 * 1024))
@settings(max_examples=60)
def test_entry_allocation_covers_payload(nbytes):
    allocator = fresh()
    try:
        chunks = allocator.allocate_entry(nbytes)
    except AllocationError:
        return
    assert sum(c.payload_bytes for c in chunks) == nbytes
    assert all(c.chunk_size >= c.payload_bytes for c in chunks)
    allocator.free_entry(chunks)
    assert allocator.free_bytes == allocator.capacity_bytes


@given(st.lists(st.integers(1, 4096), min_size=1, max_size=100))
@settings(max_examples=40)
def test_alloc_free_alloc_is_stable(sizes):
    """After freeing, the same allocation sequence succeeds again."""
    allocator = fresh()
    first = []
    for nbytes in sizes:
        try:
            first.append(allocator.allocate(nbytes))
        except AllocationError:
            break
    count = len(first)
    for chunk in first:
        allocator.free(chunk)
    second = [allocator.allocate(nbytes) for nbytes in sizes[:count]]
    assert len(second) == count
