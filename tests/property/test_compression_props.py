"""Property-based tests for the compression store models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.latency import PAGE_SIZE
from repro.mem.compression import GranularityStore, ZbudStore
from repro.mem.page import Page

ratios = st.floats(min_value=1.0, max_value=32.0,
                   allow_nan=False, allow_infinity=False)


@given(st.lists(ratios, min_size=1, max_size=200))
@settings(max_examples=60)
def test_granularity_store_invariants(page_ratios):
    store = GranularityStore([512, 1024, 2048, 4096])
    for page_id, ratio in enumerate(page_ratios):
        page = Page(page_id, compressibility=ratio)
        charged = store.store(page)
        assert charged >= page.compressed_size
        assert charged in store.granularities
    assert store.pages_stored == len(page_ratios)
    assert store.raw_bytes == len(page_ratios) * PAGE_SIZE
    # Effective ratio bounded by [1, page_size / smallest granularity].
    assert 1.0 <= store.effective_ratio() <= PAGE_SIZE / 512


@given(st.lists(ratios, min_size=1, max_size=200))
@settings(max_examples=60)
def test_finer_granularities_never_lose(page_ratios):
    coarse = GranularityStore([2048, 4096])
    fine = GranularityStore([512, 1024, 2048, 4096])
    for page_id, ratio in enumerate(page_ratios):
        page = Page(page_id, compressibility=ratio)
        assert fine.store(page) <= coarse.store(page)
    assert fine.effective_ratio() >= coarse.effective_ratio()


@given(st.lists(ratios, min_size=1, max_size=200))
@settings(max_examples=60)
def test_zbud_invariants(page_ratios):
    store = ZbudStore()
    for page_id, ratio in enumerate(page_ratios):
        charged = store.store(Page(page_id, compressibility=ratio))
        assert charged in (0, PAGE_SIZE // 2, PAGE_SIZE)
    # zbud never pairs more than two pages per physical page.
    assert 1.0 <= store.effective_ratio() <= 2.0
    # At most one page can be waiting for a buddy.
    assert store._unbuddied in (0, 1)
    # Physical pages charged cover every stored page at <= 2 per page.
    assert store.charged_bytes * 2 >= store.pages_stored * (PAGE_SIZE // 2)


@given(ratios)
@settings(max_examples=60)
def test_compressed_size_monotone_in_ratio(ratio):
    lower = Page(1, compressibility=ratio)
    higher = Page(2, compressibility=ratio + 1.0)
    assert higher.compressed_size <= lower.compressed_size
