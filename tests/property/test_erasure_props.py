"""Property tests for erasure-coded striping under failure schedules.

Two layers, both pure and hypothesis-drivable without a simulator:

* :class:`~repro.tiers.erasure.StripeCodec` — for *any* (k, m) shape
  and payload, every k-subset of the n = k + m fragments reconstructs
  the payload bit-identically, and any missing fragment rebuilt from
  survivors matches the original encoding exactly (so repair is
  idempotent and order-independent);
* :class:`~repro.tiers.erasure.StripeMap` — under arbitrary
  interleavings of placements, failures, repairs and recoveries capped
  at ``m`` concurrently down nodes, no page is ever lost, the
  forward/reverse indexes agree, and a crash *mid-reconstruction*
  (modelled by replaying ``set_fragment`` for fragments a dead repair
  already restored) never duplicates a fragment index or lands two
  fragments of one page on one node.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tiers.erasure import StripeCodec, StripeMap

NODES = tuple("n{}".format(index) for index in range(8))


@st.composite
def codec_case(draw):
    """A code shape, a payload, and the index set of surviving fragments."""
    data_shards = draw(st.integers(1, 5))
    parity_shards = draw(st.integers(1, 4))
    total = data_shards + parity_shards
    payload = draw(st.binary(min_size=1, max_size=2048))
    survivors = draw(
        st.sets(
            st.integers(0, total - 1),
            min_size=data_shards,
            max_size=total,
        )
    )
    return data_shards, parity_shards, payload, sorted(survivors)


@given(codec_case())
@settings(max_examples=80)
def test_any_k_surviving_fragments_reconstruct_bit_identically(case):
    data_shards, parity_shards, payload, survivors = case
    codec = StripeCodec(data_shards, parity_shards)
    fragments = codec.encode(payload)
    assert len(fragments) == data_shards + parity_shards
    frag = codec.fragment_size(len(payload))
    assert all(len(fragment) == frag for fragment in fragments)
    subset = {index: fragments[index] for index in survivors}
    assert codec.reconstruct(subset, len(payload)) == payload


@given(codec_case())
@settings(max_examples=80)
def test_rebuilt_fragments_match_the_original_encoding(case):
    data_shards, parity_shards, payload, survivors = case
    codec = StripeCodec(data_shards, parity_shards)
    fragments = codec.encode(payload)
    subset = {index: fragments[index] for index in survivors[:data_shards]}
    for index in range(data_shards + parity_shards):
        if index in subset:
            continue
        rebuilt = codec.rebuild_fragment(subset, index, len(payload))
        assert rebuilt == fragments[index], index


@st.composite
def stripe_workload(draw):
    """A code shape and an op sequence honouring the down cap of ``m``."""
    data_shards = draw(st.integers(2, 4))
    parity_shards = draw(st.integers(1, 3))
    ops = []
    for _ in range(draw(st.integers(1, 60))):
        ops.append(
            draw(
                st.one_of(
                    st.tuples(st.just("place"), st.integers(0, 30)),
                    st.tuples(st.just("fail"), st.integers(0, len(NODES) - 1)),
                    st.tuples(
                        st.just("recover"), st.integers(0, len(NODES) - 1)
                    ),
                )
            )
        )
    return data_shards, parity_shards, ops


def restripe(smap, down, pages):
    """Instantly rebuild missing fragments where live capacity allows."""
    for page_id in pages:
        held = smap.fragments(page_id)
        holders = set(held.values())
        for index in smap.missing(page_id):
            target = next(
                (
                    node
                    for node in NODES
                    if node not in down and node not in holders
                ),
                None,
            )
            if target is None:
                break
            if smap.set_fragment(page_id, index, target):
                holders.add(target)


def drive(smap, ops, parity_shards):
    """Replay an op sequence; yields after every step for invariants."""
    total = smap.data_shards + smap.parity_shards
    down = set()
    placed = set()
    for op, value in ops:
        if op == "place":
            up = [node for node in NODES if node not in down]
            if len(up) < total:
                continue  # the tier spills instead of short-striping
            smap.place(value, up[:total])
            placed.add(value)
        elif op == "fail":
            node = NODES[value]
            if node in down or len(down) + 1 > parity_shards:
                continue  # the schedule keeps <= m nodes down
            down.add(node)
            degraded, lost = smap.drop_node(node)
            assert lost == [], "lost {} with only {} down".format(
                lost, len(down)
            )
            restripe(smap, down, degraded)
        else:
            node = NODES[value]
            if node in down:
                down.discard(node)
                restripe(smap, down, smap.under_striped())
        yield down, placed


@given(stripe_workload())
@settings(max_examples=60)
def test_no_page_lost_under_at_most_m_concurrent_failures(workload):
    data_shards, parity_shards, ops = workload
    smap = StripeMap(data_shards, parity_shards)
    down, placed = set(), set()
    for down, placed in drive(smap, ops, parity_shards):
        pass
    # Every page ever placed still holds >= k live fragments — enough
    # to reconstruct it bit-identically (the codec property above).
    for page_id in placed:
        live = [
            node
            for node in smap.fragments(page_id).values()
            if node not in down
        ]
        assert len(live) >= data_shards, page_id


@given(stripe_workload())
@settings(max_examples=60)
def test_fragment_indexes_stay_consistent(workload):
    data_shards, parity_shards, ops = workload
    smap = StripeMap(data_shards, parity_shards)
    for _down, placed in drive(smap, ops, parity_shards):
        # After *every* step: forward and reverse maps agree, and no
        # node holds two fragments of one page.
        for node in NODES:
            for page_id in smap.pages_on(node):
                assert node in smap.fragments(page_id).values()
        for page_id in placed:
            assert page_id in smap
            nodes = list(smap.fragments(page_id).values())
            assert len(set(nodes)) == len(nodes), page_id
            assert len(nodes) <= smap.total_shards


@given(stripe_workload())
@settings(max_examples=60)
def test_mid_reconstruction_crash_never_duplicates_fragments(workload):
    """A repair that dies mid-flight and is retried (or races a second
    repair for the same stripe) replays ``set_fragment`` for work
    already committed; the map must reject every replay, so fragments
    are never lost *or* duplicated."""
    data_shards, parity_shards, ops = workload
    smap = StripeMap(data_shards, parity_shards)
    committed = []  # (page_id, index, node) accepted by set_fragment
    down, placed = set(), set()
    for down, placed in drive(smap, ops, parity_shards):
        committed = [
            (page_id, index, node)
            for page_id, index, node in committed
            if smap.fragments(page_id).get(index) == node
        ]
        for page_id in smap.under_striped():
            for index in smap.missing(page_id):
                holders = set(smap.fragments(page_id).values())
                target = next(
                    (
                        node
                        for node in NODES
                        if node not in down and node not in holders
                    ),
                    None,
                )
                if target is not None and smap.set_fragment(
                    page_id, index, target
                ):
                    committed.append((page_id, index, target))
    # Replay every commit as a crashed-and-retried repair would.
    for page_id, index, node in committed:
        assert not smap.set_fragment(page_id, index, node)
        assert not smap.set_fragment(page_id, index, "n-spare")
    for page_id in placed:
        nodes = list(smap.fragments(page_id).values())
        assert len(set(nodes)) == len(nodes)
