"""Property tests for replica bookkeeping under failure schedules.

The resilience guarantee the replicated tier is built on: with
replication factor ``r`` and instant repair, *no* schedule keeping
fewer than ``r`` nodes concurrently down can lose a page.  The
:class:`~repro.tiers.replicated.ReplicaMap` transitions are pure, so
hypothesis can drive them through arbitrary interleavings of
placements, failures, repairs and recoveries without a simulator.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tiers.replicated import ReplicaMap

NODES = tuple("n{}".format(index) for index in range(5))


@st.composite
def failure_workload(draw):
    """A replication factor and an op sequence honouring the down cap."""
    factor = draw(st.integers(2, 4))
    ops = []
    for _ in range(draw(st.integers(1, 60))):
        ops.append(
            draw(
                st.one_of(
                    st.tuples(st.just("place"), st.integers(0, 30)),
                    st.tuples(st.just("fail"), st.integers(0, len(NODES) - 1)),
                    st.tuples(st.just("recover"), st.integers(0, len(NODES) - 1)),
                )
            )
        )
    return factor, ops


def repair(rmap, factor, down, page_ids):
    """Instantly restore redundancy where live capacity allows."""
    for page_id in page_ids:
        holders = set(rmap.holders(page_id))
        for node in NODES:
            if len(holders) >= factor:
                break
            if node in down or node in holders:
                continue
            rmap.add_holder(page_id, node)
            holders.add(node)


@given(failure_workload())
@settings(max_examples=60)
def test_no_page_lost_under_fewer_than_r_concurrent_failures(workload):
    factor, ops = workload
    rmap = ReplicaMap(factor)
    down = set()
    placed = set()
    for op, value in ops:
        if op == "place":
            up = [node for node in NODES if node not in down]
            if len(up) < factor:
                continue  # write-all spills instead of under-replicating
            rmap.place(value, up[:factor])
            placed.add(value)
        elif op == "fail":
            node = NODES[value]
            if node in down or len(down) + 1 >= factor:
                continue  # the schedule keeps < factor nodes down
            down.add(node)
            orphans, lost = rmap.drop_node(node)
            assert lost == [], "lost {} with only {} down".format(lost, len(down))
            repair(rmap, factor, down, orphans)
        else:
            node = NODES[value]
            if node in down:
                down.discard(node)
                repair(rmap, factor, down, rmap.under_replicated())
    # Every page that was ever placed (and never discarded) is still
    # held, and always by at least one live node.
    for page_id in placed:
        holders = rmap.holders(page_id)
        assert holders, "page {} vanished".format(page_id)
        assert any(node not in down for node in holders)


@given(failure_workload())
@settings(max_examples=60)
def test_holder_indexes_stay_consistent(workload):
    factor, ops = workload
    rmap = ReplicaMap(factor)
    down = set()
    for op, value in ops:
        if op == "place":
            up = [node for node in NODES if node not in down]
            if len(up) >= factor:
                rmap.place(value, up[:factor])
        elif op == "fail":
            node = NODES[value]
            if node not in down and len(down) + 1 < factor:
                down.add(node)
                orphans, _lost = rmap.drop_node(node)
                repair(rmap, factor, down, orphans)
        else:
            down.discard(NODES[value])
    # Forward and reverse maps agree exactly.
    for node in NODES:
        for page_id in rmap.pages_on(node):
            assert node in rmap.holders(page_id)
    for node in down:
        assert rmap.pages_on(node) == []
