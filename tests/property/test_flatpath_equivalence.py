"""Property: flat-path and event-path runs are indistinguishable.

For random (workload, seed, chaos schedule) triples, driving the same
runner with ``fast_path=True`` and ``fast_path=False`` must produce
identical :class:`PagingStats` counters, identical clocks, identical
serialized payloads — and, when traced, identical latency rows and an
identical trace once the flat-path meta events are stripped.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.runner import run_paging_workload
from repro.faults.schedule import FaultSchedule, random_schedule
from repro.sim.rng import RngStreams
from repro.trace import digest, runtime, without_categories
from repro.workloads import ML_WORKLOADS
from repro.workloads.batch import ZipfBatchSpec

WORKLOAD_NAMES = sorted(ML_WORKLOADS)


@st.composite
def paging_cases(draw):
    if draw(st.booleans()):
        spec = ML_WORKLOADS[draw(st.sampled_from(WORKLOAD_NAMES))]
        spec = spec.with_overrides(pages=draw(st.integers(64, 256)))
    else:
        spec = ZipfBatchSpec(
            pages=draw(st.integers(32, 128)),
            length=draw(st.integers(64, 512)),
            zipf_alpha=draw(st.floats(0.0, 1.2)),
            write_fraction=draw(st.floats(0.0, 0.5)),
        )
    fit = draw(st.sampled_from([1.0, 0.75, 0.5, 0.3]))
    seed = draw(st.integers(0, 2 ** 16))
    chaos_seed = draw(st.one_of(st.none(), st.integers(0, 2 ** 8)))
    return spec, fit, seed, chaos_seed


def chaos_for(chaos_seed):
    if chaos_seed is None:
        return None
    return random_schedule(
        RngStreams(chaos_seed).stream("chaos"),
        ["node0", "node1", "node2", "node3"],
        horizon=0.05,
        rate=3,
    )


@given(paging_cases())
@settings(max_examples=12, deadline=None)
def test_fast_and_slow_paging_runs_are_identical(case):
    spec, fit, seed, chaos_seed = case
    schedule = chaos_for(chaos_seed)
    slow = run_paging_workload(
        "fastswap", spec, fit, seed=seed, fault_schedule=schedule
    )
    fast = run_paging_workload(
        "fastswap", spec, fit, seed=seed, fault_schedule=schedule,
        fast_path=True,
    )
    assert fast.stats == slow.stats
    assert fast.completion_time == slow.completion_time
    assert json.dumps(fast.to_json()) == json.dumps(slow.to_json())


@given(paging_cases())
@settings(max_examples=4, deadline=None)
def test_traced_runs_agree_modulo_flatpath_meta(case):
    spec, fit, seed, chaos_seed = case
    schedule = chaos_for(chaos_seed)
    with runtime.session() as active:
        slow = run_paging_workload(
            "fastswap", spec, fit, seed=seed, fault_schedule=schedule
        )
        slow_events = active.events_json()
    with runtime.session() as active:
        fast = run_paging_workload(
            "fastswap", spec, fit, seed=seed, fault_schedule=schedule,
            fast_path=True,
        )
        fast_events = active.events_json()
    assert json.dumps(fast.latency_stats) == json.dumps(slow.latency_stats)
    assert digest(without_categories(fast_events, "flatpath")) == digest(
        slow_events
    )


def test_chaos_schedule_blackouts_route_through_event_engine():
    # Deterministic anchor: a permanent loss opens an infinite blackout,
    # so every access after it must take the event path.
    spec = ZipfBatchSpec(pages=64, length=400)
    schedule = FaultSchedule.single("server_loss", "node1", 0.0001, 0.05)
    slow = run_paging_workload(
        "fastswap", spec, 0.5, seed=9, fault_schedule=schedule
    )
    fast = run_paging_workload(
        "fastswap", spec, 0.5, seed=9, fault_schedule=schedule,
        fast_path=True,
    )
    assert json.dumps(fast.to_json()) == json.dumps(slow.to_json())
