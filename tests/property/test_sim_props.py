"""Property-based tests for the simulation kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment

delays = st.floats(min_value=0.0, max_value=1e6,
                   allow_nan=False, allow_infinity=False)


@given(st.lists(delays, min_size=1, max_size=50))
@settings(max_examples=60)
def test_timeouts_fire_in_nondecreasing_time_order(delay_list):
    env = Environment()
    fired = []

    def waiter(delay):
        yield env.timeout(delay)
        fired.append(env.now)

    for delay in delay_list:
        env.process(waiter(delay))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delay_list)
    assert env.now == max(delay_list)


@given(st.lists(delays, min_size=1, max_size=30), delays)
@settings(max_examples=60)
def test_run_until_never_overshoots(delay_list, horizon):
    env = Environment()
    fired = []

    def waiter(delay):
        yield env.timeout(delay)
        fired.append(delay)

    for delay in delay_list:
        env.process(waiter(delay))
    env.run(until=horizon)
    assert env.now == horizon
    assert all(delay <= horizon for delay in fired)
    assert sorted(fired) == sorted(d for d in delay_list if d <= horizon)


@given(st.lists(delays, min_size=2, max_size=20))
@settings(max_examples=40)
def test_all_of_fires_at_max_any_of_at_min(delay_list):
    env = Environment()
    timeouts = [env.timeout(delay) for delay in delay_list]
    every = env.all_of(timeouts)
    env.run(until=every)
    assert env.now == max(delay_list)

    env2 = Environment()
    timeouts2 = [env2.timeout(delay) for delay in delay_list]
    first = env2.any_of(timeouts2)
    env2.run(until=first)
    assert env2.now == min(delay_list)


@given(st.lists(st.tuples(delays, st.integers(0, 1000)),
                min_size=1, max_size=30))
@settings(max_examples=40)
def test_determinism_across_identical_runs(jobs):
    def simulate():
        env = Environment()
        log = []

        def waiter(delay, tag):
            yield env.timeout(delay)
            log.append((env.now, tag))

        for delay, tag in jobs:
            env.process(waiter(delay, tag))
        env.run()
        return log

    assert simulate() == simulate()
