"""Property-based tests for the shared memory pool."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.latency import SharedMemorySpec
from repro.mem.shared_pool import PoolFull, SharedMemoryPool
from repro.sim import Environment

SLAB = 16 * 1024


@st.composite
def scripts(draw):
    ops = []
    for _ in range(draw(st.integers(1, 60))):
        kind = draw(st.sampled_from(["put", "get", "remove", "evict"]))
        ops.append((kind, draw(st.integers(0, 15)),
                    draw(st.integers(1, 8192))))
    return ops


@given(scripts())
@settings(max_examples=60, deadline=None)
def test_pool_state_machine(ops):
    env = Environment()
    pool = SharedMemoryPool(env, SharedMemorySpec(), slab_bytes=SLAB)
    pool.donate("vm", 4 * SLAB)
    model = {}

    def driver():
        for kind, key, nbytes in ops:
            if kind == "put" and key not in model:
                try:
                    yield from pool.put(key, nbytes)
                    model[key] = nbytes
                except PoolFull:
                    pass
            elif kind == "get" and key in model:
                got = yield from pool.get(key)
                assert got == model[key]
            elif kind == "remove" and key in model:
                assert pool.remove(key) == model.pop(key)
            elif kind == "evict":
                evicted = pool.evict_lru()
                if evicted is not None:
                    evicted_key, evicted_bytes = evicted
                    assert model.pop(evicted_key) == evicted_bytes
                else:
                    assert not model
            # Invariants hold after every step.
            assert set(pool.keys()) == set(model)
            assert 0 <= pool.used_bytes <= pool.capacity_bytes
        return True

    env.run(until=env.process(driver()))
    # Draining the model empties the pool.
    for key in list(model):
        pool.remove(key)
    assert pool.used_bytes == 0


@given(st.integers(1, 6), st.integers(1, 6))
@settings(max_examples=30)
def test_donations_and_retractions_balance(donors, slabs_each):
    env = Environment()
    pool = SharedMemoryPool(env, SharedMemorySpec(), slab_bytes=SLAB)
    for i in range(donors):
        pool.donate("vm{}".format(i), slabs_each * SLAB)
    assert pool.capacity_bytes == donors * slabs_each * SLAB
    for i in range(donors):
        pool.retract("vm{}".format(i), slabs_each * SLAB)
    assert pool.capacity_bytes == 0
    assert pool.free_bytes == 0
