"""Property-based tests for the arena allocator.

Random alloc/free/compact churn must never double-free, never produce
overlapping live blocks, and must conserve ``live + free + metadata ==
capacity`` at every step — the invariants the fragmentation accounting
(and therefore the ``allocation_fragmentation`` experiment) rests on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.allocator import AllocationError
from repro.mem.arena import RUN_HEADER_BYTES, Arena

CAPACITY = 512 * 1024


def fresh():
    return Arena(CAPACITY)


@st.composite
def operations(draw):
    """A churn sequence of alloc / free / entry / compact operations."""
    ops = []
    for _ in range(draw(st.integers(0, 80))):
        kind = draw(st.sampled_from(("alloc", "free", "entry", "compact")))
        if kind == "alloc":
            ops.append(("alloc", draw(st.integers(1, 40000))))
        elif kind == "entry":
            ops.append(("entry", draw(st.integers(1, 100000))))
        elif kind == "free":
            ops.append(("free", draw(st.integers(0, 400))))
        else:
            ops.append(("compact", 0))
    return ops


def live_ranges(arena):
    """Address ranges of every live block, derived from the internals."""
    ranges = []
    for chunk_size, runs in arena._runs.items():
        for run in runs:
            base = run.extent.offset + RUN_HEADER_BYTES
            for index in run.allocations:
                start = base + index * chunk_size
                ranges.append((start, start + chunk_size))
    for allocation in arena._large:
        ranges.append(
            (allocation.extent.offset, allocation.extent.end)
        )
    return ranges


def assert_geometry_sound(arena):
    """No two live blocks overlap, none leaves the address space, and
    none intersects a free extent."""
    ranges = sorted(live_ranges(arena))
    for start, end in ranges:
        assert 0 <= start < end <= arena.capacity_bytes
    for (_, prev_end), (next_start, _) in zip(ranges, ranges[1:]):
        assert prev_end <= next_start
    free = sorted(
        (extent.offset, extent.end) for extent in arena._free
    )
    for fstart, fend in free:
        assert 0 <= fstart < fend <= arena.capacity_bytes
        for start, end in ranges:
            assert fend <= start or end <= fstart


def churn(arena, ops):
    """Apply one churn sequence; returns the live allocation list."""
    live = []
    for op, value in ops:
        if op == "alloc":
            try:
                live.append(arena.allocate(value))
            except AllocationError:
                pass
        elif op == "entry":
            try:
                live.extend(arena.allocate_entry(value))
            except AllocationError:
                pass
        elif op == "free":
            if live:
                arena.free(live.pop(value % len(live)))
        else:
            arena.compact()
        assert arena.conserves(), (op, value)
    return live


@given(operations())
@settings(max_examples=60, deadline=None)
def test_churn_conserves_and_never_overlaps(ops):
    arena = fresh()
    live = churn(arena, ops)
    assert_geometry_sound(arena)
    # Counters match the live set exactly.
    assert arena.payload_bytes == sum(a.payload_bytes for a in live)
    assert arena.live_bytes == sum(a.block_bytes for a in live)
    # Freeing everything returns the arena to pristine state; a second
    # free of any handle is the double-free error, never corruption.
    for allocation in live:
        arena.free(allocation)
    assert arena.free_bytes == arena.capacity_bytes
    assert arena.metadata_bytes == 0
    assert arena.payload_bytes == 0
    for allocation in live:
        try:
            arena.free(allocation)
            raise AssertionError("double free must raise")
        except AllocationError:
            pass
    assert arena.conserves()


@given(operations())
@settings(max_examples=40, deadline=None)
def test_compaction_changes_no_live_accounting(ops):
    arena = fresh()
    live = churn(arena, ops)
    payload, stored = arena.payload_bytes, arena.live_bytes
    free_before = arena.free_bytes
    moved = arena.compact()
    assert moved >= 0
    assert (arena.payload_bytes, arena.live_bytes) == (payload, stored)
    assert arena.conserves()
    assert_geometry_sound(arena)
    # Compaction only consolidates: free bytes may grow (reclaimed run
    # metadata) but never shrink, and contiguity never degrades.
    assert arena.free_bytes >= free_before
    # Handles survive compaction: every live block frees cleanly.
    for allocation in live:
        arena.free(allocation)
    assert arena.free_bytes == arena.capacity_bytes


@given(operations())
@settings(max_examples=40, deadline=None)
def test_allocatable_bytes_is_honest(ops):
    """What ``allocatable_bytes`` promises, the arena delivers: at the
    64 KiB harvest grain, exactly ``promised // grain`` whole entries
    can actually be reserved back to back."""
    grain = 64 * 1024
    arena = fresh()
    churn(arena, ops)
    promised = arena.allocatable_bytes(grain)
    assert promised <= arena.free_bytes
    entries = []
    for _ in range(promised // grain):
        entries.append(arena.allocate_entry(grain))
    for entry in entries:
        arena.free_entry(entry)
