"""Property-based tests on the paging MMU invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.page import make_pages
from repro.sim import Environment
from repro.swap.base import SwapBackend, VirtualMemory

NPAGES = 24


class NullBackend(SwapBackend):
    """Zero-cost backend that faithfully tracks what it holds."""

    name = "null"

    def __init__(self, env):
        self.env = env
        self.held = set()

    def swap_out(self, page):
        self.held.add(page.page_id)
        yield self.env.timeout(1e-6)

    def swap_in(self, page):
        assert page.page_id in self.held, "swap-in of a page never swapped out"
        yield self.env.timeout(1e-6)
        return []

    def discard(self, page):
        self.held.discard(page.page_id)


@st.composite
def access_scripts(draw):
    return [
        (draw(st.integers(0, NPAGES - 1)), draw(st.booleans()))
        for _ in range(draw(st.integers(1, 200)))
    ]


@given(access_scripts(), st.integers(1, NPAGES))
@settings(max_examples=80, deadline=None)
def test_mmu_invariants(script, capacity):
    env = Environment()
    backend = NullBackend(env)
    pages = make_pages(NPAGES)
    mmu = VirtualMemory(env, pages, capacity, backend, prefetch_capacity=4)

    def driver():
        for page_id, write in script:
            yield from mmu.access(page_id, write=write)
            # Resident set never exceeds capacity.
            assert len(mmu.resident) <= mmu.capacity_pages
            # A page is never resident and in the prefetch buffer at once.
            assert not (set(mmu.resident) & set(mmu.prefetch))
        yield from mmu.flush()

    env.run(until=env.process(driver()))
    stats = mmu.stats
    # Every access is classified exactly once.
    assert stats.accesses == len(script)
    assert stats.accesses == (
        stats.resident_hits + stats.major_faults + stats.minor_faults
    )
    assert stats.prefetch_hits <= stats.minor_faults
    assert stats.swap_ins == stats.major_faults
    # The most recently touched page is resident.
    last_page = script[-1][0]
    assert last_page in mmu.resident


@given(access_scripts())
@settings(max_examples=40, deadline=None)
def test_full_capacity_never_faults_major(script):
    env = Environment()
    backend = NullBackend(env)
    pages = make_pages(NPAGES)
    mmu = VirtualMemory(env, pages, NPAGES, backend)

    def driver():
        for page_id, write in script:
            yield from mmu.access(page_id, write=write)
        yield from mmu.flush()

    env.run(until=env.process(driver()))
    assert mmu.stats.major_faults == 0
    assert mmu.stats.swap_outs == 0
