"""Property-based tests for the network layer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Fabric, RdmaDevice, RpcEndpoint
from repro.sim import Environment

transfers = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(1, 1 << 20)),
    min_size=1,
    max_size=20,
).map(lambda items: [(s, d, n) for s, d, n in items if s != d])


@given(transfers)
@settings(max_examples=50, deadline=None)
def test_byte_conservation(flows):
    """Sum of NIC tx == sum of NIC rx == fabric total, always."""
    env = Environment()
    fabric = Fabric(env)
    for i in range(4):
        fabric.add_node("n{}".format(i))

    def mover(src, dst, nbytes):
        yield from fabric.transfer("n{}".format(src), "n{}".format(dst), nbytes)

    for src, dst, nbytes in flows:
        env.process(mover(src, dst, nbytes))
    env.run()
    sent = sum(fabric.nic("n{}".format(i)).bytes_sent for i in range(4))
    received = sum(fabric.nic("n{}".format(i)).bytes_received for i in range(4))
    assert sent == received == fabric.total_bytes
    assert fabric.total_bytes == sum(n for _s, _d, n in flows)
    assert fabric.total_messages == len(flows)


@given(transfers, st.integers(1, 3))
@settings(max_examples=30, deadline=None)
def test_core_limit_never_loses_transfers(flows, core):
    env = Environment()
    fabric = Fabric(env, core_concurrency=core)
    for i in range(4):
        fabric.add_node("n{}".format(i))

    def mover(src, dst, nbytes):
        yield from fabric.transfer("n{}".format(src), "n{}".format(dst), nbytes)

    for src, dst, nbytes in flows:
        env.process(mover(src, dst, nbytes))
    env.run()
    assert fabric.total_messages == len(flows)


@given(st.integers(1, 4 << 20), st.integers(1, 256), st.integers(1, 64))
@settings(max_examples=60, deadline=None)
def test_rpc_message_arithmetic(total_bytes, message_kib, window):
    """Message counts, window counts and transfer bytes always agree."""
    env = Environment()
    fabric = Fabric(env)
    a = RdmaDevice(env, fabric, "a")
    b = RdmaDevice(env, fabric, "b")
    endpoint = RpcEndpoint(a, message_bytes=message_kib * 1024, window=window)
    expected_messages = endpoint.message_count(total_bytes)

    def move():
        qp = yield from a.connect(b)
        sent = yield from endpoint.transfer(qp, total_bytes)
        return sent

    sent = env.run(until=env.process(move()))
    assert sent == expected_messages
    assert endpoint.messages_sent == expected_messages
    assert endpoint.windows_sent == -(-expected_messages // window)
    # All payload bytes crossed the wire exactly once (handshake adds
    # its fixed three messages).
    handshake = 3 * RdmaDevice.HANDSHAKE_MESSAGE_BYTES
    assert fabric.total_bytes == total_bytes + handshake


@given(st.integers(1, 4 << 20), st.integers(1, 64))
@settings(max_examples=40, deadline=None)
def test_batched_transfer_never_slower(total_bytes, window):
    """More batching never makes a transfer slower."""
    def timed(window_size):
        env = Environment()
        fabric = Fabric(env)
        a = RdmaDevice(env, fabric, "a")
        b = RdmaDevice(env, fabric, "b")
        endpoint = RpcEndpoint(a, window=window_size)

        def move():
            qp = yield from a.connect(b)
            start = env.now
            yield from endpoint.transfer(qp, total_bytes)
            return env.now - start

        return env.run(until=env.process(move()))

    assert timed(window) <= timed(1) + 1e-12
