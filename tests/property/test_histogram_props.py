"""Property tests: histogram percentiles against sorted raw samples."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import LatencyHistogram

LATENCIES = st.floats(
    min_value=1e-9, max_value=10.0, allow_nan=False, allow_infinity=False
)


@settings(max_examples=150, deadline=None)
@given(
    samples=st.lists(LATENCIES, min_size=1, max_size=300),
    fraction=st.floats(min_value=0.0, max_value=1.0),
)
def test_percentile_stays_inside_exact_quantiles_bucket(samples, fraction):
    """The interpolated estimate never leaves the bucket that holds the
    exact (rank-based) quantile of the raw samples."""
    histogram = LatencyHistogram(least=1e-9, buckets=48)
    for value in samples:
        histogram.record(value)
    ordered = sorted(samples)
    target = fraction * len(ordered)
    exact = ordered[max(0, math.ceil(target) - 1)]
    index = histogram.bucket_index(exact)
    upper = histogram.least * 2.0 ** index
    lower = 0.0 if index == 0 else upper / 2.0
    estimate = histogram.percentile(fraction)
    assert lower <= estimate <= upper


@settings(max_examples=100, deadline=None)
@given(
    shards=st.lists(
        st.lists(LATENCIES, min_size=0, max_size=80), min_size=1, max_size=6
    )
)
def test_merged_shards_equal_serial_recording(shards):
    """Recording shard-by-shard and merging == recording serially."""
    serial = LatencyHistogram(least=1e-9, buckets=48)
    merged = LatencyHistogram(least=1e-9, buckets=48)
    for shard in shards:
        worker = LatencyHistogram(least=1e-9, buckets=48)
        for value in shard:
            serial.record(value)
            worker.record(value)
        merged.merge(worker)
    assert merged.counts == serial.counts
    assert merged.total == serial.total
    for fraction in (0.5, 0.9, 0.99, 0.999):
        assert merged.percentile(fraction) == serial.percentile(fraction)
