"""Property-based tests for the disaggregated memory map."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.memory_map import DisaggregatedMemoryMap, Location

keys = st.integers(0, 30)


@st.composite
def scripts(draw):
    """Random sequences of begin/commit/abort/remove on a small keyspace."""
    ops = []
    for _ in range(draw(st.integers(0, 80))):
        op = draw(st.sampled_from(["begin", "commit", "abort", "remove"]))
        ops.append((op, draw(keys)))
    return ops


@given(scripts())
@settings(max_examples=80)
def test_visibility_protocol(ops):
    memory_map = DisaggregatedMemoryMap("vm")
    pending = set()
    committed = set()
    for op, key in ops:
        if op == "begin":
            memory_map.begin(key, Location.DISK, 4096)
            pending.add(key)
        elif op == "commit":
            if key in pending:
                memory_map.commit(key)
                pending.discard(key)
                committed.add(key)
            else:
                try:
                    memory_map.commit(key)
                    raise AssertionError("commit of non-pending key succeeded")
                except KeyError:
                    pass
        elif op == "abort":
            memory_map.abort(key)  # always safe
            pending.discard(key)
        elif op == "remove":
            removed = memory_map.remove(key)
            assert (removed is not None) == (key in committed)
            committed.discard(key)
    # Reader view == model view.
    for key in range(31):
        assert (memory_map.lookup(key) is not None) == (key in committed)
    assert len(memory_map) == len(committed)
    assert memory_map.metadata_bytes() >= len(committed) * 8


@given(st.lists(st.tuples(keys, st.sampled_from(["n1", "n2", "n3"])),
                min_size=1, max_size=40, unique_by=lambda t: t[0]))
@settings(max_examples=40)
def test_entries_at_partitions_by_replica(entries):
    memory_map = DisaggregatedMemoryMap("vm")
    for key, node in entries:
        memory_map.begin(key, Location.REMOTE, 4096, replica_nodes=(node,))
        memory_map.commit(key)
    for node in ("n1", "n2", "n3"):
        expected = {key for key, n in entries if n == node}
        assert {r.key for r in memory_map.entries_at(node)} == expected
