"""Property-based tests for placement policies."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.placement import CandidateView, make_placement_policy

POLICIES = ("random", "round_robin", "weighted_round_robin", "power_of_two")

candidate_lists = st.lists(
    st.integers(0, 10_000_000), min_size=0, max_size=12
)


@given(
    st.sampled_from(POLICIES),
    candidate_lists,
    st.integers(1, 5),
    st.integers(1, 1_000_000),
    st.integers(0, 2**32 - 1),
)
@settings(max_examples=120)
def test_selection_contract(policy_name, free_bytes, k, nbytes, seed):
    policy = make_placement_policy(policy_name, random.Random(seed))
    candidates = [
        CandidateView("n{}".format(i), free) for i, free in enumerate(free_bytes)
    ]
    chosen = policy.select(candidates, k, nbytes)
    # Never more than k, never duplicates, never a non-viable node.
    assert len(chosen) <= k
    assert len(set(chosen)) == len(chosen)
    viable = {c.node_id for c in candidates if c.free_bytes >= nbytes}
    assert set(chosen) <= viable
    # If anything was viable, something is chosen.
    if viable:
        assert chosen or policy_name == "weighted_round_robin"
        # (weighted RR returns empty only when total weight is zero)
        if policy_name == "weighted_round_robin":
            total = sum(c.free_bytes for c in candidates
                        if c.free_bytes >= nbytes)
            if total > 0:
                assert chosen


@given(candidate_lists, st.integers(1, 5), st.integers(0, 2**32 - 1))
@settings(max_examples=60)
def test_policies_deterministic_given_seed(free_bytes, k, seed):
    candidates = [
        CandidateView("n{}".format(i), free) for i, free in enumerate(free_bytes)
    ]
    for name in POLICIES:
        first = make_placement_policy(name, random.Random(seed)).select(
            list(candidates), k, 1
        )
        second = make_placement_policy(name, random.Random(seed)).select(
            list(candidates), k, 1
        )
        assert first == second
