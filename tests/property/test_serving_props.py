"""Property tests for the serving layer.

Three contracts under randomized inputs:

* arrival generation is a pure function of ``(process, seed)``;
* per-worker SLO accountants merged in any grouping equal serial
  recording (counts exactly, float sums to the ulp);
* the histogram ``cdf`` is consistent with both the raw samples and
  the interpolating ``percentile`` it inverts.
"""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.accountant import SloAccountant
from repro.serve.arrivals import make_arrival_process
from repro.serve.qos import QOS_CLASSES
from repro.trace import LatencyHistogram

ARRIVAL_SPECS = st.fixed_dictionaries(
    {
        "kind": st.sampled_from(["poisson", "bursty", "diurnal"]),
        "rate": st.floats(min_value=1.0, max_value=500.0),
    }
)


@settings(max_examples=60, deadline=None)
@given(spec=ARRIVAL_SPECS, seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_arrivals_pure_function_of_spec_and_seed(spec, seed):
    process = make_arrival_process(spec["kind"], spec["rate"])
    first = process.arrival_times(random.Random(seed), 2.0)
    again = process.arrival_times(random.Random(seed), 2.0)
    assert first == again
    assert first == sorted(first)
    assert all(0.0 <= time < 2.0 for time in first)


@settings(max_examples=60, deadline=None)
@given(
    latencies=st.lists(
        st.tuples(
            st.sampled_from(["gold", "silver", "bestEffort"]),
            st.floats(min_value=1e-8, max_value=100.0,
                      allow_nan=False, allow_infinity=False),
        ),
        min_size=0,
        max_size=200,
    ),
    workers=st.integers(min_value=1, max_value=5),
)
def test_merged_worker_accountants_equal_serial(latencies, workers):
    serial = SloAccountant()
    shards = [SloAccountant() for _ in range(workers)]
    for index, (name, latency) in enumerate(latencies):
        for sink in (serial, shards[index % workers]):
            account = sink.account(QOS_CLASSES[name])
            account.record_offered()
            account.record_completion(latency)
    merged = SloAccountant()
    for shard in shards:
        merged.merge(shard)
    merged_docs = merged.to_json()
    serial_docs = serial.to_json()
    assert len(merged_docs) == len(serial_docs)
    for merged_doc, serial_doc in zip(merged_docs, serial_docs):
        assert math.isclose(
            merged_doc["histogram"].pop("sum"),
            serial_doc["histogram"].pop("sum"),
            rel_tol=1e-9, abs_tol=1e-12,
        )
        assert merged_doc == serial_doc
    assert merged.fairness() == serial.fairness()
    assert merged.rows(1.0) is not None


@settings(max_examples=10, deadline=None)
@given(
    arrival=st.sampled_from(["poisson", "bursty", "diurnal"]),
    seed=st.integers(min_value=0, max_value=999),
    fit=st.sampled_from([0.3, 0.6, 1.0]),
)
def test_fast_path_digest_equals_event_path(arrival, seed, fit):
    """The flat-path serving run produces byte-identical results to the
    event-engine run for any (arrival process, seed, pressure)."""
    import json

    from repro.serve.driver import run_serving_workload
    from repro.serve.qos import default_mix
    from repro.workloads.kv import KV_WORKLOADS

    workload = KV_WORKLOADS["memcached"].with_overrides(
        keys=128, zipf_alpha=0.75
    )
    mix = default_mix(
        tenants_per_class=500,
        arrival_kind=arrival,
        workload=workload,
        per_tenant_rate=0.4,
    )
    docs = [
        json.dumps(
            run_serving_workload(
                "fastswap", mix, fit, duration=0.3, seed=seed,
                fast_path=fast,
            ).to_json(),
            sort_keys=True,
        )
        for fast in (False, True)
    ]
    assert docs[0] == docs[1]


@settings(max_examples=120, deadline=None)
@given(
    samples=st.lists(
        st.floats(min_value=1e-9, max_value=10.0,
                  allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=300,
    ),
    threshold=st.floats(min_value=1e-9, max_value=20.0),
)
def test_cdf_brackets_exact_empirical_fraction(samples, threshold):
    """The interpolated cdf never strays past the bucket resolution:
    it is bounded by the exact empirical fractions at the enclosing
    bucket bounds of the threshold."""
    histogram = LatencyHistogram(least=1e-9, buckets=48)
    for value in samples:
        histogram.record(value)
    index = histogram.bucket_index(threshold)
    upper = histogram.least * 2.0 ** index
    lower = 0.0 if index == 0 else upper / 2.0
    exact_below = sum(1 for v in samples if v <= lower) / len(samples)
    exact_above = sum(1 for v in samples if v <= upper) / len(samples)
    estimate = histogram.cdf(threshold)
    assert exact_below - 1e-12 <= estimate <= exact_above + 1e-12


@settings(max_examples=100, deadline=None)
@given(
    samples=st.lists(
        st.floats(min_value=1e-9, max_value=10.0,
                  allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=200,
    ),
    fraction=st.floats(min_value=0.0, max_value=1.0),
)
def test_cdf_inverts_percentile(samples, fraction):
    """Round trip: cdf(percentile(q)) == q under the shared
    uniform-within-bucket assumption (up to float error), whenever the
    quantile stays below the overflow clamp."""
    histogram = LatencyHistogram(least=1e-9, buckets=48)
    for value in samples:
        histogram.record(value)
    quantile = histogram.percentile(fraction)
    if quantile >= histogram.least * 2.0 ** (histogram.buckets - 2):
        return  # clamped into/at the overflow bound; not invertible
    assert math.isclose(histogram.cdf(quantile), fraction, abs_tol=1e-9)


ARRIVAL_KINDS = ["poisson", "bursty", "diurnal"]


@settings(max_examples=60, deadline=None)
@given(
    kind=st.sampled_from(ARRIVAL_KINDS),
    rate=st.floats(min_value=0.0, max_value=800.0),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    shared_modulation=st.booleans(),
)
def test_batched_arrival_array_equals_streamed(kind, rate, seed,
                                               shared_modulation):
    """The flat-path contract: ``arrival_array`` is event-for-event
    identical to the streamed generator — same floats, same RNG
    consumption — for every process kind, including rate 0 and a
    separate modulation RNG."""
    process = make_arrival_process(kind, rate)
    modulations = [
        None if shared_modulation else random.Random(seed ^ 0x5EED)
        for _run in range(2)
    ]
    streamed_rng = random.Random(seed)
    batched_rng = random.Random(seed)
    streamed = process.arrival_times(streamed_rng, 1.5, modulations[0])
    batched = process.arrival_array(batched_rng, 1.5, modulations[1])
    assert batched == streamed  # exact float equality
    assert streamed_rng.getstate() == batched_rng.getstate()


@settings(max_examples=40, deadline=None)
@given(
    kinds=st.lists(st.sampled_from(ARRIVAL_KINDS), min_size=0, max_size=4),
    rates=st.lists(st.floats(min_value=0.0, max_value=400.0),
                   min_size=4, max_size=4),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_aggregate_schedule_equals_merged_per_class_streams(kinds, rates,
                                                            seed):
    """The superposed schedule is exactly the per-class streamed
    processes merged ascending with ties broken by class index."""
    from repro.serve.arrivals import aggregate
    from repro.sim.rng import RngStreams, derive_seed

    mix = [
        make_arrival_process(kind, rate)
        for kind, rate in zip(kinds, rates)
    ]
    schedule = aggregate(mix, RngStreams(seed), 1.0)
    merged = []
    for index, process in enumerate(mix):
        modulation = random.Random(derive_seed(seed, "serve-modulation"))
        stream = RngStreams(seed).stream(
            "serve-arrivals{}".format(index)
        )
        merged.extend(
            (time, index)
            for time in process.arrival_times(stream, 1.0, modulation)
        )
    merged.sort()
    assert schedule.times == [time for time, _index in merged]
    assert schedule.classes == [index for _time, index in merged]
    assert schedule.per_class == tuple(
        sum(1 for _t, i in merged if i == index)
        for index in range(len(mix))
    )


def _shed_cell(policy_name, seed, mix_name):
    """One calibrated shed-sweep cell at the tenant-count floor."""
    from repro.experiments import open_loop_serving as ols
    from repro.experiments.engine import RunSpec
    from repro.serve.driver import run_serving_workload

    spec = RunSpec.make(
        ols.EXPERIMENT, backend="linux", workload="memcached", fit=0.35,
        seed=seed, scale=0.01, arrival="bursty", chaos=False, duration=3.0,
        policy=policy_name, qos_mix=mix_name,
    )
    return run_serving_workload(
        "linux", ols._shed_mix(spec), 0.35, duration=3.0, seed=seed,
        prefetch_capacity=ols.SHED_PREFETCH_PAGES,
        admission=ols._policy(policy_name), fast_path=True,
    )


@settings(max_examples=8, deadline=None)
@given(
    policy=st.sampled_from(["static-caps", "queue-depth", "feedback"]),
    seed=st.integers(min_value=0, max_value=15),
    mix_name=st.sampled_from(["scan-heavy", "balanced"]),
)
def test_shed_accounting_closes_and_gold_is_never_shed(policy, seed,
                                                       mix_name):
    """Conservation under any shedding: every offered request is billed
    exactly once (completed or shed), overall and per class — and no
    sweep policy ever sheds gold."""
    result = _shed_cell(policy, seed, mix_name)
    assert result.shed > 0
    assert result.completed + result.shed == result.offered
    assert result.admitted == result.offered - result.shed
    accounts = {doc["name"]: doc for doc in result.accounts}
    for doc in accounts.values():
        assert doc["completed"] + doc["shed"] == doc["offered"]
    assert accounts["gold"]["shed"] == 0


@settings(max_examples=8, deadline=None)
@given(
    policy=st.sampled_from(["static-caps", "queue-depth"]),
    seed=st.integers(min_value=0, max_value=15),
    mix_name=st.sampled_from(["scan-heavy", "balanced"]),
)
def test_bounding_policies_never_hurt_gold_under_overload(policy, seed,
                                                          mix_name):
    """Gold's SLO attainment never decreases when a *bounding* policy
    (rate cap or depth bound on the lower classes) replaces no-shed in
    a collapsing cell: gold is never refused, and less lower-class work
    can only shorten its waits.  The feedback controller is deliberately
    out of scope — a mistimed reaction can lose on an adversarial seed
    — and is gated instead on the experiment's pinned seeds."""
    def gold(result):
        rows = {row["class"]: row for row in result.class_rows}
        return rows["gold"]["attainment"]

    assert gold(_shed_cell(policy, seed, mix_name)) >= gold(
        _shed_cell("none", seed, mix_name)
    )
