"""Property tests for the serving layer.

Three contracts under randomized inputs:

* arrival generation is a pure function of ``(process, seed)``;
* per-worker SLO accountants merged in any grouping equal serial
  recording (counts exactly, float sums to the ulp);
* the histogram ``cdf`` is consistent with both the raw samples and
  the interpolating ``percentile`` it inverts.
"""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.accountant import SloAccountant
from repro.serve.arrivals import make_arrival_process
from repro.serve.qos import QOS_CLASSES
from repro.trace import LatencyHistogram

ARRIVAL_SPECS = st.fixed_dictionaries(
    {
        "kind": st.sampled_from(["poisson", "bursty", "diurnal"]),
        "rate": st.floats(min_value=1.0, max_value=500.0),
    }
)


@settings(max_examples=60, deadline=None)
@given(spec=ARRIVAL_SPECS, seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_arrivals_pure_function_of_spec_and_seed(spec, seed):
    process = make_arrival_process(spec["kind"], spec["rate"])
    first = process.arrival_times(random.Random(seed), 2.0)
    again = process.arrival_times(random.Random(seed), 2.0)
    assert first == again
    assert first == sorted(first)
    assert all(0.0 <= time < 2.0 for time in first)


@settings(max_examples=60, deadline=None)
@given(
    latencies=st.lists(
        st.tuples(
            st.sampled_from(["gold", "silver", "bestEffort"]),
            st.floats(min_value=1e-8, max_value=100.0,
                      allow_nan=False, allow_infinity=False),
        ),
        min_size=0,
        max_size=200,
    ),
    workers=st.integers(min_value=1, max_value=5),
)
def test_merged_worker_accountants_equal_serial(latencies, workers):
    serial = SloAccountant()
    shards = [SloAccountant() for _ in range(workers)]
    for index, (name, latency) in enumerate(latencies):
        for sink in (serial, shards[index % workers]):
            account = sink.account(QOS_CLASSES[name])
            account.record_offered()
            account.record_completion(latency)
    merged = SloAccountant()
    for shard in shards:
        merged.merge(shard)
    merged_docs = merged.to_json()
    serial_docs = serial.to_json()
    assert len(merged_docs) == len(serial_docs)
    for merged_doc, serial_doc in zip(merged_docs, serial_docs):
        assert math.isclose(
            merged_doc["histogram"].pop("sum"),
            serial_doc["histogram"].pop("sum"),
            rel_tol=1e-9, abs_tol=1e-12,
        )
        assert merged_doc == serial_doc
    assert merged.fairness() == serial.fairness()
    assert merged.rows(1.0) is not None


@settings(max_examples=10, deadline=None)
@given(
    arrival=st.sampled_from(["poisson", "bursty", "diurnal"]),
    seed=st.integers(min_value=0, max_value=999),
    fit=st.sampled_from([0.3, 0.6, 1.0]),
)
def test_fast_path_digest_equals_event_path(arrival, seed, fit):
    """The flat-path serving run produces byte-identical results to the
    event-engine run for any (arrival process, seed, pressure)."""
    import json

    from repro.serve.driver import run_serving_workload
    from repro.serve.qos import default_mix
    from repro.workloads.kv import KV_WORKLOADS

    workload = KV_WORKLOADS["memcached"].with_overrides(
        keys=128, zipf_alpha=0.75
    )
    mix = default_mix(
        tenants_per_class=500,
        arrival_kind=arrival,
        workload=workload,
        per_tenant_rate=0.4,
    )
    docs = [
        json.dumps(
            run_serving_workload(
                "fastswap", mix, fit, duration=0.3, seed=seed,
                fast_path=fast,
            ).to_json(),
            sort_keys=True,
        )
        for fast in (False, True)
    ]
    assert docs[0] == docs[1]


@settings(max_examples=120, deadline=None)
@given(
    samples=st.lists(
        st.floats(min_value=1e-9, max_value=10.0,
                  allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=300,
    ),
    threshold=st.floats(min_value=1e-9, max_value=20.0),
)
def test_cdf_brackets_exact_empirical_fraction(samples, threshold):
    """The interpolated cdf never strays past the bucket resolution:
    it is bounded by the exact empirical fractions at the enclosing
    bucket bounds of the threshold."""
    histogram = LatencyHistogram(least=1e-9, buckets=48)
    for value in samples:
        histogram.record(value)
    index = histogram.bucket_index(threshold)
    upper = histogram.least * 2.0 ** index
    lower = 0.0 if index == 0 else upper / 2.0
    exact_below = sum(1 for v in samples if v <= lower) / len(samples)
    exact_above = sum(1 for v in samples if v <= upper) / len(samples)
    estimate = histogram.cdf(threshold)
    assert exact_below - 1e-12 <= estimate <= exact_above + 1e-12


@settings(max_examples=100, deadline=None)
@given(
    samples=st.lists(
        st.floats(min_value=1e-9, max_value=10.0,
                  allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=200,
    ),
    fraction=st.floats(min_value=0.0, max_value=1.0),
)
def test_cdf_inverts_percentile(samples, fraction):
    """Round trip: cdf(percentile(q)) == q under the shared
    uniform-within-bucket assumption (up to float error), whenever the
    quantile stays below the overflow clamp."""
    histogram = LatencyHistogram(least=1e-9, buckets=48)
    for value in samples:
        histogram.record(value)
    quantile = histogram.percentile(fraction)
    if quantile >= histogram.least * 2.0 ** (histogram.buckets - 2):
        return  # clamped into/at the overflow bound; not invertible
    assert math.isclose(histogram.cdf(quantile), fraction, abs_tol=1e-9)
