"""Tests for the migration engine (dual-entry protocol, aborts, slabs)."""

import pytest

from repro.balance.migration import MigrationEngine
from repro.balance.policies import MoveBudget, RebalancePlan, SlabOrder
from repro.metrics.balance import BalanceMetrics

from tests.balance.conftest import KiB, build_cluster, put_entries

ENTRY = 64 * KiB


def engine_for(cluster):
    metrics = BalanceMetrics()
    return MigrationEngine(cluster, metrics), metrics


def execute(cluster, engine, plan):
    return cluster.run_process(engine.execute(plan))


def test_migration_moves_entries_and_remaps():
    cluster = build_cluster(num_nodes=3)
    keys = put_entries(cluster, "node0", 2)
    engine, metrics = engine_for(cluster)
    plan = RebalancePlan(0, migrations=[MoveBudget("node1", "node2", 2 * ENTRY)])
    moved = execute(cluster, engine, plan)
    assert moved == 2 * ENTRY
    assert metrics.migrations_completed == 2
    assert metrics.migrations_aborted == 0
    assert metrics.moved_bytes == 2 * ENTRY
    # The entries physically moved and the owner map was remapped.
    assert list(cluster.node("node1").rdms.entries) == []
    assert sorted(cluster.node("node2").rdms.entries) == sorted(keys)
    for key in keys:
        record = cluster.node("node0").ldms.remote_record(key)
        assert record.replica_nodes == ("node2",)
    # Pool accounting followed the pages.
    assert cluster.node("node1").receive_pool.used_bytes == 0
    assert cluster.node("node2").receive_pool.used_bytes == 2 * ENTRY


def test_migrated_entry_still_readable():
    cluster = build_cluster(num_nodes=3)
    put_entries(cluster, "node0", 1)
    engine, _metrics = engine_for(cluster)
    plan = RebalancePlan(0, migrations=[MoveBudget("node1", "node2", ENTRY)])
    execute(cluster, engine, plan)
    assert cluster.get(cluster.node("node0").servers[0], ("k", 0)) == ENTRY


def test_migration_charges_the_fabric():
    cluster = build_cluster(num_nodes=3)
    put_entries(cluster, "node0", 1)
    engine, _metrics = engine_for(cluster)
    before = cluster.fabric.total_bytes
    start = cluster.env.now
    plan = RebalancePlan(0, migrations=[MoveBudget("node1", "node2", ENTRY)])
    execute(cluster, engine, plan)
    # At least the page itself plus the reserve/free control messages.
    assert cluster.fabric.total_bytes >= before + ENTRY
    assert cluster.env.now > start


def test_budget_caps_bytes_moved():
    cluster = build_cluster(num_nodes=3)
    put_entries(cluster, "node0", 3)
    engine, metrics = engine_for(cluster)
    plan = RebalancePlan(0, migrations=[MoveBudget("node1", "node2", ENTRY)])
    moved = execute(cluster, engine, plan)
    assert moved == ENTRY
    assert metrics.migrations_completed == 1
    assert len(cluster.node("node1").rdms.entries) == 2


@pytest.mark.parametrize("crash_at", [5e-6, 1.5e-5, 2.5e-5])
def test_destination_crash_mid_migration_aborts_cleanly(crash_at):
    cluster = build_cluster(num_nodes=3)
    keys = put_entries(cluster, "node0", 1)
    engine, metrics = engine_for(cluster)
    env = cluster.env

    def crasher():
        yield env.timeout(crash_at)
        cluster.crash_node("node2")

    env.process(crasher())
    plan = RebalancePlan(0, migrations=[MoveBudget("node1", "node2", ENTRY)])
    env.run(until=env.process(engine.execute(plan)))
    assert metrics.migrations_completed == 0
    assert metrics.migrations_aborted == 1
    # The dual-entry window is closed, the map still points at the
    # source, the source copy is intact, nothing leaked on node2.
    record = cluster.node("node0").ldms.remote_record(keys[0])
    assert record.replica_nodes == ("node1",)
    owner_map = cluster.node("node0").ldms.map_of(keys[0][0])
    assert owner_map.pending_move(keys[0]) is None
    assert list(cluster.node("node1").rdms.entries) == keys
    assert list(cluster.node("node2").rdms.entries) == []
    assert cluster.get(cluster.node("node0").servers[0], ("k", 0)) == ENTRY


def test_down_endpoints_are_skipped_without_staging():
    cluster = build_cluster(num_nodes=3)
    put_entries(cluster, "node0", 1)
    engine, metrics = engine_for(cluster)
    cluster.crash_node("node2")
    plan = RebalancePlan(0, migrations=[MoveBudget("node1", "node2", ENTRY)])
    moved = execute(cluster, engine, plan)
    assert moved == 0
    assert metrics.migrations_started == 0
    assert metrics.migrations_aborted == 0


def test_full_destination_aborts_via_failed_reserve():
    cluster = build_cluster(num_nodes=3, slabs=2)
    keys = put_entries(cluster, "node0", 1)
    # Fill node2's receive pool completely so the reserve must fail.
    filler = cluster.node("node2").receive_pool
    while filler.reserve_entry(ENTRY) is not None:
        pass
    engine, metrics = engine_for(cluster)
    plan = RebalancePlan(0, migrations=[MoveBudget("node1", "node2", ENTRY)])
    moved = execute(cluster, engine, plan)
    assert moved == 0
    assert metrics.migrations_aborted == 1
    record = cluster.node("node0").ldms.remote_record(keys[0])
    assert record.replica_nodes == ("node1",)


def test_slab_transfer_moves_capacity():
    cluster = build_cluster(num_nodes=3, slabs=2)
    engine, metrics = engine_for(cluster)
    slab = cluster.config.slab_bytes
    before_src = cluster.node("node1").receive_pool.capacity_bytes
    before_dst = cluster.node("node2").receive_pool.capacity_bytes
    plan = RebalancePlan(0, slab_orders=[SlabOrder(src="node1", dst="node2")])
    execute(cluster, engine, plan)
    assert metrics.slabs_transferred == 1
    assert cluster.node("node1").receive_pool.capacity_bytes == before_src - slab
    assert cluster.node("node2").receive_pool.capacity_bytes == before_dst + slab


def test_slab_order_on_down_node_is_skipped():
    cluster = build_cluster(num_nodes=3, slabs=2)
    engine, metrics = engine_for(cluster)
    cluster.crash_node("node2")
    before = cluster.node("node1").receive_pool.capacity_bytes
    plan = RebalancePlan(0, slab_orders=[SlabOrder(src="node1", dst="node2")])
    execute(cluster, engine, plan)
    assert metrics.slabs_transferred == 0
    assert cluster.node("node1").receive_pool.capacity_bytes == before
