"""Shared builders for the balancing control-plane tests."""

import pytest

from repro.core.cluster import DisaggregatedCluster
from repro.core.config import ClusterConfig

KiB = 1024
MiB = 1024 * 1024


def build_cluster(num_nodes=3, slabs=2, group_size=0, replication=1,
                  seed=0, placement="first_fit"):
    """A small cluster whose puts all land on the cluster tier.

    ``donation_fraction=0.0`` starves the shared pools so every put
    goes remote, and ``first_fit`` placement deterministically piles
    entries onto the lowest-id peer — the skew the balancer undoes.
    """
    config = ClusterConfig(
        num_nodes=num_nodes,
        servers_per_node=1,
        server_memory_bytes=16 * MiB,
        donation_fraction=0.0,
        receive_pool_slabs=slabs,
        send_pool_slabs=2,
        replication_factor=replication,
        placement_policy=placement,
        group_size=group_size,
        seed=seed,
    )
    return DisaggregatedCluster.build(config)


def put_entries(cluster, node_id, count, nbytes=64 * KiB, tag="k"):
    """Synchronously store ``count`` entries for ``node_id``'s server.

    Returns the full ``(server_id, key)`` map keys, in put order.
    """
    server = cluster.node(node_id).servers[0]
    keys = []
    for index in range(count):
        cluster.put(server, (tag, index), nbytes)
        keys.append((server.server_id, (tag, index)))
    return keys


@pytest.fixture
def cluster():
    return build_cluster()
