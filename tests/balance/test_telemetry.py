"""Tests for the telemetry plane (reports, wire cost, loss)."""

from repro.balance.telemetry import TelemetryPlane
from repro.metrics.balance import BalanceMetrics

from tests.balance.conftest import KiB, build_cluster, put_entries


def collect(cluster, plane, group):
    return cluster.run_process(plane.collect(group))


def test_reports_reflect_node_state():
    cluster = build_cluster(num_nodes=3)
    put_entries(cluster, "node0", 4)
    plane = TelemetryPlane(cluster, BalanceMetrics())
    group = cluster.groups.groups[0]
    reports = collect(cluster, plane, group)
    assert [r.node_id for r in reports] == ["node0", "node1", "node2"]
    by_node = {r.node_id: r for r in reports}
    # first_fit piled all four entries onto node1's receive pool.
    assert by_node["node1"].receive_used == 4 * 64 * KiB
    assert by_node["node1"].hosted_bytes == 4 * 64 * KiB
    assert by_node["node2"].receive_used == 0
    assert by_node["node0"].receive_utilization == 0.0
    assert 0.0 < by_node["node1"].receive_utilization < 1.0


def test_non_leader_reports_cost_wire_time():
    cluster = build_cluster(num_nodes=3)
    plane = TelemetryPlane(cluster, BalanceMetrics())
    group = cluster.groups.groups[0]
    assert group.leader is not None
    before_bytes = cluster.fabric.total_bytes
    before_time = cluster.env.now
    reports = collect(cluster, plane, group)
    assert len(reports) == 3
    # Two members report leader-ward over the wire; the leader is local.
    assert cluster.fabric.total_bytes == before_bytes + 2 * plane.report_bytes
    assert cluster.env.now > before_time


def test_down_member_is_skipped_and_not_counted_lost():
    cluster = build_cluster(num_nodes=3)
    metrics = BalanceMetrics()
    plane = TelemetryPlane(cluster, metrics)
    group = cluster.groups.groups[0]
    down = next(m for m in group.members if m != group.leader)
    cluster.crash_node(down)
    reports = collect(cluster, plane, group)
    assert down not in {r.node_id for r in reports}
    assert metrics.reports_lost == 0
    assert metrics.reports_received == 2


def test_report_to_down_leader_is_lost():
    cluster = build_cluster(num_nodes=3)
    metrics = BalanceMetrics()
    plane = TelemetryPlane(cluster, metrics)
    group = cluster.groups.groups[0]
    # Crash the leader but leave it recorded as leader: sends get lost.
    cluster.injector.crash_node(group.leader)
    reports = collect(cluster, plane, group)
    assert reports == []
    assert metrics.reports_lost == 2


def test_put_rate_uses_own_cursors():
    cluster = build_cluster(num_nodes=3)
    plane = TelemetryPlane(cluster, BalanceMetrics())
    group = cluster.groups.groups[0]
    collect(cluster, plane, group)
    node0 = cluster.node("node0")
    eviction_cursor = node0._remote_puts_at_last_check
    put_entries(cluster, "node0", 3)
    reports = collect(cluster, plane, group)
    by_node = {r.node_id: r for r in reports}
    assert by_node["node0"].remote_put_rate > 0.0
    # Telemetry must not advance the eviction manager's cursor.
    assert node0._remote_puts_at_last_check == eviction_cursor
