"""Tests for the balance controller (epoch loop, wiring, re-election)."""

import pytest

from repro.balance import BalanceController
from repro.balance.policies import StaticPolicy

from tests.balance.conftest import KiB, build_cluster, put_entries


def test_rejects_bad_wiring():
    cluster = build_cluster()
    with pytest.raises(ValueError):
        BalanceController(cluster, epoch=0.0)
    with pytest.raises(ValueError):
        BalanceController(cluster, policy=StaticPolicy(), tolerance=0.1)


def test_policy_instance_is_accepted():
    cluster = build_cluster()
    controller = BalanceController(cluster, policy=StaticPolicy())
    assert controller.policy.name == "static"


def test_balancer_reduces_imbalance():
    cluster = build_cluster(num_nodes=4, slabs=2)
    put_entries(cluster, "node0", 20)  # all piled onto node1 by first_fit
    balancer = cluster.attach_balancer(policy="proportional", epoch=0.1,
                                       start=True)
    skew = balancer.cluster_cov()
    assert skew > 1.0
    cluster.env.run(until=cluster.env.now + 1.0)
    assert balancer.cluster_cov() < skew / 2
    assert balancer.metrics.migrations_completed > 0
    assert balancer.metrics.epochs >= 9
    assert balancer.metrics.cov_series.samples[0][1] == pytest.approx(skew)


def test_static_policy_only_observes():
    cluster = build_cluster(num_nodes=4, slabs=2)
    put_entries(cluster, "node0", 20)
    balancer = cluster.attach_balancer(policy="static", epoch=0.1, start=True)
    skew = balancer.cluster_cov()
    cluster.env.run(until=cluster.env.now + 1.0)
    assert balancer.cluster_cov() == pytest.approx(skew)
    assert balancer.metrics.migrations_started == 0
    assert balancer.metrics.reports_received > 0


def test_epoch_skips_group_that_lost_all_members():
    cluster = build_cluster(num_nodes=4, slabs=2, group_size=2)
    balancer = cluster.attach_balancer(policy="proportional", epoch=0.1,
                                       start=True)
    cluster.crash_node("node2")
    cluster.crash_node("node3")
    cluster.env.run(until=cluster.env.now + 0.5)
    assert balancer.metrics.epochs >= 4  # the loop survived the dead group


def test_controller_reelects_dead_leader():
    cluster = build_cluster(num_nodes=4, slabs=2)
    group = cluster.groups.groups[0]
    leader = group.leader
    assert leader is not None
    balancer = cluster.attach_balancer(policy="proportional", epoch=0.1,
                                       start=True)
    cluster.crash_node(leader)
    cluster.env.run(until=cluster.env.now + 0.5)
    assert group.leader != leader
    assert group.leader is not None


def test_cluster_stats_expose_balance_counters():
    cluster = build_cluster(num_nodes=3)
    assert "balance_migrations" not in cluster.stats()
    put_entries(cluster, "node0", 8)
    cluster.attach_balancer(policy="greedy", epoch=0.05, start=True)
    cluster.env.run(until=cluster.env.now + 0.5)
    stats = cluster.stats()
    assert stats["balance_migrations"] > 0
    assert stats["balance_moved_bytes"] == stats["balance_migrations"] * 64 * KiB
