"""Unit tests for the leader-side rebalance policies (pure planning)."""

import pytest

from repro.balance.policies import (
    BALANCE_POLICIES,
    GreedyHarvestPolicy,
    MoveBudget,
    ProportionalSharePolicy,
    RebalancePlan,
    SlabOrder,
    StaticPolicy,
    ThresholdPolicy,
    make_balance_policy,
)
from repro.balance.telemetry import NodeReport

MiB = 1024 * 1024


def report(node_id, used, capacity=4 * MiB, put_rate=0.0):
    return NodeReport(
        node_id=node_id,
        time=0.0,
        pool_used=0,
        pool_capacity=0,
        receive_used=used,
        receive_capacity=capacity,
        receive_free=capacity - used,
        hosted_bytes=used,
        remote_put_rate=put_rate,
        fault_in_rate=0.0,
        shared_pool_misses=0,
        balloon_reclaimable=0,
    )


def test_move_budget_validation():
    with pytest.raises(ValueError):
        MoveBudget("a", "a", 1)
    with pytest.raises(ValueError):
        MoveBudget("a", "b", 0)
    assert MoveBudget("a", "b", 5) == MoveBudget("a", "b", 5)


def test_slab_order_validation():
    with pytest.raises(ValueError):
        SlabOrder()
    with pytest.raises(ValueError):
        SlabOrder(src="a", dst="a")
    with pytest.raises(ValueError):
        SlabOrder(src="a", slabs=0)


def test_plan_accounting():
    plan = RebalancePlan(0, migrations=[MoveBudget("a", "b", 10)])
    assert not plan.is_empty()
    assert plan.planned_bytes() == 10
    assert RebalancePlan(0).is_empty()


def test_static_policy_never_plans():
    reports = [report("node0", 4 * MiB), report("node1", 0)]
    plan = StaticPolicy().plan(0, reports)
    assert plan.is_empty()


def test_threshold_drains_hot_into_cold():
    reports = [
        report("node0", int(3.8 * MiB)),  # 95% > high
        report("node1", 0),  # 0% < low
        report("node2", 2 * MiB),  # 50%, inside the band
    ]
    plan = ThresholdPolicy(high=0.75, low=0.4).plan(0, reports)
    assert len(plan.migrations) == 1
    move = plan.migrations[0]
    assert (move.src, move.dst) == ("node0", "node1")
    # Exactly the overflow above the high watermark.
    assert move.nbytes == int(3.8 * MiB) - int(0.75 * 4 * MiB)


def test_threshold_idle_inside_band():
    reports = [report("node0", 2 * MiB), report("node1", int(1.8 * MiB))]
    assert ThresholdPolicy().plan(0, reports).is_empty()


def test_threshold_rejects_inverted_watermarks():
    with pytest.raises(ValueError):
        ThresholdPolicy(high=0.3, low=0.5)


def test_proportional_targets_group_mean():
    reports = [report("node0", 4 * MiB), report("node1", 0), report("node2", 0)]
    plan = ProportionalSharePolicy(tolerance=0.0).plan(0, reports)
    # Mean utilization is 1/3: node0 sheds down to it, split between the
    # two receivers deterministically.
    assert sum(m.nbytes for m in plan.migrations) == pytest.approx(
        4 * MiB - (4 * MiB) // 3, abs=2
    )
    assert {m.src for m in plan.migrations} == {"node0"}
    assert {m.dst for m in plan.migrations} == {"node1", "node2"}


def test_proportional_balanced_group_plans_nothing():
    reports = [report("node0", MiB), report("node1", MiB)]
    assert ProportionalSharePolicy().plan(0, reports).is_empty()


def test_greedy_packs_biggest_excess_into_most_headroom():
    reports = [
        report("node0", 4 * MiB),
        report("node1", 3 * MiB),
        report("node2", 0),
    ]
    plan = GreedyHarvestPolicy(slack=0.0).plan(0, reports)
    assert plan.migrations
    # The hottest node is drained first, into the emptiest node.
    first = plan.migrations[0]
    assert (first.src, first.dst) == ("node0", "node2")


def test_zero_capacity_reports_are_ignored():
    reports = [
        report("node0", 4 * MiB),
        report("node1", 0, capacity=0),
    ]
    # Only one usable report left: nothing to balance against.
    for name in BALANCE_POLICIES:
        assert make_balance_policy(name).plan(0, reports).is_empty()


def test_small_fragments_are_dropped():
    reports = [report("node0", 2 * MiB + 1024, capacity=4 * MiB),
               report("node1", 2 * MiB - 1024, capacity=4 * MiB)]
    plan = ProportionalSharePolicy(tolerance=0.0).plan(0, reports)
    assert plan.is_empty()  # 1 KiB is below min_move_bytes


def test_pressure_rate_sheds_slabs_to_coldest_calm_node():
    policy = ProportionalSharePolicy(pressure_rate=10.0)
    reports = [
        report("node0", 2 * MiB, put_rate=50.0),  # pressured
        report("node1", MiB, put_rate=0.0),
        report("node2", 0, put_rate=0.0),  # coldest calm node
    ]
    orders = policy.plan(0, reports).slab_orders
    assert len(orders) == 1
    assert (orders[0].src, orders[0].dst) == ("node0", "node2")


def test_pressure_without_calm_target_shrinks():
    policy = ProportionalSharePolicy(pressure_rate=10.0, min_move_bytes=8 * MiB)
    reports = [
        report("node0", 2 * MiB, put_rate=50.0),
        report("node1", 2 * MiB, put_rate=50.0),
    ]
    orders = policy.plan(0, reports).slab_orders
    assert all(o.src is not None and o.dst is None for o in orders)


def test_factory_covers_every_policy_name():
    for name in BALANCE_POLICIES:
        assert make_balance_policy(name).name == name
    with pytest.raises(ValueError):
        make_balance_policy("round-robin")


def test_plans_are_deterministic():
    reports = [report("node0", 4 * MiB), report("node1", 0), report("node2", 0)]
    for name in BALANCE_POLICIES:
        first = make_balance_policy(name).plan(0, reports).migrations
        again = make_balance_policy(name).plan(0, reports).migrations
        assert list(first) == list(again)
