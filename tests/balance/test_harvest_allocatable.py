"""Regression: harvest planning against fragmented receivers.

A receive pool can report plenty of raw free bytes while none of them
are placeable at the migration grain (fragmentation).  Historically the
planners budgeted against the raw counter and every planned migration
died with a reserve-refused abort.  With ``respect_allocatable`` (the
default) a receiver's deficit is clamped to its reported
``allocatable_bytes``, so fragmented receivers stop attracting budgets
they cannot honour.
"""

from repro.balance.policies import (
    GreedyHarvestPolicy,
    MoveBudget,
    ThresholdPolicy,
)
from repro.balance.telemetry import NodeReport

MiB = 1024 * 1024


def report(node_id, used, capacity, allocatable=None):
    return NodeReport(
        node_id=node_id,
        time=0.0,
        pool_used=0,
        pool_capacity=0,
        receive_used=used,
        receive_capacity=capacity,
        receive_free=capacity - used,
        hosted_bytes=used,
        remote_put_rate=0.0,
        fault_in_rate=0.0,
        shared_pool_misses=0,
        balloon_reclaimable=0,
        allocatable_bytes=allocatable,
    )


def fleet():
    """One hot donor, one fragmented cold receiver, one clean one.

    The fragmented receiver has *more* raw free bytes than the clean
    one but can only place a sliver of them.
    """
    return [
        report("node0", used=9 * MiB, capacity=10 * MiB,
               allocatable=1 * MiB),
        report("node1", used=1 * MiB, capacity=10 * MiB,
               allocatable=128 * 1024),  # swiss-cheesed
        report("node2", used=2 * MiB, capacity=10 * MiB,
               allocatable=8 * MiB),  # clean
    ]


def by_dst(moves):
    totals = {}
    for move in moves:
        totals[move.dst] = totals.get(move.dst, 0) + move.nbytes
    return totals


def test_greedy_raw_planning_over_promises_the_fragmented_receiver():
    """The golden before: raw-free planning pours the biggest budget
    into the emptiest (most fragmented) receiver."""
    plan = GreedyHarvestPolicy(respect_allocatable=False).plan(0, fleet())
    totals = by_dst(plan.migrations)
    # node1 looks emptiest, so greedy fills it first — far beyond the
    # 128 KiB it can actually place.
    assert totals["node1"] > 1 * MiB
    assert plan.planned_bytes() > 4 * MiB


def test_greedy_allocatable_planning_respects_the_fragmented_receiver():
    """The golden after: the same fleet, planned against allocatable
    bytes — node1 gets at most what it can place, the clean receiver
    absorbs the rest, and nothing is over-promised."""
    plan = GreedyHarvestPolicy().plan(0, fleet())
    totals = by_dst(plan.migrations)
    assert totals.get("node1", 0) <= 128 * 1024
    assert totals["node2"] > totals.get("node1", 0)
    for move in plan.migrations:
        assert move.src == "node0"


def test_threshold_clamps_receiver_deficits_too():
    raw = ThresholdPolicy(respect_allocatable=False).plan(0, fleet())
    aware = ThresholdPolicy().plan(0, fleet())
    assert by_dst(raw.migrations).get("node1", 0) > 128 * 1024
    assert by_dst(aware.migrations).get("node1", 0) <= 128 * 1024


def test_missing_allocatable_field_falls_back_to_raw_free():
    """Reports without the field (older reporters) plan exactly as the
    raw baseline — the clamp is strictly opt-in per report."""
    old = [
        report("node0", used=9 * MiB, capacity=10 * MiB),
        report("node1", used=1 * MiB, capacity=10 * MiB),
        report("node2", used=2 * MiB, capacity=10 * MiB),
    ]
    raw = GreedyHarvestPolicy(respect_allocatable=False).plan(0, old)
    aware = GreedyHarvestPolicy().plan(0, old)
    assert list(raw.migrations) == list(aware.migrations)


def test_fully_fragmented_receiver_attracts_nothing():
    reports = [
        report("node0", used=9 * MiB, capacity=10 * MiB, allocatable=MiB),
        report("node1", used=1 * MiB, capacity=10 * MiB, allocatable=0),
    ]
    plan = GreedyHarvestPolicy().plan(0, reports)
    assert plan.is_empty()
    raw = GreedyHarvestPolicy(respect_allocatable=False).plan(0, reports)
    assert raw.migrations == (
        MoveBudget("node0", "node1", raw.migrations[0].nbytes),
    )
