"""Unit tests for the compression models."""

import random

import pytest

from repro.hw.latency import PAGE_SIZE
from repro.mem import CompressibilityProfile, CompressionEngine, GranularityStore, ZbudStore
from repro.mem.page import Page, make_pages


def test_profile_validation():
    with pytest.raises(ValueError):
        CompressibilityProfile("x", mean_ratio=0.5)
    with pytest.raises(ValueError):
        CompressibilityProfile("x", mean_ratio=2.0, incompressible_fraction=1.5)


def test_profile_sampler_respects_floor():
    profile = CompressibilityProfile("x", mean_ratio=1.1, sigma=1.0)
    draw = profile.sampler(random.Random(3))
    assert all(draw() >= 1.0 for _ in range(500))


def test_profile_incompressible_fraction():
    profile = CompressibilityProfile(
        "x", mean_ratio=4.0, sigma=0.01, incompressible_fraction=0.5
    )
    draw = profile.sampler(random.Random(3))
    samples = [draw() for _ in range(2000)]
    ones = sum(1 for s in samples if s == 1.0)
    assert 0.4 < ones / len(samples) < 0.6


def test_engine_costs_scale_with_size():
    engine = CompressionEngine()
    assert engine.compress_time(8192) > engine.compress_time(4096)
    assert engine.decompress_time(4096) < engine.compress_time(4096)


def test_granularity_rounding():
    store = GranularityStore([512, 1024, 2048, 4096])
    assert store.charged_size(100) == 512
    assert store.charged_size(512) == 512
    assert store.charged_size(513) == 1024
    assert store.charged_size(4000) == 4096


def test_granularity_effective_ratio():
    store = GranularityStore([512, 1024, 2048, 4096])
    # Page compressing 4:1 -> 1024 chunk -> ratio 4.
    store.store(Page(1, compressibility=4.0))
    assert store.effective_ratio() == pytest.approx(4.0)


def test_four_granularities_beat_two():
    rng = random.Random(11)
    profile = CompressibilityProfile("ml", mean_ratio=3.0, sigma=0.4)
    pages = make_pages(2000, compressibility_sampler=profile.sampler(rng))
    two = GranularityStore([2048, 4096])
    four = GranularityStore([512, 1024, 2048, 4096])
    for page in pages:
        two.store(page)
        four.store(page)
    assert four.effective_ratio() > two.effective_ratio()


def test_granularity_validation():
    with pytest.raises(ValueError):
        GranularityStore([])
    with pytest.raises(ValueError):
        GranularityStore([512], page_size=PAGE_SIZE)


def test_zbud_ratio_capped_at_two():
    store = ZbudStore()
    # Even extremely compressible pages cannot push zbud past 2x.
    for page_id in range(1000):
        store.store(Page(page_id, compressibility=8.0))
    assert store.effective_ratio() <= 2.0
    assert store.effective_ratio() == pytest.approx(2.0, rel=0.01)


def test_zbud_incompressible_page_costs_full_page():
    store = ZbudStore()
    charged = store.store(Page(1, compressibility=1.0))
    assert charged == PAGE_SIZE


def test_zbud_pairing():
    store = ZbudStore()
    first = store.store(Page(1, compressibility=4.0))
    second = store.store(Page(2, compressibility=4.0))
    # First page opens a zbud page, the second slots in for free.
    assert first == PAGE_SIZE
    assert second == 0


def test_fastswap_beats_zswap_on_ml_profile():
    """The Figure 3 ordering: 4-gran >= 2-gran >= zswap."""
    rng = random.Random(5)
    profile = CompressibilityProfile("ml", mean_ratio=3.2, sigma=0.45)
    pages = make_pages(3000, compressibility_sampler=profile.sampler(rng))
    zswap = ZbudStore()
    two = GranularityStore([2048, 4096])
    four = GranularityStore([512, 1024, 2048, 4096])
    for page in pages:
        zswap.store(page)
        two.store(page)
        four.store(page)
    assert four.effective_ratio() >= two.effective_ratio() >= zswap.effective_ratio()
