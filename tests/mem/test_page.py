"""Unit tests for pages."""

import random

import pytest

from repro.hw.latency import PAGE_SIZE
from repro.mem import Page, make_pages
from repro.mem.compression import CompressibilityProfile


def test_page_defaults():
    page = Page(7)
    assert page.size == PAGE_SIZE
    assert page.compressed_size == PAGE_SIZE
    assert not page.dirty


def test_compressed_size_scales_with_ratio():
    page = Page(1, compressibility=4.0)
    assert page.compressed_size == PAGE_SIZE // 4


def test_compressibility_below_one_rejected():
    with pytest.raises(ValueError):
        Page(1, compressibility=0.5)


def test_make_pages_count_and_ids():
    pages = make_pages(10, owner="vm-1")
    assert len(pages) == 10
    assert [p.page_id for p in pages] == list(range(10))
    assert all(p.owner == "vm-1" for p in pages)


def test_make_pages_with_sampler():
    profile = CompressibilityProfile("ml", mean_ratio=3.0, incompressible_fraction=0.0)
    rng = random.Random(1)
    pages = make_pages(200, compressibility_sampler=profile.sampler(rng))
    mean = sum(p.compressibility for p in pages) / len(pages)
    assert 2.0 < mean < 4.5


def test_pages_reproducible_given_seed():
    profile = CompressibilityProfile("ml", mean_ratio=2.0)
    a = make_pages(50, compressibility_sampler=profile.sampler(random.Random(9)))
    b = make_pages(50, compressibility_sampler=profile.sampler(random.Random(9)))
    assert [p.compressibility for p in a] == [p.compressibility for p in b]
