"""Unit tests for the slab allocator."""

import pytest

from repro.mem import AllocationError, SlabAllocator


def make_allocator(capacity=4 * 1024 * 1024, classes=(512, 1024, 2048, 4096)):
    return SlabAllocator(capacity, classes, slab_bytes=1024 * 1024)


def test_class_for_picks_smallest_fitting():
    allocator = make_allocator()
    assert allocator.class_for(1) == 512
    assert allocator.class_for(512) == 512
    assert allocator.class_for(513) == 1024
    assert allocator.class_for(4096) == 4096
    assert allocator.class_for(4097) is None


def test_allocate_and_free_roundtrip():
    allocator = make_allocator()
    chunk = allocator.allocate(700)
    assert chunk.chunk_size == 1024
    assert allocator.allocated_chunks == 1
    assert allocator.stored_payload_bytes == 700
    allocator.free(chunk)
    assert allocator.allocated_chunks == 0
    assert allocator.stored_payload_bytes == 0
    assert allocator.free_bytes == allocator.capacity_bytes


def test_oversized_allocation_raises():
    allocator = make_allocator()
    with pytest.raises(AllocationError):
        allocator.allocate(8192)


def test_nonpositive_allocation_rejected():
    allocator = make_allocator()
    with pytest.raises(ValueError):
        allocator.allocate(0)


def test_pool_exhaustion():
    allocator = SlabAllocator(1024 * 1024, [4096], slab_bytes=1024 * 1024)
    chunks = [allocator.allocate(4096) for _ in range(256)]
    with pytest.raises(AllocationError):
        allocator.allocate(4096)
    allocator.free(chunks[0])
    allocator.allocate(4096)  # space reappears


def test_empty_slab_is_reclaimed_for_other_class():
    allocator = SlabAllocator(1024 * 1024, [512, 4096], slab_bytes=1024 * 1024)
    # Fill the single slab with 512-byte chunks.
    chunks = [allocator.allocate(512) for _ in range(2048)]
    with pytest.raises(AllocationError):
        allocator.allocate(4096)
    for chunk in chunks:
        allocator.free(chunk)
    # Slab is free again and can serve the 4096 class.
    assert allocator.allocate(4096).chunk_size == 4096


def test_fragmentation_metric():
    allocator = make_allocator()
    assert allocator.internal_fragmentation() == 0.0
    allocator.allocate(512)   # exact fit
    assert allocator.internal_fragmentation() == 0.0
    allocator.allocate(513)   # half-wasted 1024 chunk
    assert allocator.internal_fragmentation() > 0.0


def test_utilization():
    allocator = make_allocator(capacity=1024 * 1024)
    assert allocator.utilization() == 0.0
    allocator.allocate(4096)
    assert allocator.utilization() == pytest.approx(4096 / (1024 * 1024))


def test_grow_and_shrink():
    allocator = make_allocator(capacity=0)
    assert allocator.total_slabs == 0
    allocator.grow(2)
    assert allocator.capacity_bytes == 2 * 1024 * 1024
    chunk = allocator.allocate(4096)
    # Only one slab is idle; the other hosts the live chunk.
    assert allocator.shrink(2) == 1
    allocator.free(chunk)
    assert allocator.shrink(2) == 1
    assert allocator.capacity_bytes == 0


def test_invalid_construction():
    with pytest.raises(ValueError):
        SlabAllocator(1024, [], slab_bytes=1024)
    with pytest.raises(ValueError):
        SlabAllocator(1024, [2048], slab_bytes=1024)
    with pytest.raises(ValueError):
        SlabAllocator(1024, [512], slab_bytes=0)
