"""Unit tests for the jemalloc-style arena allocator."""

import pytest

from repro.mem.allocator import AllocationError
from repro.mem.arena import (
    DEFAULT_GROW_UNIT,
    EXTENT_QUANTUM,
    RUN_HEADER_BYTES,
    Arena,
    UniformAllocator,
    geometric_size_classes,
    make_allocator,
)

CAPACITY = 1024 * 1024


def fresh(capacity=CAPACITY, **kwargs):
    return Arena(capacity, **kwargs)


# -- size classes -------------------------------------------------------------


def test_geometric_size_classes_shape():
    classes = geometric_size_classes(quantum=512, max_small=16384,
                                     group_classes=4)
    assert classes[0] == 512
    assert classes[-1] == 16384
    assert list(classes) == sorted(set(classes))
    # Every power-of-two group [g, 2g) is split four ways, so spacing
    # within a group is g/4 and relative internal waste stays ~1/4.
    assert 640 in classes and 768 in classes and 896 in classes
    assert 1024 in classes


def test_geometric_size_classes_validation():
    with pytest.raises(ValueError):
        geometric_size_classes(quantum=0)
    with pytest.raises(ValueError):
        geometric_size_classes(quantum=512, max_small=256)
    with pytest.raises(ValueError):
        geometric_size_classes(group_classes=0)


def test_small_allocation_uses_smallest_fitting_class():
    arena = fresh()
    allocation = arena.allocate(700)
    assert allocation.block_bytes == arena.class_for(700)
    assert allocation.block_bytes >= 700
    smaller = [c for c in arena.size_classes if c < allocation.block_bytes]
    assert all(c < 700 for c in smaller)


def test_large_allocation_rounds_to_extent_quantum():
    arena = fresh()
    allocation = arena.allocate(arena.max_small + 1)
    assert allocation.extent is not None
    assert allocation.block_bytes % EXTENT_QUANTUM == 0
    assert allocation.block_bytes >= arena.max_small + 1


# -- conservation -------------------------------------------------------------


def test_conservation_through_alloc_free():
    arena = fresh()
    assert arena.conserves()
    live = [arena.allocate(size) for size in (512, 3000, 17000, 90000, 64)]
    assert arena.conserves()
    assert arena.payload_bytes == 512 + 3000 + 17000 + 90000 + 64
    for allocation in live:
        arena.free(allocation)
        assert arena.conserves()
    assert arena.payload_bytes == 0
    assert arena.live_bytes == 0
    assert arena.metadata_bytes == 0
    assert arena.free_bytes == arena.capacity_bytes


def test_run_metadata_is_charged_and_refunded():
    arena = fresh()
    allocation = arena.allocate(512)
    assert arena.metadata_bytes >= RUN_HEADER_BYTES
    arena.free(allocation)
    assert arena.metadata_bytes == 0


def test_double_free_raises():
    arena = fresh()
    allocation = arena.allocate(1024)
    arena.free(allocation)
    with pytest.raises(AllocationError):
        arena.free(allocation)


def test_free_coalesces_neighbouring_extents():
    arena = fresh()
    first = arena.allocate(100 * 1024)
    second = arena.allocate(100 * 1024)
    arena.free(first)
    arena.free(second)
    assert arena.largest_free_extent == arena.capacity_bytes


# -- fragmentation ------------------------------------------------------------


def swiss_cheese(arena, keep_every=16):
    """Fill the arena with one small class, then free most regions so
    raw free bytes are high but no whole extent survives."""
    live = []
    while True:
        try:
            live.append(arena.allocate(512))
        except AllocationError:
            break
    kept = [a for i, a in enumerate(live) if i % keep_every == 0]
    for i, allocation in enumerate(live):
        if i % keep_every != 0:
            arena.free(allocation)
    return kept


def test_fragmented_arena_reports_low_allocatable():
    arena = fresh()
    swiss_cheese(arena)
    stats = arena.frag_stats()
    # Lots of raw free bytes, none of them entry-grain allocatable:
    # every extent is pinned by a sparse run of the 512 class.
    assert stats.free_bytes > arena.capacity_bytes // 2
    assert arena.allocatable_bytes(64 * 1024) == 0
    assert stats.external_fragmentation > 0.9
    # The same free bytes still serve the fragmented class itself.
    assert arena.allocatable_bytes(512) > 0
    with pytest.raises(ValueError):
        arena.allocatable_bytes(0)


def test_entry_allocation_is_all_or_nothing():
    arena = fresh()
    swiss_cheese(arena)
    before = (arena.live_bytes, arena.free_bytes, arena.metadata_bytes)
    with pytest.raises(AllocationError):
        arena.allocate_entry(64 * 1024)
    assert (arena.live_bytes, arena.free_bytes, arena.metadata_bytes) == before
    assert arena.conserves()


def test_compaction_restores_allocatable_bytes():
    arena = fresh()
    kept = swiss_cheese(arena)
    live_before = arena.live_bytes
    payload_before = arena.payload_bytes
    moved = arena.compact()
    assert moved > 0
    assert arena.compactions == 1
    assert arena.live_bytes == live_before
    assert arena.payload_bytes == payload_before
    assert arena.conserves()
    # The free bytes coalesced: entry-grain requests fit again.
    assert arena.allocatable_bytes(64 * 1024) > 0
    assert arena.frag_stats().external_fragmentation < 0.1
    # Handles stayed valid through the retargeting.
    for allocation in kept:
        arena.free(allocation)
    assert arena.conserves()
    assert arena.free_bytes == arena.capacity_bytes


def test_entry_splits_into_max_small_pieces():
    arena = fresh()
    blocks = arena.allocate_entry(40000)
    assert sum(b.payload_bytes for b in blocks) == 40000
    assert all(b.payload_bytes <= arena.max_small for b in blocks)
    arena.free_entry(blocks)
    assert arena.free_bytes == arena.capacity_bytes


# -- resizing -----------------------------------------------------------------


def test_grow_extends_the_top_extent():
    arena = fresh()
    arena.grow(2)
    assert arena.capacity_bytes == CAPACITY + 2 * DEFAULT_GROW_UNIT
    assert arena.largest_free_extent == arena.capacity_bytes
    assert arena.total_slabs == arena.capacity_bytes // DEFAULT_GROW_UNIT


def test_shrink_only_takes_the_free_tail():
    arena = fresh(2 * DEFAULT_GROW_UNIT)
    assert arena.shrink(1) == 1
    assert arena.capacity_bytes == DEFAULT_GROW_UNIT
    # A live block pinning the top of the address space blocks shrink
    # even though nearly everything is free.
    arena = fresh(2 * DEFAULT_GROW_UNIT)
    blocks = []
    while True:
        try:
            blocks.append(arena.allocate(arena.max_small))
        except AllocationError:
            break
    for block in blocks[:-1]:
        arena.free(block)
    assert arena.free_bytes > DEFAULT_GROW_UNIT
    assert arena.shrink(2) < 2


# -- the uniform baseline and the factory -------------------------------------


def test_uniform_allocator_never_fragments():
    uniform = UniformAllocator(CAPACITY)
    blocks = [uniform.allocate(100000) for _ in range(5)]
    assert uniform.free_bytes == CAPACITY - 500000
    assert uniform.allocatable_bytes(64 * 1024) == uniform.free_bytes
    assert uniform.largest_free_extent == uniform.free_bytes
    assert uniform.metadata_bytes == 0
    assert uniform.compact() == 0
    with pytest.raises(AllocationError):
        uniform.allocate(CAPACITY)
    for block in blocks:
        uniform.free(block)
    with pytest.raises(AllocationError):
        uniform.free(blocks[0])
    assert uniform.free_bytes == CAPACITY


def test_make_allocator_policies():
    assert isinstance(make_allocator("arena", CAPACITY), Arena)
    assert isinstance(make_allocator("uniform", CAPACITY), UniformAllocator)
    slab = make_allocator(
        "slab", CAPACITY, size_classes=(512, 1024), slab_bytes=64 * 1024
    )
    assert slab.capacity_bytes == CAPACITY
    with pytest.raises(ValueError):
        make_allocator("slab", CAPACITY)
    with pytest.raises(ValueError):
        make_allocator("buddy", CAPACITY)


def test_frag_stats_rows_share_one_surface():
    for policy in ("uniform", "arena"):
        allocator = make_allocator(policy, CAPACITY)
        allocator.allocate(1000)
        row = allocator.frag_stats().as_row()
        assert row["capacity_bytes"] == CAPACITY
        assert row["payload_bytes"] == 1000
        assert 0.0 <= row["external_fragmentation"] <= 1.0
        assert 0.0 <= row["internal_fragmentation"] <= 1.0
        assert row["allocatable_bytes"] <= row["free_bytes"]
