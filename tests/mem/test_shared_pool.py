"""Unit tests for the node-coordinated shared memory pool."""

import pytest

from repro.hw.latency import KiB, MiB, SharedMemorySpec
from repro.mem import SharedMemoryPool
from repro.mem.shared_pool import PoolFull
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def pool(env):
    pool = SharedMemoryPool(env, SharedMemorySpec())
    pool.donate("vm-1", 2 * MiB)
    pool.donate("vm-2", 2 * MiB)
    return pool


def run(env, generator):
    return env.run(until=env.process(generator))


def test_donations_build_capacity(pool):
    assert pool.capacity_bytes == 4 * MiB
    assert pool.donations == {"vm-1": 2 * MiB, "vm-2": 2 * MiB}


def test_retract_reduces_capacity(pool):
    pool.retract("vm-1", 1 * MiB)
    assert pool.capacity_bytes == 3 * MiB
    with pytest.raises(ValueError):
        pool.retract("vm-1", 10 * MiB)


def test_put_get_roundtrip(env, pool):
    def scenario():
        slot = yield from pool.put(("vm-1", 7), 4 * KiB)
        assert slot.nbytes == 4 * KiB
        nbytes = yield from pool.get(("vm-1", 7))
        return nbytes, env.now

    nbytes, elapsed = run(env, scenario())
    assert nbytes == 4 * KiB
    assert elapsed == pytest.approx(2 * pool.op_time(4 * KiB))
    assert pool.puts == 1 and pool.gets == 1


def test_duplicate_key_rejected(env, pool):
    def scenario():
        yield from pool.put("k", 4 * KiB)
        with pytest.raises(KeyError):
            yield from pool.put("k", 4 * KiB)
        return True

    assert run(env, scenario())


def test_get_missing_key_raises(env, pool):
    def scenario():
        with pytest.raises(KeyError):
            yield from pool.get("missing")
        return True

    assert run(env, scenario())


def test_pool_full_raises(env):
    pool = SharedMemoryPool(env, SharedMemorySpec(), slab_bytes=1 * MiB)
    pool.donate("vm-1", 1 * MiB)

    def scenario():
        for i in range(256):
            yield from pool.put(i, 4 * KiB)
        with pytest.raises(PoolFull):
            yield from pool.put("overflow", 4 * KiB)
        return True

    assert run(env, scenario())


def test_remove_frees_space(env, pool):
    def scenario():
        yield from pool.put("k", 4 * KiB)
        freed = pool.remove("k")
        assert freed == 4 * KiB
        assert not pool.contains("k")
        return pool.used_bytes

    assert run(env, scenario()) == 0


def test_evict_lru_order(env, pool):
    def scenario():
        yield from pool.put("old", 4 * KiB)
        yield from pool.put("new", 4 * KiB)
        yield from pool.get("old")  # touch: "new" becomes LRU
        return pool.evict_lru()

    key, nbytes = run(env, scenario())
    assert key == "new"
    assert nbytes == 4 * KiB
    assert pool.evictions == 1


def test_evict_empty_pool_returns_none(pool):
    assert pool.evict_lru() is None


def test_compressed_entries_pack_tighter(env):
    pool = SharedMemoryPool(env, SharedMemorySpec(), slab_bytes=1 * MiB)
    pool.donate("vm-1", 1 * MiB)

    def scenario():
        # 512-byte compressed pages: 8x as many fit vs raw 4 KiB pages.
        for i in range(2048):
            yield from pool.put(i, 512)
        return True

    assert run(env, scenario())


def test_negative_donation_rejected(pool):
    with pytest.raises(ValueError):
        pool.donate("vm-3", -1)
