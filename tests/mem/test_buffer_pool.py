"""Unit tests for RDMA buffer pools."""

import pytest

from repro.hw.latency import KiB, MiB
from repro.mem import RdmaBufferPool
from repro.net import Fabric, RdmaDevice
from repro.sim import Environment


@pytest.fixture
def setup():
    env = Environment()
    fabric = Fabric(env)
    device = RdmaDevice(env, fabric, "node-a")
    return env, device


def run(env, generator):
    return env.run(until=env.process(generator))


def test_role_validation(setup):
    _env, device = setup
    with pytest.raises(ValueError):
        RdmaBufferPool(device, role="middle")


def test_grow_registers_regions(setup):
    env, device = setup
    pool = RdmaBufferPool(device, role="receive")

    def scenario():
        yield from pool.grow(3)
        return env.now

    elapsed = run(env, scenario())
    assert pool.capacity_bytes == 3 * MiB
    assert len(pool.regions) == 3
    assert device.registered_bytes == 3 * MiB
    assert elapsed == pytest.approx(3 * device.fabric.spec.registration_time)


def test_reserve_and_release(setup):
    env, device = setup
    pool = RdmaBufferPool(device, role="send")

    def scenario():
        yield from pool.grow(1)
        chunk = pool.reserve(4 * KiB)
        assert chunk is not None
        assert pool.used_bytes == 4 * KiB
        pool.release(chunk)
        assert pool.used_bytes == 0
        return True

    assert run(env, scenario())


def test_reserve_when_empty_returns_none(setup):
    _env, device = setup
    pool = RdmaBufferPool(device, role="send")
    assert pool.reserve(4 * KiB) is None


def test_shrink_deregisters(setup):
    env, device = setup
    pool = RdmaBufferPool(device, role="receive")

    def scenario():
        yield from pool.grow(2)
        removed = pool.shrink(5)
        return removed

    removed = run(env, scenario())
    assert removed == 2
    assert pool.capacity_bytes == 0
    assert device.registered_bytes == 0
    assert pool.deregistrations == 2


def test_shrink_spares_busy_slabs(setup):
    env, device = setup
    pool = RdmaBufferPool(device, role="receive")

    def scenario():
        yield from pool.grow(2)
        chunk = pool.reserve(4 * KiB)
        removed = pool.shrink(2)
        assert removed == 1  # the busy slab stays
        pool.release(chunk)
        return pool.capacity_bytes

    assert run(env, scenario()) == 1 * MiB


def test_any_region(setup):
    env, device = setup
    pool = RdmaBufferPool(device, role="receive")
    assert pool.any_region() is None

    def scenario():
        yield from pool.grow(1)
        return pool.any_region()

    region = run(env, scenario())
    assert region is not None
    assert region.owner_node_id == "node-a"
