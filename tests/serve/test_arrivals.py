"""Arrival processes: determinism, rate sanity, aggregation, phases."""

import random

import pytest

from repro.serve.arrivals import (
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    aggregate,
    make_arrival_process,
)

DURATION = 20.0


def processes(rate=50.0):
    return [
        PoissonArrivals(rate=rate),
        BurstyArrivals(rate=rate),
        DiurnalArrivals(rate=rate),
    ]


@pytest.mark.parametrize("process", processes(), ids=lambda p: p.kind)
def test_arrivals_are_deterministic_per_seed(process):
    first = process.arrival_times(random.Random(42), DURATION)
    again = process.arrival_times(random.Random(42), DURATION)
    other = process.arrival_times(random.Random(43), DURATION)
    assert first == again
    assert first != other


@pytest.mark.parametrize("process", processes(), ids=lambda p: p.kind)
def test_arrivals_sorted_and_inside_window(process):
    times = process.arrival_times(random.Random(0), DURATION)
    assert times == sorted(times)
    assert all(0.0 <= time < DURATION for time in times)


@pytest.mark.parametrize("process", processes(), ids=lambda p: p.kind)
def test_time_average_rate_matches_nominal(process):
    """Over many cycles the realized rate is the nominal rate (the MMPP
    boost and the diurnal thinning both preserve the mean)."""
    count = len(process.arrival_times(random.Random(1), 200.0))
    expected = process.rate * 200.0
    assert expected * 0.85 <= count <= expected * 1.15


def test_aggregate_scales_rate_not_arrival_count_per_tenant():
    single = PoissonArrivals(rate=2.0)
    crowd = single.aggregate(100_000)
    assert crowd.rate == pytest.approx(200_000.0)
    assert crowd.kind == single.kind
    # Request count scales with rate * duration, not with tenants:
    # a short window of a 200k-rps class is ~2000 arrivals, not 100k.
    times = crowd.arrival_times(random.Random(0), 0.01)
    assert 1500 <= len(times) <= 2500


def test_bursty_clusters_relative_to_poisson():
    """At equal mean rate the MMPP squeezes arrivals into ON windows, so
    its peak short-window count is several times Poisson's."""
    def peak_window_count(process):
        times = process.arrival_times(random.Random(3), DURATION)
        window = 0.05
        best = 0
        lo = 0
        for hi, time in enumerate(times):
            while times[lo] < time - window:
                lo += 1
            best = max(best, hi - lo + 1)
        return best

    poisson = peak_window_count(PoissonArrivals(rate=200.0))
    bursty = peak_window_count(BurstyArrivals(rate=200.0))
    assert bursty > 2 * poisson


def test_shared_modulation_aligns_burst_phases():
    """Two classes given identically seeded modulation RNGs see the
    same ON/OFF windows even though their arrival draws differ."""
    process = BurstyArrivals(rate=300.0)

    def on_window_signature(arrival_seed):
        times = process.arrival_times(
            random.Random(arrival_seed), DURATION, random.Random(99)
        )
        # Quantize to 10 ms: arrivals only happen inside ON windows, so
        # the occupied-bucket set fingerprints the envelope phase.
        return {int(time / 0.01) for time in times}

    first = on_window_signature(1)
    second = on_window_signature(2)
    assert first != second  # different arrivals...
    overlap = len(first & second) / max(1, len(first | second))
    assert overlap > 0.5  # ...but the same burst windows


def test_factory_round_trip_and_validation():
    process = make_arrival_process("bursty", 10.0, on_fraction=0.25)
    assert isinstance(process, BurstyArrivals)
    assert process.on_fraction == 0.25
    assert process.to_json()["kind"] == "bursty"
    with pytest.raises(ValueError):
        make_arrival_process("weibull", 10.0)
    with pytest.raises(ValueError):
        PoissonArrivals(rate=-1.0)
    with pytest.raises(ValueError):
        BurstyArrivals(rate=1.0, on_fraction=1.5)
    with pytest.raises(ValueError):
        DiurnalArrivals(rate=1.0, depth=1.0)


def test_rate_zero_is_the_legal_empty_stream():
    """A rate-0 process is an idle tenant class: no arrivals, and no
    RNG draws (so it cannot perturb sibling streams)."""
    for process in processes(rate=0.0):
        rng = random.Random(7)
        state = rng.getstate()
        assert process.arrival_times(rng, DURATION) == []
        assert process.arrival_array(rng, DURATION) == []
        assert rng.getstate() == state


def test_gaps_are_prefix_sums_of_arrivals():
    process = PoissonArrivals(rate=100.0)
    times = process.arrival_times(random.Random(5), 2.0)
    gaps = process.gaps(random.Random(5), 2.0)
    assert len(gaps) == len(times)
    total = 0.0
    for gap, time in zip(gaps, times):
        assert gap >= 0.0
        total += gap
        assert total == pytest.approx(time)


# -- aggregate(): the batched superposition ----------------------------------


def _streams(seed=0):
    from repro.sim.rng import RngStreams

    return RngStreams(seed)


def test_aggregate_of_the_empty_mix_is_the_empty_schedule():
    schedule = aggregate([], _streams(), DURATION)
    assert len(schedule) == 0
    assert schedule.times == [] and schedule.classes == []
    assert schedule.per_class == ()


def test_aggregate_single_class_is_that_classs_stream():
    process = BurstyArrivals(rate=80.0)
    schedule = aggregate([process], _streams(3), DURATION)
    from repro.sim.rng import derive_seed

    modulation = random.Random(derive_seed(3, "serve-modulation"))
    expected = process.arrival_times(
        _streams(3).stream("serve-arrivals0"), DURATION, modulation
    )
    assert schedule.times == expected
    assert schedule.classes == [0] * len(expected)
    assert schedule.per_class == (len(expected),)


def test_aggregate_merges_sorted_with_per_class_counts():
    mix = [PoissonArrivals(rate=60.0), BurstyArrivals(rate=120.0)]
    schedule = aggregate(mix, _streams(1), DURATION)
    assert schedule.times == sorted(schedule.times)
    assert len(schedule) == sum(schedule.per_class)
    for index in (0, 1):
        own = schedule.class_times(index)
        assert len(own) == schedule.per_class[index]
        assert own == sorted(own)


def test_aggregate_rate_zero_class_contributes_nothing():
    loud = PoissonArrivals(rate=100.0)
    silent = PoissonArrivals(rate=0.0)
    with_silent = aggregate([loud, silent], _streams(2), DURATION)
    alone = aggregate([loud], _streams(2), DURATION)
    assert with_silent.per_class == (alone.per_class[0], 0)
    assert with_silent.times == alone.times
    assert set(with_silent.classes) <= {0}


def test_aggregate_duration_shorter_than_one_burst_phase():
    # One ON window is ~on_fraction * cycle = 1s on average; a 30 ms
    # horizon truncates mid-phase instead of erroring or overrunning.
    process = BurstyArrivals(rate=300.0, on_fraction=0.5, cycle=2.0)
    schedule = aggregate([process], _streams(0), 0.03)
    assert all(0.0 <= time < 0.03 for time in schedule.times)
    assert schedule.per_class == (len(schedule),)


def test_aggregate_rejects_entries_without_an_arrival_process():
    with pytest.raises(TypeError):
        aggregate([object()], _streams(), DURATION)
