"""Arrival processes: determinism, rate sanity, aggregation, phases."""

import random

import pytest

from repro.serve.arrivals import (
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    make_arrival_process,
)

DURATION = 20.0


def processes(rate=50.0):
    return [
        PoissonArrivals(rate=rate),
        BurstyArrivals(rate=rate),
        DiurnalArrivals(rate=rate),
    ]


@pytest.mark.parametrize("process", processes(), ids=lambda p: p.kind)
def test_arrivals_are_deterministic_per_seed(process):
    first = process.arrival_times(random.Random(42), DURATION)
    again = process.arrival_times(random.Random(42), DURATION)
    other = process.arrival_times(random.Random(43), DURATION)
    assert first == again
    assert first != other


@pytest.mark.parametrize("process", processes(), ids=lambda p: p.kind)
def test_arrivals_sorted_and_inside_window(process):
    times = process.arrival_times(random.Random(0), DURATION)
    assert times == sorted(times)
    assert all(0.0 <= time < DURATION for time in times)


@pytest.mark.parametrize("process", processes(), ids=lambda p: p.kind)
def test_time_average_rate_matches_nominal(process):
    """Over many cycles the realized rate is the nominal rate (the MMPP
    boost and the diurnal thinning both preserve the mean)."""
    count = len(process.arrival_times(random.Random(1), 200.0))
    expected = process.rate * 200.0
    assert expected * 0.85 <= count <= expected * 1.15


def test_aggregate_scales_rate_not_arrival_count_per_tenant():
    single = PoissonArrivals(rate=2.0)
    crowd = single.aggregate(100_000)
    assert crowd.rate == pytest.approx(200_000.0)
    assert crowd.kind == single.kind
    # Request count scales with rate * duration, not with tenants:
    # a short window of a 200k-rps class is ~2000 arrivals, not 100k.
    times = crowd.arrival_times(random.Random(0), 0.01)
    assert 1500 <= len(times) <= 2500


def test_bursty_clusters_relative_to_poisson():
    """At equal mean rate the MMPP squeezes arrivals into ON windows, so
    its peak short-window count is several times Poisson's."""
    def peak_window_count(process):
        times = process.arrival_times(random.Random(3), DURATION)
        window = 0.05
        best = 0
        lo = 0
        for hi, time in enumerate(times):
            while times[lo] < time - window:
                lo += 1
            best = max(best, hi - lo + 1)
        return best

    poisson = peak_window_count(PoissonArrivals(rate=200.0))
    bursty = peak_window_count(BurstyArrivals(rate=200.0))
    assert bursty > 2 * poisson


def test_shared_modulation_aligns_burst_phases():
    """Two classes given identically seeded modulation RNGs see the
    same ON/OFF windows even though their arrival draws differ."""
    process = BurstyArrivals(rate=300.0)

    def on_window_signature(arrival_seed):
        times = process.arrival_times(
            random.Random(arrival_seed), DURATION, random.Random(99)
        )
        # Quantize to 10 ms: arrivals only happen inside ON windows, so
        # the occupied-bucket set fingerprints the envelope phase.
        return {int(time / 0.01) for time in times}

    first = on_window_signature(1)
    second = on_window_signature(2)
    assert first != second  # different arrivals...
    overlap = len(first & second) / max(1, len(first | second))
    assert overlap > 0.5  # ...but the same burst windows


def test_factory_round_trip_and_validation():
    process = make_arrival_process("bursty", 10.0, on_fraction=0.25)
    assert isinstance(process, BurstyArrivals)
    assert process.on_fraction == 0.25
    assert process.to_json()["kind"] == "bursty"
    with pytest.raises(ValueError):
        make_arrival_process("weibull", 10.0)
    with pytest.raises(ValueError):
        PoissonArrivals(rate=0.0)
    with pytest.raises(ValueError):
        BurstyArrivals(rate=1.0, on_fraction=1.5)
    with pytest.raises(ValueError):
        DiurnalArrivals(rate=1.0, depth=1.0)


def test_gaps_are_prefix_sums_of_arrivals():
    process = PoissonArrivals(rate=100.0)
    times = process.arrival_times(random.Random(5), 2.0)
    gaps = process.gaps(random.Random(5), 2.0)
    assert len(gaps) == len(times)
    total = 0.0
    for gap, time in zip(gaps, times):
        assert gap >= 0.0
        total += gap
        assert total == pytest.approx(time)
