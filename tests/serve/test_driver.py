"""The serving driver: two-speed equivalence, priority, open-loop latency."""

import json

import pytest

from repro.serve.driver import run_serving_workload
from repro.serve.qos import QOS_CLASSES, TenantClassSpec, default_mix
from repro.workloads.kv import KV_WORKLOADS

WORKLOAD = KV_WORKLOADS["memcached"].with_overrides(keys=409, zipf_alpha=0.75)


def small_mix(arrival_kind="poisson", per_tenant_rate=0.15, tenants=2000):
    return default_mix(
        tenants_per_class=tenants,
        arrival_kind=arrival_kind,
        workload=WORKLOAD,
        per_tenant_rate=per_tenant_rate,
    )


def run(backend="fastswap", fit=0.35, *, fast_path, mix=None, schedule=None,
        duration=0.5, seed=0):
    return run_serving_workload(
        backend, mix or small_mix(), fit, duration=duration, seed=seed,
        fault_schedule=schedule, fast_path=fast_path,
    )


@pytest.mark.parametrize("arrival", ["poisson", "bursty", "diurnal"])
def test_fast_path_is_byte_identical(arrival):
    docs = [
        json.dumps(
            run(mix=small_mix(arrival), fast_path=fast).to_json(),
            sort_keys=True,
        )
        for fast in (False, True)
    ]
    assert docs[0] == docs[1]


def test_fast_path_is_byte_identical_under_chaos():
    from repro.experiments.open_loop_serving import build_schedule

    schedule = build_schedule(0, True, 0.5)
    docs = [
        json.dumps(
            run("infiniswap", mix=small_mix("bursty"), schedule=schedule,
                fast_path=fast).to_json(),
            sort_keys=True,
        )
        for fast in (False, True)
    ]
    assert docs[0] == docs[1]


def test_runs_are_deterministic_per_seed():
    first = run(fast_path=True).to_json()
    again = run(fast_path=True).to_json()
    other = run(fast_path=True, seed=1).to_json()
    assert first == again
    assert first != other


def test_queue_drains_fully_and_offered_is_counted():
    result = run(fast_path=True)
    assert result.offered > 0
    assert result.completed == result.offered
    assert result.users == sum(spec.tenants for spec in small_mix())
    accounts = {doc["name"]: doc for doc in result.accounts}
    assert set(accounts) == {"gold", "silver", "bestEffort"}
    for doc in accounts.values():
        assert doc["completed"] == doc["offered"]


def test_priority_gives_gold_the_shorter_queue():
    """Overload the disk-backed system: gold, served first, must keep a
    far better envelope attainment (and shorter tail) than bestEffort."""
    result = run("linux", fast_path=True, duration=1.0,
                 mix=small_mix(tenants=4000))
    rows = {row["class"]: row for row in result.class_rows}
    gold, best = rows["gold"], rows["bestEffort"]
    assert best["attainment"] < 0.9  # the overload actually bit
    assert gold["envelope_attainment"] >= best["envelope_attainment"]
    assert gold["p99_s"] <= best["p99_s"]
    assert 0.0 < result.fairness <= 1.0
    assert result.goodput_rps < result.offered / result.duration


def test_latency_includes_queueing_delay():
    """A single-class overload shows open-loop accounting: completions
    keep their arrival timestamps, so latency grows with the backlog
    instead of the arrival rate throttling down."""
    mix = [
        TenantClassSpec(
            qos=QOS_CLASSES["gold"],
            tenants=4000,
            per_tenant_rate=0.5,
            workload=WORKLOAD,
        )
    ]
    relaxed = run(mix=[mix[0].with_overrides(tenants=40)], fast_path=True,
                  duration=0.5)
    slammed = run("linux", mix=mix, fast_path=True, duration=0.5)
    fast_p99 = {r["class"]: r for r in relaxed.class_rows}["gold"]["p99_s"]
    slow = {r["class"]: r for r in slammed.class_rows}["gold"]
    assert slow["p99_s"] > 100 * fast_p99
    assert slow["violation_fraction"] > 0.0


def test_fit_fraction_validation():
    with pytest.raises(ValueError):
        run(fit=0.0, fast_path=False)
    with pytest.raises(ValueError):
        run(fit=1.5, fast_path=False)
    with pytest.raises(ValueError):
        run_serving_workload("fastswap", [], 0.5)


def test_result_json_round_trip():
    from repro.experiments.runner import RunResult

    result = run(fast_path=True)
    doc = result.to_json()
    assert doc["kind"] == "serving"
    assert "context" not in doc and "fast_path" not in doc
    restored = RunResult.from_json(doc)
    assert type(restored) is type(result)
    assert restored.to_json() == doc
