"""Admission policies: unit semantics, driver integration, trace oracle."""

import json
from types import SimpleNamespace

import pytest

from repro.serve.admission import (
    NoShed,
    QueueDepthShed,
    StaticCaps,
    UtilizationFeedback,
    make_admission_policy,
)
from repro.serve.driver import run_serving_workload
from repro.serve.qos import QOS_CLASSES, TenantClassSpec
from repro.trace import TraceAnalyzer
from repro.trace import runtime
from repro.workloads.kv import KV_WORKLOADS


def _spec(name):
    """The slice of TenantClassSpec the policies actually look at."""
    return SimpleNamespace(qos=QOS_CLASSES[name])


# -- factory -----------------------------------------------------------------


def test_factory_maps_every_kind():
    assert isinstance(make_admission_policy("none"), NoShed)
    assert isinstance(
        make_admission_policy("static-caps", caps={}), StaticCaps
    )
    assert isinstance(
        make_admission_policy("queue-depth", limits={}), QueueDepthShed
    )
    assert isinstance(make_admission_policy("feedback"), UtilizationFeedback)
    with pytest.raises(ValueError):
        make_admission_policy("random-early-drop")


def test_parameter_validation():
    with pytest.raises(ValueError):
        StaticCaps({}, burst_s=0.0)
    with pytest.raises(ValueError):
        StaticCaps({"gold": -1.0}).reset([_spec("gold")])
    with pytest.raises(ValueError):
        QueueDepthShed({"bestEffort": 0})
    with pytest.raises(ValueError):
        UtilizationFeedback(high_s=0.01, low_s=0.01)
    with pytest.raises(ValueError):
        UtilizationFeedback(period_s=0.0)
    with pytest.raises(ValueError):
        UtilizationFeedback(max_level=-1)


def test_to_json_is_the_sweep_readable_form():
    assert NoShed().to_json() == {"policy": "none"}
    assert StaticCaps({"silver": 5.0, "bestEffort": 1.0}).to_json() == {
        "policy": "static-caps",
        "caps": {"bestEffort": 1.0, "silver": 5.0},
        "burst_s": 0.1,
    }
    assert QueueDepthShed({"bestEffort": 8}).to_json() == {
        "policy": "queue-depth",
        "limits": {"bestEffort": 8},
    }
    assert UtilizationFeedback().to_json() == {
        "policy": "feedback",
        "high_s": 0.04,
        "low_s": 0.01,
        "period_s": 0.02,
        "max_level": 2,
    }


# -- per-policy semantics ----------------------------------------------------


def test_no_shed_admits_everything():
    policy = NoShed()
    policy.reset([_spec("gold")])
    assert all(
        policy.admit(0, _spec("gold"), t, 99.0, 10_000) for t in range(5)
    )


def test_static_caps_is_a_token_bucket_over_arrival_time():
    policy = StaticCaps({"silver": 10.0}, burst_s=0.1)
    silver = _spec("silver")
    policy.reset([silver])
    # Bucket starts full: max(1, 10 * 0.1) = 1 token.
    assert policy.admit(0, silver, 0.0, 0.0, 0)
    # Same instant: no refill has happened, the bucket is dry.
    assert not policy.admit(0, silver, 0.0, 0.0, 0)
    # 50 ms later: refill 0.5 tokens — still short of a whole one.
    assert not policy.admit(0, silver, 0.05, 0.0, 0)
    # 100 ms after that the bucket is full again (capped at 1).
    assert policy.admit(0, silver, 0.15, 0.0, 0)


def test_static_caps_ignores_unmapped_classes_and_none_caps():
    policy = StaticCaps({"silver": 0.0, "bestEffort": None})
    mix = [_spec("gold"), _spec("silver"), _spec("bestEffort")]
    policy.reset(mix)
    assert policy.admit(0, mix[0], 0.0, 0.0, 0)  # unmapped: unlimited
    assert policy.admit(2, mix[2], 0.0, 0.0, 0)  # None cap: unlimited
    # A zero cap admits the initial token, then nothing ever again.
    assert policy.admit(1, mix[1], 0.0, 0.0, 0)
    assert not policy.admit(1, mix[1], 1000.0, 0.0, 0)


def test_queue_depth_is_drop_tail_on_the_class_queue():
    policy = QueueDepthShed({"bestEffort": 2, "silver": None})
    best = _spec("bestEffort")
    policy.reset([best])
    assert policy.admit(0, best, 0.0, 0.0, 0)
    assert policy.admit(0, best, 0.0, 0.0, 1)
    assert not policy.admit(0, best, 0.0, 0.0, 2)
    assert policy.admit(0, _spec("silver"), 0.0, 0.0, 10_000)
    assert policy.admit(0, _spec("gold"), 0.0, 0.0, 10_000)


def test_feedback_hysteresis_sheds_reverse_priority_never_gold():
    policy = UtilizationFeedback(high_s=0.02, low_s=0.005, period_s=0.01)
    mix = [_spec("gold"), _spec("silver"), _spec("bestEffort")]
    policy.reset(mix)
    # High lag at t=0: one step up -> level 1, bestEffort shed.
    assert not policy.admit(2, mix[2], 0.0, 0.5, 0)
    assert policy.level == 1
    # Within the same period the level holds (no second step)...
    assert policy.admit(1, mix[1], 0.005, 0.5, 0)
    assert policy.level == 1
    # ...the next period steps to level 2: silver shed too, gold never.
    assert not policy.admit(1, mix[1], 0.01, 0.5, 0)
    assert policy.level == 2
    assert policy.admit(0, mix[0], 0.011, 0.5, 0)
    # Recovery unwinds one level per period once lag falls below low_s.
    assert not policy.admit(2, mix[2], 0.02, 0.0, 0)
    assert policy.level == 1
    assert policy.admit(1, mix[1], 0.03, 0.0, 0)
    assert policy.level == 0


def test_feedback_reset_clears_controller_state():
    policy = UtilizationFeedback(period_s=0.01)
    mix = [_spec("gold"), _spec("bestEffort")]
    policy.reset(mix)
    policy.admit(1, mix[1], 0.0, 1.0, 0)
    assert policy.level == 1
    policy.reset(mix)
    assert policy.level == 0
    assert policy.admit(1, mix[1], 0.0, 0.0, 0)


# -- driver integration ------------------------------------------------------


def overload_mix():
    """A deliberately collapsing mix: tight gold, scanning bestEffort."""
    base = KV_WORKLOADS["memcached"]
    shapes = {
        "gold": (50.0, base.with_overrides(keys=64, zipf_alpha=1.05)),
        "silver": (100.0, base.with_overrides(keys=128, zipf_alpha=0.9)),
        "bestEffort": (400.0, base.with_overrides(keys=256,
                                                  zipf_alpha=0.05)),
    }
    return [
        TenantClassSpec(
            qos=QOS_CLASSES[name],
            tenants=300,
            per_tenant_rate=rate / 300,
            arrival_kind="bursty",
            workload=workload,
        )
        for name, (rate, workload) in shapes.items()
    ]


def policies():
    return {
        "static-caps": StaticCaps({"silver": 50.0, "bestEffort": 20.0}),
        "queue-depth": QueueDepthShed({"silver": 16, "bestEffort": 8}),
        "feedback": UtilizationFeedback(high_s=0.02, low_s=0.005,
                                        period_s=0.01),
    }


def run(admission, *, fast_path=True, seed=0):
    return run_serving_workload(
        "linux", overload_mix(), 0.35, duration=1.5, seed=seed,
        prefetch_capacity=16, admission=admission, fast_path=fast_path,
    )


@pytest.fixture(scope="module")
def shed_runs():
    return {name: run(policy) for name, policy in policies().items()}


def test_shed_plus_completed_is_offered(shed_runs):
    for name, result in shed_runs.items():
        assert result.shed > 0, name  # the policy actually bit
        assert result.completed + result.shed == result.offered
        assert result.admitted == result.offered - result.shed
        assert result.policy["policy"] == name
        for doc in result.accounts:
            assert doc["completed"] + doc["shed"] == doc["offered"]


def test_no_policy_in_the_sweep_sheds_gold(shed_runs):
    for name, result in shed_runs.items():
        accounts = {doc["name"]: doc for doc in result.accounts}
        assert accounts["gold"]["shed"] == 0, name
        assert accounts["bestEffort"]["shed"] > 0, name


def test_default_admission_is_no_shed():
    result = run(None)
    assert result.shed == 0
    assert result.admitted == result.offered == result.completed
    assert result.policy == {"policy": "none"}


@pytest.mark.parametrize("name", sorted(policies()))
def test_fast_path_is_byte_identical_under_shedding(name):
    docs = [
        json.dumps(
            run(policies()[name], fast_path=fast).to_json(), sort_keys=True
        )
        for fast in (False, True)
    ]
    assert docs[0] == docs[1]


def test_shed_requests_acquire_no_service_spans():
    """The trace oracle: a traced shedding run books every request as
    exactly one of {served once, shed once} (analyzer invariant)."""
    with runtime.session() as active:
        result = run(QueueDepthShed({"silver": 16, "bestEffort": 8}))
    events = active.events_json()
    shed = [e for e in events if e["name"] == "admit.shed"]
    served = [e for e in events if e["name"] == "serve.request"]
    assert len(shed) == result.shed > 0
    assert len(served) == result.completed
    assert TraceAnalyzer(events).check() == []
