"""QoS classes and TenantClassSpec's WorkloadSpec-protocol compliance."""

import random

import pytest

from repro.serve.arrivals import BurstyArrivals
from repro.serve.qos import QOS_CLASSES, QosClass, TenantClassSpec, default_mix
from repro.workloads.kv import KV_WORKLOADS


def test_qos_tiers_are_ordered():
    gold, silver, best = (
        QOS_CLASSES["gold"], QOS_CLASSES["silver"], QOS_CLASSES["bestEffort"]
    )
    assert gold.priority < silver.priority < best.priority
    assert gold.slo_s < silver.slo_s < best.slo_s
    with pytest.raises(ValueError):
        QosClass("broken", priority=0, slo_s=0.0)


def test_default_mix_covers_every_tier_once():
    mix = default_mix(tenants_per_class=10)
    assert [spec.qos.name for spec in mix] == ["gold", "silver", "bestEffort"]
    assert all(spec.tenants == 10 for spec in mix)


def test_spec_implements_workload_protocol():
    spec = default_mix(tenants_per_class=100)[0]
    assert spec.name == "gold:memcached"
    assert spec.pages == spec.workload.pages
    assert spec.compressibility is spec.workload.compressibility
    stream = spec.iter_accesses(random.Random(0))
    page, is_write = next(stream)
    assert 0 <= page < spec.pages and isinstance(is_write, bool)
    batch = spec.as_batch(random.Random(0), 16)
    assert len(batch) == 16 * spec.workload.pages_per_key


def test_arrival_process_hook_is_populated_and_aggregated():
    """The open-loop spec is what the protocol reserved the hook for:
    closed-loop specs carry ``arrival_process = None``, this one carries
    the class's aggregate stream."""
    assert KV_WORKLOADS["memcached"].arrival_process is None
    spec = TenantClassSpec(
        qos=QOS_CLASSES["gold"],
        tenants=50_000,
        per_tenant_rate=0.01,
        arrival_kind="bursty",
        arrival_params={"on_fraction": 0.25},
    )
    process = spec.arrival_process
    assert isinstance(process, BurstyArrivals)
    assert process.rate == pytest.approx(500.0)
    assert process.on_fraction == 0.25
    assert spec.aggregate_rate == pytest.approx(500.0)


def test_as_batch_fills_gaps_from_arrival_process():
    spec = TenantClassSpec(
        qos=QOS_CLASSES["silver"],
        tenants=2000,
        per_tenant_rate=0.05,
        workload=KV_WORKLOADS["voltdb"],  # pages_per_key == 2
    )
    batch = spec.as_batch(
        random.Random(0), 400, arrival_rng=random.Random(1), duration=1.0
    )
    assert batch.gaps is not None
    per_op = spec.workload.pages_per_key
    assert len(batch) % per_op == 0
    # First page of each operation carries the inter-arrival wait;
    # the burst pages ride back to back.
    assert all(gap == 0.0 for gap in batch.gaps[1::per_op])
    assert sum(batch.gaps) <= 1.0
    assert any(gap > 0.0 for gap in batch.gaps[::per_op])


def test_spec_validation():
    with pytest.raises(ValueError):
        TenantClassSpec(qos=QOS_CLASSES["gold"], tenants=0,
                        per_tenant_rate=1.0)
    with pytest.raises(ValueError):
        TenantClassSpec(qos=QOS_CLASSES["gold"], tenants=1,
                        per_tenant_rate=0.0)
