"""SLO accounting: counters, goodput, fairness, envelope, merging."""

import pytest

from repro.serve.accountant import ClassAccount, SloAccountant, jain_fairness
from repro.serve.qos import QOS_CLASSES


def test_jain_fairness_bounds():
    assert jain_fairness([]) == 1.0
    assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)
    assert jain_fairness([1.0, 0.0, 0.0]) == pytest.approx(1.0 / 3.0)
    assert jain_fairness([0.0, 0.0]) == 1.0


def test_class_account_counters():
    account = ClassAccount("gold", slo_s=1e-3)
    account.record_offered(4)
    account.record_completion(5e-4)   # met
    account.record_completion(2e-3)   # violated
    account.record_completion(1e-3)   # met (boundary counts)
    assert (account.offered, account.completed, account.slo_met) == (4, 3, 2)
    assert account.violation_fraction == pytest.approx(1.0 / 3.0)
    # Attainment is over *offered*: the unserved request counts against.
    assert account.attainment == pytest.approx(2.0 / 4.0)


def test_within_evaluates_common_envelope():
    tight = ClassAccount("gold", slo_s=1e-3)
    loose = ClassAccount("bestEffort", slo_s=1e-1)
    for account in (tight, loose):
        account.record_offered(2)
        account.record_completion(2e-2)  # violates gold, meets bestEffort
        account.record_completion(1e-4)
    assert tight.attainment == pytest.approx(0.5)
    assert loose.attainment == pytest.approx(1.0)
    # At the common 100 ms envelope both served everything in time.
    assert tight.within(1e-1) == pytest.approx(1.0, abs=1e-9)
    assert loose.within(1e-1) == pytest.approx(1.0, abs=1e-9)


def test_accountant_goodput_fairness_and_rows():
    accountant = SloAccountant()
    gold = accountant.account(QOS_CLASSES["gold"])
    best = accountant.account(QOS_CLASSES["bestEffort"])
    gold.record_offered(10)
    best.record_offered(10)
    for _ in range(10):
        gold.record_completion(1e-4)
    for index in range(10):
        best.record_completion(1e-4 if index < 5 else 10.0)
    assert accountant.goodput(2.0) == pytest.approx((10 + 5) / 2.0)
    assert accountant.class_goodput("gold", 2.0) == pytest.approx(5.0)
    assert accountant.fairness() == pytest.approx(
        jain_fairness([1.0, 0.5]))
    rows = accountant.rows(2.0)
    assert [row["class"] for row in rows] == ["bestEffort", "gold"]
    for row in rows:
        assert row["envelope_s"] == pytest.approx(QOS_CLASSES["bestEffort"].slo_s)
        assert {"attainment", "envelope_attainment", "p99_s",
                "violation_fraction"} <= set(row)


def test_account_requires_consistent_slo():
    accountant = SloAccountant()
    accountant.account(QOS_CLASSES["gold"])
    clone = type(QOS_CLASSES["gold"])("gold", priority=0, slo_s=9.0)
    with pytest.raises(ValueError):
        accountant.account(clone)


def test_merge_equals_serial_recording():
    latencies = [(index % 7) * 3e-4 for index in range(50)]
    serial = SloAccountant()
    shards = [SloAccountant() for _ in range(3)]
    for index, latency in enumerate(latencies):
        for sink in (serial, shards[index % 3]):
            account = sink.account(QOS_CLASSES["silver"])
            account.record_offered()
            account.record_completion(latency)
    merged = SloAccountant()
    for shard in shards:
        merged.merge(shard)
    merged_doc, = merged.to_json()
    serial_doc, = serial.to_json()
    # Bucket counts and counters merge exactly; only the running float
    # ``sum`` is sensitive to addition order (shard-then-fold vs
    # strictly serial), so it gets an ulp-level tolerance.
    assert merged_doc["histogram"]["sum"] == pytest.approx(
        serial_doc["histogram"]["sum"], rel=1e-12
    )
    merged_doc["histogram"].pop("sum")
    serial_doc["histogram"].pop("sum")
    assert merged_doc == serial_doc
    # Merging must deep-copy: mutating the merged accountant afterwards
    # does not write through into the shard it came from.
    merged.account(QOS_CLASSES["silver"]).record_offered()
    assert shards[0].account(QOS_CLASSES["silver"]).offered != \
        merged.account(QOS_CLASSES["silver"]).offered


def test_merge_rejects_mismatched_classes():
    left = ClassAccount("gold", slo_s=1e-3)
    right = ClassAccount("gold", slo_s=2e-3)
    with pytest.raises(ValueError):
        left.merge(right)


def test_json_round_trip():
    accountant = SloAccountant()
    account = accountant.account(QOS_CLASSES["gold"])
    account.record_offered(3)
    account.record_completion(1e-4)
    account.record_completion(5e-2)
    restored = SloAccountant.from_json(accountant.to_json())
    assert restored.to_json() == accountant.to_json()
    assert restored.get("gold").attainment == account.attainment
