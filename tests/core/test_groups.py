"""Unit tests for hierarchical group management."""

import pytest

from repro.core import GroupManager


def node_ids(n):
    return ["node{}".format(i) for i in range(n)]


def test_flat_group_when_size_zero():
    manager = GroupManager(node_ids(8), group_size=0)
    assert len(manager.groups) == 1
    assert len(manager.group_of("node3")) == 8


def test_partitioning_into_groups():
    manager = GroupManager(node_ids(8), group_size=4)
    assert len(manager.groups) == 2
    assert manager.group_of("node0") is not manager.group_of("node7")


def test_lonely_remainder_folded():
    manager = GroupManager(node_ids(9), group_size=4)
    sizes = sorted(len(g) for g in manager.groups.values())
    assert sizes == [4, 5]


def test_peers_excludes_self():
    manager = GroupManager(node_ids(4), group_size=0)
    peers = manager.peers_of("node1")
    assert "node1" not in peers
    assert len(peers) == 3


def test_group_size_larger_than_cluster():
    manager = GroupManager(node_ids(3), group_size=10)
    assert len(manager.groups) == 1


def test_merge_groups():
    manager = GroupManager(node_ids(8), group_size=4)
    group_a = manager.group_of("node0")
    group_b = manager.group_of("node7")
    group_a.leader = "node0"
    merged = manager.merge_groups(group_a.group_id, group_b.group_id)
    assert len(merged) == 8
    assert manager.group_of("node7") is merged
    assert merged.leader is None  # leadership must be re-established
    assert manager.regroup_events == 1


def test_merge_with_self_rejected():
    manager = GroupManager(node_ids(8), group_size=4)
    with pytest.raises(ValueError):
        manager.merge_groups(0, 0)


def test_remove_node():
    manager = GroupManager(node_ids(4), group_size=0)
    group = manager.group_of("node0")
    group.leader = "node0"
    manager.remove_node("node0")
    assert "node0" not in group.members
    assert group.leader is None
    with pytest.raises(KeyError):
        manager.group_of("node0")


def test_tier2_members():
    manager = GroupManager(node_ids(8), group_size=4)
    for i, group in enumerate(manager.groups.values()):
        group.leader = group.members[0]
    assert sorted(manager.tier2_members()) == ["node0", "node4"]


def test_negative_group_size_rejected():
    with pytest.raises(ValueError):
        GroupManager(node_ids(4), group_size=-1)
