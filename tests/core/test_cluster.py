"""Integration tests for the wired disaggregated memory cluster."""

import pytest

from repro.core import ClusterConfig, DisaggregatedCluster
from repro.core.errors import EntryLost, UnknownKey
from repro.core.memory_map import Location
from repro.hw.latency import KiB, MiB


def small_config(**overrides):
    base = dict(
        num_nodes=4,
        servers_per_node=1,
        server_memory_bytes=8 * MiB,
        donation_fraction=0.25,
        receive_pool_slabs=4,
        send_pool_slabs=2,
        seed=7,
    )
    base.update(overrides)
    return ClusterConfig(**base)


@pytest.fixture
def cluster():
    return DisaggregatedCluster.build(small_config())


def fill_shared_pool(cluster, server):
    """Put entries until the node shared pool overflows to remote."""
    n = 0
    location = Location.SHARED_MEMORY
    while location == Location.SHARED_MEMORY:
        location = cluster.put(server, ("fill", n), 64 * KiB)
        n += 1
        assert n < 10_000, "pool never overflowed"
    return n, location


def test_put_lands_in_shared_memory_first(cluster):
    server = cluster.virtual_servers[0]
    assert cluster.put(server, "k", 4 * KiB) == Location.SHARED_MEMORY
    assert server.ldmc.location_of("k") == Location.SHARED_MEMORY


def test_get_roundtrip(cluster):
    server = cluster.virtual_servers[0]
    cluster.put(server, "k", 4 * KiB)
    assert cluster.get(server, "k") == 4 * KiB


def test_get_unknown_key_raises(cluster):
    server = cluster.virtual_servers[0]
    with pytest.raises(UnknownKey):
        cluster.get(server, "missing")


def test_remove_frees_entry(cluster):
    server = cluster.virtual_servers[0]
    cluster.put(server, "k", 4 * KiB)
    assert cluster.remove(server, "k") == 4 * KiB
    with pytest.raises(UnknownKey):
        cluster.get(server, "k")


def test_put_is_upsert(cluster):
    server = cluster.virtual_servers[0]
    cluster.put(server, "k", 4 * KiB)
    cluster.put(server, "k", 8 * KiB)
    assert cluster.get(server, "k") == 8 * KiB


def test_overflow_goes_remote_with_triple_replicas(cluster):
    server = cluster.virtual_servers[0]
    n, location = fill_shared_pool(cluster, server)
    assert location == Location.REMOTE
    record = cluster.nodes()[0].ldms.map_for(server).lookup(
        (server.server_id, ("fill", n - 1))
    )
    assert len(record.replica_nodes) == 3
    assert cluster.nodes_by_id["node0"].node_id not in record.replica_nodes


def test_remote_get_reads_back(cluster):
    server = cluster.virtual_servers[0]
    n, _location = fill_shared_pool(cluster, server)
    assert cluster.get(server, ("fill", n - 1)) == 64 * KiB
    assert cluster.stats()["remote_gets"] == 1


def test_remote_read_fails_over_to_replica(cluster):
    server = cluster.virtual_servers[0]
    n, _location = fill_shared_pool(cluster, server)
    key = ("fill", n - 1)
    record = cluster.nodes()[0].ldms.map_for(server).lookup((server.server_id, key))
    cluster.crash_node(record.replica_nodes[0])
    assert cluster.get(server, key) == 64 * KiB


def test_all_replicas_lost_raises(cluster):
    server = cluster.virtual_servers[0]
    n, _location = fill_shared_pool(cluster, server)
    key = ("fill", n - 1)
    record = cluster.nodes()[0].ldms.map_for(server).lookup((server.server_id, key))
    for node_id in record.replica_nodes:
        cluster.crash_node(node_id)
    with pytest.raises(EntryLost):
        cluster.get(server, key)


def test_spills_to_disk_when_cluster_is_full():
    cluster = DisaggregatedCluster.build(
        small_config(receive_pool_slabs=1, replication_factor=1)
    )
    server = cluster.virtual_servers[0]
    seen = set()
    for n in range(10_000):
        seen.add(cluster.put(server, ("fill", n), 256 * KiB))
        if Location.DISK in seen:
            break
    assert Location.DISK in seen
    assert cluster.stats()["disk_puts"] >= 1


def test_remote_entries_freed_on_remove(cluster):
    server = cluster.virtual_servers[0]
    n, _location = fill_shared_pool(cluster, server)
    key = ("fill", n - 1)
    hosted_before = cluster.stats()["hosted_remote_bytes"]
    cluster.remove(server, key)
    assert cluster.stats()["hosted_remote_bytes"] < hosted_before


def test_shared_memory_faster_than_remote(cluster):
    server = cluster.virtual_servers[0]
    cluster.put(server, "local", 4 * KiB)
    start = cluster.env.now
    cluster.get(server, "local")
    local_time = cluster.env.now - start
    n, _ = fill_shared_pool(cluster, server)
    start = cluster.env.now
    cluster.get(server, ("fill", n - 1))
    remote_time = cluster.env.now - start
    assert local_time < remote_time


def test_replication_factor_one():
    cluster = DisaggregatedCluster.build(small_config(replication_factor=1))
    server = cluster.virtual_servers[0]
    n, _ = fill_shared_pool(cluster, server)
    record = cluster.nodes()[0].ldms.map_for(server).lookup(
        (server.server_id, ("fill", n - 1))
    )
    assert len(record.replica_nodes) == 1


def test_group_restricts_placement():
    cluster = DisaggregatedCluster.build(
        small_config(num_nodes=6, group_size=3, replication_factor=2)
    )
    server = cluster.virtual_servers[0]
    n, _ = fill_shared_pool(cluster, server)
    record = cluster.nodes()[0].ldms.map_for(server).lookup(
        (server.server_id, ("fill", n - 1))
    )
    group_members = set(cluster.groups.group_of("node0").members)
    assert set(record.replica_nodes) <= group_members


def test_stats_shape(cluster):
    stats = cluster.stats()
    for field in ("remote_puts", "disk_puts", "network_bytes", "elections"):
        assert field in stats


def test_crashed_node_skipped_for_placement(cluster):
    server = cluster.virtual_servers[0]
    cluster.crash_node("node2")
    n, location = fill_shared_pool(cluster, server)
    assert location == Location.REMOTE
    record = cluster.nodes()[0].ldms.map_for(server).lookup(
        (server.server_id, ("fill", n - 1))
    )
    assert "node2" not in record.replica_nodes
