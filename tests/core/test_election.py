"""Unit tests for leader election."""

import pytest

from repro.core import GroupManager, LeaderElection
from repro.core.election import node_sort_key
from repro.net import Fabric
from repro.sim import Environment


def build(num_nodes=4, group_size=0, free_bytes=None):
    env = Environment()
    fabric = Fabric(env)
    node_ids = ["node{}".format(i) for i in range(num_nodes)]
    for node_id in node_ids:
        fabric.add_node(node_id)
    free_bytes = free_bytes or {}

    def free_of(node_id):
        return free_bytes.get(node_id, 0)

    groups = GroupManager(node_ids, group_size)
    election = LeaderElection(
        env, fabric, groups, free_of, heartbeat_period=0.1, heartbeat_timeout=0.35
    )
    return env, fabric, groups, election


def test_elects_node_with_max_free_memory():
    _env, _fabric, groups, election = build(
        free_bytes={"node0": 10, "node1": 99, "node2": 50, "node3": 1}
    )
    leaders = election.elect_all()
    assert leaders[0] == "node1"
    assert groups.groups[0].leader == "node1"
    assert groups.groups[0].term == 1


def test_tie_broken_deterministically():
    _env, _fabric, _groups, election = build(free_bytes={})
    first = election.elect_all()
    second = build(free_bytes={})[3].elect_all()
    assert first == second


def test_down_nodes_not_elected():
    _env, fabric, _groups, election = build(
        free_bytes={"node0": 10, "node1": 99, "node2": 50}
    )
    fabric.set_node_down("node1")
    assert election.elect_all()[0] == "node2"


def test_all_down_yields_no_leader():
    _env, fabric, groups, election = build(num_nodes=2)
    fabric.set_node_down("node0")
    fabric.set_node_down("node1")
    assert election.elect_all()[0] is None
    assert groups.groups[0].leader is None


def test_per_group_leaders():
    _env, _fabric, groups, election = build(
        num_nodes=4,
        group_size=2,
        free_bytes={"node0": 1, "node1": 2, "node2": 3, "node3": 4},
    )
    leaders = election.elect_all()
    assert leaders[0] == "node1"
    assert leaders[1] == "node3"


def test_heartbeats_flow_while_leader_alive():
    env, _fabric, _groups, election = build(free_bytes={"node0": 9})
    election.elect_all()
    election.start()
    env.run(until=1.0)
    assert election.heartbeats_sent > 0
    assert election.elections_held == 1  # no re-election needed


def test_reelection_after_leader_crash():
    env, fabric, groups, election = build(
        free_bytes={"node0": 10, "node1": 99, "node2": 50, "node3": 1}
    )
    election.elect_all()
    assert groups.groups[0].leader == "node1"
    election.start()
    env.run(until=0.5)
    fabric.set_node_down("node1")
    env.run(until=2.0)
    assert groups.groups[0].leader == "node2"
    assert election.elections_held >= 2


def test_leader_of():
    _env, _fabric, _groups, election = build(free_bytes={"node2": 7})
    election.elect_all()
    assert election.leader_of("node0") == "node2"


def test_node_sort_key_orders_numerically():
    ids = ["node10", "node9", "node2", "node11", "node1"]
    assert sorted(ids, key=node_sort_key) == [
        "node1", "node2", "node9", "node10", "node11",
    ]


def test_node_sort_key_is_type_stable():
    # Mixed alpha/numeric/integer ids must sort without ever comparing
    # int against str (the failure mode of the old str() tie-break).
    ids = ["rack2/node10", "rack2/node9", "a1b2", "b", 7, "10"]
    assert sorted(ids, key=node_sort_key) == sorted(ids, key=node_sort_key)
    assert node_sort_key("rack2/node9") < node_sort_key("rack2/node10")
    assert node_sort_key(7) < node_sort_key("10")


def test_tie_break_is_numeric_aware_past_ten_nodes():
    """Regression: the old ``str(node_id)`` tie-break put ``node9``
    above ``node10``; the natural-sort key must prefer ``node10``."""
    _env, _fabric, _groups, election = build(num_nodes=11, free_bytes={})
    assert election.elect_all()[0] == "node10"


def test_invalid_timeout_rejected():
    env = Environment()
    fabric = Fabric(env)
    fabric.add_node("n")
    groups = GroupManager(["n"], 0)
    with pytest.raises(ValueError):
        LeaderElection(env, fabric, groups, lambda n: 0,
                       heartbeat_period=1.0, heartbeat_timeout=0.5)
