"""Coverage for less-travelled core paths."""

import pytest

from repro.core import ClusterConfig, DisaggregatedCluster
from repro.core.memory_map import Location
from repro.hw.latency import KiB, MiB


@pytest.fixture
def cluster():
    return DisaggregatedCluster.build(
        ClusterConfig(
            num_nodes=3,
            servers_per_node=1,
            server_memory_bytes=8 * MiB,
            donation_fraction=0.25,
            receive_pool_slabs=4,
            replication_factor=1,
            seed=44,
        )
    )


def test_disk_entry_read_back(cluster):
    """An entry demoted to disk is still readable (at disk cost)."""
    # Exhaust both fast tiers.
    for node in cluster.nodes():
        node.receive_pool.shrink(100)
    server = cluster.virtual_servers[0]
    location = Location.SHARED_MEMORY
    n = 0
    while location != Location.DISK:
        location = cluster.put(server, ("d", n), 256 * KiB)
        n += 1
    start = cluster.env.now
    nbytes = cluster.get(server, ("d", n - 1))
    elapsed = cluster.env.now - start
    assert nbytes == 256 * KiB
    assert elapsed > 1e-3  # disk access dominated
    assert cluster.stats()["disk_gets"] == 1


def test_remove_unknown_key_raises(cluster):
    from repro.core.errors import UnknownKey

    server = cluster.virtual_servers[0]
    with pytest.raises(UnknownKey):
        cluster.remove(server, "never-stored")


def test_ldmc_location_of(cluster):
    server = cluster.virtual_servers[0]
    assert server.ldmc.location_of("nothing") is None
    cluster.put(server, "here", 4 * KiB)
    assert server.ldmc.location_of("here") == Location.SHARED_MEMORY


def test_all_maps_exposes_per_server_maps(cluster):
    server = cluster.virtual_servers[0]
    cluster.put(server, "x", 4 * KiB)
    maps = cluster.nodes()[0].ldms.all_maps()
    assert server.server_id in maps
    assert len(maps[server.server_id]) == 1


def test_whole_cluster_run_is_deterministic():
    def run_once():
        cluster = DisaggregatedCluster.build(
            ClusterConfig(num_nodes=3, servers_per_node=1,
                          server_memory_bytes=8 * MiB, seed=77,
                          donation_fraction=0.1, receive_pool_slabs=4)
        )
        server = cluster.virtual_servers[0]
        for i in range(50):
            cluster.put(server, ("k", i), 64 * KiB)
        for i in range(0, 50, 3):
            cluster.get(server, ("k", i))
        return cluster.env.now, cluster.stats()

    assert run_once() == run_once()


def test_recover_node_rejoins_placement(cluster):
    server = cluster.virtual_servers[0]
    cluster.crash_node("node1")
    cluster.recover_node("node1")

    # node1's receive pool was wiped by the crash; re-grow it.
    def regrow():
        yield from cluster.nodes_by_id["node1"].receive_pool.grow(4)

    cluster.run_process(regrow())
    placements = set()
    for i in range(40):
        location = cluster.put(server, ("r", i), 256 * KiB)
        if location == Location.REMOTE:
            record = cluster.nodes()[0].ldms.map_for(server).lookup(
                (server.server_id, ("r", i))
            )
            placements.update(record.replica_nodes)
    assert "node1" in placements


def test_retract_below_usage_blocks_new_puts_only(cluster):
    node = cluster.nodes()[0]
    server = node.servers[0]
    cluster.put(server, "kept", 4 * KiB)
    # Retract everything; the existing entry must stay readable.
    node.shared_pool.retract(server.server_id, server.donated_bytes)
    assert cluster.get(server, "kept") == 4 * KiB


def test_stats_time_advances(cluster):
    before = cluster.stats()["time"]
    cluster.put(cluster.virtual_servers[0], "t", 4 * KiB)
    assert cluster.stats()["time"] > before
