"""Unit tests for virtual servers."""

import pytest

from repro.core import ClusterConfig, DisaggregatedCluster
from repro.core.virtual_server import VirtualServer
from repro.hw.latency import MiB


def test_kind_validation():
    with pytest.raises(ValueError):
        VirtualServer("s", None, 1024, kind="mainframe")
    with pytest.raises(ValueError):
        VirtualServer("s", None, 0)
    with pytest.raises(ValueError):
        VirtualServer("s", None, 1024, donation_fraction=2.0)


def test_donation_math():
    server = VirtualServer("s", None, 100 * MiB, donation_fraction=0.25)
    assert server.donated_bytes == 25 * MiB
    assert server.private_bytes == 75 * MiB


def test_balloon_reclaims_donation():
    cluster = DisaggregatedCluster.build(
        ClusterConfig(num_nodes=1, servers_per_node=1, donation_fraction=0.5,
                      server_memory_bytes=8 * MiB)
    )
    server = cluster.virtual_servers[0]
    donated = server.donated_bytes
    granted = server.balloon(1 * MiB)
    assert granted == 1 * MiB
    assert server.donated_bytes == donated - 1 * MiB
    assert server.node.shared_pool.capacity_bytes == donated - 1 * MiB


def test_balloon_bounded_by_donation():
    cluster = DisaggregatedCluster.build(
        ClusterConfig(num_nodes=1, servers_per_node=1, donation_fraction=0.25,
                      server_memory_bytes=8 * MiB)
    )
    server = cluster.virtual_servers[0]
    granted = server.balloon(100 * MiB)
    assert granted == 2 * MiB
    assert server.balloon(1) == 0  # nothing left to reclaim


def test_request_rate_window():
    server = VirtualServer("s", None, 1024)
    server.disaggregated_requests = 100
    assert server.request_rate_since_last_check(10.0) == 10.0
    server.disaggregated_requests = 150
    assert server.request_rate_since_last_check(5.0) == 10.0
    assert server.request_rate_since_last_check(0.0) == 0.0
