"""Edge-case tests for the LDMS/RDMC/RDMS agents and control plane."""

import pytest

from repro.core import ClusterConfig, DisaggregatedCluster
from repro.core.errors import ControlTimeout, NoRemoteCapacity
from repro.core.memory_map import Location
from repro.hw.latency import KiB, MiB


def build(**overrides):
    base = dict(
        num_nodes=4,
        servers_per_node=1,
        server_memory_bytes=8 * MiB,
        donation_fraction=0.0,  # every put goes remote
        receive_pool_slabs=8,
        replication_factor=2,
        seed=17,
    )
    base.update(overrides)
    return DisaggregatedCluster.build(ClusterConfig(**base))


def test_control_call_roundtrip_costs_time():
    cluster = build()
    node = cluster.nodes_by_id["node0"]

    def scenario():
        start = cluster.env.now
        reply = yield from node.rdmc.control_call(
            "node1", {"op": "reserve", "key": "k", "nbytes": 4 * KiB}
        )
        return reply, cluster.env.now - start

    reply, elapsed = cluster.run_process(scenario())
    assert reply["ok"]
    assert elapsed > 2e-6  # request + processing + reply wire time
    assert node.rdmc.control_calls == 1


def test_control_call_times_out_when_reply_path_is_partitioned():
    cluster = build()
    node = cluster.nodes_by_id["node0"]

    def scenario():
        # Connect first so the request itself succeeds; then cut only
        # the reply direction (asymmetric partition).
        yield from node.device.connect(cluster.device_of("node1"))
        cluster.fabric.set_link_down("node1", "node0", symmetric=False)
        with pytest.raises(ControlTimeout):
            yield from node.rdmc.control_call(
                "node1", {"op": "reserve", "key": "k", "nbytes": 4 * KiB}
            )
        return True

    assert cluster.run_process(scenario())
    assert node.rdmc.control_timeouts == 1


def test_rdms_unknown_op_rejected():
    cluster = build()
    node = cluster.nodes_by_id["node0"]

    def scenario():
        reply = yield from node.rdmc.control_call(
            "node1", {"op": "teleport"}
        )
        return reply

    reply = cluster.run_process(scenario())
    assert not reply["ok"]
    assert "unknown op" in reply["error"]


def test_rdms_reserve_replaces_duplicate_key():
    cluster = build()
    node0 = cluster.nodes_by_id["node0"]
    node1 = cluster.nodes_by_id["node1"]

    def scenario():
        for nbytes in (4 * KiB, 8 * KiB):
            reply = yield from node0.rdmc.control_call(
                "node1", {"op": "reserve", "key": "dup", "nbytes": nbytes}
            )
            assert reply["ok"]
        return True

    assert cluster.run_process(scenario())
    assert node1.rdms.entries["dup"].nbytes == 8 * KiB
    assert node1.rdms.hosted_bytes == 8 * KiB


def test_remote_put_commits_with_surviving_replicas():
    cluster = build(num_nodes=5, replication_factor=3)
    node = cluster.nodes_by_id["node0"]
    # Kill one candidate: placement must route around it.
    cluster.crash_node("node2")

    def scenario():
        replicas = yield from node.rdmc.remote_put(("s", "k"), 4 * KiB)
        return replicas

    replicas = cluster.run_process(scenario())
    assert len(replicas) == 3
    assert "node2" not in replicas


def test_remote_put_degrades_below_factor_when_cluster_small():
    cluster = build(num_nodes=3, replication_factor=3)
    node = cluster.nodes_by_id["node0"]

    def scenario():
        return (yield from node.rdmc.remote_put(("s", "k"), 4 * KiB))

    replicas = cluster.run_process(scenario())
    assert len(replicas) == 2  # only two peers exist


def test_remote_put_fails_when_no_peer_alive():
    cluster = build(num_nodes=2)
    cluster.crash_node("node1")
    node = cluster.nodes_by_id["node0"]

    def scenario():
        with pytest.raises(NoRemoteCapacity):
            yield from node.rdmc.remote_put(("s", "k"), 4 * KiB)
        return True

    assert cluster.run_process(scenario())


def test_replica_eviction_rereplicates_to_fresh_node():
    cluster = build(num_nodes=5, replication_factor=2)
    server = cluster.virtual_servers[0]
    cluster.put(server, "hot", 4 * KiB)
    node0 = cluster.nodes_by_id["node0"]
    server_map = node0.ldms.map_for(server)
    key = (server.server_id, "hot")
    record = server_map.lookup(key)
    lost = record.replica_nodes[0]
    cluster.nodes_by_id[lost].rdms._release(key)

    def scenario():
        yield from node0.ldms.handle_replica_eviction(key, lost)
        return True

    assert cluster.run_process(scenario())
    updated = server_map.lookup(key)
    assert lost not in updated.replica_nodes
    assert len(updated.replica_nodes) == 2


def test_replica_eviction_demotes_to_disk_as_last_resort():
    cluster = build(num_nodes=2, replication_factor=1)
    server = cluster.virtual_servers[0]
    cluster.put(server, "only", 4 * KiB)
    node0 = cluster.nodes_by_id["node0"]
    key = (server.server_id, "only")
    # The sole replica is evicted and no other peer exists.
    cluster.nodes_by_id["node1"].rdms._release(key)
    cluster.nodes_by_id["node1"].receive_pool.shrink(100)

    def scenario():
        yield from node0.ldms.handle_replica_eviction(key, "node1")
        return True

    assert cluster.run_process(scenario())
    record = node0.ldms.map_for(server).lookup(key)
    assert record.location == Location.DISK
    assert node0.disk_puts == 1


def test_replica_eviction_for_unknown_key_is_noop():
    cluster = build()
    node0 = cluster.nodes_by_id["node0"]

    def scenario():
        yield from node0.ldms.handle_replica_eviction(("vm", "ghost"), "node1")
        return True

    assert cluster.run_process(scenario())


def test_rdms_evict_entries_returns_oldest_first():
    cluster = build()
    node0 = cluster.nodes_by_id["node0"]
    node1 = cluster.nodes_by_id["node1"]

    def scenario():
        for i in range(4):
            yield from node0.rdmc.control_call(
                "node1", {"op": "reserve", "key": ("e", i), "nbytes": 64 * KiB}
            )
        return True

    cluster.run_process(scenario())
    evicted = node1.rdms.evict_entries(128 * KiB)
    assert [entry.key for entry in evicted] == [("e", 0), ("e", 1)]
    assert node1.rdms.hosted_bytes == 128 * KiB
