"""Unit tests for cluster configuration."""

import pytest

from repro.core import ClusterConfig
from repro.hw.latency import MiB


def test_defaults_valid():
    config = ClusterConfig()
    assert config.total_servers == config.num_nodes * config.servers_per_node
    assert config.node_memory_bytes > config.servers_per_node * config.server_memory_bytes - 1


def test_validation():
    with pytest.raises(ValueError):
        ClusterConfig(num_nodes=0)
    with pytest.raises(ValueError):
        ClusterConfig(servers_per_node=0)
    with pytest.raises(ValueError):
        ClusterConfig(donation_fraction=1.5)
    with pytest.raises(ValueError):
        ClusterConfig(replication_factor=0)
    with pytest.raises(ValueError):
        ClusterConfig(group_size=-1)
    with pytest.raises(ValueError):
        ClusterConfig(heartbeat_period=2.0, heartbeat_timeout=1.0)


def test_with_overrides():
    config = ClusterConfig(num_nodes=4)
    other = config.with_overrides(num_nodes=8, server_memory_bytes=32 * MiB)
    assert other.num_nodes == 8
    assert other.server_memory_bytes == 32 * MiB
    assert config.num_nodes == 4  # original untouched


def test_node_memory_includes_host_reserve():
    config = ClusterConfig(
        servers_per_node=2, server_memory_bytes=64 * MiB, host_reserved_bytes=16 * MiB
    )
    assert config.node_memory_bytes == 144 * MiB
