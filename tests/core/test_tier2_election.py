"""Second-tier (leader-of-leaders) election tests."""

from repro.core import ClusterConfig, DisaggregatedCluster


def build():
    return DisaggregatedCluster.build(
        ClusterConfig(num_nodes=6, group_size=2, seed=8,
                      receive_pool_slabs=4)
    )


def test_tier2_elects_among_group_leaders():
    cluster = build()
    coordinator = cluster.election.elect_tier2()
    leaders = set(cluster.groups.tier2_members())
    assert coordinator in leaders
    assert len(leaders) == 3  # one leader per group


def test_tier2_skips_down_leaders():
    cluster = build()
    first = cluster.election.elect_tier2()
    cluster.crash_node(first)
    second = cluster.election.elect_tier2()
    assert second != first


def test_tier2_none_when_all_leaders_down():
    cluster = build()
    for leader in list(cluster.groups.tier2_members()):
        cluster.crash_node(leader)
        # Clear leadership as the heartbeat timeout eventually would.
        cluster.groups.group_of(leader).leader = None
    assert cluster.election.elect_tier2() is None


def test_tier2_prefers_most_free_memory():
    cluster = build()

    def enrich():
        yield from cluster.nodes_by_id["node4"].receive_pool.grow(32)

    cluster.run_process(enrich())
    cluster.election.elect_all()
    assert cluster.election.elect_tier2() == "node4"
