"""Unit tests for placement policies."""

import random

import pytest

from repro.core.placement import (
    CandidateView,
    PowerOfTwoChoices,
    RandomPlacement,
    RoundRobinPlacement,
    WeightedRoundRobin,
    make_placement_policy,
)


def candidates(*free):
    return [CandidateView("n{}".format(i), f) for i, f in enumerate(free)]


def test_factory():
    rng = random.Random(0)
    for name in ("random", "round_robin", "weighted_round_robin", "power_of_two"):
        policy = make_placement_policy(name, rng)
        assert policy.name == name
    with pytest.raises(ValueError):
        make_placement_policy("bogus", rng)


def test_viability_filter():
    policy = RandomPlacement(random.Random(0))
    chosen = policy.select(candidates(100, 5000, 100), k=3, nbytes=1000)
    assert chosen == ["n1"]


def test_random_selects_distinct():
    policy = RandomPlacement(random.Random(0))
    chosen = policy.select(candidates(*([1000] * 10)), k=3, nbytes=100)
    assert len(chosen) == 3
    assert len(set(chosen)) == 3


def test_round_robin_cycles():
    policy = RoundRobinPlacement()
    pool = candidates(1000, 1000, 1000)
    first = policy.select(pool, k=1, nbytes=100)
    second = policy.select(pool, k=1, nbytes=100)
    third = policy.select(pool, k=1, nbytes=100)
    fourth = policy.select(pool, k=1, nbytes=100)
    assert [first[0], second[0], third[0]] == ["n0", "n1", "n2"]
    assert fourth == first


def test_round_robin_k_greater_than_candidates():
    policy = RoundRobinPlacement()
    assert len(policy.select(candidates(1000, 1000), k=5, nbytes=1)) == 2


def test_weighted_round_robin_prefers_free_nodes():
    policy = WeightedRoundRobin()
    pool = candidates(9000, 1000)
    picks = [policy.select(pool, k=1, nbytes=1)[0] for _ in range(10)]
    assert picks.count("n0") == 9
    assert picks.count("n1") == 1


def test_weighted_round_robin_empty_when_no_capacity():
    policy = WeightedRoundRobin()
    assert policy.select(candidates(0, 0), k=1, nbytes=1) == []


def test_power_of_two_balances_better_than_random():
    """The classic result: d=2 probes keep the maximum load far lower."""
    rng_random = random.Random(42)
    rng_p2 = random.Random(42)
    random_policy = RandomPlacement(rng_random)
    p2_policy = PowerOfTwoChoices(rng_p2)
    for policy in (random_policy, p2_policy):
        load = {"n{}".format(i): 0 for i in range(20)}
        for _ in range(2000):
            view = [
                CandidateView(node, 10_000_000 - load[node]) for node in load
            ]
            chosen = policy.select(view, k=1, nbytes=1)[0]
            load[chosen] += 1
        spread = max(load.values()) - min(load.values())
        if policy is random_policy:
            random_spread = spread
        else:
            p2_spread = spread
    assert p2_spread < random_spread


def test_power_of_two_distinct_choices():
    policy = PowerOfTwoChoices(random.Random(1))
    chosen = policy.select(candidates(*([1000] * 5)), k=3, nbytes=1)
    assert len(set(chosen)) == 3


def test_power_of_two_single_candidate():
    policy = PowerOfTwoChoices(random.Random(1))
    assert policy.select(candidates(1000), k=2, nbytes=1) == ["n0"]
