"""The paper's Figure 2 walkthrough, step by step.

Figure 2 narrates how node A uses disaggregated memory donated by node
B: the virtual server's put overflows the node pool, node A stages the
entry in its send buffer pool, reserves space in B's receive buffer
pool over the control plane, RDMA-writes the data, records the location
in the disaggregated memory map — and a later read issues an RDMA READ
against B.  This test pins each observable step.
"""

import pytest

from repro.core import ClusterConfig, DisaggregatedCluster
from repro.core.memory_map import Location
from repro.hw.latency import KiB, MiB


@pytest.fixture
def cluster():
    return DisaggregatedCluster.build(
        ClusterConfig(
            num_nodes=2,
            servers_per_node=1,
            server_memory_bytes=8 * MiB,
            donation_fraction=0.0,  # node pool empty: overflow instantly
            receive_pool_slabs=4,
            replication_factor=1,
            seed=33,
        )
    )


def test_figure2_write_then_read(cluster):
    node_a = cluster.nodes_by_id["node0"]
    node_b = cluster.nodes_by_id["node1"]
    server = node_a.servers[0]

    requests_before = node_b.rdms.requests_served
    b_received_before = cluster.fabric.nic("node1").bytes_received

    # (1) The virtual server's LDMC put overflows node A's (empty)
    #     shared pool and goes to the cluster level.
    tier = cluster.put(server, "entry-7", 64 * KiB)
    assert tier == Location.REMOTE

    # (2) Node A's RDMC asked node B's RDMS to reserve receive-pool
    #     space over the control plane (SEND/RECV).
    assert node_b.rdms.requests_served == requests_before + 1
    entry = node_b.rdms.entries[(server.server_id, "entry-7")]
    assert entry.owner_node_id == "node0"
    assert entry.nbytes == 64 * KiB
    assert node_b.receive_pool.used_bytes >= 64 * KiB

    # (3) The data moved A -> B with a one-sided write: B's NIC received
    #     the payload but B's CPU served only the one control request.
    assert (
        cluster.fabric.nic("node1").bytes_received - b_received_before
        >= 64 * KiB
    )
    assert node_b.rdms.requests_served == requests_before + 1

    # (4) The disaggregated memory map on node A records where the
    #     entry lives, committed only after the transfer finished.
    record = node_a.ldms.map_for(server).lookup((server.server_id, "entry-7"))
    assert record.location == Location.REMOTE
    assert record.replica_nodes == ("node1",)

    # (5) A later read consults the map and issues an RDMA READ to B:
    #     data flows B -> A without involving B's control plane.
    a_received_before = cluster.fabric.nic("node0").bytes_received
    nbytes = cluster.get(server, "entry-7")
    assert nbytes == 64 * KiB
    assert (
        cluster.fabric.nic("node0").bytes_received - a_received_before
        >= 64 * KiB
    )
    assert node_b.rdms.requests_served == requests_before + 1  # unchanged

    # (6) Removing the entry frees B's receive-pool space via a control
    #     message.
    cluster.remove(server, "entry-7")
    assert (server.server_id, "entry-7") not in node_b.rdms.entries
    assert node_b.receive_pool.used_bytes == 0
