"""Dynamic re-grouping integration (paper Section IV-C)."""

import pytest

from repro.core import ClusterConfig, DisaggregatedCluster
from repro.core.memory_map import Location
from repro.hw.latency import KiB, MiB


@pytest.fixture
def cluster():
    # Two groups of 3; group 0 donates almost nothing to the cluster.
    config = ClusterConfig(
        num_nodes=6,
        servers_per_node=1,
        server_memory_bytes=8 * MiB,
        donation_fraction=0.0,
        receive_pool_slabs=1,
        replication_factor=1,
        group_size=3,
        seed=21,
    )
    cluster = DisaggregatedCluster.build(config)
    # Make the second group's nodes rich donors.
    def enrich():
        for node_id in ("node3", "node4", "node5"):
            yield from cluster.nodes_by_id[node_id].receive_pool.grow(8)

    cluster.run_process(enrich())
    return cluster


def fill_group_capacity(cluster, server):
    """Consume group-0 remote capacity until entries start hitting disk."""
    n = 0
    while True:
        location = cluster.put(server, ("fill", n), 512 * KiB)
        n += 1
        if location == Location.DISK:
            return n
        assert n < 1000


def test_regroup_unlocks_remote_capacity(cluster):
    server = cluster.virtual_servers[0]
    fill_group_capacity(cluster, server)
    # Group 0 is exhausted; without re-grouping further puts hit disk.
    assert cluster.put(server, "stuck", 512 * KiB) == Location.DISK
    merged = cluster.maybe_regroup("node0", min_free_bytes=1 * MiB)
    assert merged is not None
    assert len(merged) == 6
    assert merged.leader is not None
    # The rich donors are now reachable: the next put goes remote.
    assert cluster.put(server, "unstuck", 512 * KiB) == Location.REMOTE
    assert cluster.groups.regroup_events == 1


def test_no_regroup_when_group_has_capacity(cluster):
    assert cluster.maybe_regroup("node3", min_free_bytes=1 * MiB) is None
    assert cluster.groups.regroup_events == 0


def test_regroup_with_single_group_is_noop():
    config = ClusterConfig(num_nodes=3, group_size=0, donation_fraction=0.0,
                           receive_pool_slabs=0, seed=1)
    cluster = DisaggregatedCluster.build(config)
    assert cluster.maybe_regroup("node0", min_free_bytes=1 * MiB) is None
