"""Tests for the Section IV-F eviction and ballooning policies."""


from repro.core import ClusterConfig, DisaggregatedCluster
from repro.core.memory_map import Location
from repro.hw.latency import KiB, MiB


def build_cluster(**overrides):
    base = dict(
        num_nodes=4,
        servers_per_node=1,
        server_memory_bytes=8 * MiB,
        donation_fraction=0.5,
        receive_pool_slabs=4,
        send_pool_slabs=2,
        balloon_request_rate=10.0,  # low threshold so tests trip it
        seed=3,
    )
    base.update(overrides)
    return DisaggregatedCluster.build(ClusterConfig(**base), start_services=True)


def hammer(cluster, server, count, nbytes=64 * KiB):
    """Issue many puts back-to-back to drive the request rate up."""

    def workload():
        for n in range(count):
            yield from server.ldmc.put(("h", n), nbytes)
        return True

    return cluster.run_process(workload())


def test_balloon_recommendation_fires():
    cluster = build_cluster()
    server = cluster.virtual_servers[0]
    hammer(cluster, server, 200)
    cluster.env.run(until=cluster.env.now + 2.0)
    assert cluster.eviction.recommendations, "no balloon recommendation"
    recommendation = cluster.eviction.recommendations[0]
    assert recommendation.server_id == server.server_id
    assert recommendation.granted_bytes > 0


def test_balloon_listener_called():
    cluster = build_cluster()
    server = cluster.virtual_servers[0]
    grants = []
    cluster.eviction.on_balloon(lambda srv, nbytes: grants.append((srv, nbytes)))
    hammer(cluster, server, 200)
    cluster.env.run(until=cluster.env.now + 2.0)
    assert grants and grants[0][0] is server


def test_receive_pool_shrinks_under_remote_pressure():
    cluster = build_cluster(donation_fraction=0.05)
    server = cluster.virtual_servers[0]
    node = cluster.nodes_by_id["node0"]
    before = node.receive_pool.capacity_bytes
    # Overflow the tiny shared pool so puts go remote at a high rate.
    hammer(cluster, server, 300)
    cluster.env.run(until=cluster.env.now + 2.0)
    assert node.receive_pool.capacity_bytes < before
    assert cluster.eviction.slab_evictions >= 1


def test_idle_cluster_triggers_nothing():
    cluster = build_cluster()
    cluster.env.run(until=5.0)
    assert not cluster.eviction.recommendations
    assert cluster.eviction.slab_evictions == 0


def test_zero_capacity_receive_pool_is_left_alone():
    """A node that donates no receive slabs must never be shrunk (or
    underflow) however hard its servers push on the remote tier."""
    cluster = build_cluster(receive_pool_slabs=0, send_pool_slabs=0,
                            donation_fraction=0.05)
    server = cluster.virtual_servers[0]
    hammer(cluster, server, 300)  # overflows to disk, rate still spikes
    cluster.env.run(until=cluster.env.now + 2.0)
    assert cluster.eviction.slab_evictions == 0
    assert cluster.eviction.entry_evictions == 0
    for node in cluster.nodes():
        assert node.receive_pool.capacity_bytes == 0


def test_node_crash_between_checks_pauses_its_monitor():
    cluster = build_cluster(donation_fraction=0.05)
    server = cluster.virtual_servers[0]
    hammer(cluster, server, 300)
    cluster.crash_node("node0")
    before = cluster.eviction.slab_evictions
    cluster.env.run(until=cluster.env.now + 2.0)  # must not raise
    # The down node is skipped, so its pressure triggers no evictions.
    assert cluster.eviction.slab_evictions == before


def test_balloon_callbacks_fire_in_registration_order():
    cluster = build_cluster()
    server = cluster.virtual_servers[0]
    calls = []
    cluster.eviction.on_balloon(lambda srv, nbytes: calls.append("first"))
    cluster.eviction.on_balloon(lambda srv, nbytes: calls.append("second"))
    cluster.eviction.on_balloon(lambda srv, nbytes: calls.append("third"))
    hammer(cluster, server, 200)
    cluster.env.run(until=cluster.env.now + 2.0)
    assert calls, "no balloon callback fired"
    # Every recommendation walks the listener list in registration order.
    assert calls[:3] == ["first", "second", "third"]
    assert len(calls) == 3 * len(cluster.eviction.recommendations)


def test_rereplication_after_entry_eviction():
    """Displaced hosted entries get a replacement replica elsewhere."""
    cluster = build_cluster(
        num_nodes=5,
        donation_fraction=0.02,
        receive_pool_slabs=2,
        replication_factor=2,
    )
    server = cluster.virtual_servers[0]
    # Push enough remote entries that receive pools are busy, then keep
    # hammering so the eviction policy displaces hosted entries.
    hammer(cluster, server, 400, nbytes=128 * KiB)
    cluster.env.run(until=cluster.env.now + 3.0)
    server_map = cluster.nodes_by_id["node0"].ldms.map_for(server)
    remote_records = [
        server_map.lookup((server.server_id, ("h", n)))
        for n in range(400)
    ]
    remote_records = [
        r for r in remote_records if r is not None and r.location == Location.REMOTE
    ]
    assert remote_records, "expected remote entries to exist"
    # Every remote record still has at least one replica registered.
    assert all(len(r.replica_nodes) >= 1 for r in remote_records)
