"""Unit tests for the disaggregated memory map."""

import pytest

from repro.core import DisaggregatedMemoryMap, EntryRecord, Location, map_overhead_bytes
from repro.hw.latency import GiB, TiB


def test_record_validation():
    with pytest.raises(ValueError):
        EntryRecord("k", "nowhere", 4096)
    with pytest.raises(ValueError):
        EntryRecord("k", Location.REMOTE, 4096, replica_nodes=())


def test_begin_commit_visibility():
    memory_map = DisaggregatedMemoryMap("vm-1")
    memory_map.begin("k", Location.SHARED_MEMORY, 4096)
    assert memory_map.lookup("k") is None  # pending entries invisible
    record = memory_map.commit("k", now=1.5)
    assert memory_map.lookup("k") is record
    assert record.committed_at == 1.5
    assert memory_map.commits == 1


def test_abort_discards():
    memory_map = DisaggregatedMemoryMap("vm-1")
    memory_map.begin("k", Location.DISK, 4096)
    memory_map.abort("k")
    assert memory_map.lookup("k") is None
    assert memory_map.aborts == 1
    with pytest.raises(KeyError):
        memory_map.commit("k")


def test_remove():
    memory_map = DisaggregatedMemoryMap("vm-1")
    memory_map.begin("k", Location.DISK, 4096)
    memory_map.commit("k")
    assert memory_map.remove("k").key == "k"
    assert memory_map.remove("k") is None
    assert len(memory_map) == 0


def test_entries_at_node():
    memory_map = DisaggregatedMemoryMap("vm-1")
    memory_map.begin("a", Location.REMOTE, 4096, replica_nodes=("n1", "n2"))
    memory_map.commit("a")
    memory_map.begin("b", Location.REMOTE, 4096, replica_nodes=("n2", "n3"))
    memory_map.commit("b")
    memory_map.begin("c", Location.SHARED_MEMORY, 4096)
    memory_map.commit("c")
    keys = {record.key for record in memory_map.entries_at("n2")}
    assert keys == {"a", "b"}


def test_replace_replica():
    memory_map = DisaggregatedMemoryMap("vm-1")
    memory_map.begin("a", Location.REMOTE, 4096, replica_nodes=("n1", "n2", "n3"))
    memory_map.commit("a")
    record = memory_map.replace_replica("a", "n2", "n9")
    assert record.replica_nodes == ("n1", "n9", "n3")


def test_metadata_grows_with_entries():
    memory_map = DisaggregatedMemoryMap("vm-1")
    empty = memory_map.metadata_bytes()
    for i in range(100):
        memory_map.begin(i, Location.DISK, 4096)
        memory_map.commit(i)
    assert memory_map.metadata_bytes() > empty


def test_paper_scalability_example():
    """Section IV-C: ~5 GB of map per node for 2 TB, ~25 GB for 10 TB."""
    two_tb = map_overhead_bytes(2 * TiB)
    ten_tb = map_overhead_bytes(10 * TiB)
    assert 4 * GiB <= two_tb <= 6 * GiB
    assert 20 * GiB <= ten_tb <= 30 * GiB
    assert ten_tb == 5 * two_tb
