"""Unit tests for retry/backoff/timeout semantics on network ops."""

import random

import pytest

from repro.net.errors import NetworkError, OpTimeout
from repro.net.retry import RetryPolicy, RetryStats, call_with_timeout, retrying
from repro.sim import Environment


class FlakyLink(NetworkError):
    """A distinct NetworkError subclass for retry_on narrowing tests."""


class TestRetryPolicy:
    def test_delays_grow_exponentially_and_cap(self):
        policy = RetryPolicy(max_attempts=8, base_delay=1e-3, multiplier=2.0,
                             max_delay=5e-3)
        assert policy.delay(1) == pytest.approx(1e-3)
        assert policy.delay(2) == pytest.approx(2e-3)
        assert policy.delay(3) == pytest.approx(4e-3)
        assert policy.delay(4) == pytest.approx(5e-3)  # capped
        assert policy.delay(7) == pytest.approx(5e-3)

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(base_delay=1e-3, jitter=0.5)
        rng = random.Random(7)
        for attempt in range(1, 4):
            base = RetryPolicy(base_delay=1e-3).delay(attempt)
            jittered = policy.delay(attempt, rng)
            assert 0.5 * base <= jittered <= 1.5 * base

    def test_jitter_without_rng_is_deterministic(self):
        policy = RetryPolicy(jitter=0.5)
        assert policy.delay(1) == policy.delay(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=3).delay(0)


class Flaky:
    """An operation that fails ``failures`` times before succeeding."""

    def __init__(self, env, failures, error=NetworkError):
        self.env = env
        self.failures = failures
        self.error = error
        self.calls = 0

    def attempt(self):
        self.calls += 1
        yield self.env.timeout(1e-6)
        if self.calls <= self.failures:
            raise self.error("transient #{}".format(self.calls))
        return "payload"


class TestRetrying:
    def test_first_try_success_costs_no_backoff(self):
        env = Environment()
        op = Flaky(env, failures=0)
        policy = RetryPolicy(base_delay=1.0)
        result = env.run(until=env.process(
            retrying(env, policy, op.attempt)
        ))
        assert result == "payload"
        assert op.calls == 1
        assert env.now == pytest.approx(1e-6)

    def test_retries_sleep_the_backoff_schedule(self):
        env = Environment()
        op = Flaky(env, failures=2)
        policy = RetryPolicy(max_attempts=4, base_delay=1e-3, multiplier=2.0)
        stats = RetryStats()
        result = env.run(until=env.process(
            retrying(env, policy, op.attempt, stats=stats)
        ))
        assert result == "payload"
        assert op.calls == 3
        # Two backoffs (1 ms, 2 ms) plus three 1 us attempts.
        assert env.now == pytest.approx(3e-3 + 3e-6)
        assert stats.snapshot() == {"attempts": 3, "retries": 2, "exhausted": 0}

    def test_exhaustion_reraises_last_error(self):
        env = Environment()
        op = Flaky(env, failures=99)
        stats = RetryStats()
        process = env.process(retrying(
            env, RetryPolicy(max_attempts=3), op.attempt, stats=stats
        ))
        with pytest.raises(NetworkError):
            env.run(until=process)
        assert op.calls == 3
        assert stats.exhausted == 1

    def test_non_retryable_errors_propagate_immediately(self):
        env = Environment()
        op = Flaky(env, failures=5, error=ValueError)
        process = env.process(retrying(
            env, RetryPolicy(max_attempts=4), op.attempt
        ))
        with pytest.raises(ValueError):
            env.run(until=process)
        assert op.calls == 1

    def test_retry_on_narrows_the_error_set(self):
        env = Environment()
        op = Flaky(env, failures=1, error=FlakyLink)
        process = env.process(retrying(
            env, RetryPolicy(max_attempts=4), op.attempt,
            retry_on=(OpTimeout,),
        ))
        with pytest.raises(FlakyLink):
            env.run(until=process)
        assert op.calls == 1


class TestCallWithTimeout:
    @staticmethod
    def slow(env, duration, log=None):
        try:
            yield env.timeout(duration)
        finally:
            if log is not None:
                log.append(env.now)
        return "done"

    def test_completes_within_deadline(self):
        env = Environment()
        result = env.run(until=env.process(
            call_with_timeout(env, self.slow(env, 1.0), timeout=2.0)
        ))
        assert result == "done"
        assert env.now == pytest.approx(1.0)

    def test_deadline_raises_op_timeout(self):
        env = Environment()
        log = []
        process = env.process(call_with_timeout(
            env, self.slow(env, 5.0, log), timeout=1.0, what="slow-read"
        ))
        with pytest.raises(OpTimeout) as caught:
            env.run(until=process)
        assert env.now == pytest.approx(1.0)
        assert "slow-read" in str(caught.value)
        # The child was interrupted at the deadline: its cleanup ran.
        assert log == [pytest.approx(1.0)]

    def test_operation_failure_propagates(self):
        env = Environment()

        def failing():
            yield env.timeout(0.1)
            raise NetworkError("boom")

        process = env.process(call_with_timeout(env, failing(), timeout=1.0))
        with pytest.raises(NetworkError):
            env.run(until=process)

    def test_rejects_non_positive_timeout(self):
        env = Environment()
        with pytest.raises(ValueError):
            list(call_with_timeout(env, self.slow(env, 1.0), timeout=0.0))
