"""Unit tests for the cluster fabric."""

import pytest

from repro.hw.latency import KiB
from repro.net import Fabric, LinkDown, RemoteNodeDown
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def fabric(env):
    fabric = Fabric(env)
    for node in ("a", "b", "c"):
        fabric.add_node(node)
    return fabric


def run_transfer(env, fabric, src, dst, nbytes):
    def mover():
        yield from fabric.transfer(src, dst, nbytes)
        return env.now

    return env.run(until=env.process(mover()))


def test_duplicate_node_rejected(env, fabric):
    with pytest.raises(ValueError):
        fabric.add_node("a")


def test_transfer_time(env, fabric):
    elapsed = run_transfer(env, fabric, "a", "b", 4 * KiB)
    expected = fabric.spec.rdma_latency + 4 * KiB / fabric.spec.bandwidth
    assert elapsed == pytest.approx(expected)
    assert fabric.total_bytes == 4 * KiB
    assert fabric.nic("a").bytes_sent == 4 * KiB
    assert fabric.nic("b").bytes_received == 4 * KiB


def test_transfers_from_same_sender_serialize(env, fabric):
    finish = []

    def mover(dst):
        yield from fabric.transfer("a", dst, 1024 * KiB)
        finish.append(env.now)

    env.process(mover("b"))
    env.process(mover("c"))
    env.run()
    single = fabric.transfer_time(1024 * KiB)
    assert finish[0] == pytest.approx(single)
    assert finish[1] == pytest.approx(2 * single)


def test_transfers_between_disjoint_pairs_parallel(env, fabric):
    finish = []

    def mover(src, dst):
        yield from fabric.transfer(src, dst, 1024 * KiB)
        finish.append(env.now)

    env.process(mover("a", "b"))
    env.process(mover("c", "a"))  # different lanes: a.tx vs a.rx
    env.run()
    assert finish[0] == pytest.approx(finish[1])


def test_transfer_to_down_node_fails(env, fabric):
    fabric.set_node_down("b")

    def mover():
        with pytest.raises(RemoteNodeDown):
            yield from fabric.transfer("a", "b", 4 * KiB)
        return True

    assert env.run(until=env.process(mover()))


def test_transfer_over_down_link_fails(env, fabric):
    fabric.set_link_down("a", "b")

    def mover():
        with pytest.raises(LinkDown):
            yield from fabric.transfer("a", "b", 4 * KiB)
        return True

    assert env.run(until=env.process(mover()))


def test_link_partition_is_symmetric_by_default(env, fabric):
    fabric.set_link_down("a", "b")
    assert not fabric.is_reachable("a", "b")
    assert not fabric.is_reachable("b", "a")
    assert fabric.is_reachable("a", "c")


def test_asymmetric_partition(env, fabric):
    fabric.set_link_down("a", "b", symmetric=False)
    assert not fabric.is_reachable("a", "b")
    assert fabric.is_reachable("b", "a")


def test_midflight_crash_loses_transfer(env, fabric):
    def mover():
        with pytest.raises(RemoteNodeDown):
            yield from fabric.transfer("a", "b", 1024 * 1024 * KiB)
        return env.now

    def crasher():
        yield env.timeout(1e-6)
        fabric.set_node_down("b")

    mover_process = env.process(mover())
    env.process(crasher())
    env.run(until=mover_process)
    assert fabric.total_bytes == 0


def test_recovery_restores_reachability(env, fabric):
    fabric.set_node_down("b")
    fabric.set_node_down("b", down=False)
    assert fabric.is_reachable("a", "b")


def test_many_crossing_transfers_complete_without_deadlock(env, fabric):
    done = []

    def mover(src, dst):
        yield from fabric.transfer(src, dst, 256 * KiB)
        done.append((src, dst))

    pairs = [
        ("a", "b"), ("b", "a"), ("b", "c"), ("c", "b"),
        ("c", "a"), ("a", "c"), ("a", "b"), ("c", "b"),
    ]
    for src, dst in pairs:
        env.process(mover(src, dst))
    env.run()
    assert len(done) == len(pairs)
