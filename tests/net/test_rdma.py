"""Unit tests for the RDMA verbs layer."""

import pytest

from repro.hw.latency import KiB, MiB
from repro.net import ConnectionFailed, Fabric, QueuePair, RdmaDevice
from repro.net.rdma import RemoteAccessError
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def pair(env):
    fabric = Fabric(env)
    a = RdmaDevice(env, fabric, "a")
    b = RdmaDevice(env, fabric, "b")
    return fabric, a, b


def run(env, generator):
    return env.run(until=env.process(generator))


def test_registration_costs_time(env, pair):
    _fabric, a, _b = pair

    def register():
        region = yield from a.register_memory(1 * MiB)
        return region, env.now

    region, elapsed = run(env, register())
    assert elapsed == pytest.approx(a.fabric.spec.registration_time)
    assert region.valid
    assert a.registered_bytes == 1 * MiB


def test_registration_rejects_nonpositive(env, pair):
    _fabric, a, _b = pair
    with pytest.raises(ValueError):
        run(env, a.register_memory(0))


def test_deregister_revokes(env, pair):
    _fabric, a, _b = pair

    def scenario():
        region = yield from a.register_memory(1 * MiB)
        a.deregister_memory(region)
        return region

    region = run(env, scenario())
    assert not region.valid
    assert a.registered_bytes == 0


def test_connect_creates_ready_qp(env, pair):
    _fabric, a, b = pair

    def scenario():
        qp = yield from a.connect(b)
        return qp

    qp = run(env, scenario())
    assert qp.state == QueuePair.STATE_READY
    assert qp.remote is b


def test_connect_is_cached(env, pair):
    _fabric, a, b = pair

    def scenario():
        first = yield from a.connect(b)
        second = yield from a.connect(b)
        return first is second

    assert run(env, scenario())


def test_connect_to_down_node_fails(env, pair):
    fabric, a, b = pair
    fabric.set_node_down("b")

    def scenario():
        with pytest.raises(ConnectionFailed):
            yield from a.connect(b)
        return True

    assert run(env, scenario())


def test_one_sided_write_and_read(env, pair):
    _fabric, a, b = pair

    def scenario():
        region = yield from b.register_memory(1 * MiB)
        qp = yield from a.connect(b)
        start = env.now
        yield from qp.write(region, 4 * KiB)
        write_time = env.now - start
        start = env.now
        yield from qp.read(region, 4 * KiB)
        read_time = env.now - start
        return write_time, read_time, qp.ops_completed

    write_time, read_time, ops = run(env, scenario())
    spec = a.fabric.spec
    expected = (
        spec.per_message_overhead + spec.rdma_latency + 4 * KiB / spec.bandwidth
    )
    assert write_time == pytest.approx(expected)
    assert read_time == pytest.approx(expected)
    assert ops == 2


def test_write_to_revoked_region_fails(env, pair):
    _fabric, a, b = pair

    def scenario():
        region = yield from b.register_memory(1 * MiB)
        qp = yield from a.connect(b)
        b.deregister_memory(region)
        with pytest.raises(RemoteAccessError):
            yield from qp.write(region, 4 * KiB)
        return True

    assert run(env, scenario())


def test_write_beyond_region_fails(env, pair):
    _fabric, a, b = pair

    def scenario():
        region = yield from b.register_memory(4 * KiB)
        qp = yield from a.connect(b)
        with pytest.raises(RemoteAccessError):
            yield from qp.write(region, 8 * KiB)
        return True

    assert run(env, scenario())


def test_write_to_foreign_region_fails(env, pair):
    fabric, a, b = pair
    c = RdmaDevice(env, fabric, "c")

    def scenario():
        region = yield from c.register_memory(1 * MiB)
        qp = yield from a.connect(b)
        with pytest.raises(RemoteAccessError):
            yield from qp.write(region, 4 * KiB)
        return True

    assert run(env, scenario())


def test_peer_crash_moves_qp_to_error(env, pair):
    fabric, a, b = pair

    def scenario():
        region = yield from b.register_memory(1 * MiB)
        qp = yield from a.connect(b)
        fabric.set_node_down("b")
        with pytest.raises(Exception):
            yield from qp.write(region, 4 * KiB)
        assert qp.state == QueuePair.STATE_ERROR
        # Further ops fail fast with ConnectionFailed.
        with pytest.raises(ConnectionFailed):
            yield from qp.write(region, 4 * KiB)
        return True

    assert run(env, scenario())


def test_send_recv_delivery(env, pair):
    _fabric, a, b = pair

    def sender():
        qp = yield from a.connect(b)
        yield from qp.send({"op": "ping"}, 128)

    def receiver():
        message = yield b.recv()
        return message

    env.process(sender())
    message = run(env, receiver())
    assert message.body == {"op": "ping"}
    assert message.src == "a"


def test_send_slower_than_one_sided_write(env, pair):
    _fabric, a, b = pair

    def scenario():
        region = yield from b.register_memory(1 * MiB)
        qp = yield from a.connect(b)
        start = env.now
        yield from qp.write(region, 4 * KiB)
        write_time = env.now - start
        start = env.now
        yield from qp.send("payload", 4 * KiB)
        send_time = env.now - start
        return write_time, send_time

    write_time, send_time = run(env, scenario())
    assert send_time > write_time


def test_crash_method_clears_state(env, pair):
    _fabric, a, b = pair

    def scenario():
        region = yield from b.register_memory(1 * MiB)
        qp = yield from a.connect(b)
        b.crash()
        assert not region.valid
        assert qp.state == QueuePair.STATE_ERROR
        return True

    assert run(env, scenario())
