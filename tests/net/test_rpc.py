"""Unit tests for the Accelio-style batched RPC layer."""

import pytest

from repro.hw.latency import KiB, MiB
from repro.net import Fabric, RdmaDevice, RpcEndpoint
from repro.sim import Environment


@pytest.fixture
def setup():
    env = Environment()
    fabric = Fabric(env)
    a = RdmaDevice(env, fabric, "a")
    b = RdmaDevice(env, fabric, "b")
    return env, fabric, a, b


def run(env, generator):
    return env.run(until=env.process(generator))


def test_message_count_ceiling(setup):
    env, _fabric, a, _b = setup
    endpoint = RpcEndpoint(a, message_bytes=8 * KiB)
    assert endpoint.message_count(0) == 0
    assert endpoint.message_count(1) == 1
    assert endpoint.message_count(8 * KiB) == 1
    assert endpoint.message_count(8 * KiB + 1) == 2
    assert endpoint.message_count(1 * MiB) == 128


def test_invalid_parameters(setup):
    _env, _fabric, a, _b = setup
    with pytest.raises(ValueError):
        RpcEndpoint(a, message_bytes=0)
    with pytest.raises(ValueError):
        RpcEndpoint(a, message_bytes=2 * MiB)
    with pytest.raises(ValueError):
        RpcEndpoint(a, window=0)


def test_batched_transfer_faster_than_unbatched(setup):
    env, _fabric, a, b = setup
    unbatched = RpcEndpoint(a, message_bytes=8 * KiB, window=1)
    batched = RpcEndpoint(a, message_bytes=8 * KiB, window=16)

    def scenario():
        qp = yield from a.connect(b)
        start = env.now
        yield from unbatched.transfer(qp, 1 * MiB)
        unbatched_time = env.now - start
        start = env.now
        yield from batched.transfer(qp, 1 * MiB)
        batched_time = env.now - start
        return unbatched_time, batched_time

    unbatched_time, batched_time = run(env, scenario())
    assert batched_time < unbatched_time
    # 128 messages vs 8 windows: fixed costs dominate the gap.
    assert unbatched.messages_sent == 128
    assert batched.messages_sent == 128
    assert batched.windows_sent == 8


def test_transfer_direction_read(setup):
    env, fabric, a, b = setup
    endpoint = RpcEndpoint(a, window=4)

    def scenario():
        qp = yield from a.connect(b)
        yield from endpoint.transfer(qp, 64 * KiB, direction="read")
        return True

    assert run(env, scenario())
    # Data flowed b -> a.
    assert fabric.nic("b").bytes_sent == 64 * KiB


def test_transfer_rejects_bad_direction(setup):
    env, _fabric, a, b = setup
    endpoint = RpcEndpoint(a)

    def scenario():
        qp = yield from a.connect(b)
        with pytest.raises(ValueError):
            yield from endpoint.transfer(qp, 1, direction="sideways")
        return True

    assert run(env, scenario())


def test_zero_byte_transfer_is_free(setup):
    env, _fabric, a, b = setup
    endpoint = RpcEndpoint(a)

    def scenario():
        qp = yield from a.connect(b)
        start = env.now
        yield from endpoint.transfer(qp, 0)
        return env.now - start

    assert run(env, scenario()) == 0.0


def test_time_estimate_matches_simulation(setup):
    env, _fabric, a, b = setup
    endpoint = RpcEndpoint(a, message_bytes=8 * KiB, window=8)

    def scenario():
        qp = yield from a.connect(b)
        start = env.now
        yield from endpoint.transfer(qp, 256 * KiB)
        return env.now - start

    simulated = run(env, scenario())
    estimate = endpoint.transfer_time_estimate(256 * KiB)
    assert simulated == pytest.approx(estimate, rel=0.05)
