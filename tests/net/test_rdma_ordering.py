"""RC queue-pair ordering semantics (paper Section IV-G).

"RDMA provides a reliable in-order sequence of messages ... RC QP
guarantees that messages are delivered from a requester to a responder
at most once as well as in order."  These tests pin the in-order,
exactly-once properties the consistency design relies on.
"""

import pytest

from repro.hw.latency import KiB
from repro.net import Fabric, RdmaDevice
from repro.sim import Environment


@pytest.fixture
def setup():
    env = Environment()
    fabric = Fabric(env)
    a = RdmaDevice(env, fabric, "a")
    b = RdmaDevice(env, fabric, "b")
    return env, fabric, a, b


def test_sends_deliver_in_issue_order(setup):
    env, _fabric, a, b = setup

    def sender():
        qp = yield from a.connect(b)
        for sequence in range(10):
            yield from qp.send({"seq": sequence}, 1 * KiB)

    def receiver():
        received = []
        for _ in range(10):
            message = yield b.recv()
            received.append(message.body["seq"])
        return received

    env.process(sender())
    received = env.run(until=env.process(receiver()))
    assert received == list(range(10))


def test_one_sided_ops_complete_in_issue_order(setup):
    env, _fabric, a, b = setup
    completions = []

    def writer():
        region = yield from b.register_memory(1024 * KiB)
        qp = yield from a.connect(b)
        for sequence, nbytes in enumerate((64 * KiB, 1 * KiB, 32 * KiB)):
            yield from qp.write(region, nbytes)
            completions.append(sequence)

    env.run(until=env.process(writer()))
    # A single requester's operations on one RC QP complete in order,
    # even though the payloads have very different wire times.
    assert completions == [0, 1, 2]


def test_messages_delivered_exactly_once(setup):
    env, _fabric, a, b = setup

    def sender():
        qp = yield from a.connect(b)
        yield from qp.send("only-once", 128)

    env.process(sender())

    def drain():
        first = yield b.recv()
        return first

    message = env.run(until=env.process(drain()))
    assert message.body == "only-once"
    assert len(b.inbox.items) == 0  # nothing duplicated


def test_two_requesters_interleave_but_each_stays_ordered(setup):
    env, fabric, a, b = setup
    c = RdmaDevice(env, fabric, "c")
    order = {"a": [], "c": []}

    def sender(device, tag):
        qp = yield from device.connect(b)
        for sequence in range(5):
            yield from qp.send({"tag": tag, "seq": sequence}, 4 * KiB)

    def receiver():
        for _ in range(10):
            message = yield b.recv()
            order[message.body["tag"]].append(message.body["seq"])

    env.process(sender(a, "a"))
    env.process(sender(c, "c"))
    env.run(until=env.process(receiver()))
    assert order["a"] == list(range(5))
    assert order["c"] == list(range(5))
