"""Tests for the oversubscribed-fabric core model."""

import pytest

from repro.hw.latency import KiB
from repro.net import Fabric
from repro.sim import Environment


def build(core_concurrency):
    env = Environment()
    fabric = Fabric(env, core_concurrency=core_concurrency)
    for i in range(8):
        fabric.add_node("n{}".format(i))
    return env, fabric


def run_parallel_transfers(env, fabric, pairs, nbytes=1024 * KiB):
    finished = []

    def mover(src, dst):
        yield from fabric.transfer(src, dst, nbytes)
        finished.append(env.now)

    for src, dst in pairs:
        env.process(mover(src, dst))
    env.run()
    return max(finished)


DISJOINT_PAIRS = [("n0", "n1"), ("n2", "n3"), ("n4", "n5"), ("n6", "n7")]


def test_nonblocking_core_runs_disjoint_flows_in_parallel():
    env, fabric = build(core_concurrency=0)
    makespan = run_parallel_transfers(env, fabric, DISJOINT_PAIRS)
    assert makespan == pytest.approx(fabric.transfer_time(1024 * KiB))


def test_oversubscribed_core_serializes_excess_flows():
    env, fabric = build(core_concurrency=2)
    makespan = run_parallel_transfers(env, fabric, DISJOINT_PAIRS)
    single = fabric.transfer_time(1024 * KiB)
    assert makespan == pytest.approx(2 * single)


def test_core_capacity_one_fully_serializes():
    env, fabric = build(core_concurrency=1)
    makespan = run_parallel_transfers(env, fabric, DISJOINT_PAIRS)
    assert makespan == pytest.approx(4 * fabric.transfer_time(1024 * KiB))


def test_no_deadlock_with_core_and_crossing_flows():
    env, fabric = build(core_concurrency=2)
    pairs = [("n0", "n1"), ("n1", "n0"), ("n1", "n2"), ("n2", "n1"),
             ("n2", "n0"), ("n0", "n2")]
    makespan = run_parallel_transfers(env, fabric, pairs, nbytes=64 * KiB)
    assert makespan > 0


def test_cluster_config_wires_core_concurrency():
    from repro.core import ClusterConfig, DisaggregatedCluster

    cluster = DisaggregatedCluster.build(
        ClusterConfig(num_nodes=2, fabric_core_concurrency=1, seed=1)
    )
    assert cluster.fabric._core is not None
    assert cluster.fabric._core.capacity == 1
