"""Unit tests for failure injection."""

import pytest

from repro.net import Fabric, FailureInjector
from repro.sim import Environment


@pytest.fixture
def setup():
    env = Environment()
    fabric = Fabric(env)
    for node in ("a", "b"):
        fabric.add_node(node)
    return env, fabric, FailureInjector(env, fabric)


def test_crash_and_recover(setup):
    env, fabric, injector = setup
    injector.crash_node("a")
    assert fabric.is_node_down("a")
    injector.recover_node("a")
    assert not fabric.is_node_down("a")
    kinds = [kind for _t, kind, _d in injector.log]
    assert kinds == ["crash", "recover"]


def test_crash_listeners_invoked(setup):
    _env, _fabric, injector = setup
    crashed = []
    injector.on_crash(crashed.append)
    injector.crash_node("b")
    assert crashed == ["b"]


def test_scheduled_crash_fires_at_time(setup):
    env, fabric, injector = setup
    injector.schedule_crash("a", at=5.0)
    env.run(until=4.0)
    assert not fabric.is_node_down("a")
    env.run(until=6.0)
    assert fabric.is_node_down("a")
    assert injector.log[0][0] == 5.0


def test_scheduled_recovery(setup):
    env, fabric, injector = setup
    injector.crash_node("a")
    injector.schedule_recovery("a", at=3.0)
    env.run()
    assert not fabric.is_node_down("a")


def test_partition_and_heal(setup):
    env, fabric, injector = setup
    injector.partition_link("a", "b")
    assert not fabric.is_reachable("a", "b")
    injector.heal_link("a", "b")
    assert fabric.is_reachable("a", "b")


def test_scheduled_partition_with_heal(setup):
    env, fabric, injector = setup
    injector.schedule_partition("a", "b", at=1.0, heal_at=2.0)
    env.run(until=1.5)
    assert not fabric.is_reachable("a", "b")
    env.run(until=3.0)
    assert fabric.is_reachable("a", "b")
