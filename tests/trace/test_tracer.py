"""Unit tests for the tracer, null tracer and ambient sessions."""

import pytest

from repro.sim import Environment
from repro.trace import EVENT_NAMES, NULL_TRACER, Tracer
from repro.trace import runtime


def test_environment_gets_null_tracer_outside_sessions():
    env = Environment()
    assert env.tracer is NULL_TRACER
    assert env.tracer.enabled is False
    # Every null operation is an accepted no-op.
    assert env.tracer.begin("net.send") is None
    assert env.tracer.end(None) is None
    assert env.tracer.instant("tier.hit") is None
    assert env.tracer.latency("tier", "sm.put", 1e-6) is None


def test_environment_gets_live_tracer_inside_session():
    with runtime.session() as active:
        env = Environment()
        assert env.tracer.enabled is True
        assert env.tracer in active.tracers
    assert Environment().tracer is NULL_TRACER


def test_nested_sessions_are_rejected():
    with runtime.session():
        with pytest.raises(RuntimeError):
            runtime.start()
    with pytest.raises(RuntimeError):
        runtime.stop()


def test_span_wire_shape():
    env = Environment()
    tracer = Tracer(env)
    span = tracer.begin("net.send", src="a", dst="b", nbytes=64)
    env.now = 2.5  # simulated time advances
    event = tracer.end(span, ok=True)
    assert event == {
        "name": "net.send",
        "ph": "X",
        "ts": 0.0,
        "dur": 2.5,
        "track": "main",
        "seq": 0,
        "args": {"src": "a", "dst": "b", "nbytes": 64, "ok": True},
    }
    assert tracer.events_json() == [event]


def test_instant_wire_shape_and_seq_monotonicity():
    env = Environment()
    tracer = Tracer(env)
    first = tracer.instant("fault.inject", kind="crash", node="n1")
    second = tracer.instant("fault.recover", kind="reboot", node="n1")
    assert first["ph"] == "i" and first["dur"] == 0.0
    assert [first["seq"], second["seq"]] == [0, 1]


def test_track_is_the_active_process_name():
    env = Environment()
    tracer = Tracer(env)
    seen = {}

    def proc():
        seen["event"] = tracer.instant("tier.hit", tier="sm", page=1)
        return
        yield

    env.run(until=env.process(proc(), name="worker:7"))
    assert seen["event"]["track"] == "worker:7"


def test_unknown_event_names_are_rejected():
    tracer = Tracer(Environment())
    with pytest.raises(ValueError):
        tracer.begin("page.invalid")
    with pytest.raises(ValueError):
        tracer.instant("made.up")


def test_filter_drops_events_but_keeps_histograms():
    tracer = Tracer(Environment(), filter=("net", "migrate"))
    assert tracer.begin("tier.hit", tier="sm") is None
    assert tracer.instant("fault.inject", kind="crash") is None
    span = tracer.begin("net.send", src="a", dst="b")
    assert span is not None
    tracer.end(span)
    tracer.latency("tier", "sm.put", 1e-6)  # unaffected by the filter
    assert [event["name"] for event in tracer.events_json()] == ["net.send"]
    assert tracer.histograms.get("tier", "sm.put").total == 1


def test_filter_rejects_unknown_names_too():
    tracer = Tracer(Environment(), filter=("net",))
    with pytest.raises(ValueError):
        tracer.instant("not.a.name")


def test_taxonomy_prefixes_are_the_documented_families():
    assert {name.split(".", 1)[0] for name in EVENT_NAMES} == {
        "page", "tier", "net", "fault", "migrate", "ec", "flatpath",
        "alloc", "serve", "admit",
    }


def test_session_merges_histograms_across_environments():
    with runtime.session() as active:
        first = Environment()
        second = Environment()
        first.tracer.latency("tier", "sm.put", 1e-6)
        second.tracer.latency("tier", "sm.put", 2e-6)
    merged = active.histograms()
    assert merged.get("tier", "sm.put").total == 2
