"""Golden-trace determinism through the experiment engine.

The engine promise extended to traces: the same (spec, seed) sweep
yields byte-identical trace artifacts whether the cells ran serially
or fanned out across worker processes, and whatever the machine.
"""

import pytest

from repro.experiments import engine
from repro.trace import TraceAnalyzer, digest, to_chrome, validate_chrome

EXPERIMENT = "resilience_recovery"
SCALE = 0.05


@pytest.fixture(scope="module")
def serial_run():
    return engine.run_experiment(EXPERIMENT, scale=SCALE, seed=0, jobs=1,
                                 trace=True)


def test_serial_and_parallel_traces_are_identical(serial_run):
    parallel = engine.run_experiment(EXPERIMENT, scale=SCALE, seed=0, jobs=2,
                                     trace=True)
    assert digest(serial_run.trace_events) == digest(parallel.trace_events)
    assert serial_run.trace_events == parallel.trace_events
    # And the payloads agree with the untraced engine path.
    assert serial_run.payloads == parallel.payloads


def _without_latency_stats(doc):
    """Traced payloads additionally carry latency rows; strip them so
    the *simulation outcome* can be compared against an untraced run."""
    if isinstance(doc, dict):
        return {
            key: _without_latency_stats(value)
            for key, value in doc.items()
            if key != "latency_stats"
        }
    if isinstance(doc, list):
        return [_without_latency_stats(item) for item in doc]
    return doc


def test_tracing_does_not_perturb_the_simulation(serial_run):
    untraced = engine.run_experiment(EXPERIMENT, scale=SCALE, seed=0, jobs=1)
    assert _without_latency_stats(untraced.payloads) == _without_latency_stats(
        serial_run.payloads
    )
    assert untraced.result == serial_run.result
    assert untraced.trace_events == []


def test_trace_events_are_tagged_by_cell(serial_run):
    cells = {event["cell"] for event in serial_run.trace_events}
    assert cells <= set(range(len(serial_run.specs)))
    # The faulted cells traced fault injections; the rate-0 cells none.
    faulted = {
        event["cell"] for event in serial_run.trace_events
        if event["name"] == "fault.inject"
    }
    rates = {
        index: spec.options["rate"]
        for index, spec in enumerate(serial_run.specs)
    }
    assert faulted == {index for index, rate in rates.items() if rate > 0}


def test_sweep_trace_passes_the_analyzer(serial_run):
    TraceAnalyzer(serial_run.trace_events).assert_ok()


def test_sweep_trace_exports_valid_chrome_document(serial_run):
    document = to_chrome(serial_run.trace_events, meta={"seed": 0})
    assert validate_chrome(document) == []
    # Round-tripping through the Chrome document preserves the verdict.
    TraceAnalyzer.from_chrome(document).assert_ok()


def test_trace_filter_restricts_the_taxonomy():
    run = engine.run_experiment(
        EXPERIMENT, scale=SCALE, seed=0, jobs=1, trace=True,
        trace_filter=("migrate", "fault"),
    )
    names = {event["name"] for event in run.trace_events}
    assert names
    assert all(
        name.startswith(("migrate.", "fault.")) for name in names
    )


def test_latency_rows_survive_the_worker_boundary(serial_run):
    assert serial_run.latency_rows, "traced cells must report latencies"
    for row in serial_run.latency_rows:
        assert {"backend", "workload", "fit", "category", "op",
                "count"} <= set(row)
    parallel = engine.run_experiment(EXPERIMENT, scale=SCALE, seed=0, jobs=2,
                                     trace=True)
    assert parallel.latency_rows == serial_run.latency_rows
