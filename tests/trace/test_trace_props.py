"""Property tests: traced runs satisfy the invariants, deterministically.

These are the lock on the tentpole: whatever workload, backend and
seeded fault schedule hypothesis draws, a traced simulation run must
(a) produce a trace the analyzer certifies clean — spans nest, no page
is served by a crashed node, every migration reservation closes, retry
budgets hold — and (b) produce the *same* trace when repeated with the
same (spec, seed).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.runner import run_paging_workload
from repro.faults.schedule import random_schedule
from repro.sim.rng import RngStreams
from repro.trace import TraceAnalyzer, digest
from repro.trace import runtime
from repro.workloads.ml import ML_WORKLOADS

SPEC = ML_WORKLOADS["logistic_regression"].with_overrides(
    pages=192, iterations=1
)

#: Fault schedules only touch the measured node's memory-server peers,
#: mirroring the resilience experiment (the paper's virtual servers
#: survive their *own* crash trivially by vanishing).
PEER_NODES = ("node1", "node2", "node3")

#: Horizon covering the whole run at this spec size.
HORIZON = 0.2


def build_schedule(seed, rate):
    if rate <= 0:
        return None
    rng = RngStreams(seed).stream("trace-props/rate={:g}".format(rate))
    return random_schedule(
        rng, PEER_NODES, HORIZON, rate, max_concurrent_down=2
    )


def traced_run(backend, seed, rate):
    with runtime.session() as active:
        result = run_paging_workload(
            backend,
            SPEC,
            0.5,
            seed=seed,
            fault_schedule=build_schedule(seed, rate),
        )
    return result, active.events_json()


@given(
    backend=st.sampled_from(["fastswap", "infiniswap"]),
    seed=st.integers(min_value=0, max_value=50),
    rate=st.sampled_from([0.0, 3.0]),
)
@settings(max_examples=10, deadline=None)
def test_traced_runs_satisfy_all_invariants(backend, seed, rate):
    _result, events = traced_run(backend, seed, rate)
    assert events, "a paging run must emit events"
    TraceAnalyzer(events).assert_ok()
    names = {event["name"] for event in events}
    assert "page.fault" in names
    assert "net.send" in names


@given(
    seed=st.integers(min_value=0, max_value=50),
    rate=st.sampled_from([0.0, 3.0]),
)
@settings(max_examples=6, deadline=None)
def test_identical_runs_produce_identical_digests(seed, rate):
    first_result, first = traced_run("fastswap", seed, rate)
    second_result, second = traced_run("fastswap", seed, rate)
    assert digest(first) == digest(second)
    assert first == second
    assert first_result.latency_stats == second_result.latency_stats


@given(seed=st.integers(min_value=0, max_value=50))
@settings(max_examples=4, deadline=None)
def test_fault_free_traces_contain_no_fault_or_retry_events(seed):
    _result, events = traced_run("fastswap", seed, 0.0)
    names = {event["name"] for event in events}
    assert not names & {"fault.inject", "fault.recover", "net.retry",
                        "net.timeout"}


def test_traced_run_reports_latency_histograms():
    result, _events = traced_run("fastswap", 3, 0.0)
    rows = {(row["category"], row["op"]) for row in result.latency_stats}
    assert ("fault", "major") in rows
    assert any(category == "net" for category, _op in rows)
    assert any(category == "tier" for category, _op in rows)
    # The rows also land on the run context, attributed to the run.
    context_rows = result.context.latency_rows()
    assert len(context_rows) == len(result.latency_stats)
    assert all(row["backend"] == "fastswap" for row in context_rows)


def test_untraced_run_records_no_latency_rows():
    result = run_paging_workload("fastswap", SPEC, 0.5, seed=3)
    assert result.latency_stats == []
    assert result.context.latency_rows() == []
