"""Unit tests for the trace-invariant analyzer (the test oracle)."""

import pytest

from repro.trace import TraceAnalyzer, TraceInvariantError, to_chrome


def wire(name, ts, dur=0.0, track="main", seq=None, cell=None, **args):
    event = {
        "name": name,
        "ph": "X" if dur or name in _SPAN_NAMES else "i",
        "ts": ts,
        "dur": dur,
        "track": track,
        "seq": seq if seq is not None else wire.counter,
        "args": args,
    }
    wire.counter += 1
    if cell is not None:
        event["cell"] = cell
    return event


wire.counter = 0
_SPAN_NAMES = {"page.fault", "tier.hit", "tier.put", "tier.demote",
               "net.send", "migrate.copy"}


@pytest.fixture(autouse=True)
def reset_counter():
    wire.counter = 0


# -- nesting -----------------------------------------------------------------


def test_properly_nested_spans_pass():
    events = [
        wire("page.fault", 0.0, dur=1.0, track="p", page=1),
        wire("tier.hit", 0.2, dur=0.5, track="p", tier="remote", page=1),
        wire("net.send", 0.3, dur=0.2, track="p", src="a", dst="b", ok=True),
        # A sibling beginning exactly where its predecessor ends is legal.
        wire("net.send", 0.5, dur=0.1, track="p", src="a", dst="b", ok=True),
    ]
    assert TraceAnalyzer(events).check() == []


def test_escaping_span_is_flagged():
    events = [
        wire("tier.hit", 0.0, dur=0.4, track="p", tier="remote", page=1),
        wire("net.send", 0.2, dur=0.9, track="p", src="a", dst="b", ok=True),
    ]
    violations = TraceAnalyzer(events).check()
    assert [v.invariant for v in violations] == ["nesting"]
    assert "escapes" in violations[0].message


def test_negative_duration_is_flagged():
    events = [wire("net.send", 1.0, dur=-0.5, track="p", ok=True)]
    assert [v.invariant for v in TraceAnalyzer(events).check()] == ["nesting"]


def test_spans_on_different_tracks_do_not_interact():
    events = [
        wire("tier.hit", 0.0, dur=0.4, track="p1", tier="sm", page=1),
        wire("net.send", 0.2, dur=0.9, track="p2", src="a", dst="b", ok=True),
    ]
    assert TraceAnalyzer(events).check() == []


# -- crash epochs ------------------------------------------------------------


def test_send_inside_down_window_is_flagged():
    events = [
        wire("fault.inject", 1.0, kind="crash", node="node1", until=2.0),
        wire("net.send", 1.2, dur=0.1, src="node0", dst="node1", ok=True),
        wire("fault.recover", 2.0, kind="reboot", node="node1"),
    ]
    violations = TraceAnalyzer(events).check()
    assert {v.invariant for v in violations} == {"crash-epoch"}
    # Both the begin and the end fall inside the window.
    assert len(violations) == 2


def test_send_after_reboot_passes():
    events = [
        wire("fault.inject", 1.0, kind="crash", node="node1", until=2.0),
        wire("fault.recover", 2.0, kind="reboot", node="node1"),
        wire("net.send", 2.5, dur=0.1, src="node0", dst="node1", ok=True),
    ]
    assert TraceAnalyzer(events).check() == []


def test_boundary_timestamps_race_legally():
    events = [
        wire("fault.inject", 1.0, kind="crash", node="node1", until=2.0),
        # Completing exactly at the crash instant is a legal race.
        wire("net.send", 0.8, dur=0.2, src="node0", dst="node1", ok=True),
        wire("fault.recover", 2.0, kind="reboot", node="node1"),
    ]
    assert TraceAnalyzer(events).check() == []


def test_server_loss_opens_unbounded_window():
    events = [
        wire("fault.inject", 1.0, kind="server_loss", node="node1"),
        wire("net.send", 99.0, dur=0.1, src="node1", dst="node0", ok=True),
    ]
    assert {v.invariant for v in TraceAnalyzer(events).check()} == {
        "crash-epoch"
    }


def test_failed_send_inside_down_window_is_fine():
    events = [
        wire("fault.inject", 1.0, kind="crash", node="node1", until=2.0),
        wire("net.send", 1.2, dur=0.1, src="node0", dst="node1", ok=False,
             error="RemoteNodeDown"),
        wire("fault.recover", 2.0, kind="reboot", node="node1"),
    ]
    assert TraceAnalyzer(events).check() == []


# -- migration pairing -------------------------------------------------------


def test_reserve_remap_pairs_pass():
    events = [
        wire("migrate.reserve", 0.0, key=["s", 1], src="a", dst="b"),
        wire("migrate.copy", 0.1, dur=0.2, key=["s", 1], src="a", dst="b"),
        wire("migrate.remap", 0.4, key=["s", 1], src="a", dst="b"),
        wire("migrate.reserve", 0.5, key=["s", 1], src="a", dst="c"),
        wire("migrate.abort", 0.6, key=["s", 1], reason="reserve-refused"),
    ]
    assert TraceAnalyzer(events).check() == []


def test_dangling_reservation_is_flagged():
    events = [wire("migrate.reserve", 0.0, key=["s", 1], src="a", dst="b")]
    violations = TraceAnalyzer(events).check()
    assert [v.invariant for v in violations] == ["migration-pairing"]
    assert "never remapped or aborted" in violations[0].message


def test_overlapping_reservations_are_flagged():
    events = [
        wire("migrate.reserve", 0.0, key=["s", 1], src="a", dst="b"),
        wire("migrate.reserve", 0.1, key=["s", 1], src="a", dst="c"),
        wire("migrate.remap", 0.2, key=["s", 1]),
    ]
    assert any(
        "overlapping" in v.message for v in TraceAnalyzer(events).check()
    )


def test_remap_without_reservation_is_flagged():
    events = [wire("migrate.remap", 0.0, key=["s", 1])]
    assert any(
        "without open reservation" in v.message
        for v in TraceAnalyzer(events).check()
    )


def test_distinct_keys_do_not_interact():
    events = [
        wire("migrate.reserve", 0.0, key=["s", 1]),
        wire("migrate.reserve", 0.1, key=["s", 2]),
        wire("migrate.remap", 0.2, key=["s", 1]),
        wire("migrate.abort", 0.3, key=["s", 2], reason="record-changed"),
    ]
    assert TraceAnalyzer(events).check() == []


# -- retry accounting --------------------------------------------------------


def test_retry_over_budget_is_flagged():
    events = [
        wire("fault.inject", 0.0, kind="link_flap", node="a", peer="b"),
        wire("net.retry", 0.1, attempt=4, max_attempts=4, error="LinkDown"),
    ]
    assert any(
        "exceeds the policy budget" in v.message
        for v in TraceAnalyzer(events).check()
    )


def test_retry_without_injected_fault_is_flagged():
    events = [wire("net.retry", 0.1, attempt=1, max_attempts=4,
                   error="LinkDown")]
    violations = TraceAnalyzer(events).check()
    assert any("no injected faults" in v.message for v in violations)


def test_failed_send_without_injected_fault_is_flagged():
    events = [
        wire("net.send", 0.1, dur=0.1, src="a", dst="b", ok=False,
             error="RemoteNodeDown"),
    ]
    assert any(
        "failed net.send" in v.message for v in TraceAnalyzer(events).check()
    )


def test_retries_with_injected_faults_pass():
    events = [
        wire("fault.inject", 0.0, kind="link_flap", node="a", peer="b",
             until=1.0),
        wire("net.retry", 0.1, attempt=1, max_attempts=4, error="LinkDown"),
        wire("net.timeout", 0.2, timeout_s=0.05, what="control:b"),
        wire("net.send", 0.3, dur=0.1, src="a", dst="b", ok=False,
             error="LinkDown"),
        wire("fault.recover", 1.0, kind="heal", node="a", peer="b"),
    ]
    assert TraceAnalyzer(events).check() == []


# -- cells are independent ---------------------------------------------------


def test_cells_are_checked_independently():
    # Cell 0 injects a fault; cell 1 does not.  The retry in cell 1 is
    # a violation even though cell 0 would excuse it.
    events = [
        wire("fault.inject", 0.0, kind="crash", node="n", cell=0),
        wire("net.retry", 0.1, attempt=1, max_attempts=4, cell=1,
             error="LinkDown"),
    ]
    violations = TraceAnalyzer(events).check()
    assert any("no injected faults" in v.message for v in violations)


# -- API surface -------------------------------------------------------------


def test_assert_ok_raises_with_details():
    events = [wire("migrate.reserve", 0.0, key=["s", 1])]
    analyzer = TraceAnalyzer(events)
    with pytest.raises(TraceInvariantError) as caught:
        analyzer.assert_ok()
    assert "migration-pairing" in str(caught.value)
    assert TraceAnalyzer([]).assert_ok() is not None


def test_summary_counts_names_and_extent():
    events = [
        wire("net.send", 0.0, dur=0.5, src="a", dst="b", ok=True),
        wire("net.send", 1.0, dur=0.25, src="a", dst="b", ok=True),
        wire("fault.inject", 0.2, kind="crash", node="b"),
    ]
    summary = TraceAnalyzer(events).summary()
    assert summary["events"] == 3
    assert summary["names"] == {"fault.inject": 1, "net.send": 2}
    assert summary["span_end_s"] == 1.25


def test_from_chrome_round_trip_preserves_verdicts():
    bad = [
        wire("fault.inject", 1.0, kind="crash", node="node1", until=2.0,
             cell=0),
        wire("net.send", 1.2, dur=0.1, src="node0", dst="node1", ok=True,
             cell=0),
        wire("migrate.reserve", 3.0, key=["s", 1], cell=1),
    ]
    direct = TraceAnalyzer(bad).check()
    round_tripped = TraceAnalyzer.from_chrome(to_chrome(bad)).check()
    assert sorted(v.invariant for v in direct) == sorted(
        v.invariant for v in round_tripped
    )
    good = [
        wire("fault.inject", 1.0, kind="crash", node="node1", until=2.0),
        wire("fault.recover", 2.0, kind="reboot", node="node1"),
        wire("net.send", 2.5, dur=0.1, src="node0", dst="node1", ok=True),
    ]
    assert TraceAnalyzer.from_chrome(to_chrome(good)).check() == []


def test_from_jsonl(tmp_path):
    from repro.trace import write_jsonl

    events = [wire("migrate.reserve", 0.0, key=["s", 1])]
    path = tmp_path / "trace.jsonl"
    write_jsonl(events, path)
    assert [
        v.invariant for v in TraceAnalyzer.from_jsonl(path).check()
    ] == ["migration-pairing"]


# -- allocation narration ----------------------------------------------------


def test_allocation_reserve_free_pairs_pass():
    events = [
        wire("alloc.reserve", 0.0, store="receive-pool:node2", key=1,
             nbytes=512),
        wire("alloc.reserve", 0.1, store="receive-pool:node2", key=2,
             nbytes=1024),
        wire("alloc.free", 0.2, store="receive-pool:node2", key=1),
        wire("alloc.free", 0.3, store="receive-pool:node2", key=2),
        # Re-reserving a freed key is a legal recycle.
        wire("alloc.reserve", 0.4, store="receive-pool:node2", key=1,
             nbytes=2048),
    ]
    assert TraceAnalyzer(events).check() == []


def test_double_reserve_same_key_is_flagged():
    events = [
        wire("alloc.reserve", 0.0, store="pool", key=7, nbytes=512),
        wire("alloc.reserve", 0.1, store="pool", key=7, nbytes=512),
    ]
    violations = TraceAnalyzer(events).check()
    assert [v.invariant for v in violations] == ["allocation"]
    assert "reserved twice" in violations[0].message


def test_free_without_reservation_is_flagged():
    events = [
        wire("alloc.reserve", 0.0, store="pool", key=7, nbytes=512),
        wire("alloc.free", 0.1, store="pool", key=7),
        wire("alloc.free", 0.2, store="pool", key=7),
    ]
    violations = TraceAnalyzer(events).check()
    assert [v.invariant for v in violations] == ["allocation"]
    assert "double free" in violations[0].message


def test_allocation_keys_are_scoped_per_store():
    events = [
        wire("alloc.reserve", 0.0, store="pool-a", key=1, nbytes=512),
        wire("alloc.reserve", 0.1, store="pool-b", key=1, nbytes=512),
        wire("alloc.free", 0.2, store="pool-a", key=1),
        wire("alloc.free", 0.3, store="pool-b", key=1),
    ]
    assert TraceAnalyzer(events).check() == []


def test_compaction_changing_live_bytes_is_flagged():
    events = [
        wire("alloc.compact", 0.0, dur=0.1, store="pool",
             live_before=4096, live_after=2048, moved_bytes=2048),
    ]
    violations = TraceAnalyzer(events).check()
    assert [v.invariant for v in violations] == ["allocation"]
    assert "changed live bytes" in violations[0].message


def test_compaction_negative_moved_bytes_is_flagged():
    events = [
        wire("alloc.compact", 0.0, dur=0.1, store="pool",
             live_before=4096, live_after=4096, moved_bytes=-1),
    ]
    violations = TraceAnalyzer(events).check()
    assert [v.invariant for v in violations] == ["allocation"]
    assert "negative moved" in violations[0].message


def test_conserving_compaction_passes():
    events = [
        wire("alloc.reserve", 0.0, store="pool", key=1, nbytes=4096),
        wire("alloc.compact", 0.5, dur=0.1, store="pool",
             live_before=4096, live_after=4096, moved_bytes=4096),
        wire("alloc.free", 1.0, store="pool", key=1),
    ]
    assert TraceAnalyzer(events).check() == []


# -- admission ---------------------------------------------------------------


def test_served_and_shed_disjoint_requests_pass():
    events = [
        wire("serve.request", 0.0, dur=0.01, qos="gold",
             tenant_class=0, request=0, accesses=3),
        wire("admit.shed", 0.02, qos="bestEffort",
             tenant_class=2, request=0),
        wire("serve.request", 0.03, dur=0.01, qos="bestEffort",
             tenant_class=2, request=1, accesses=3),
    ]
    assert TraceAnalyzer(events).check() == []


def test_shed_request_with_a_serve_span_is_flagged():
    events = [
        wire("admit.shed", 0.0, qos="bestEffort", tenant_class=2, request=7),
        wire("serve.request", 0.1, dur=0.01, qos="bestEffort",
             tenant_class=2, request=7, accesses=3),
    ]
    violations = TraceAnalyzer(events).check()
    assert [v.invariant for v in violations] == ["admission"]
    assert "shed yet acquired" in violations[0].message


def test_duplicate_shed_and_duplicate_serve_are_flagged():
    events = [
        wire("admit.shed", 0.0, qos="silver", tenant_class=1, request=3),
        wire("admit.shed", 0.1, qos="silver", tenant_class=1, request=3),
        wire("serve.request", 0.2, dur=0.01, qos="gold",
             tenant_class=0, request=3, accesses=1),
        wire("serve.request", 0.3, dur=0.01, qos="gold",
             tenant_class=0, request=3, accesses=1),
    ]
    violations = TraceAnalyzer(events).check()
    assert sorted(v.invariant for v in violations) == [
        "admission", "admission",
    ]
    messages = {v.message for v in violations}
    assert any("shed twice" in m for m in messages)
    assert any("served twice" in m for m in messages)


def test_request_ordinals_are_scoped_per_class():
    # The same ordinal in different classes is two different requests.
    events = [
        wire("admit.shed", 0.0, qos="bestEffort", tenant_class=2, request=0),
        wire("serve.request", 0.1, dur=0.01, qos="gold",
             tenant_class=0, request=0, accesses=1),
    ]
    assert TraceAnalyzer(events).check() == []
