"""Unit tests for the trace exporters and validators."""

import json

from repro.trace import (
    digest,
    load_jsonl,
    to_chrome,
    validate_chrome,
    write_chrome,
    write_jsonl,
)
from repro.trace.export import dumps_jsonl, validate_wire


def sample_events():
    return [
        {
            "name": "net.send", "ph": "X", "ts": 0.001, "dur": 2e-6,
            "track": "drive:node0", "seq": 0,
            "args": {"src": "node0", "dst": "node1", "nbytes": 4096,
                     "op": "data", "ok": True},
        },
        {
            "name": "fault.inject", "ph": "i", "ts": 0.002, "dur": 0.0,
            "track": "fault:0:crash", "seq": 1,
            "args": {"kind": "crash", "node": "node1", "until": 0.004},
        },
        {
            "name": "tier.hit", "ph": "X", "ts": 0.003, "dur": 1e-6,
            "track": "main", "seq": 2,
            "args": {"tier": "sm", "label": "page", "page": 17},
            "cell": 1,
        },
    ]


def test_digest_is_stable_and_order_sensitive():
    events = sample_events()
    assert digest(events) == digest(json.loads(json.dumps(events)))
    assert digest(events) != digest(list(reversed(events)))
    assert digest([]) == digest([])


def test_jsonl_round_trip(tmp_path):
    events = sample_events()
    path = tmp_path / "trace.jsonl"
    write_jsonl(events, path)
    assert load_jsonl(path) == events
    # One canonical object per line.
    lines = dumps_jsonl(events).splitlines()
    assert len(lines) == len(events)
    assert all(json.loads(line) for line in lines)


def test_chrome_document_structure():
    document = to_chrome(sample_events(), meta={"experiment": "fig7"})
    assert document["otherData"] == {"experiment": "fig7"}
    records = document["traceEvents"]
    # Two cells -> two process_name metadata events; three tracks.
    process_names = [
        r["args"]["name"] for r in records if r["name"] == "process_name"
    ]
    thread_names = [
        r["args"]["name"] for r in records if r["name"] == "thread_name"
    ]
    assert process_names == ["cell 0", "cell 1"]
    assert thread_names == ["drive:node0", "fault:0:crash", "main"]
    # Timestamps are microseconds; spans carry dur, instants a scope.
    span = next(r for r in records if r["name"] == "net.send")
    assert span["ts"] == 0.001 * 1e6 and span["dur"] == 2e-6 * 1e6
    assert span["cat"] == "net"
    instant = next(r for r in records if r["name"] == "fault.inject")
    assert instant["s"] == "t" and "dur" not in instant
    # Distinct cells map to distinct pids.
    tier = next(r for r in records if r["name"] == "tier.hit")
    assert tier["pid"] != span["pid"]


def test_chrome_document_validates(tmp_path):
    path = tmp_path / "trace.json"
    write_chrome(sample_events(), path, meta={"seed": 0})
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    assert validate_chrome(document) == []


def test_validate_chrome_flags_malformed_documents():
    assert validate_chrome([]) == ["document is not a JSON object"]
    assert validate_chrome({}) == ["traceEvents is missing or not an array"]
    problems = validate_chrome({"traceEvents": [
        {"ph": "Z"},
        {"ph": "X", "name": "", "pid": "x", "tid": 0, "ts": -1, "dur": None},
        {"ph": "i", "name": "ok", "pid": 1, "tid": 1, "ts": 0, "s": "bogus"},
    ]})
    assert any("unknown phase" in problem for problem in problems)
    assert any("missing name" in problem for problem in problems)
    assert any("pid must be an integer" in problem for problem in problems)
    assert any("ts must be a non-negative" in problem for problem in problems)
    assert any("dur must be a non-negative" in problem for problem in problems)
    assert any("bad instant scope" in problem for problem in problems)


def test_validate_wire():
    assert validate_wire(sample_events()) == []
    problems = validate_wire([
        {"name": "net.send"},
        {"name": "net.send", "ph": "B", "ts": 0, "dur": 0, "track": "t",
         "seq": 0, "args": {}},
        {"name": "net.send", "ph": "X", "ts": 0, "dur": -1, "track": "t",
         "seq": 1, "args": {}},
        "nope",
    ])
    assert len(problems) == 4
