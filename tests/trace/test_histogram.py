"""Unit tests for the log-bucketed latency histograms."""

import math

import pytest

from repro.trace import HistogramSet, LatencyHistogram


def test_bucket_boundaries_are_half_open_powers_of_two():
    histogram = LatencyHistogram(least=1.0, buckets=8)
    # Bucket 0 holds everything at or below least.
    assert histogram.bucket_index(0.0) == 0
    assert histogram.bucket_index(0.5) == 0
    assert histogram.bucket_index(1.0) == 0
    # Bucket i holds (least * 2**(i-1), least * 2**i].
    assert histogram.bucket_index(1.0000001) == 1
    assert histogram.bucket_index(2.0) == 1
    assert histogram.bucket_index(2.0000001) == 2
    assert histogram.bucket_index(4.0) == 2
    assert histogram.bucket_index(7.9) == 3
    assert histogram.bucket_index(8.0) == 3
    # Overflow clamps to the last bucket.
    assert histogram.bucket_index(1e12) == 7


def test_bound_matches_bucket_index():
    histogram = LatencyHistogram(least=1e-9, buckets=48)
    for index in range(histogram.buckets - 1):
        bound = histogram.bound(index)
        # A value exactly at the bound lands in the bucket it bounds.
        assert histogram.bucket_index(bound) == index
        # A value just past it lands in the next one.
        assert histogram.bucket_index(bound * 1.001) == index + 1
    assert histogram.bound(histogram.buckets - 1) == math.inf


def test_record_rejects_negative():
    histogram = LatencyHistogram()
    with pytest.raises(ValueError):
        histogram.record(-1e-9)


def test_mean_and_count():
    histogram = LatencyHistogram()
    for value in (1e-6, 2e-6, 3e-6):
        histogram.record(value)
    assert histogram.total == 3
    assert histogram.mean == pytest.approx(2e-6)


def test_percentile_brackets_exact_quantiles():
    """Estimates stay within the exact quantile's bucket (one octave)."""
    values = [1e-6 * (1.1 ** i) for i in range(200)]
    histogram = LatencyHistogram()
    for value in values:
        histogram.record(value)
    ordered = sorted(values)
    for fraction in (0.50, 0.90, 0.99, 0.999):
        exact = ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]
        estimate = histogram.percentile(fraction)
        # Interpolation keeps the estimate inside the bucket that holds
        # the exact quantile: never below its lower bound, never above
        # its upper bound.
        assert exact / 2.0 <= estimate <= exact * 2.0


def test_percentile_interpolates_within_bucket():
    histogram = LatencyHistogram(least=1.0, buckets=8)
    # 100 values in bucket 2, i.e. (2, 4].
    for _ in range(100):
        histogram.record(3.0)
    # The median rank is halfway through the bucket's mass: midpoint.
    assert histogram.percentile(0.5) == pytest.approx(3.0)
    assert histogram.percentile(0.25) == pytest.approx(2.5)
    assert histogram.percentile(1.0) == pytest.approx(4.0)


def test_percentile_accessors_are_monotone():
    histogram = LatencyHistogram()
    for i in range(1000):
        histogram.record(1e-6 * (1 + i))
    assert histogram.p50 <= histogram.p90 <= histogram.p99 <= histogram.p999
    assert histogram.snapshot()["p999_s"] == histogram.p999


def test_percentile_edge_cases():
    histogram = LatencyHistogram()
    assert histogram.percentile(0.5) == 0.0  # empty
    histogram.record(1e-3)
    assert histogram.percentile(0.0) <= histogram.percentile(1.0)
    with pytest.raises(ValueError):
        histogram.percentile(1.5)


def test_percentile_overflow_bucket_clamps_to_last_finite_bound():
    histogram = LatencyHistogram(least=1.0, buckets=4)
    for _ in range(10):
        histogram.record(1e9)
    assert histogram.percentile(0.5) == histogram.least * 2.0 ** (
        histogram.buckets - 2
    )


def test_merge_is_associative_and_commutative():
    def build(values):
        histogram = LatencyHistogram()
        for value in values:
            histogram.record(value)
        return histogram

    a = build([1e-6, 5e-6])
    b = build([2e-3, 7e-9])
    c = build([0.5, 1e-8, 3e-5])

    left = build([]).merge(a).merge(b).merge(c)
    right = build([]).merge(a).merge(b.copy().merge(c))
    swapped = build([]).merge(c).merge(b).merge(a)
    assert left.counts == right.counts == swapped.counts
    assert left.total == right.total == swapped.total
    assert left.sum == pytest.approx(right.sum) and left.sum == pytest.approx(
        swapped.sum
    )


def test_merge_rejects_shape_mismatch():
    with pytest.raises(ValueError):
        LatencyHistogram(buckets=8).merge(LatencyHistogram(buckets=16))


def test_json_round_trip():
    histogram = LatencyHistogram()
    for value in (1e-7, 3e-4, 2.0):
        histogram.record(value)
    clone = LatencyHistogram.from_json(histogram.to_json())
    assert clone.counts == histogram.counts
    assert clone.total == histogram.total
    assert clone.sum == histogram.sum


def test_histogram_set_rows_are_sorted_and_flat():
    collection = HistogramSet()
    collection.record("tier", "remote.get", 1e-5)
    collection.record("net", "send.data", 2e-6)
    collection.record("net", "send.data", 4e-6)
    rows = collection.rows()
    assert [(row["category"], row["op"]) for row in rows] == [
        ("net", "send.data"), ("tier", "remote.get"),
    ]
    assert rows[0]["count"] == 2
    assert {"mean_s", "p50_s", "p90_s", "p99_s"} <= set(rows[0])


def test_histogram_set_merge_and_round_trip():
    first = HistogramSet()
    first.record("tier", "sm.put", 1e-6)
    second = HistogramSet()
    second.record("tier", "sm.put", 2e-6)
    second.record("fault", "major", 1e-3)
    first.merge(second)
    assert first.get("tier", "sm.put").total == 2
    assert first.get("fault", "major").total == 1
    clone = HistogramSet.from_json(first.to_json())
    assert clone.rows() == first.rows()
