"""``repro.trace`` (execution traces) vs ``repro.workloads.traces``
(page-reference traces): both import and work side by side."""

import repro.trace
import repro.workloads.traces


def test_both_modules_import_side_by_side():
    # Execution tracing surface.
    assert repro.trace.Tracer is not None
    assert repro.trace.TraceAnalyzer is not None
    # Workload-trace surface.
    assert repro.workloads.traces.RecordedTrace is not None
    assert repro.workloads.traces.load_trace is not None
    # They share no names: nothing from one shadows the other.
    execution = set(repro.trace.__all__)
    workload = set(repro.workloads.traces.__all__)
    assert not execution & workload


def test_docstrings_cross_reference_each_other():
    assert "repro.workloads.traces" in repro.trace.__doc__
    assert "repro.trace" in repro.workloads.traces.__doc__


def test_recorded_trace_replays_inside_a_trace_session():
    """A workload trace (input) driving an execution trace (output)."""
    from repro.experiments.runner import run_paging_workload
    from repro.trace import TraceAnalyzer, runtime
    from repro.workloads.ml import ML_WORKLOADS
    from repro.workloads.traces import record_trace
    from repro.sim.rng import RngStreams

    spec = ML_WORKLOADS["logistic_regression"].with_overrides(
        pages=96, iterations=1
    )
    recorded = record_trace(spec, RngStreams(0).stream("record"))
    with runtime.session() as active:
        result = run_paging_workload("fastswap", recorded, 0.5, seed=0)
    assert result.stats["major_faults"] > 0
    events = active.events_json()
    assert any(event["name"] == "page.fault" for event in events)
    TraceAnalyzer(events).assert_ok()
