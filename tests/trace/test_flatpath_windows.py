"""The flatpath-window invariant and the flat-path meta-event strip."""

from repro.trace import TraceAnalyzer, digest, without_categories


def _event(name, ts, dur=0.0, seq=0, **args):
    ph = "X" if dur or name == "flatpath.bulk" else "i"
    return {
        "name": name, "ph": ph, "ts": ts, "dur": dur,
        "track": "proc:0", "seq": seq, "args": args,
    }


def _bulk(ts, dur, seq=0):
    return _event("flatpath.bulk", ts, dur, seq=seq, accesses=10,
                  boundary="end-of-batch")


def test_bulk_span_inside_fault_window_is_a_violation():
    events = [
        _event("fault.inject", 1.0, seq=1, kind="crash", node="node2"),
        _bulk(1.2, 0.1, seq=2),
        _event("fault.recover", 2.0, seq=3, kind="reboot", node="node2"),
    ]
    violations = TraceAnalyzer(events).check_flatpath_windows(events)
    assert len(violations) == 1
    assert violations[0].invariant == "flatpath-window"
    assert "node2" in violations[0].message


def test_bulk_span_overlapping_unrecovered_fault_is_a_violation():
    # No recover event: the window stays open forever.
    events = [
        _event("fault.inject", 1.0, seq=1, kind="server_loss", node="node3"),
        _bulk(5.0, 0.5, seq=2),
    ]
    assert TraceAnalyzer(events).check_flatpath_windows(events)


def test_bulk_span_inside_migration_window_is_a_violation():
    events = [
        _event("migrate.reserve", 1.0, seq=1, key=["vs0", 7]),
        _bulk(1.1, 0.2, seq=2),
        _event("migrate.remap", 2.0, seq=3, key=["vs0", 7]),
    ]
    violations = TraceAnalyzer(events).check_flatpath_windows(events)
    assert len(violations) == 1
    assert "migration" in violations[0].message


def test_bulk_spans_outside_and_touching_windows_are_legal():
    events = [
        _bulk(0.0, 1.0, seq=1),  # ends exactly at the window start
        _event("fault.inject", 1.0, seq=2, kind="crash", node="node1"),
        _event("fault.recover", 2.0, seq=3, kind="reboot", node="node1"),
        _bulk(2.0, 0.5, seq=4),  # begins exactly at the window end
        _event("migrate.reserve", 4.0, seq=5, key=["vs0", 1]),
        _event("migrate.abort", 4.5, seq=6, key=["vs0", 1],
               reason="reserve-refused"),
        _bulk(4.5, 0.25, seq=7),
    ]
    assert TraceAnalyzer(events).check_flatpath_windows(events) == []


def test_no_bulk_spans_short_circuits():
    events = [
        _event("fault.inject", 1.0, seq=1, kind="crash", node="node1"),
    ]
    assert TraceAnalyzer(events).check_flatpath_windows(events) == []


def test_check_includes_flatpath_windows_per_cell():
    # Cell 0 is clean; cell 1 overlaps — only cell 1's span violates.
    clean = _bulk(0.0, 0.5, seq=1)
    clean["cell"] = 0
    inject = _event("fault.inject", 1.0, seq=1, kind="crash", node="n")
    inject["cell"] = 1
    guilty = _bulk(1.1, 0.1, seq=2)
    guilty["cell"] = 1
    violations = [
        v for v in TraceAnalyzer([clean, inject, guilty]).check()
        if v.invariant == "flatpath-window"
    ]
    assert len(violations) == 1
    assert violations[0].event is guilty


def test_without_categories_strips_only_the_named_category():
    bulk = _bulk(0.0, 0.5, seq=1)
    fault = _event("fault.inject", 1.0, seq=2, kind="crash", node="n")
    kept = without_categories([bulk, fault], "flatpath")
    assert kept == [fault]
    # Prefix matching is on the dotted category, not raw startswith:
    # a hypothetical "flat" category must not strip "flatpath.bulk".
    assert without_categories([bulk, fault], "flat") == [bulk, fault]


def test_without_categories_restores_event_path_digest():
    fault = _event("fault.inject", 1.0, seq=2, kind="crash", node="n")
    with_meta = [_bulk(0.0, 0.5, seq=1), fault]
    assert digest(without_categories(with_meta, "flatpath")) == digest(
        [fault]
    )
