"""Determinism and golden regression tests for memory_balancing."""

import pytest

from repro.experiments import memory_balancing as mb

SCALE = 0.05


@pytest.fixture(scope="module")
def result():
    return mb.run(scale=SCALE, seed=0)


def rows_by_cell(result):
    return {
        (row["workload"], row["group"], row["rate"], row["policy"]): row
        for row in result["rows"]
    }


def test_schedule_is_policy_independent():
    first = mb.build_schedule(seed=0, rate=mb.CHAOS_RATE, horizon=3.0)
    again = mb.build_schedule(seed=0, rate=mb.CHAOS_RATE, horizon=3.0)
    assert first.events == again.events
    assert mb.build_schedule(seed=0, rate=0.0, horizon=3.0) is None


def test_schedule_spares_the_hot_nodes():
    for seed in range(3):
        schedule = mb.build_schedule(seed=seed, rate=mb.CHAOS_RATE, horizon=3.0)
        assert {e.node for e in schedule.events if e.node} <= set(mb.CHAOS_NODES)
        assert schedule.max_concurrent_down() <= mb.MAX_CONCURRENT_DOWN


def test_compute_is_deterministic():
    spec = next(
        spec for spec in mb.cells(scale=SCALE, seed=0)
        if spec.options["rate"] > 0 and spec.options["policy"] == "greedy"
    )
    assert mb.compute(spec) == mb.compute(spec)


def test_sweep_covers_the_full_grid(result):
    cells = rows_by_cell(result)
    expected = {
        (workload, group, 0.0, policy)
        for workload in mb.WORKLOADS
        for group in mb.GROUP_SIZES
        for policy in mb.POLICIES
    } | {("hotspot", 0, mb.CHAOS_RATE, policy) for policy in mb.POLICIES}
    assert set(cells) == expected


def test_every_policy_beats_static_on_the_skewed_sweep(result):
    """The acceptance property: on the skewed-pressure sweep every
    active policy strictly reduces the final imbalance CoV versus the
    static baseline of the same cell."""
    skewed = mb.skewed_rows(result)
    assert skewed
    static = {
        row["group"]: row["cov_final"]
        for row in skewed
        if row["policy"] == "static"
    }
    for row in skewed:
        if row["policy"] != "static":
            assert row["cov_final"] < static[row["group"]], row
            assert row["cov_vs_static"] < 0.0


def test_static_baseline_never_moves_anything(result):
    for row in result["rows"]:
        if row["policy"] == "static":
            assert row["migrations"] == 0
            assert row["moved_mb"] == 0.0
            assert row["cov_vs_static"] == 0.0


def test_small_groups_balance_less_than_the_flat_cluster(result):
    """With the hot pair and the cold nodes split across groups, a
    group-local balancer cannot reach the other group's headroom —
    the group-size tradeoff of paper Section IV-C, in numbers."""
    cells = rows_by_cell(result)
    for policy in ("proportional", "greedy"):
        flat = cells[("hotspot", 0, 0.0, policy)]["cov_final"]
        grouped = cells[("hotspot", 3, 0.0, policy)]["cov_final"]
        assert grouped > flat


def test_chaos_cells_stay_deterministic_and_abort_free(result):
    cells = rows_by_cell(result)
    for policy in mb.POLICIES:
        row = cells[("hotspot", 0, mb.CHAOS_RATE, policy)]
        assert row["faults"] == 2
        # The reversible faults on node4/node5 never strand a page.
        assert row["aborted"] == 0


def test_golden_balancing_numbers_for_default_seed(result):
    """Pinned outputs for (seed=0, scale=0.05); any drift is a
    behaviour change in the telemetry/planning/migration path and must
    be intentional."""
    cells = rows_by_cell(result)
    flat_static = cells[("hotspot", 0, 0.0, "static")]
    assert flat_static["cov_final"] == pytest.approx(1.4142135623730947)
    assert flat_static["util_spread"] == pytest.approx(0.875)
    assert flat_static["converged_s"] is None

    threshold = cells[("hotspot", 0, 0.0, "threshold")]
    assert threshold["migrations"] == 8
    assert threshold["moved_mb"] == pytest.approx(0.5)
    assert threshold["cov_final"] == pytest.approx(1.118033988749895)

    proportional = cells[("hotspot", 0, 0.0, "proportional")]
    assert proportional["migrations"] == 32
    assert proportional["moved_mb"] == pytest.approx(2.0)
    assert proportional["cov_final"] == pytest.approx(0.20203050891044214)
    assert proportional["converged_s"] == pytest.approx(0.5006115558161408)

    greedy = cells[("hotspot", 0, 0.0, "greedy")]
    assert greedy["cov_final"] == pytest.approx(0.20203050891044214)
    assert greedy["plan_ms"] == pytest.approx(0.09633812739054394)

    chaos_greedy = cells[("hotspot", 0, mb.CHAOS_RATE, "greedy")]
    assert chaos_greedy["migrations"] == 35
    assert chaos_greedy["cov_final"] == pytest.approx(0.10101525445522107)

    grouped = cells[("uniform", 3, 0.0, "proportional")]
    assert grouped["migrations"] == 16
    assert grouped["cov_final"] == pytest.approx(0.09072184232530289)
    assert grouped["converged_s"] == pytest.approx(0.4003884027242022)
