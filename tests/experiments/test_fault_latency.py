"""Tail-latency reporting for page faults."""

from repro.experiments.runner import run_paging_workload
from repro.workloads.ml import ML_WORKLOADS

SPEC = ML_WORKLOADS["logistic_regression"].with_overrides(
    pages=512, iterations=2
)


def test_fault_percentiles_reported_when_requested():
    result = run_paging_workload(
        "fastswap", SPEC, 0.5, seed=1, record_fault_latency=True
    )
    assert result.stats["fault_p50_s"] > 0
    assert result.stats["fault_p99_s"] >= result.stats["fault_p50_s"]


def test_fault_percentiles_absent_by_default():
    result = run_paging_workload("fastswap", SPEC, 0.5, seed=1)
    assert "fault_p50_s" not in result.stats


def test_tail_ordering_across_backends():
    """Even FastSwap's p99 stays far below a single disk access, while
    Linux's p50 is disk-bound — the latency-gap argument in one test."""
    fast = run_paging_workload(
        "fastswap", SPEC, 0.5, seed=1, record_fault_latency=True
    )
    linux = run_paging_workload(
        "linux", SPEC, 0.5, seed=1, record_fault_latency=True
    )
    assert fast.stats["fault_p99_s"] < 1e-3
    assert linux.stats["fault_p50_s"] > 1e-3
    assert linux.stats["fault_p50_s"] > 10 * fast.stats["fault_p99_s"]
