"""Golden equivalence: ``--fast-path`` changes speed, never numbers."""

import json

import pytest

from repro.experiments import engine
from repro.experiments.__main__ import main
from repro.experiments.engine import RunSpec, run_experiment
from repro.experiments.runner import run_paging_workload
from repro.trace import TraceAnalyzer, digest
from repro.workloads import ML_WORKLOADS

#: Representative runner-based experiments: paging sweeps (fig6, fig7),
#: KV throughput (fig8), cold-start timeline (fig9), chaos + replication
#: (resilience_recovery), and a non-runner sweep that must simply ignore
#: the flag (memory_balancing).
GOLDEN = [
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "resilience_recovery",
    "memory_balancing",
]


@pytest.mark.parametrize("name", GOLDEN)
def test_experiment_results_identical_fast_vs_slow(name):
    slow = run_experiment(name, scale=0.1, seed=0, jobs=1)
    fast = run_experiment(name, scale=0.1, seed=0, jobs=1, fast_path=True)
    assert json.dumps(fast.to_json()) == json.dumps(slow.to_json())


def test_fast_path_is_part_of_the_cache_key():
    slow_spec = RunSpec.make("fig7", backend="fastswap", workload="als")
    fast_spec = RunSpec.make(
        "fig7", backend="fastswap", workload="als", fast_path=True
    )
    assert slow_spec.cache_key() != fast_spec.cache_key()
    assert RunSpec.from_dict(fast_spec.to_dict()) == fast_spec


def test_traced_sweep_digest_equal_modulo_flatpath():
    from repro.trace import without_categories

    slow = run_experiment("fig6", scale=0.1, seed=0, jobs=1, trace=True)
    fast = run_experiment(
        "fig6", scale=0.1, seed=0, jobs=1, trace=True, fast_path=True
    )
    assert json.dumps(fast.to_json()) == json.dumps(slow.to_json())
    stripped = without_categories(fast.trace_events, "flatpath")
    assert digest(stripped) == digest(slow.trace_events)
    # The fast sweep actually bulked: flat-path spans are present, and
    # the analyzer (including the flatpath-window invariant) is clean.
    bulks = [e for e in fast.trace_events if e["name"] == "flatpath.bulk"]
    assert bulks
    assert TraceAnalyzer(fast.trace_events).check() == []


def test_fast_path_runs_are_counted_in_the_context():
    spec = ML_WORKLOADS["logistic_regression"].with_overrides(pages=256)
    result = run_paging_workload("fastswap", spec, 0.5, seed=1,
                                 fast_path=True)
    assert result.fast_path is True
    assert result.context.fast_path_runs == 1
    assert "fast_path" not in result.to_json()


def test_cli_accepts_fast_path_flags(capsys, tmp_path):
    argv = ["run", "fig7", "--scale", "0.1", "--jobs", "1", "--json",
            "--cache-dir", str(tmp_path / "a"), "--fast-path"]
    assert main(argv) == 0
    fast_doc = capsys.readouterr().out
    argv = ["run", "fig7", "--scale", "0.1", "--jobs", "1", "--json",
            "--cache-dir", str(tmp_path / "b"), "--no-fast-path"]
    assert main(argv) == 0
    slow_doc = capsys.readouterr().out
    assert json.loads(fast_doc)["result"] == json.loads(slow_doc)["result"]


def test_cached_rerun_hits_under_fast_path(tmp_path):
    cache = engine.ResultCache(tmp_path / "cache")
    first = run_experiment("fig7", scale=0.1, seed=0, jobs=1, cache=cache,
                           fast_path=True)
    assert first.stats.cache_misses > 0
    second = run_experiment("fig7", scale=0.1, seed=0, jobs=1, cache=cache,
                            fast_path=True)
    assert second.stats.cache_hits == second.stats.cells
    assert json.dumps(second.result) == json.dumps(first.result)
