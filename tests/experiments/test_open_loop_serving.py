"""Gate and regression tests for the open_loop_serving experiment."""

import json
import pathlib

import pytest

from repro.experiments import open_loop_serving as ols
from repro.experiments.registry import EXPERIMENTS, load

SCALE = 0.1

GOLDEN = pathlib.Path(__file__).parent / "data" / (
    "open_loop_serving_golden_scale01.json"
)

SHEDDING = tuple(p for p in ols.SHED_POLICIES if p != "none")


@pytest.fixture(scope="module")
def result():
    return ols.run(scale=SCALE, seed=0)


def baseline_rows(result):
    """The pre-admission sweep: shed-sweep rows filtered out."""
    return [
        row for row in result["rows"]
        if row["policy"] == "none" and row["qos_mix"] == "default"
    ]


def shed_rows(result):
    return [row for row in result["rows"] if row["qos_mix"] != "default"]


def rows_by_cell(result):
    return {
        (row["system"], row["arrival"], row["fit"], row["chaos"]): row
        for row in baseline_rows(result)
    }


def test_registered():
    assert "open_loop_serving" in EXPERIMENTS
    assert load("open_loop_serving") is ols


def test_sweep_covers_the_full_grid(result):
    cells = rows_by_cell(result)
    assert len(cells) == len(ols.SYSTEMS) * len(ols.ARRIVALS) * len(
        ols.PRESSURES
    )
    for system in ols.SYSTEMS:
        for arrival in ols.ARRIVALS:
            for fit, chaos in ols.PRESSURES:
                assert (system, arrival, fit, chaos) in cells
    shed = shed_rows(result)
    assert len(shed) == len(ols.SHED_MIXES) * len(ols.SHED_PRESSURES) * len(
        ols.SHED_POLICIES
    )
    assert len(result["rows"]) == len(cells) + len(shed)
    covered = {(row["qos_mix"], row["chaos"], row["policy"]) for row in shed}
    for mix_name in ols.SHED_MIXES:
        for _fit, chaos in ols.SHED_PRESSURES:
            for policy in ols.SHED_POLICIES:
                assert (mix_name, chaos, policy) in covered


def test_baseline_rows_are_byte_identical_to_the_golden_report(result):
    """The admission refactor (batched arrivals, merged drain, sliced
    run_batch) must not move a single float in the pre-existing sweep:
    every golden row's items reappear verbatim in the matching row."""
    golden = json.loads(GOLDEN.read_text())["rows"]
    rows = baseline_rows(result)
    assert len(rows) == len(golden)
    for golden_row, row in zip(golden, rows):
        for key, value in golden_row.items():
            assert row[key] == value, (key, golden_row, row)


def test_three_classes_and_aggregated_users(result):
    for row in result["rows"]:
        for name in ("gold", "silver", "bestEffort"):
            assert name + "_attainment" in row
            assert name + "_envelope" in row
            assert name + "_p99_s" in row
        # Aggregation makes the user count free: at this tiny scale each
        # cell still simulates thousands of users, and the offered
        # request count is orders of magnitude below the user count.
        assert row["users"] >= 3000
        assert row["offered"] < row["users"]


def test_full_scale_cells_reach_hundred_thousand_users():
    spec = ols.cells(scale=1.0, seed=0)[0]
    mix = ols._mix(spec)
    assert sum(s.tenants for s in mix) >= 100_000


def test_full_scale_shed_cells_cross_a_million_users():
    spec = next(
        s for s in ols.cells(scale=1.0, seed=0) if "policy" in s.options
    )
    mix = ols._shed_mix(spec)
    assert sum(s.tenants for s in mix) >= 1_000_000
    # The store does NOT scale: a fixed store shared by ever more users
    # (which is what keeps the dominance gate scale-invariant).
    assert {s.workload.keys for s in mix} == set(ols.SHED_KEYS.values())


def test_gate_gold_envelope_dominates_best_effort(result):
    """THE gate: at the common latency envelope, gold's goodput share
    is at least best-effort's in every cell (delay dominance of the
    priority scheduler; see the experiment module docstring)."""
    for row in result["rows"]:
        assert row["gold_envelope"] >= row["bestEffort_envelope"] - 1e-9, row


def test_gate_every_shedding_policy_beats_no_shed_on_gold(result):
    """The admission gate: in every collapsing shed cell, each shedding
    policy strictly beats the no-shed control on gold goodput-under-SLO
    — and (non-vacuity) the control demonstrably collapses."""
    shed = shed_rows(result)
    for mix_name in ols.SHED_MIXES:
        for _fit, chaos in ols.SHED_PRESSURES:
            cell = {
                row["policy"]: row for row in shed
                if row["qos_mix"] == mix_name and row["chaos"] == chaos
            }
            control = cell["none"]
            assert control["gold_attainment"] < 0.9, control  # non-vacuity
            assert control["shed"] == 0
            for policy in SHEDDING:
                row = cell[policy]
                assert row["gold_goodput_rps"] > control["gold_goodput_rps"]
                assert row["shed"] > 0, row  # the policy actually bit


def test_shed_accounting_closes_in_every_row(result):
    for row in result["rows"]:
        assert row["completed"] + row["shed"] == row["offered"]
        assert row["gold_shed_fraction"] == 0.0  # no sweep policy sheds gold


def test_pressure_separates_the_systems(result):
    """Squeezed, the disk-backed system collapses into queueing while
    the RDMA systems keep goodput equal to offered load."""
    cells = rows_by_cell(result)
    for arrival in ols.ARRIVALS:
        linux = cells[("linux", arrival, 0.35, False)]
        assert linux["goodput_rps"] < linux["offered"]
        assert linux["bestEffort_attainment"] < 0.9
        for system in ("fastswap", "infiniswap"):
            row = cells[(system, arrival, 0.35, False)]
            assert row["goodput_rps"] == pytest.approx(row["offered"])
            assert row["gold_p99_s"] < 1e-3
            assert linux["gold_p99_s"] > row["gold_p99_s"]


def test_comfortable_cells_meet_every_slo(result):
    cells = rows_by_cell(result)
    for system in ("fastswap", "infiniswap"):
        for arrival in ols.ARRIVALS:
            row = cells[(system, arrival, 0.7, False)]
            for name in ("gold", "silver", "bestEffort"):
                assert row[name + "_attainment"] == pytest.approx(1.0)


def test_chaos_schedule_is_system_independent():
    first = ols.build_schedule(0, True, 1.0)
    again = ols.build_schedule(0, True, 1.0)
    assert first.events == again.events
    assert ols.build_schedule(0, False, 1.0) is None
    assert {e.node for e in first.events if e.node} <= set(ols.PEER_NODES)


def test_chaos_never_improves_goodput(result):
    cells = rows_by_cell(result)
    for system in ols.SYSTEMS:
        for arrival in ols.ARRIVALS:
            clean = cells[(system, arrival, 0.35, False)]
            chaos = cells[(system, arrival, 0.35, True)]
            assert chaos["goodput_rps"] <= clean["goodput_rps"] + 1e-9
            assert chaos["offered"] == clean["offered"]


def test_compute_is_deterministic_and_fast_path_equivalent():
    from dataclasses import replace

    spec = next(
        s for s in ols.cells(scale=SCALE, seed=0)
        if s.backend == "infiniswap" and s.options["chaos"]
    )
    slow = ols.compute(spec)
    fast = ols.compute(replace(spec, fast_path=True))
    assert json.dumps(slow, sort_keys=True) == json.dumps(
        fast, sort_keys=True
    )


@pytest.mark.parametrize("policy", ols.SHED_POLICIES)
def test_shed_cells_are_fast_path_equivalent(policy):
    from dataclasses import replace

    spec = next(
        s for s in ols.cells(scale=SCALE, seed=0)
        if s.options.get("policy") == policy and not s.options["chaos"]
    )
    slow = ols.compute(spec)
    fast = ols.compute(replace(spec, fast_path=True))
    assert json.dumps(slow, sort_keys=True) == json.dumps(
        fast, sort_keys=True
    )


def test_render_mentions_the_qos_columns(result):
    table = ols.render(result)
    assert "goodput" in table
    assert "gold" in table and "bestEffort" in table
    assert "policy" in table and "shed" in table
