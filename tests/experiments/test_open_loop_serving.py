"""Gate and regression tests for the open_loop_serving experiment."""

import json

import pytest

from repro.experiments import open_loop_serving as ols
from repro.experiments.registry import EXPERIMENTS, load

SCALE = 0.1


@pytest.fixture(scope="module")
def result():
    return ols.run(scale=SCALE, seed=0)


def rows_by_cell(result):
    return {
        (row["system"], row["arrival"], row["fit"], row["chaos"]): row
        for row in result["rows"]
    }


def test_registered():
    assert "open_loop_serving" in EXPERIMENTS
    assert load("open_loop_serving") is ols


def test_sweep_covers_the_full_grid(result):
    cells = rows_by_cell(result)
    assert len(cells) == len(ols.SYSTEMS) * len(ols.ARRIVALS) * len(
        ols.PRESSURES
    )
    for system in ols.SYSTEMS:
        for arrival in ols.ARRIVALS:
            for fit, chaos in ols.PRESSURES:
                assert (system, arrival, fit, chaos) in cells


def test_three_classes_and_aggregated_users(result):
    for row in result["rows"]:
        for name in ("gold", "silver", "bestEffort"):
            assert name + "_attainment" in row
            assert name + "_envelope" in row
            assert name + "_p99_s" in row
        # Aggregation makes the user count free: at this tiny scale each
        # cell still simulates thousands of users, and the offered
        # request count is orders of magnitude below the user count.
        assert row["users"] >= 3000
        assert row["offered"] < row["users"]


def test_full_scale_cells_reach_hundred_thousand_users():
    spec = ols.cells(scale=1.0, seed=0)[0]
    mix = ols._mix(spec)
    assert sum(s.tenants for s in mix) >= 100_000


def test_gate_gold_envelope_dominates_best_effort(result):
    """THE gate: at the common latency envelope, gold's goodput share
    is at least best-effort's in every cell (delay dominance of the
    priority scheduler; see the experiment module docstring)."""
    for row in result["rows"]:
        assert row["gold_envelope"] >= row["bestEffort_envelope"] - 1e-9, row


def test_pressure_separates_the_systems(result):
    """Squeezed, the disk-backed system collapses into queueing while
    the RDMA systems keep goodput equal to offered load."""
    cells = rows_by_cell(result)
    for arrival in ols.ARRIVALS:
        linux = cells[("linux", arrival, 0.35, False)]
        assert linux["goodput_rps"] < linux["offered"]
        assert linux["bestEffort_attainment"] < 0.9
        for system in ("fastswap", "infiniswap"):
            row = cells[(system, arrival, 0.35, False)]
            assert row["goodput_rps"] == pytest.approx(row["offered"])
            assert row["gold_p99_s"] < 1e-3
            assert linux["gold_p99_s"] > row["gold_p99_s"]


def test_comfortable_cells_meet_every_slo(result):
    cells = rows_by_cell(result)
    for system in ("fastswap", "infiniswap"):
        for arrival in ols.ARRIVALS:
            row = cells[(system, arrival, 0.7, False)]
            for name in ("gold", "silver", "bestEffort"):
                assert row[name + "_attainment"] == pytest.approx(1.0)


def test_chaos_schedule_is_system_independent():
    first = ols.build_schedule(0, True, 1.0)
    again = ols.build_schedule(0, True, 1.0)
    assert first.events == again.events
    assert ols.build_schedule(0, False, 1.0) is None
    assert {e.node for e in first.events if e.node} <= set(ols.PEER_NODES)


def test_chaos_never_improves_goodput(result):
    cells = rows_by_cell(result)
    for system in ols.SYSTEMS:
        for arrival in ols.ARRIVALS:
            clean = cells[(system, arrival, 0.35, False)]
            chaos = cells[(system, arrival, 0.35, True)]
            assert chaos["goodput_rps"] <= clean["goodput_rps"] + 1e-9
            assert chaos["offered"] == clean["offered"]


def test_compute_is_deterministic_and_fast_path_equivalent():
    from dataclasses import replace

    spec = next(
        s for s in ols.cells(scale=SCALE, seed=0)
        if s.backend == "infiniswap" and s.options["chaos"]
    )
    slow = ols.compute(spec)
    fast = ols.compute(replace(spec, fast_path=True))
    assert json.dumps(slow, sort_keys=True) == json.dumps(
        fast, sort_keys=True
    )


def test_render_mentions_the_qos_columns(result):
    table = ols.render(result)
    assert "goodput" in table
    assert "gold" in table and "bestEffort" in table
