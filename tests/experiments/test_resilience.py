"""Determinism and golden regression tests for resilience_recovery."""

import pytest

from repro.experiments import resilience_recovery as rr

SCALE = 0.05


@pytest.fixture(scope="module")
def result():
    return rr.run(scale=SCALE, seed=0)


def rows_by_cell(result):
    return {
        (row["scheme"], row["rate"], row["replication"]): row
        for row in result["rows"]
    }


def replicated_cells(result):
    return {
        (rate, replication): row
        for (scheme, rate, replication), row in rows_by_cell(result).items()
        if scheme == "replicated"
    }


def test_schedule_is_scheme_independent():
    first = rr.build_schedule(seed=0, rate=2.0, horizon=0.5)
    again = rr.build_schedule(seed=0, rate=2.0, horizon=0.5)
    assert first.events == again.events
    assert rr.build_schedule(seed=0, rate=0.0, horizon=0.5) is None


def test_schedule_caps_concurrent_down():
    for seed in range(3):
        for rate in (2.0, 6.0):
            schedule = rr.build_schedule(seed=seed, rate=rate, horizon=0.5)
            assert schedule.max_concurrent_down() <= rr.MAX_CONCURRENT_DOWN
            assert len(schedule.lost_nodes()) == 1


def test_compute_is_deterministic():
    spec = next(
        spec for spec in rr.cells(scale=SCALE, seed=0)
        if spec.options["rate"] > 0 and spec.options["replication"] == 2
    )
    assert rr.compute(spec) == rr.compute(spec)


def test_sweep_covers_scheme_by_rate(result):
    cells = rows_by_cell(result)
    expected = {
        ("replicated", rate, replication)
        for rate in rr.RATES
        for replication in rr.REPLICATIONS
    }
    expected |= {("one-rtt", rate, max(rr.REPLICATIONS)) for rate in rr.RATES}
    expected |= {("erasure", rate, None) for rate in rr.RATES}
    assert set(cells) == expected


def test_redundant_schemes_lose_nothing(result):
    """Triple replication, one-RTT and 4+2 erasure coding all survive
    every schedule (capped at 2 concurrently down servers)."""
    for (scheme, rate, replication), row in rows_by_cell(result).items():
        if scheme in ("one-rtt", "erasure") or replication == 3:
            assert row["pages_lost"] == 0, (scheme, rate, replication)


def test_single_replication_loses_pages_under_server_loss(result):
    cells = replicated_cells(result)
    for rate in rr.RATES:
        if rate > 0:
            assert cells[(rate, 1)]["pages_lost"] > 0
            assert cells[(rate, 1)]["degraded_reads"] > 0


def test_healthy_baseline_is_unit_ratio(result):
    for (scheme, rate, _replication), row in rows_by_cell(result).items():
        if rate == 0.0:
            assert row["vs_healthy"] == pytest.approx(1.0), scheme
            assert row["faults"] == 0


def test_memory_overhead_ordering(result):
    """The trade-off headline: erasure coding buys the same zero-loss
    guarantee as triple replication at half the memory overhead."""
    cells = rows_by_cell(result)
    for rate in rr.RATES:
        ec = cells[("erasure", rate, None)]["overhead_x"]
        triple = cells[("replicated", rate, 3)]["overhead_x"]
        one_rtt = cells[("one-rtt", rate, 3)]["overhead_x"]
        assert ec == pytest.approx(
            (rr.EC_DATA_SHARDS + rr.EC_PARITY_SHARDS) / rr.EC_DATA_SHARDS
        )
        assert ec <= 1.6 < triple == one_rtt == 3.0


def test_one_rtt_pays_one_round_per_put(result):
    """``write-all`` costs ~r serialized rounds per committed put; the
    one-RTT protocol exactly one fan-out round."""
    cells = rows_by_cell(result)
    for rate in rr.RATES:
        swarm = cells[("one-rtt", rate, 3)]
        assert swarm["write_rounds"] == swarm["puts"]
        classic = cells[("replicated", rate, 3)]
        assert classic["write_rounds"] == 3 * classic["puts"]


def test_erasure_serves_degraded_reads_under_faults(result):
    cells = rows_by_cell(result)
    assert cells[("erasure", 0.0, None)]["degraded_reads"] == 0
    for rate in rr.RATES:
        if rate > 0:
            row = cells[("erasure", rate, None)]
            assert row["degraded_reads"] > 0
            assert row["re_replicated"] > 0
            assert row["repairs"] > 0


def test_golden_recovery_numbers_for_default_seed(result):
    """Pinned outputs for (seed=0, scale=0.05); any drift is a
    behaviour change in the fault/redundancy path and must be
    intentional."""
    cells = replicated_cells(result)
    assert cells[(2.0, 1)]["pages_lost"] == 150
    assert cells[(6.0, 1)]["pages_lost"] == 301
    assert cells[(2.0, 2)]["pages_lost"] == 0
    assert cells[(2.0, 2)]["re_replicated"] == 299
    assert cells[(2.0, 2)]["repairs"] == 1
    assert cells[(2.0, 2)]["repair_mean_s"] == pytest.approx(
        1.71332016601497e-3, rel=1e-6
    )
    assert cells[(6.0, 2)]["re_replicated"] == 709
    assert cells[(2.0, 1)]["faults"] == 3
    assert cells[(6.0, 1)]["faults"] == 10


def test_golden_redundancy_numbers_for_default_seed(result):
    """Pinned outputs for the new scheme cells at (seed=0, scale=0.05)."""
    cells = rows_by_cell(result)
    assert cells[("erasure", 2.0, None)]["degraded_reads"] == 26
    assert cells[("erasure", 2.0, None)]["re_replicated"] == 374
    assert cells[("erasure", 6.0, None)]["degraded_reads"] == 175
    assert cells[("erasure", 6.0, None)]["re_replicated"] == 786
    assert cells[("erasure", 6.0, None)]["repair_mean_s"] == pytest.approx(
        2.241456211753895e-3, rel=1e-6
    )
    assert cells[("one-rtt", 6.0, 3)]["write_rounds"] == 950
    assert cells[("one-rtt", 6.0, 3)]["re_replicated"] == 320


def test_op_tail_latency_reported_per_cell(result):
    """Every cell carries the op p99; a faulted erasure cell's tail is
    visibly stretched over its healthy baseline by degraded reads."""
    cells = rows_by_cell(result)
    for key, row in cells.items():
        assert row["op_p99_s"] > 0, key
    assert (
        cells[("erasure", 6.0, None)]["op_p99_s"]
        > cells[("erasure", 0.0, None)]["op_p99_s"]
    )


def _without_latency_stats(doc):
    if isinstance(doc, dict):
        return {
            key: _without_latency_stats(value)
            for key, value in doc.items()
            if key != "latency_stats"
        }
    if isinstance(doc, list):
        return [_without_latency_stats(item) for item in doc]
    return doc


@pytest.mark.parametrize("scheme,rate,replication", [
    ("replicated", 6.0, 2),
    ("one-rtt", 6.0, 3),
    ("erasure", 6.0, None),
])
def test_traced_faulted_cell_upholds_trace_invariants(scheme, rate,
                                                      replication):
    """The golden numbers above are *indirect* evidence the fault path
    behaves; the trace is direct.  Replay the faultiest cell of every
    scheme under tracing and let the invariant oracle check span
    nesting, crash epochs, migration pairing, retry accounting and
    reconstruction — then check tracing did not perturb the simulation
    itself."""
    from repro.trace import TraceAnalyzer, runtime

    spec = next(
        spec for spec in rr.cells(scale=SCALE, seed=0)
        if spec.options["scheme"] == scheme
        and spec.options["rate"] == rate
        and spec.options["replication"] == replication
    )
    with runtime.session() as active:
        traced = rr.compute(spec)
    events = active.events_json()
    assert any(event["name"] == "fault.inject" for event in events)
    assert any(event["name"] == "net.send" for event in events)
    if scheme == "one-rtt":
        fanouts = [
            event for event in events
            if event["name"] == "net.send" and event["args"].get("fanout")
        ]
        assert fanouts, "one-RTT puts must ride single fan-out rounds"
    if scheme == "erasure":
        assert any(event["name"] == "ec.encode" for event in events)
        assert any(event["name"] == "ec.reconstruct" for event in events)
    TraceAnalyzer(events).assert_ok()
    untraced = rr.compute(spec)
    assert _without_latency_stats(traced) == _without_latency_stats(untraced)
