"""Determinism and golden regression tests for resilience_recovery."""

import pytest

from repro.experiments import resilience_recovery as rr

SCALE = 0.05


@pytest.fixture(scope="module")
def result():
    return rr.run(scale=SCALE, seed=0)


def rows_by_cell(result):
    return {
        (row["rate"], row["replication"]): row for row in result["rows"]
    }


def test_schedule_is_replication_independent():
    first = rr.build_schedule(seed=0, rate=2.0, horizon=0.5)
    again = rr.build_schedule(seed=0, rate=2.0, horizon=0.5)
    assert first.events == again.events
    assert rr.build_schedule(seed=0, rate=0.0, horizon=0.5) is None


def test_schedule_caps_concurrent_down():
    for seed in range(3):
        for rate in (2.0, 6.0):
            schedule = rr.build_schedule(seed=seed, rate=rate, horizon=0.5)
            assert schedule.max_concurrent_down() <= rr.MAX_CONCURRENT_DOWN
            assert len(schedule.lost_nodes()) == 1


def test_compute_is_deterministic():
    spec = next(
        spec for spec in rr.cells(scale=SCALE, seed=0)
        if spec.options["rate"] > 0 and spec.options["replication"] == 2
    )
    assert rr.compute(spec) == rr.compute(spec)


def test_sweep_covers_rate_by_replication(result):
    cells = rows_by_cell(result)
    assert set(cells) == {
        (rate, replication)
        for rate in rr.RATES
        for replication in rr.REPLICATIONS
    }


def test_triple_replication_loses_nothing(result):
    for (rate, replication), row in rows_by_cell(result).items():
        if replication == 3:
            assert row["pages_lost"] == 0, (rate, replication)


def test_single_replication_loses_pages_under_server_loss(result):
    cells = rows_by_cell(result)
    for rate in rr.RATES:
        if rate > 0:
            assert cells[(rate, 1)]["pages_lost"] > 0
            assert cells[(rate, 1)]["degraded_reads"] > 0


def test_healthy_baseline_is_unit_ratio(result):
    for replication in rr.REPLICATIONS:
        row = rows_by_cell(result)[(0.0, replication)]
        assert row["vs_healthy"] == pytest.approx(1.0)
        assert row["faults"] == 0


def test_golden_recovery_numbers_for_default_seed(result):
    """Pinned outputs for (seed=0, scale=0.05); any drift is a
    behaviour change in the fault/replication path and must be
    intentional."""
    cells = rows_by_cell(result)
    assert cells[(2.0, 1)]["pages_lost"] == 150
    assert cells[(6.0, 1)]["pages_lost"] == 301
    assert cells[(2.0, 2)]["pages_lost"] == 0
    assert cells[(2.0, 2)]["re_replicated"] == 299
    assert cells[(2.0, 2)]["repairs"] == 1
    assert cells[(2.0, 2)]["repair_mean_s"] == pytest.approx(
        1.71332016601497e-3, rel=1e-6
    )
    assert cells[(6.0, 2)]["re_replicated"] == 707
    assert cells[(2.0, 1)]["faults"] == 3
    assert cells[(6.0, 1)]["faults"] == 10


def _without_latency_stats(doc):
    if isinstance(doc, dict):
        return {
            key: _without_latency_stats(value)
            for key, value in doc.items()
            if key != "latency_stats"
        }
    if isinstance(doc, list):
        return [_without_latency_stats(item) for item in doc]
    return doc


def test_traced_faulted_cell_upholds_trace_invariants():
    """The golden numbers above are *indirect* evidence the fault path
    behaves; the trace is direct.  Replay the faultiest replicated cell
    under tracing and let the invariant oracle check span nesting,
    crash epochs, migration pairing and retry accounting — then check
    tracing did not perturb the simulation itself."""
    from repro.trace import TraceAnalyzer, runtime

    spec = next(
        spec for spec in rr.cells(scale=SCALE, seed=0)
        if spec.options["rate"] == 6.0 and spec.options["replication"] == 2
    )
    with runtime.session() as active:
        traced = rr.compute(spec)
    events = active.events_json()
    assert any(event["name"] == "fault.inject" for event in events)
    assert any(event["name"] == "net.send" for event in events)
    TraceAnalyzer(events).assert_ok()
    untraced = rr.compute(spec)
    assert _without_latency_stats(traced) == _without_latency_stats(untraced)
