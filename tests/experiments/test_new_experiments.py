"""Smoke + shape tests for the discussion sweeps and motivation scenario."""

from repro.experiments import discussion_sweeps, motivation_imbalance

TINY = 0.1


def test_tier_ladder_ordering():
    result = discussion_sweeps.run_tier_ladder(scale=TINY)
    times = {row["tier"]: row["completion_s"] for row in result["rows"]}
    assert times["shared_memory"] <= times["remote_rdma"]
    assert times["remote_rdma"] < times["ssd"] < times["hdd"]


def test_transport_rdma_beats_tcp():
    result = discussion_sweeps.run_transport(scale=TINY)
    rows = {row["transport"]: row for row in result["rows"]}
    assert rows["tcp_10g"]["completion_s"] > rows["rdma_56g"]["completion_s"]


def test_full_disaggregation_trend():
    result = discussion_sweeps.run_full_disaggregation(scale=TINY)
    slowdowns = [row["slowdown_vs_node_local"] for row in result["rows"]]
    assert slowdowns == sorted(slowdowns)
    assert slowdowns[0] < slowdowns[-1]


def test_motivation_policies_ordered():
    result = motivation_imbalance.run(scale=TINY, working_set_pages=4096)
    rows = {row["policy"]: row for row in result["rows"]}
    assert rows["node_level"]["completion_s"] < rows["static"]["completion_s"]
    assert (
        rows["node_plus_cluster"]["completion_s"]
        <= rows["node_level"]["completion_s"] * 1.001
    )
    assert rows["node_level"]["idle_pool_utilization"] > 0


def test_ballooning_ablation_shape():
    from repro.experiments import ablations

    result = ablations.run_ballooning(scale=TINY)
    rows = {row["ballooning"]: row for row in result["rows"]}
    assert (
        rows["adaptive"]["final_capacity_pages"]
        >= rows["off"]["final_capacity_pages"]
    )


def test_cli_registry_covers_everything():
    from repro.experiments.__main__ import EXPERIMENTS

    assert {"table1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
            "fig9", "fig10", "ablations", "discussion",
            "motivation"} <= set(EXPERIMENTS)


def test_cli_list_and_run(capsys):
    from repro.experiments.__main__ import main

    assert main(["list"]) == 0
    output = capsys.readouterr().out
    assert "fig7" in output
    assert main(["run", "table1"]) == 0
    output = capsys.readouterr().out
    assert "pagerank" in output
