"""The experiment engine: RunSpec, result cache, executor, determinism."""

import json

import pytest

from repro.experiments import engine
from repro.experiments.engine import (
    ResultCache,
    RunSpec,
    execute,
    run_experiment,
)


# --- RunSpec -----------------------------------------------------------

def test_runspec_freezes_overrides_canonically():
    first = RunSpec.make("fig6", seed=3, size=64, window=0.5)
    second = RunSpec.make("fig6", seed=3, window=0.5, size=64)
    assert first == second
    assert hash(first) == hash(second)
    assert first.options == {"size": 64, "window": 0.5}


def test_runspec_dict_round_trip():
    spec = RunSpec.make("fig7", backend="fastswap", workload="kmeans",
                        fit=0.75, seed=2, scale=0.5, pages=512)
    doc = spec.to_dict()
    assert doc["overrides"] == {"pages": 512}
    # The document survives the JSON wire format.
    restored = RunSpec.from_dict(json.loads(json.dumps(doc)))
    assert restored == spec


def test_cache_key_depends_on_spec_and_salt():
    spec = RunSpec.make("fig3", workload="als", seed=0)
    assert spec.cache_key("a") == spec.cache_key("a")
    assert spec.cache_key("a") != spec.cache_key("b")
    other = RunSpec.make("fig3", workload="als", seed=1)
    assert spec.cache_key("a") != other.cache_key("a")


# --- ResultCache -------------------------------------------------------

def test_cache_store_load_round_trip(tmp_path):
    cache = ResultCache(tmp_path / "cache", salt="s1")
    spec = RunSpec.make("fig3", workload="als")
    assert cache.load(spec) is None
    cache.store(spec, {"row": {"ratio": 1.5}})
    assert cache.load(spec) == {"row": {"ratio": 1.5}}
    assert len(cache.entries()) == 1
    assert cache.size_bytes() > 0


def test_cache_salt_change_invalidates(tmp_path):
    spec = RunSpec.make("fig3", workload="als")
    ResultCache(tmp_path, salt="v1").store(spec, {"x": 1})
    assert ResultCache(tmp_path, salt="v2").load(spec) is None
    assert ResultCache(tmp_path, salt="v1").load(spec) == {"x": 1}


def test_cache_tolerates_corruption(tmp_path):
    cache = ResultCache(tmp_path, salt="s")
    spec = RunSpec.make("fig3", workload="als")
    cache.store(spec, {"x": 1})
    cache.path_for(spec).write_text("not json{", encoding="utf-8")
    assert cache.load(spec) is None  # corrupt entry reads as a miss


def test_cache_clear_evicts_everything(tmp_path):
    cache = ResultCache(tmp_path, salt="s")
    for seed in range(3):
        cache.store(RunSpec.make("fig3", seed=seed), {"seed": seed})
    assert cache.clear() == 3
    assert cache.entries() == []


def test_cache_honours_environment_default(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
    cache = ResultCache(salt="s")
    assert cache.root == tmp_path / "env-cache"


# --- execute -----------------------------------------------------------

def _specs(count):
    return [RunSpec.make("stub", seed=seed) for seed in range(count)]


def test_execute_computes_in_cell_order():
    calls = []

    def compute(spec):
        calls.append(spec.seed)
        return {"seed": spec.seed}

    payloads, stats = execute(_specs(3), jobs=1, compute=compute)
    assert [p["seed"] for p in payloads] == [0, 1, 2]
    assert calls == [0, 1, 2]
    assert stats.as_dict() == {
        "jobs": 1, "cells": 3, "cache_hits": 0, "cache_misses": 3,
    }


def test_execute_dedupes_identical_specs():
    calls = []

    def compute(spec):
        calls.append(spec.seed)
        return {"seed": spec.seed}

    specs = _specs(2) + _specs(2)  # each spec appears twice
    payloads, stats = execute(specs, jobs=1, compute=compute)
    assert calls == [0, 1]  # computed once per distinct spec
    assert [p["seed"] for p in payloads] == [0, 1, 0, 1]
    assert stats.cache_hits + stats.cache_misses == stats.cells == 4


def test_second_invocation_runs_zero_simulations(tmp_path):
    cache = ResultCache(tmp_path, salt="s")
    specs = _specs(4)
    payloads, stats = execute(
        specs, cache=cache, compute=lambda spec: {"seed": spec.seed}
    )
    assert stats.cache_misses == 4

    def forbidden(spec):
        raise AssertionError("cache hit expected; simulator ran")

    cached, stats = execute(specs, cache=cache, compute=forbidden)
    assert stats.cache_hits == 4
    assert stats.cache_misses == 0
    assert cached == payloads  # byte-identical payloads from cache


def test_cache_hit_indistinguishable_from_fresh(tmp_path):
    """Tuples/int-keys normalize identically whether fresh or cached."""
    cache = ResultCache(tmp_path, salt="s")
    compute = lambda spec: {"timeline": (1, 2.5), "by_fit": {0.5: "x"}}  # noqa: E731
    fresh, _ = execute(_specs(1), cache=cache, compute=compute)
    cached, _ = execute(_specs(1), cache=cache, compute=compute)
    assert fresh == cached
    assert fresh[0] == {"timeline": [1, 2.5], "by_fit": {"0.5": "x"}}


# --- end-to-end determinism -------------------------------------------

@pytest.mark.parametrize("name,scale", [("fig3", 0.1), ("fig4", 0.1)])
def test_parallel_equals_serial(name, scale):
    serial = run_experiment(name, scale=scale, jobs=1, cache=None)
    parallel = run_experiment(name, scale=scale, jobs=2, cache=None)
    assert json.dumps(serial.result, sort_keys=True) == json.dumps(
        parallel.result, sort_keys=True
    )


def test_run_experiment_uses_cache(tmp_path):
    cache = ResultCache(tmp_path, salt="pinned")
    first = run_experiment("fig3", scale=0.1, cache=cache)
    assert first.stats.cache_misses == len(first.specs)
    second = run_experiment("fig3", scale=0.1, cache=cache)
    assert second.stats.cache_hits == len(second.specs)
    assert second.stats.cache_misses == 0
    assert json.dumps(first.result) == json.dumps(second.result)


def test_tier_rows_travel_through_payloads():
    run = run_experiment("fig7", scale=0.1, jobs=1, cache=None)
    assert run.tier_rows, "runner-based experiments carry tier rows"
    sample = run.tier_rows[0]
    for key in ("backend", "workload", "fit", "stack", "tier"):
        assert key in sample


def test_code_version_is_stable_and_short():
    assert engine.code_version() == engine.code_version()
    assert len(engine.code_version()) == 16
