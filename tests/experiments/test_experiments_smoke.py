"""Smoke tests: every experiment module runs at tiny scale and keeps
its qualitative shape.  (The benchmarks run the same code at a larger
scale; these tests guard the harness itself.)"""

import pytest

from repro.experiments import (
    ablations,
    fig3_compression_ratio,
    fig4_compression_effect,
    fig5_compression_app_perf,
    fig6_batching_pbs,
    fig7_ml_completion,
    fig8_distribution_ratio,
    fig9_memcached_timeline,
    fig10_dahi_spark,
    table1_applications,
)

TINY = 0.1


def test_table1():
    result = table1_applications.run()
    assert len(result["rows"]) == 10


def test_fig3():
    result = fig3_compression_ratio.run(scale=TINY)
    for row in result["rows"]:
        assert row["fastswap_4gran"] >= row["zswap"]


def test_fig4():
    result = fig4_compression_effect.run(scale=TINY)
    rows = result["rows"]
    assert rows[0]["disk_completion_s"] > rows[-1]["disk_completion_s"]


def test_fig5():
    result = fig5_compression_app_perf.run(scale=TINY)
    assert all(row["speedup"] > 1.0 for row in result["rows"])


def test_fig6():
    result = fig6_batching_pbs.run(scale=TINY, include_linux=False)
    for row in result["rows"]:
        assert row["fastswap_pbs_s"] < row["infiniswap_s"]


def test_fig7():
    result = fig7_ml_completion.run(scale=TINY)
    assert all(row["speedup_vs_linux"] > 5 for row in result["rows"])


def test_fig8():
    result = fig8_distribution_ratio.run(scale=TINY, duration=2.0)
    for row in result["rows"]:
        assert row["fs_sm"] > row["linux"]
        assert row["fs_sm"] >= row["fs_rdma"]


def test_fig9():
    result = fig9_memcached_timeline.run(scale=TINY)
    systems = {row["system"] for row in result["rows"]}
    assert systems == {"fastswap_pbs", "fastswap_nopbs", "infiniswap"}
    assert result["peak_ops_s"] > 0


def test_fig10():
    result = fig10_dahi_spark.run(scale=0.5)
    large = [row for row in result["rows"] if row["dataset"] == "large"]
    assert all(row["speedup"] > 1.2 for row in large)


def test_ablation_placement():
    result = ablations.run_placement(scale=TINY)
    assert len(result["rows"]) == 4


def test_ablation_replication():
    result = ablations.run_replication(scale=TINY)
    rows = {row["replicas"]: row for row in result["rows"]}
    assert rows[3]["readable_after_crash"] == rows[3]["total_entries"]


def test_ablation_batching():
    result = ablations.run_batching(scale=TINY)
    assert len(result["rows"]) == 16


def test_ablation_groups():
    result = ablations.run_groups(scale=TINY)
    assert len(result["rows"]) == 4


def test_ablation_donation():
    result = ablations.run_donation(scale=TINY)
    assert result["rows"][0]["completion_s"] >= result["rows"][-1]["completion_s"]


def test_runner_rejects_bad_fit():
    from repro.experiments.runner import run_kv_workload
    from repro.workloads.kv import KV_WORKLOADS

    with pytest.raises(ValueError):
        run_kv_workload("linux", KV_WORKLOADS["redis"], 0.0)
