"""Determinism and acceptance tests for allocation_fragmentation."""

import pytest

from repro.experiments import allocation_fragmentation as af

SCALE = 0.05
DURATION = 2.0


@pytest.fixture(scope="module")
def result():
    return af.run(scale=SCALE, seed=0, duration=DURATION)


def rows_by_cell(result):
    return {
        (row["churn"], row["alloc"], row["balance"], row["compact"]): row
        for row in result["rows"]
    }


def test_compute_is_deterministic():
    spec = next(
        spec for spec in af.cells(scale=SCALE, seed=0, duration=DURATION)
        if spec.backend == "arena" and spec.options["balance"] == "raw"
    )
    assert af.compute(spec) == af.compute(spec)


def test_sweep_covers_the_full_grid(result):
    cells = rows_by_cell(result)
    expected = {
        (churn, alloc, balance, False)
        for churn in af.CHURN
        for alloc in af.ALLOC_POLICIES
        for balance in af.BALANCE_ARMS
    } | {(churn, "arena", "alloc", True) for churn in af.CHURN}
    assert set(cells) == expected


def test_churned_arena_pools_are_fragmented(result):
    """The workload earns its name: churned arena pools report high
    external fragmentation and a large unusable-free gap, while the
    uniform baseline (by construction) never fragments."""
    for row in result["rows"]:
        if row["alloc"] == "arena" and not row["compact"]:
            assert row["ext_frag"] > 0.5, row
            assert row["unusable_mb"] > 0.0, row
        if row["alloc"] == "uniform":
            assert row["unusable_mb"] == 0.0, row


def test_harvest_yield_gap_is_nonzero_on_arena(result):
    """The acceptance property: allocatable-aware planning beats
    raw-free planning on fragmented arena pools, and the two arms are
    indistinguishable on the idealized uniform pools."""
    gaps = {(row["churn"], row["alloc"]): row for row in result["gaps"]}
    for churn in af.CHURN:
        arena = gaps[(churn, "arena")]
        assert arena["yield_gap"] > 0.0, arena
        assert arena["yield_alloc"] == 1.0
        assert arena["aborted_raw"] > 0
        assert arena["aborted_alloc"] == 0
        uniform = gaps[(churn, "uniform")]
        assert uniform["yield_gap"] == 0.0, uniform
        assert uniform["aborted_raw"] == 0


def test_raw_planning_erodes_into_aborts(result):
    """Raw-free planning on arena pools plans epoch after epoch into
    receivers that refuse every reserve — planned bytes balloon while
    almost nothing moves."""
    cells = rows_by_cell(result)
    for churn in af.CHURN:
        raw = cells[(churn, "arena", "raw", False)]
        aware = cells[(churn, "arena", "alloc", False)]
        assert raw["aborted"] > 0
        assert raw["planned_mb"] > raw["moved_mb"]
        assert raw["planned_mb"] > aware["planned_mb"]
        assert aware["aborted"] == 0


def test_compaction_recovers_harvestable_space(result):
    """With the compaction daemon on, churned arena pools defragment
    (external fragmentation under the CI bound), the balancer actually
    moves bytes again, and the copy cost is accounted."""
    compacted = af.compaction_rows(result)
    assert len(compacted) == len(af.CHURN)
    cells = rows_by_cell(result)
    for row in compacted:
        assert row["ext_frag"] < af.COMPACT_EXT_FRAG_BOUND, row
        assert row["compact_mb"] > 0.0
        uncompacted = cells[(row["churn"], "arena", "alloc", False)]
        assert row["moved_mb"] > uncompacted["moved_mb"]


def test_balance_off_cells_move_nothing(result):
    for row in result["rows"]:
        if row["balance"] == "off":
            assert row["planned_mb"] == 0.0
            assert row["moved_mb"] == 0.0
            assert row["aborted"] == 0


def test_render_includes_both_tables(result):
    rendered = af.render(result)
    assert "Allocation fragmentation" in rendered
    assert "Harvest-yield gap" in rendered
