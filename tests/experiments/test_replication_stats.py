"""Multi-seed stability of the headline results."""


from repro.experiments.replication_stats import (
    coefficient_of_variation,
    replicate,
    replicate_ratio,
)
from repro.experiments.runner import run_paging_workload
from repro.workloads.ml import ML_WORKLOADS

SPEC = ML_WORKLOADS["logistic_regression"].with_overrides(
    pages=512, iterations=2
)
SEEDS = (1, 2, 3, 4)


def completion(backend):
    def fn(seed):
        return run_paging_workload(backend, SPEC, 0.5, seed=seed)

    return fn


def test_replicate_aggregates():
    stats, values = replicate(
        completion("fastswap"), SEEDS,
        extract=lambda result: result.completion_time,
    )
    assert stats.count == len(SEEDS)
    assert len(values) == len(SEEDS)
    assert stats.minimum <= stats.mean <= stats.maximum


def test_fastswap_result_is_stable_across_seeds():
    stats, _values = replicate(
        completion("fastswap"), SEEDS,
        extract=lambda result: result.completion_time,
    )
    # Different seeds draw different compressibility/trace randomness,
    # but the result must not swing wildly.
    assert coefficient_of_variation(stats) < 0.15


def test_headline_ratio_stable_and_in_band():
    stats, ratios = replicate_ratio(
        lambda seed: run_paging_workload(
            "infiniswap", SPEC, 0.5, seed=seed
        ).completion_time,
        lambda seed: run_paging_workload(
            "fastswap", SPEC, 0.5, seed=seed
        ).completion_time,
    seeds=SEEDS)
    # Every seed agrees Infiniswap is ~2x slower.
    assert all(ratio > 1.5 for ratio in ratios)
    assert coefficient_of_variation(stats) < 0.2


def test_cov_of_zero_mean():
    from repro.metrics.stats import RunningStats

    stats = RunningStats()
    assert coefficient_of_variation(stats) == 0.0
