"""Tests for runner result types and cluster-config defaults."""


from repro.experiments.runner import (
    KvRunResult,
    PagingRunResult,
    default_cluster_config,
)


def test_paging_result_row():
    result = PagingRunResult(
        backend="fastswap",
        workload="lr",
        fit_fraction=0.5,
        completion_time=1.25,
        stats={"major_faults": 42},
    )
    row = result.row()
    assert row == {
        "backend": "fastswap",
        "workload": "lr",
        "fit": 0.5,
        "completion_s": 1.25,
        "major_faults": 42,
    }


def test_kv_result_defaults():
    result = KvRunResult(
        backend="linux", workload="redis", fit_fraction=0.5,
        mean_throughput=100.0,
    )
    assert result.timeline == []
    assert result.operations == 0


def test_default_cluster_config_overridable():
    config = default_cluster_config(seed=9, num_nodes=7,
                                    donation_fraction=0.1)
    assert config.seed == 9
    assert config.num_nodes == 7
    assert config.donation_fraction == 0.1
    # Untouched defaults survive.
    assert config.replication_factor == 1


def test_default_cluster_config_is_fresh_each_call():
    first = default_cluster_config()
    second = default_cluster_config(num_nodes=9)
    assert first.num_nodes != second.num_nodes
