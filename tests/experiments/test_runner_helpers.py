"""Tests for runner result types and cluster-config defaults."""

import json

import pytest

from repro.experiments.runner import (
    KvRunResult,
    PagingRunResult,
    RunContext,
    RunResult,
    default_cluster_config,
)


def test_paging_result_row():
    result = PagingRunResult(
        backend="fastswap",
        workload="lr",
        fit_fraction=0.5,
        completion_time=1.25,
        stats={"major_faults": 42},
    )
    row = result.row()
    assert row == {
        "backend": "fastswap",
        "workload": "lr",
        "fit": 0.5,
        "completion_s": 1.25,
        "major_faults": 42,
    }


def test_kv_result_defaults():
    result = KvRunResult(
        backend="linux", workload="redis", fit_fraction=0.5,
        mean_throughput=100.0,
    )
    assert result.timeline == []
    assert result.operations == 0


def test_kv_result_row():
    result = KvRunResult(
        backend="fastswap", workload="memcached", fit_fraction=0.75,
        mean_throughput=1234.5, operations=600,
    )
    assert result.row() == {
        "backend": "fastswap",
        "workload": "memcached",
        "fit": 0.75,
        "mean_ops_s": 1234.5,
        "operations": 600,
    }


def test_result_json_round_trip_drops_context():
    context = RunContext()
    result = PagingRunResult(
        backend="fastswap",
        workload="lr",
        fit_fraction=0.5,
        completion_time=1.25,
        stats={"major_faults": 42},
        tier_stats=[{"tier": "sm", "puts": 3}],
        tier_stack="sm -> remote -> disk",
        context=context,
    )
    payload = result.to_json()
    assert payload["kind"] == "paging"
    assert "context" not in payload
    # The payload is plain JSON data.
    restored = RunResult.from_json(json.loads(json.dumps(payload)))
    assert isinstance(restored, PagingRunResult)
    assert restored.context is None
    assert restored.completion_time == result.completion_time
    assert restored.tier_stack == result.tier_stack
    assert restored.row() == result.row()


def test_from_json_rejects_unknown_kind():
    with pytest.raises(ValueError):
        RunResult.from_json({"kind": "quantum"})


def test_runner_tuning_arguments_are_keyword_only():
    from repro.experiments.runner import run_kv_workload, run_paging_workload

    with pytest.raises(TypeError):
        run_paging_workload("fastswap", None, 0.5, 7)  # seed positionally
    with pytest.raises(TypeError):
        run_kv_workload("fastswap", None, 0.5, 5.0)  # duration positionally


def test_default_cluster_config_overridable():
    config = default_cluster_config(seed=9, num_nodes=7,
                                    donation_fraction=0.1)
    assert config.seed == 9
    assert config.num_nodes == 7
    assert config.donation_fraction == 0.1
    # Untouched defaults survive.
    assert config.replication_factor == 1


def test_default_cluster_config_is_fresh_each_call():
    first = default_cluster_config()
    second = default_cluster_config(num_nodes=9)
    assert first.num_nodes != second.num_nodes
