"""The ``python -m repro.experiments`` command-line interface."""

import json

import pytest

from repro.experiments.__main__ import main
from repro.experiments import registry


def test_list_names_every_experiment(capsys):
    assert main(["list"]) == 0
    output = capsys.readouterr().out
    for name in registry.names():
        assert name in output


def test_run_with_jobs_and_tiers(capsys, tmp_path):
    assert main([
        "run", "fig7", "--scale", "0.25", "--jobs", "2",
        "--tiers", "--cache-dir", str(tmp_path),
    ]) == 0
    output = capsys.readouterr().out
    assert "Figure 7" in output
    assert "per-tier breakdown" in output
    assert "sm -> remote -> disk" in output
    # The run populated the cache.
    assert list(tmp_path.glob("*.json"))


def test_tier_breakdown_off_by_default(capsys, tmp_path):
    # fig7 pages heavily, so tier rows exist — but stay hidden
    # unless --tiers asks for them.
    assert main([
        "run", "fig7", "--scale", "0.1", "--cache-dir", str(tmp_path),
    ]) == 0
    assert "per-tier breakdown" not in capsys.readouterr().out


def test_run_json_document_shape(capsys, tmp_path):
    assert main([
        "run", "fig3", "--scale", "0.1", "--json",
        "--cache-dir", str(tmp_path),
    ]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["experiment"] == "fig3"
    assert document["engine"]["cells"] == len(document["result"]["rows"])
    assert document["engine"]["cache_misses"] == document["engine"]["cells"]
    assert all("zswap" in row for row in document["result"]["rows"])


def test_cached_rerun_prints_identical_output(capsys, tmp_path):
    argv = ["run", "fig3", "--scale", "0.1", "--cache-dir", str(tmp_path)]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert main(argv) == 0
    second = capsys.readouterr().out
    assert first == second


def test_no_cache_leaves_no_files(capsys, tmp_path):
    assert main([
        "run", "fig3", "--scale", "0.1", "--no-cache",
        "--cache-dir", str(tmp_path),
    ]) == 0
    assert not list(tmp_path.glob("*.json"))


def test_cache_subcommand_reports_and_clears(capsys, tmp_path):
    main(["run", "fig3", "--scale", "0.1", "--cache-dir", str(tmp_path)])
    capsys.readouterr()
    assert main(["cache", "--cache-dir", str(tmp_path)]) == 0
    output = capsys.readouterr().out
    assert str(tmp_path) in output
    assert main(["cache", "--clear", "--cache-dir", str(tmp_path)]) == 0
    assert "evicted" in capsys.readouterr().out
    assert not list(tmp_path.glob("*.json"))


def test_run_with_trace_writes_chrome_artifact(capsys, tmp_path):
    from repro.trace import validate_chrome

    path = tmp_path / "trace.json"
    assert main([
        "run", "fig7", "--scale", "0.1", "--no-cache", "--jobs", "2",
        "--trace", str(path),
    ]) == 0
    output = capsys.readouterr().out
    assert "digest" in output
    assert "trace: all invariants hold" in output
    document = json.loads(path.read_text())
    assert validate_chrome(document) == []
    assert document["traceEvents"]
    assert document["otherData"]["experiment"] == "fig7"


def test_run_with_trace_jsonl_and_filter_skips_the_analyzer(capsys, tmp_path):
    from repro.trace import load_jsonl

    path = tmp_path / "trace.jsonl"
    assert main([
        "run", "fig7", "--scale", "0.1", "--no-cache", "--jobs", "1",
        "--trace", str(path), "--trace-filter", "tier",
    ]) == 0
    assert "invariant checks skipped" in capsys.readouterr().out
    events = load_jsonl(str(path))
    assert events
    assert all(event["name"].startswith("tier.") for event in events)


def test_traced_run_never_touches_the_cache(capsys, tmp_path):
    cache_dir = tmp_path / "cache"
    assert main([
        "run", "fig7", "--scale", "0.1", "--jobs", "1",
        "--cache-dir", str(cache_dir),
        "--trace", str(tmp_path / "trace.json"),
    ]) == 0
    capsys.readouterr()
    assert not list(cache_dir.glob("*.json"))


def test_unknown_experiment_is_rejected():
    with pytest.raises(SystemExit):
        main(["run", "fig99"])


def test_every_module_satisfies_the_contract():
    for name in registry.names():
        module = registry.load(name)
        for attr in ("cells", "compute", "report", "run", "render", "main"):
            assert hasattr(module, attr), "{} lacks {}()".format(name, attr)
        specs = module.cells(scale=0.1, seed=0)
        assert specs, name
        assert all(spec.experiment == module.EXPERIMENT for spec in specs)
