"""Tests for the multi-tenant contention experiment."""

from repro.experiments import multi_tenant

TINY = 0.12


def test_orderings_survive_contention():
    result = multi_tenant.run(scale=TINY, tenants=3)
    rows = {row["system"]: row for row in result["rows"]}
    assert (
        rows["fastswap"]["makespan_s"]
        < rows["infiniswap"]["makespan_s"]
        < rows["linux"]["makespan_s"]
    )
    # FastSwap actually uses the donated pools; Linux cannot.
    assert rows["fastswap"]["mean_pool_utilization"] > 0
    assert rows["linux"]["mean_pool_utilization"] == 0


def test_fairness_reported():
    result = multi_tenant.run(scale=TINY, tenants=2)
    for row in result["rows"]:
        assert row["fairness"] >= 1.0


def test_scaling_is_sublinear_for_fastswap():
    result = multi_tenant.run_scaling(scale=TINY, tenant_counts=(1, 4))
    fastswap = [row for row in result["rows"] if row["system"] == "fastswap"]
    single, quad = fastswap[0], fastswap[1]
    # 4x the tenants costs far less than 4x the makespan.
    assert quad["makespan_s"] < 2 * single["makespan_s"]
