"""Tests for the multi-tenant contention experiment."""

import pytest

from repro.core.cluster import DisaggregatedCluster
from repro.experiments import multi_tenant
from repro.experiments.runner import default_cluster_config
from repro.metrics.utilization import ClusterUtilizationMonitor
from repro.workloads.ml import ML_WORKLOADS

TINY = 0.12


def test_orderings_survive_contention():
    result = multi_tenant.run(scale=TINY, tenants=3)
    rows = {row["system"]: row for row in result["rows"]}
    assert (
        rows["fastswap"]["makespan_s"]
        < rows["infiniswap"]["makespan_s"]
        < rows["linux"]["makespan_s"]
    )
    # FastSwap actually uses the donated pools; Linux cannot.
    assert rows["fastswap"]["mean_pool_utilization"] > 0
    assert rows["linux"]["mean_pool_utilization"] == 0


def test_fairness_reported():
    result = multi_tenant.run(scale=TINY, tenants=2)
    for row in result["rows"]:
        assert row["fairness"] >= 1.0


def test_single_tenant_utilization_excludes_idle_pools():
    """Regression: utilization is averaged over *participating* nodes.

    Tier-1 puts land in the local node's shared pool, so with one
    tenant on the experiment's four-node cluster the other three
    donated pools are idle by construction.  The old cluster-wide
    average divided the same used bytes by all four capacities,
    diluting the reported utilization by exactly 4x.
    """
    config = default_cluster_config(seed=0, num_nodes=4)
    cluster = DisaggregatedCluster.build(config)
    participating = multi_tenant._participating_nodes(cluster, tenants=1)
    assert [node.node_id for node in participating] == ["node0"]

    spec = ML_WORKLOADS["logistic_regression"].with_overrides(
        pages=max(256, int(2048 * TINY)), iterations=3
    )
    corrected = multi_tenant._run_system("fastswap", spec, 1, seed=0)
    corrected_util = corrected["mean_pool_utilization"]
    assert corrected_util > 0

    # Replay the identical run under the old cluster-wide monitor: the
    # corrected value must be exactly the diluted one scaled by the
    # capacity ratio (same used bytes, participating-only denominator).
    diluted_monitor = {}
    original = ClusterUtilizationMonitor.__init__

    def spy(self, cluster, period=0.05, nodes=None):
        original(self, cluster, period=period, nodes=None)
        diluted_monitor["monitor"] = self

    ClusterUtilizationMonitor.__init__ = spy
    try:
        diluted = multi_tenant._run_system("fastswap", spec, 1, seed=0)
    finally:
        ClusterUtilizationMonitor.__init__ = original
    assert diluted["mean_pool_utilization"] == pytest.approx(
        corrected_util / 4.0
    )


def test_full_tenancy_utilization_unchanged_by_participation_filter():
    """With tenants == nodes every pool participates: the filter covers
    the whole cluster and reported numbers match the pre-fix ones."""
    config = default_cluster_config(seed=0, num_nodes=4)
    cluster = DisaggregatedCluster.build(config)
    participating = multi_tenant._participating_nodes(cluster, tenants=4)
    assert sorted(node.node_id for node in participating) == sorted(
        node.node_id for node in cluster.nodes()
    )


def test_scaling_is_sublinear_for_fastswap():
    result = multi_tenant.run_scaling(scale=TINY, tenant_counts=(1, 4))
    fastswap = [row for row in result["rows"] if row["system"] == "fastswap"]
    single, quad = fastswap[0], fastswap[1]
    # 4x the tenants costs far less than 4x the makespan.
    assert quad["makespan_s"] < 2 * single["makespan_s"]
