"""Keep experiment tests hermetic: never touch the repo's result cache."""

import pytest


@pytest.fixture(autouse=True)
def isolated_cache_dir(tmp_path, monkeypatch):
    """Point the default result cache at a per-test temp directory."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
