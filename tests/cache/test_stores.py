"""Tests for the vanilla executor store and the DAHI store."""

import pytest

from repro.cache.dahi import DahiStore
from repro.cache.rdd import Rdd
from repro.cache.spark import ExecutorStore, StorageLevel
from repro.core import ClusterConfig, DisaggregatedCluster
from repro.hw.latency import MiB


@pytest.fixture
def cluster():
    return DisaggregatedCluster.build(
        ClusterConfig(
            num_nodes=3,
            servers_per_node=1,
            server_memory_bytes=32 * MiB,
            donation_fraction=0.4,
            receive_pool_slabs=16,
            replication_factor=1,
            seed=5,
        )
    )


def make_rdd(partitions=8, partition_bytes=1 * MiB):
    root = Rdd.from_storage("input", partitions, partition_bytes)
    return root.transform("working", 1e-3).cache()


def drive(cluster, store, rdd, sweeps=1):
    def job():
        for _ in range(sweeps):
            for partition in rdd.partitions:
                yield from store.get_partition(partition)
        return True

    return cluster.run_process(job())


def test_storage_level_validation(cluster):
    node = cluster.nodes()[0]
    with pytest.raises(ValueError):
        ExecutorStore(cluster.env, node, 1 * MiB, storage_level="ram_only")


def test_everything_fits_all_hits_after_warmup(cluster):
    node = cluster.nodes()[0]
    store = ExecutorStore(cluster.env, node, 16 * MiB)
    rdd = make_rdd(partitions=8)
    drive(cluster, store, rdd, sweeps=3)
    # Sweep 1 recomputes everything once; sweeps 2-3 hit.
    assert store.stats.recomputes == 8
    assert store.stats.hits == 16


def test_same_rdd_partitions_never_evicted(cluster):
    node = cluster.nodes()[0]
    store = ExecutorStore(cluster.env, node, 4 * MiB)
    rdd = make_rdd(partitions=8)
    drive(cluster, store, rdd, sweeps=2)
    # 4 partitions stay cached; the rest overflow and recompute again.
    assert len(store.cached) == 4
    assert store.stats.hits == 4


def test_memory_only_recomputes_from_storage(cluster):
    node = cluster.nodes()[0]
    store = ExecutorStore(cluster.env, node, 4 * MiB,
                          storage_level=StorageLevel.MEMORY_ONLY)
    rdd = make_rdd(partitions=8)
    drive(cluster, store, rdd, sweeps=2)
    assert store.stats.recomputes == 12  # 8 warmup + 4 overflow again
    assert store.stats.storage_scans == 12


def test_memory_and_disk_spills_and_rereads(cluster):
    node = cluster.nodes()[0]
    store = ExecutorStore(cluster.env, node, 4 * MiB,
                          storage_level=StorageLevel.MEMORY_AND_DISK)
    rdd = make_rdd(partitions=8)
    drive(cluster, store, rdd, sweeps=2)
    assert store.stats.disk_reads > 0
    assert node.hdd.stats.writes > 0


def test_other_rdd_blocks_are_evictable(cluster):
    node = cluster.nodes()[0]
    store = ExecutorStore(cluster.env, node, 4 * MiB)
    old = make_rdd(partitions=4)
    new = make_rdd(partitions=4)
    drive(cluster, store, old)
    drive(cluster, store, new)
    assert store.stats.evictions >= 4
    assert all(key[0] == new.rdd_id for key in store.cached)


def test_dahi_parks_overflow_offheap(cluster):
    node = cluster.nodes()[0]
    server = node.servers[0]
    store = DahiStore(cluster.env, node, 4 * MiB, server)
    rdd = make_rdd(partitions=8)
    drive(cluster, store, rdd, sweeps=2)
    assert len(store.offheap_keys) == 4
    # Second sweep served overflow from off-heap, not recompute.
    assert store.stats.offheap_fetches == 4
    assert store.stats.recomputes == 8  # warmup only


def test_dahi_faster_than_vanilla_under_pressure(cluster):
    node = cluster.nodes()[0]

    def run(store):
        rdd = make_rdd(partitions=8)
        start = cluster.env.now
        drive(cluster, store, rdd, sweeps=3)
        return cluster.env.now - start

    vanilla_time = run(ExecutorStore(cluster.env, node, 4 * MiB))
    dahi_time = run(DahiStore(cluster.env, node, 4 * MiB, node.servers[0]))
    assert dahi_time < vanilla_time


def test_dahi_immutable_partitions_not_rewritten(cluster):
    node = cluster.nodes()[0]
    server = node.servers[0]
    store = DahiStore(cluster.env, node, 4 * MiB, server)
    rdd = make_rdd(partitions=8)
    drive(cluster, store, rdd, sweeps=3)
    shm_puts = node.shared_pool.puts
    drive(cluster, store, rdd, sweeps=1)
    # Another sweep re-fetches but never re-parks unchanged partitions.
    assert node.shared_pool.puts == shm_puts


def test_dahi_release_offheap(cluster):
    node = cluster.nodes()[0]
    server = node.servers[0]
    store = DahiStore(cluster.env, node, 4 * MiB, server)
    rdd = make_rdd(partitions=8)
    drive(cluster, store, rdd)
    assert store.offheap_keys

    def teardown():
        yield from store.release_offheap()
        return True

    cluster.run_process(teardown())
    assert not store.offheap_keys
    assert node.shared_pool.used_bytes == 0


def test_dahi_survives_offheap_loss(cluster):
    node = cluster.nodes()[0]
    server = node.servers[0]
    store = DahiStore(cluster.env, node, 4 * MiB, server)
    rdd = make_rdd(partitions=8)
    drive(cluster, store, rdd)
    # Wipe the parked copies behind DAHI's back.
    def wipe():
        for key in list(store.offheap_keys):
            yield from store.ldmc.remove(("dahi", key))
        return True

    cluster.run_process(wipe())
    drive(cluster, store, rdd, sweeps=1)
    # Falls back to recompute rather than erroring out.
    assert store.stats.recomputes > 8
