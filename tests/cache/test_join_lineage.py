"""Tests for multi-parent (join) lineage and its recompute cost."""

import pytest

from repro.cache.rdd import Rdd
from repro.cache.spark import ExecutorStore
from repro.core import ClusterConfig, DisaggregatedCluster
from repro.hw.latency import MiB


@pytest.fixture
def cluster():
    return DisaggregatedCluster.build(
        ClusterConfig(num_nodes=2, servers_per_node=1,
                      server_memory_bytes=16 * MiB, seed=6)
    )


def test_join_requires_co_partitioning():
    left = Rdd.from_storage("l", 4, 1024)
    right = Rdd.from_storage("r", 8, 1024)
    with pytest.raises(ValueError):
        left.join(right, "j", 1e-3)


def test_join_links_both_parents():
    left = Rdd.from_storage("l", 4, 1000)
    right = Rdd.from_storage("r", 4, 3000)
    joined = left.join(right, "j", 1e-3)
    assert joined.parents == (left, right)
    assert joined.parent is left
    assert joined.partition_bytes == 2000
    assert joined.lineage_depth() == 1


def test_parent_and_parents_mutually_exclusive():
    root = Rdd.from_storage("root", 2, 1024)
    with pytest.raises(ValueError):
        Rdd("bad", 2, 1024, parent=root, parents=(root,))


def test_lineage_depth_uses_longest_chain():
    root = Rdd.from_storage("root", 2, 1024)
    deep = root.transform("a", 1e-3).transform("b", 1e-3)
    joined = deep.join(root, "j", 1e-3)
    assert joined.lineage_depth() == 3


def test_join_recompute_scans_both_inputs(cluster):
    node = cluster.nodes()[0]
    store = ExecutorStore(cluster.env, node, 16 * MiB)
    left = Rdd.from_storage("l", 2, 1 * MiB)
    right = Rdd.from_storage("r", 2, 1 * MiB)
    joined = left.join(right, "j", 1e-3).cache()

    def job():
        yield from store.get_partition(joined.partitions[0])
        return True

    cluster.run_process(job())
    # Materializing the joined partition scanned both input splits.
    assert store.stats.storage_scans == 2
    assert node.hdd.stats.reads == 2


def test_cached_parent_short_circuits_recompute(cluster):
    node = cluster.nodes()[0]
    store = ExecutorStore(cluster.env, node, 16 * MiB)
    left = Rdd.from_storage("l", 2, 1 * MiB)
    right = Rdd.from_storage("r", 2, 1 * MiB)
    left_cached = left.transform("lc", 1e-3).cache()
    joined = left_cached.join(right, "j", 1e-3).cache()

    def job():
        # Warm the left side into the block store first.
        yield from store.get_partition(left_cached.partitions[0])
        scans_before = store.stats.storage_scans
        yield from store.get_partition(joined.partitions[0])
        return scans_before

    scans_before = cluster.run_process(job())
    # Only the right input needed a storage scan.
    assert store.stats.storage_scans == scans_before + 1
