"""Cross-executor disaggregated memory orchestration (paper Section V-B).

The paper's DAHI claim is about *sharing across executors*: one
executor's evicted partitions live in idle memory donated by co-hosted
executors (node level) and remote nodes (cluster level).  These tests
run two DAHI executors at once and verify they really share the pools.
"""

import pytest

from repro.cache.dahi import DahiStore
from repro.cache.rdd import Rdd
from repro.core import ClusterConfig, DisaggregatedCluster
from repro.hw.latency import MiB


@pytest.fixture
def cluster():
    return DisaggregatedCluster.build(
        ClusterConfig(
            num_nodes=3,
            servers_per_node=2,
            server_memory_bytes=32 * MiB,
            donation_fraction=0.3,
            receive_pool_slabs=24,
            replication_factor=1,
            seed=29,
        )
    )


def make_job(partitions):
    root = Rdd.from_storage("input", partitions, 1 * MiB)
    return root.transform("working", 1e-3).cache()


def sweep(cluster, store, rdd, times=1):
    def job():
        for _ in range(times):
            for partition in rdd.partitions:
                yield from store.get_partition(partition)
        return True

    return cluster.run_process(job())


def test_two_executors_share_the_node_pool(cluster):
    node = cluster.nodes()[0]
    first, second = node.servers
    store_a = DahiStore(cluster.env, node, 4 * MiB, first)
    store_b = DahiStore(cluster.env, node, 4 * MiB, second)
    rdd_a, rdd_b = make_job(8), make_job(8)
    sweep(cluster, store_a, rdd_a, times=2)
    sweep(cluster, store_b, rdd_b, times=2)
    # Both executors parked overflow in the same node pool: the pool
    # holds entries keyed by both server ids.
    assert store_a.offheap_keys and store_b.offheap_keys
    owners = {key[0] for key in node.shared_pool.keys()}
    assert owners == {first.server_id, second.server_id}
    assert node.shared_pool.used_bytes > 0
    # Off-heap fetches worked for both.
    assert store_a.stats.offheap_fetches > 0
    assert store_b.stats.offheap_fetches > 0


def test_overflow_spills_to_cluster_when_pool_is_tight(cluster):
    node = cluster.nodes()[0]
    first = node.servers[0]
    # Shrink the node pool by retracting most donations.
    for server in node.servers:
        server.balloon(server.donated_bytes - 2 * MiB)
    store = DahiStore(cluster.env, node, 4 * MiB, first)
    rdd = make_job(24)  # 24 MiB working set, 4 MiB on-heap, ~2 MiB pool
    sweep(cluster, store, rdd, times=2)
    maps = node.ldms.map_for(first)
    remote = [
        record for record in (
            maps.lookup((first.server_id, ("dahi", p.key)))
            for p in rdd.partitions
        )
        if record is not None and record.location == "remote"
    ]
    assert remote, "expected partitions parked on remote nodes"
    hosted_elsewhere = sum(
        n.rdms.hosted_bytes for n in cluster.nodes() if n is not node
    )
    assert hosted_elsewhere > 0


def test_executors_on_different_nodes_are_isolated_namespaces(cluster):
    node_a, node_b = cluster.nodes()[0], cluster.nodes()[1]
    store_a = DahiStore(cluster.env, node_a, 4 * MiB, node_a.servers[0])
    store_b = DahiStore(cluster.env, node_b, 4 * MiB, node_b.servers[0])
    rdd = make_job(8)
    sweep(cluster, store_a, rdd, times=2)
    # The same RDD driven through another node's executor keys its
    # entries under its own server id: no collisions, no sharing bugs.
    sweep(cluster, store_b, rdd, times=2)
    assert store_a.stats.offheap_fetches > 0
    assert store_b.stats.offheap_fetches > 0
