"""Unit tests for RDDs and lineage."""

import pytest

from repro.cache.rdd import Rdd


def test_from_storage_builds_partitions():
    rdd = Rdd.from_storage("input", 8, 1024)
    assert len(rdd.partitions) == 8
    assert rdd.storage_read
    assert rdd.parent is None
    assert all(p.size_bytes == 1024 for p in rdd.partitions)


def test_partition_keys_unique():
    a = Rdd.from_storage("a", 4, 1024)
    b = Rdd.from_storage("b", 4, 1024)
    keys = {p.key for p in a.partitions} | {p.key for p in b.partitions}
    assert len(keys) == 8


def test_transform_links_parent():
    root = Rdd.from_storage("input", 4, 1024)
    child = root.transform("mapped", compute_time_per_partition=1e-3)
    assert child.parent is root
    assert len(child.partitions) == 4
    assert child.lineage_depth() == 1
    assert root.lineage_depth() == 0


def test_transform_size_factor():
    root = Rdd.from_storage("input", 4, 1000)
    child = root.transform("projected", 1e-3, size_factor=0.5)
    assert child.partition_bytes == 500


def test_cache_flag():
    rdd = Rdd.from_storage("input", 2, 1024)
    assert not rdd.cached
    assert rdd.cache() is rdd
    assert rdd.cached


def test_invalid_partition_count():
    with pytest.raises(ValueError):
        Rdd("bad", 0, 1024)
