"""Tests for the Spark job runner (Figure 10 machinery)."""

import pytest

from repro.cache.jobs import SPARK_JOBS, SparkJobSpec, run_spark_job
from repro.hw.latency import MiB

FAST = SparkJobSpec(name="test-job", iterations=3)


def test_invalid_system_rejected():
    with pytest.raises(ValueError):
        run_spark_job("flink", FAST, "small")


def test_partition_sizing_by_category():
    spec = SPARK_JOBS["logistic_regression"]
    storage = 24 * MiB
    small = spec.num_partitions("small", storage)
    medium = spec.num_partitions("medium", storage)
    large = spec.num_partitions("large", storage)
    assert small < medium < large


def test_small_dataset_no_speedup():
    spark = run_spark_job("spark", FAST, "small", seed=4)
    dahi = run_spark_job("dahi", FAST, "small", seed=4)
    assert dahi.completion_time == pytest.approx(spark.completion_time, rel=0.02)


def test_large_dataset_dahi_wins():
    spark = run_spark_job("spark", FAST, "large", seed=4)
    dahi = run_spark_job("dahi", FAST, "large", seed=4)
    assert spark.completion_time / dahi.completion_time > 1.3


def test_speedup_grows_with_dataset():
    def speedup(cat):
        spark = run_spark_job("spark", FAST, cat, seed=4)
        dahi = run_spark_job("dahi", FAST, cat, seed=4)
        return spark.completion_time / dahi.completion_time

    assert speedup("small") < speedup("medium") < speedup("large")


def test_all_four_jobs_run():
    for name, spec in SPARK_JOBS.items():
        quick = spec
        quick = SparkJobSpec(
            name=spec.name,
            iterations=2,
            iter_compute_per_partition=spec.iter_compute_per_partition,
            parse_time_per_partition=spec.parse_time_per_partition,
        )
        result = run_spark_job("dahi", quick, "medium", seed=4)
        assert result.completion_time > 0
        assert result.job == name


def test_deterministic():
    a = run_spark_job("dahi", FAST, "large", seed=9)
    b = run_spark_job("dahi", FAST, "large", seed=9)
    assert a.completion_time == b.completion_time
