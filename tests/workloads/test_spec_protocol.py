"""The unified WorkloadSpec protocol: shims warn, dispatch stays equal."""

import random
import warnings

import pytest

from repro.sim.rng import RngStreams
from repro.workloads import KV_WORKLOADS, ML_WORKLOADS
from repro.workloads.batch import ZipfBatchSpec
from repro.workloads.spec import iter_accesses, spec_batch
from repro.workloads.traces import record_trace


def _shim_calls():
    """Every deprecated (old name → equivalent new call) pair."""
    ml = ML_WORKLOADS["kmeans"].with_overrides(pages=32, iterations=1)
    kv = KV_WORKLOADS["redis"].with_overrides(keys=32)
    zipf = ZipfBatchSpec(pages=16, length=8)
    recorded = record_trace(ml, random.Random(0))
    return [
        ("MlWorkloadSpec.trace",
         lambda: list(ml.trace(random.Random(1))),
         lambda: list(ml.iter_accesses(random.Random(1)))),
        ("MlWorkloadSpec.trace_batch",
         lambda: ml.trace_batch(random.Random(1)).addresses,
         lambda: ml.as_batch(random.Random(1)).addresses),
        ("KvWorkloadSpec.operations",
         lambda: [next(ml_it) for ml_it in [kv.operations(random.Random(2))]
                  for _ in range(5)],
         lambda: [next(it) for it in [kv.iter_operations(random.Random(2))]
                  for _ in range(5)]),
        ("KvWorkloadSpec.operations_batch",
         lambda: kv.operations_batch(random.Random(2), 5),
         lambda: kv.ops_batch(random.Random(2), 5)),
        ("ZipfBatchSpec.trace",
         lambda: list(zipf.trace(random.Random(3))),
         lambda: list(zipf.iter_accesses(random.Random(3)))),
        ("ZipfBatchSpec.trace_batch",
         lambda: zipf.trace_batch(random.Random(3)).addresses,
         lambda: zipf.as_batch(random.Random(3)).addresses),
        ("RecordedTrace.trace",
         lambda: list(recorded.trace()),
         lambda: list(recorded.iter_accesses())),
    ]


@pytest.mark.parametrize(
    "label,old,new", _shim_calls(), ids=[c[0] for c in _shim_calls()]
)
def test_deprecated_shim_warns_and_matches(label, old, new):
    with pytest.warns(DeprecationWarning, match="deprecated"):
        old_result = old()
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        new_result = new()
    assert old_result == new_result


def test_new_names_do_not_warn():
    spec = ML_WORKLOADS["pagerank"].with_overrides(pages=32, iterations=1)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        streamed = list(spec.iter_accesses(random.Random(7)))
        batch = spec.as_batch(random.Random(7))
    assert list(batch.pairs()) == streamed


def test_iter_accesses_helper_dispatches_to_protocol():
    spec = ML_WORKLOADS["als"].with_overrides(pages=32, iterations=1)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        via_helper = list(iter_accesses(spec, random.Random(4)))
    assert via_helper == list(spec.iter_accesses(random.Random(4)))


def test_iter_accesses_helper_rejects_non_specs():
    with pytest.raises(TypeError):
        iter_accesses(object(), random.Random(0))


def test_spec_batch_helper_prefers_native_as_batch():
    spec = ZipfBatchSpec(pages=32, length=64)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        batch = spec_batch(spec, random.Random(5))
    assert batch.addresses == spec.as_batch(random.Random(5)).addresses


def test_spec_batch_helper_passes_length_to_infinite_specs():
    spec = KV_WORKLOADS["memcached"].with_overrides(keys=64)
    batch = spec_batch(spec, RngStreams(3).stream("ops"), 100)
    assert len(batch) == 100


def test_spec_batch_helper_drains_duck_typed_streams():
    class Stream:
        def iter_accesses(self, rng):
            return iter([(1, False), (2, True)])

    batch = spec_batch(Stream(), random.Random(0))
    assert list(batch.pairs()) == [(1, False), (2, True)]


def test_kv_page_level_surface_expands_operations():
    spec = KV_WORKLOADS["voltdb"].with_overrides(keys=32)
    pairs = []
    stream = spec.iter_accesses(RngStreams(9).stream("ops"))
    for _ in range(50):
        pairs.append(next(stream))
    ops = spec.ops_batch(RngStreams(9).stream("ops"), 25)
    expanded = [
        (first + offset, write)
        for first, count, write in ops
        for offset in range(count)
    ]
    assert pairs == expanded[:50]

    batch = spec.as_batch(RngStreams(9).stream("ops"), 25)
    assert list(batch.pairs()) == expanded


def test_every_spec_has_arrival_process_hook():
    specs = [
        ML_WORKLOADS["kmeans"],
        KV_WORKLOADS["redis"],
        ZipfBatchSpec(),
        record_trace(
            ML_WORKLOADS["kmeans"].with_overrides(pages=16, iterations=1),
            random.Random(0),
        ),
    ]
    for spec in specs:
        assert spec.arrival_process is None
