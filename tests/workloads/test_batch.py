"""The batched workload contract: batches must equal their streams."""

import random

import pytest

from repro.sim.rng import RngStreams
from repro.workloads import KV_WORKLOADS, ML_WORKLOADS
from repro.workloads.batch import AccessBatch, ZipfBatchSpec, materialize
from repro.workloads.patterns import ZipfSampler
from repro.workloads.traces import record_trace


def test_access_batch_validates_parallel_arrays():
    with pytest.raises(ValueError):
        AccessBatch([1, 2], [True])
    with pytest.raises(ValueError):
        AccessBatch([1, 2], [True, False], gaps=[0.1])


def test_access_batch_round_trip():
    batch = AccessBatch.from_pairs([(3, True), (7, False)])
    assert len(batch) == 2
    assert list(batch.pairs()) == [(3, True), (7, False)]


def test_materialize_falls_back_to_streamed_trace():
    recorded = record_trace(
        ML_WORKLOADS["kmeans"].with_overrides(pages=64),
        RngStreams(5).stream("trace"),
    )
    batch = materialize(recorded, RngStreams(5).stream("trace"))
    assert list(batch.pairs()) == list(recorded.iter_accesses())


@pytest.mark.parametrize("name", sorted(ML_WORKLOADS))
def test_ml_trace_batch_equals_trace(name):
    spec = ML_WORKLOADS[name].with_overrides(pages=128)
    batch = spec.as_batch(RngStreams(11).stream("trace"))
    streamed = list(spec.iter_accesses(RngStreams(11).stream("trace")))
    assert list(batch.pairs()) == streamed


@pytest.mark.parametrize("name", sorted(KV_WORKLOADS))
def test_kv_operations_batch_equals_operations_prefix(name):
    spec = KV_WORKLOADS[name].with_overrides(keys=200)
    batched = spec.ops_batch(RngStreams(7).stream("ops"), 500)
    stream = spec.iter_operations(RngStreams(7).stream("ops"))
    assert batched == [next(stream) for _ in range(500)]


def test_zipf_batch_spec_trace_is_its_batch():
    spec = ZipfBatchSpec(pages=64, length=256)
    batch = spec.as_batch(random.Random(3))
    assert len(batch) == 256
    assert all(0 <= address < 64 for address in batch.addresses)
    assert list(spec.iter_accesses(random.Random(3))) == list(batch.pairs())


def test_zipf_batch_spec_overrides():
    spec = ZipfBatchSpec().with_overrides(pages=16, length=8)
    assert spec.pages == 16 and len(spec.as_batch(random.Random(0))) == 8


def test_sample_many_matches_repeated_sample():
    one = ZipfSampler(100, 0.9, random.Random(21), locality_block=8)
    many = ZipfSampler(100, 0.9, random.Random(21), locality_block=8)
    assert many.sample_many(400) == [one.sample() for _ in range(400)]


def test_sample_many_without_locality():
    one = ZipfSampler(50, 1.2, random.Random(9))
    many = ZipfSampler(50, 1.2, random.Random(9))
    assert many.sample_many(200) == [one.sample() for _ in range(200)]
