"""Unit tests for access-pattern primitives."""

import random

import pytest

from repro.workloads.patterns import (
    ZipfSampler,
    interleave,
    sequential_scan,
    strided_scan,
    take,
)


def test_zipf_validation():
    rng = random.Random(0)
    with pytest.raises(ValueError):
        ZipfSampler(0, 1.0, rng)
    with pytest.raises(ValueError):
        ZipfSampler(10, -1.0, rng)
    with pytest.raises(ValueError):
        ZipfSampler(10, 1.0, rng, locality_block=0)


def test_zipf_range():
    sampler = ZipfSampler(100, 1.0, random.Random(1))
    draws = [sampler.sample() for _ in range(1000)]
    assert all(0 <= d < 100 for d in draws)


def test_zipf_skew():
    sampler = ZipfSampler(1000, 1.2, random.Random(1), permute=False)
    draws = [sampler.sample() for _ in range(5000)]
    top_ten = sum(1 for d in draws if d < 10)
    assert top_ten / len(draws) > 0.3  # heavy head


def test_zipf_alpha_zero_is_uniformish():
    sampler = ZipfSampler(10, 0.0, random.Random(1), permute=False)
    draws = [sampler.sample() for _ in range(10000)]
    counts = [draws.count(i) for i in range(10)]
    assert max(counts) < 2 * min(counts)


def test_zipf_permutation_decorrelates_rank_and_address():
    no_permute = ZipfSampler(1000, 1.2, random.Random(1), permute=False)
    permute = ZipfSampler(1000, 1.2, random.Random(1), permute=True)
    hot_no = {no_permute.sample() for _ in range(200)}
    hot_yes = {permute.sample() for _ in range(200)}
    assert hot_no != hot_yes


def test_zipf_locality_block_clusters_hot_addresses():
    sampler = ZipfSampler(1024, 1.2, random.Random(3), locality_block=8)
    draws = [sampler.sample() for _ in range(2000)]
    hot = sorted(set(draws), key=draws.count, reverse=True)[:32]
    # Hot addresses come from few distinct blocks.
    blocks = {address // 8 for address in hot}
    assert len(blocks) < len(hot)


def test_zipf_mapping_is_bijective():
    sampler = ZipfSampler(100, 1.0, random.Random(2), locality_block=8)
    assert sorted(sampler._mapping) == list(range(100))


def test_sequential_scan():
    assert list(sequential_scan(4)) == [0, 1, 2, 3]
    assert list(sequential_scan(4, start=2)) == [2, 3, 0, 1]


def test_strided_scan_covers_with_coprime_stride():
    assert sorted(strided_scan(8, 3)) == list(range(8))


def test_interleave_ratio_zero():
    rng = random.Random(0)
    assert list(interleave([1, 2, 3], iter([9, 9]), 0.0, rng)) == [1, 2, 3]


def test_interleave_ratio_one():
    rng = random.Random(0)
    out = list(interleave([1, 2], iter([8, 9]), 1.0, rng))
    assert out == [1, 8, 2, 9]


def test_take():
    assert take(iter(range(100)), 3) == [0, 1, 2]


def test_zipf_rejects_locality_block_wider_than_n():
    with pytest.raises(ValueError):
        ZipfSampler(8, 1.0, random.Random(0), locality_block=9)
    # The boundary itself is legal: one block covering everything.
    ZipfSampler(8, 1.0, random.Random(0), locality_block=8)


def test_zipf_single_item_always_draws_it():
    sampler = ZipfSampler(1, 1.0, random.Random(4))
    assert [sampler.sample() for _ in range(20)] == [0] * 20
    assert sampler.sample_many(20) == [0] * 20


def test_zipf_alpha_zero_sample_many_matches_sample():
    one = ZipfSampler(16, 0.0, random.Random(6))
    many = ZipfSampler(16, 0.0, random.Random(6))
    assert many.sample_many(64) == [one.sample() for _ in range(64)]
