"""Unit tests for workload specs and the Table 1 catalog."""

import random

import pytest

from repro.workloads.catalog import APPLICATIONS, get_application, iter_applications
from repro.workloads.kv import KV_WORKLOADS
from repro.workloads.ml import ML_WORKLOADS


def test_catalog_has_ten_applications():
    assert len(APPLICATIONS) == 10
    assert len(iter_applications()) == 10


def test_catalog_sizes_match_paper_ranges():
    for app in iter_applications():
        assert 25 <= app.working_set_bytes / 2**30 <= 30
        assert 12 <= app.input_bytes / 2**30 <= 20


def test_catalog_lookup():
    assert get_application("pagerank").framework == "PowerGraph"
    with pytest.raises(KeyError):
        get_application("minesweeper")


def test_catalog_workload_scaled_to_spec():
    app = get_application("pagerank")
    workload = app.workload()
    assert workload.pages == app.scaled_pages


def test_catalog_kv_workloads_resolve():
    app = get_application("voltdb")
    workload = app.workload()
    assert workload.pages_per_key == 2
    assert workload.pages <= app.scaled_pages


def test_ml_trace_shape():
    spec = ML_WORKLOADS["kmeans"].with_overrides(pages=64, iterations=2)
    trace = list(spec.iter_accesses(random.Random(0)))
    page_ids = [page_id for page_id, _w in trace]
    assert max(page_ids) < 64
    assert min(page_ids) == 0
    # Each iteration scans the whole set at least once.
    assert len(trace) >= 2 * 64


def test_ml_trace_write_fraction():
    spec = ML_WORKLOADS["kmeans"].with_overrides(
        pages=256, iterations=4, write_fraction=0.5
    )
    trace = list(spec.iter_accesses(random.Random(0)))
    writes = sum(1 for _p, w in trace if w)
    assert 0.4 < writes / len(trace) < 0.6


def test_ml_trace_deterministic():
    spec = ML_WORKLOADS["svm"].with_overrides(pages=64, iterations=1)
    a = list(spec.iter_accesses(random.Random(5)))
    b = list(spec.iter_accesses(random.Random(5)))
    assert a == b


def test_ml_approximate_accesses():
    spec = ML_WORKLOADS["pagerank"].with_overrides(pages=1000, iterations=2)
    trace_length = len(list(spec.iter_accesses(random.Random(0))))
    assert trace_length == pytest.approx(spec.approximate_accesses, rel=0.15)


def test_kv_operations_stream():
    spec = KV_WORKLOADS["voltdb"].with_overrides(keys=32)
    stream = spec.iter_operations(random.Random(0))
    for _ in range(100):
        first_page, count, is_write = next(stream)
        assert count == 2
        assert 0 <= first_page < spec.pages
        assert first_page % 2 == 0


def test_kv_read_fraction():
    spec = KV_WORKLOADS["memcached"].with_overrides(keys=64)
    stream = spec.iter_operations(random.Random(1))
    writes = sum(1 for _ in range(2000) if next(stream)[2])
    assert writes / 2000 == pytest.approx(0.05, abs=0.02)
