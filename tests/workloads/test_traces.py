"""Tests for trace recording and replay."""

import random

import pytest

from repro.experiments.runner import run_paging_workload
from repro.workloads.ml import ML_WORKLOADS
from repro.workloads.traces import (
    RecordedTrace,
    load_trace,
    record_trace,
    save_trace,
)


@pytest.fixture
def small_spec():
    return ML_WORKLOADS["kmeans"].with_overrides(pages=64, iterations=2)


def test_record_materializes_generator(small_spec):
    trace = record_trace(small_spec, random.Random(4))
    assert trace.name == "kmeans"
    assert trace.pages == 64
    assert len(trace) > 64


def test_replay_is_exact(small_spec):
    trace = record_trace(small_spec, random.Random(4))
    assert list(trace.iter_accesses()) == trace.accesses
    assert list(trace.iter_accesses(random.Random(999))) == trace.accesses


def test_save_load_roundtrip(small_spec, tmp_path):
    trace = record_trace(small_spec, random.Random(4))
    path = tmp_path / "kmeans.trace"
    save_trace(trace, str(path))
    loaded = load_trace(str(path))
    assert loaded.name == trace.name
    assert loaded.pages == trace.pages
    assert loaded.accesses == trace.accesses
    assert loaded.compute_per_access == trace.compute_per_access
    assert loaded.compressibility.mean_ratio == (
        trace.compressibility.mean_ratio
    )


def test_load_rejects_other_files(tmp_path):
    path = tmp_path / "not_a_trace.txt"
    path.write_text("hello\n")
    with pytest.raises(ValueError, match="not a repro trace"):
        load_trace(str(path))


def test_load_rejects_truncated_header(tmp_path):
    path = tmp_path / "trunc.trace"
    path.write_text("#repro-trace v1\nname=x\n")
    with pytest.raises(ValueError, match="truncated"):
        load_trace(str(path))


def test_out_of_range_access_rejected():
    with pytest.raises(ValueError):
        RecordedTrace("bad", 4, [(7, False)])


def test_with_overrides_limited(small_spec):
    trace = record_trace(small_spec, random.Random(4))
    faster = trace.with_overrides(compute_per_access=1e-9)
    assert faster.compute_per_access == 1e-9
    assert faster.accesses == trace.accesses
    with pytest.raises(ValueError):
        trace.with_overrides(pages=128)


def test_recorded_trace_drives_the_runner(small_spec, tmp_path):
    """A loaded trace is a drop-in workload spec."""
    trace = record_trace(small_spec, random.Random(4))
    path = tmp_path / "run.trace"
    save_trace(trace, str(path))
    loaded = load_trace(str(path))
    result = run_paging_workload("fastswap", loaded, 0.5, seed=2)
    assert result.completion_time > 0
    assert result.stats["accesses"] == len(trace)


def test_replay_reproduces_generator_run(small_spec):
    """Replaying a recorded trace gives the same paging behaviour as
    generating it live with the same seed."""
    live = run_paging_workload("fastswap", small_spec, 0.5, seed=6)
    # The runner derives its trace rng from the cluster seed; record
    # with that same stream to match.
    from repro.sim import RngStreams

    rng = RngStreams(6).stream("trace")
    recorded = record_trace(small_spec, rng)
    replayed = run_paging_workload("fastswap", recorded, 0.5, seed=6)
    assert replayed.stats["major_faults"] == live.stats["major_faults"]
    assert replayed.completion_time == pytest.approx(live.completion_time)
