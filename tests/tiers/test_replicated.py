"""Unit and integration tests for the replicated remote tier."""

import pytest

from repro.core.cluster import DisaggregatedCluster
from repro.experiments.runner import default_cluster_config
from repro.mem.page import make_pages
from repro.swap.factory import make_swap_backend
from repro.tiers.replicated import ReplicaMap


class TestReplicaMap:
    def test_place_and_holders(self):
        rmap = ReplicaMap(3)
        rmap.place(1, ("a", "b", "c"))
        assert rmap.holders(1) == ("a", "b", "c")
        assert rmap.pages_on("b") == [1]
        assert 1 in rmap and len(rmap) == 1

    def test_place_requires_holders(self):
        with pytest.raises(ValueError):
            ReplicaMap(2).place(1, ())
        with pytest.raises(ValueError):
            ReplicaMap(0)

    def test_drop_node_splits_orphans_and_lost(self):
        rmap = ReplicaMap(2)
        rmap.place(1, ("a", "b"))
        rmap.place(2, ("a",))
        rmap.place(3, ("b", "c"))
        orphans, lost = rmap.drop_node("a")
        assert orphans == [1]
        assert lost == [2]
        assert rmap.holders(1) == ("b",)
        assert 2 not in rmap
        assert rmap.holders(3) == ("b", "c")

    def test_add_holder_repairs_under_replication(self):
        rmap = ReplicaMap(2)
        rmap.place(1, ("a", "b"))
        rmap.drop_node("a")
        assert rmap.under_replicated() == [1]
        rmap.add_holder(1, "c")
        assert rmap.under_replicated() == []
        assert rmap.holders(1) == ("b", "c")

    def test_add_holder_ignores_unknown_pages_and_duplicates(self):
        rmap = ReplicaMap(2)
        rmap.add_holder(9, "a")
        assert 9 not in rmap
        rmap.place(1, ("a", "b"))
        rmap.add_holder(1, "a")
        assert rmap.holders(1) == ("a", "b")

    def test_remove_page_clears_both_indexes(self):
        rmap = ReplicaMap(2)
        rmap.place(1, ("a", "b"))
        rmap.remove_page(1)
        assert rmap.holders(1) == ()
        assert rmap.pages_on("a") == []


def build(replication, seed=11):
    config = default_cluster_config(
        seed=seed, replication_factor=replication
    )
    cluster = DisaggregatedCluster.build(config)
    node = cluster.nodes()[0]
    backend = make_swap_backend(
        "replicated-remote", node, cluster, rng=cluster.rng.stream("backend")
    )
    cluster.run_process(backend.setup())
    return cluster, node, backend


def swap_out_all(cluster, backend, pages):
    def job():
        for page in pages:
            yield from backend.swap_out(page)

    cluster.run_process(job())


class TestReplicatedRemoteTier:
    def test_every_page_gets_full_replica_set(self):
        cluster, _node, backend = build(replication=3)
        tier = backend.tiers[0]
        pages = make_pages(8, owner="t")
        swap_out_all(cluster, backend, pages)
        for page in pages:
            holders = tier.map.holders(page.page_id)
            assert len(holders) == 3
            assert len(set(holders)) == 3
        # Capacity accounting matches the copies written.
        used = sum(area.used_bytes for area in tier.areas.values())
        assert used == sum(page.size for page in pages) * 3

    def test_crash_triggers_re_replication(self):
        cluster, _node, backend = build(replication=2)
        tier = backend.tiers[0]
        pages = make_pages(6, owner="t")
        swap_out_all(cluster, backend, pages)
        victim = tier.map.holders(pages[0].page_id)[0]
        cluster.crash_node(victim)
        cluster.env.run(until=cluster.env.now + 0.5)
        # With a third peer available every orphan is repaired.
        assert tier.tracker.pages_lost.value == 0
        assert tier.tracker.pages_re_replicated.value > 0
        for page in pages:
            assert len(tier.map.holders(page.page_id)) == 2
            assert victim not in tier.map.holders(page.page_id)
        snap = tier.tracker.snapshot()
        assert snap["repairs_completed"] == 1
        assert snap["repair_mean_s"] is not None

    def test_single_replica_loss_loses_pages_but_serves_degraded(self):
        cluster, _node, backend = build(replication=1)
        tier = backend.tiers[0]
        pages = make_pages(12, owner="t")
        swap_out_all(cluster, backend, pages)
        victim = tier.map.holders(pages[0].page_id)[0]
        doomed = [
            page for page in pages
            if tier.map.holders(page.page_id) == (victim,)
        ]
        cluster.crash_node(victim)
        cluster.env.run(until=cluster.env.now + 0.5)
        assert tier.tracker.pages_lost.value == len(doomed) > 0
        # A read of a lost page is served by the degraded disk path.
        cluster.run_process(backend.swap_in(doomed[0]))
        assert tier.fallback_reads == 1
        assert tier.tracker.degraded_reads.value == 1

    def test_read_fails_over_to_surviving_replica(self):
        cluster, _node, backend = build(replication=2)
        tier = backend.tiers[0]
        pages = make_pages(4, owner="t")
        swap_out_all(cluster, backend, pages)
        page = pages[0]
        first_holder = tier.map.holders(page.page_id)[0]
        cluster.fabric.set_node_down(first_holder, down=True)
        cluster.run_process(backend.swap_in(page))
        assert tier.reads == 1
        assert tier.fallback_reads == 0

    def test_rebooted_peer_is_readmitted_and_topped_up(self):
        cluster, _node, backend = build(replication=3)
        tier = backend.tiers[0]
        pages = make_pages(5, owner="t")
        swap_out_all(cluster, backend, pages)
        victim = tier.map.holders(pages[0].page_id)[0]
        cluster.crash_node(victim)
        cluster.env.run(until=cluster.env.now + 0.1)
        # Only two peers remain: repair cannot restore the third copy.
        assert all(
            len(tier.map.holders(page.page_id)) == 2 for page in pages
        )
        cluster.run_process(cluster.reboot_node(victim))
        cluster.env.run(until=cluster.env.now + 0.5)
        assert victim in tier.areas
        assert tier.tracker.nodes_recovered.value == 1
        for page in pages:
            assert len(tier.map.holders(page.page_id)) == 3

    def test_under_replicated_write_spills_down(self):
        cluster, _node, backend = build(replication=3)
        tier = backend.tiers[0]
        victim = sorted(tier.areas)[0]
        cluster.crash_node(victim)
        pages = make_pages(3, owner="t")
        swap_out_all(cluster, backend, pages)
        # Two live peers < replication=3: every page spills below.
        assert tier.stats.puts.value == 0
        for page in pages:
            label, _meta = backend.location(page.page_id)
            assert label is not None and label != tier.name

    def test_forget_releases_replica_space(self):
        cluster, _node, backend = build(replication=2)
        tier = backend.tiers[0]
        pages = make_pages(3, owner="t")
        swap_out_all(cluster, backend, pages)
        before = sum(area.used_bytes for area in tier.areas.values())
        backend.discard(pages[0])
        after = sum(area.used_bytes for area in tier.areas.values())
        assert before - after == pages[0].size * 2
        assert tier.map.holders(pages[0].page_id) == ()

    def test_snapshot_reports_replication_columns(self):
        cluster, _node, backend = build(replication=2)
        pages = make_pages(2, owner="t")
        swap_out_all(cluster, backend, pages)
        row = backend.tier_breakdown()[0]
        assert row["replication"] == 2
        assert row["pages_lost"] == 0
        assert "repair_mean_s" in row and "degraded_reads" in row
