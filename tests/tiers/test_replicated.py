"""Unit and integration tests for the replicated remote tier."""

import pytest

from repro.core.cluster import DisaggregatedCluster
from repro.experiments.runner import default_cluster_config
from repro.mem.page import make_pages
from repro.swap.factory import make_swap_backend
from repro.tiers.replicated import ReplicaMap


class TestReplicaMap:
    def test_place_and_holders(self):
        rmap = ReplicaMap(3)
        rmap.place(1, ("a", "b", "c"))
        assert rmap.holders(1) == ("a", "b", "c")
        assert rmap.pages_on("b") == [1]
        assert 1 in rmap and len(rmap) == 1

    def test_place_requires_holders(self):
        with pytest.raises(ValueError):
            ReplicaMap(2).place(1, ())
        with pytest.raises(ValueError):
            ReplicaMap(0)

    def test_drop_node_splits_orphans_and_lost(self):
        rmap = ReplicaMap(2)
        rmap.place(1, ("a", "b"))
        rmap.place(2, ("a",))
        rmap.place(3, ("b", "c"))
        orphans, lost = rmap.drop_node("a")
        assert orphans == [1]
        assert lost == [2]
        assert rmap.holders(1) == ("b",)
        assert 2 not in rmap
        assert rmap.holders(3) == ("b", "c")

    def test_add_holder_repairs_under_replication(self):
        rmap = ReplicaMap(2)
        rmap.place(1, ("a", "b"))
        rmap.drop_node("a")
        assert rmap.under_replicated() == [1]
        rmap.add_holder(1, "c")
        assert rmap.under_replicated() == []
        assert rmap.holders(1) == ("b", "c")

    def test_add_holder_ignores_unknown_pages_and_duplicates(self):
        rmap = ReplicaMap(2)
        rmap.add_holder(9, "a")
        assert 9 not in rmap
        rmap.place(1, ("a", "b"))
        rmap.add_holder(1, "a")
        assert rmap.holders(1) == ("a", "b")

    def test_remove_page_clears_both_indexes(self):
        rmap = ReplicaMap(2)
        rmap.place(1, ("a", "b"))
        rmap.remove_page(1)
        assert rmap.holders(1) == ()
        assert rmap.pages_on("a") == []


def build(replication, seed=11, backend_name="replicated-remote",
          num_nodes=4):
    config = default_cluster_config(
        seed=seed, replication_factor=replication, num_nodes=num_nodes
    )
    cluster = DisaggregatedCluster.build(config)
    node = cluster.nodes()[0]
    backend = make_swap_backend(
        backend_name, node, cluster, rng=cluster.rng.stream("backend")
    )
    cluster.run_process(backend.setup())
    return cluster, node, backend


def swap_out_all(cluster, backend, pages):
    def job():
        for page in pages:
            yield from backend.swap_out(page)

    cluster.run_process(job())


class TestReplicatedRemoteTier:
    def test_every_page_gets_full_replica_set(self):
        cluster, _node, backend = build(replication=3)
        tier = backend.tiers[0]
        pages = make_pages(8, owner="t")
        swap_out_all(cluster, backend, pages)
        for page in pages:
            holders = tier.map.holders(page.page_id)
            assert len(holders) == 3
            assert len(set(holders)) == 3
        # Capacity accounting matches the copies written.
        used = sum(area.used_bytes for area in tier.areas.values())
        assert used == sum(page.size for page in pages) * 3

    def test_crash_triggers_re_replication(self):
        cluster, _node, backend = build(replication=2)
        tier = backend.tiers[0]
        pages = make_pages(6, owner="t")
        swap_out_all(cluster, backend, pages)
        victim = tier.map.holders(pages[0].page_id)[0]
        cluster.crash_node(victim)
        cluster.env.run(until=cluster.env.now + 0.5)
        # With a third peer available every orphan is repaired.
        assert tier.tracker.pages_lost.value == 0
        assert tier.tracker.pages_re_replicated.value > 0
        for page in pages:
            assert len(tier.map.holders(page.page_id)) == 2
            assert victim not in tier.map.holders(page.page_id)
        snap = tier.tracker.snapshot()
        assert snap["repairs_completed"] == 1
        assert snap["repair_mean_s"] is not None

    def test_single_replica_loss_loses_pages_but_serves_degraded(self):
        cluster, _node, backend = build(replication=1)
        tier = backend.tiers[0]
        pages = make_pages(12, owner="t")
        swap_out_all(cluster, backend, pages)
        victim = tier.map.holders(pages[0].page_id)[0]
        doomed = [
            page for page in pages
            if tier.map.holders(page.page_id) == (victim,)
        ]
        cluster.crash_node(victim)
        cluster.env.run(until=cluster.env.now + 0.5)
        assert tier.tracker.pages_lost.value == len(doomed) > 0
        # A read of a lost page is served by the degraded disk path.
        cluster.run_process(backend.swap_in(doomed[0]))
        assert tier.fallback_reads == 1
        assert tier.tracker.degraded_reads.value == 1

    def test_read_fails_over_to_surviving_replica(self):
        cluster, _node, backend = build(replication=2)
        tier = backend.tiers[0]
        pages = make_pages(4, owner="t")
        swap_out_all(cluster, backend, pages)
        page = pages[0]
        first_holder = tier.map.holders(page.page_id)[0]
        cluster.fabric.set_node_down(first_holder, down=True)
        cluster.run_process(backend.swap_in(page))
        assert tier.reads == 1
        assert tier.fallback_reads == 0

    def test_rebooted_peer_is_readmitted_and_topped_up(self):
        cluster, _node, backend = build(replication=3)
        tier = backend.tiers[0]
        pages = make_pages(5, owner="t")
        swap_out_all(cluster, backend, pages)
        victim = tier.map.holders(pages[0].page_id)[0]
        cluster.crash_node(victim)
        cluster.env.run(until=cluster.env.now + 0.1)
        # Only two peers remain: repair cannot restore the third copy.
        assert all(
            len(tier.map.holders(page.page_id)) == 2 for page in pages
        )
        cluster.run_process(cluster.reboot_node(victim))
        cluster.env.run(until=cluster.env.now + 0.5)
        assert victim in tier.areas
        assert tier.tracker.nodes_recovered.value == 1
        for page in pages:
            assert len(tier.map.holders(page.page_id)) == 3

    def test_under_replicated_write_spills_down(self):
        cluster, _node, backend = build(replication=3)
        tier = backend.tiers[0]
        victim = sorted(tier.areas)[0]
        cluster.crash_node(victim)
        pages = make_pages(3, owner="t")
        swap_out_all(cluster, backend, pages)
        # Two live peers < replication=3: every page spills below.
        assert tier.stats.puts.value == 0
        for page in pages:
            label, _meta = backend.location(page.page_id)
            assert label is not None and label != tier.name

    def test_forget_releases_replica_space(self):
        cluster, _node, backend = build(replication=2)
        tier = backend.tiers[0]
        pages = make_pages(3, owner="t")
        swap_out_all(cluster, backend, pages)
        before = sum(area.used_bytes for area in tier.areas.values())
        backend.discard(pages[0])
        after = sum(area.used_bytes for area in tier.areas.values())
        assert before - after == pages[0].size * 2
        assert tier.map.holders(pages[0].page_id) == ()

    def test_snapshot_reports_replication_columns(self):
        cluster, _node, backend = build(replication=2)
        pages = make_pages(2, owner="t")
        swap_out_all(cluster, backend, pages)
        row = backend.tier_breakdown()[0]
        assert row["replication"] == 2
        assert row["pages_lost"] == 0
        assert "repair_mean_s" in row and "degraded_reads" in row
        assert row["write_protocol"] == "write-all"
        assert row["write_rounds"] == 2 * row["puts"]
        assert row["overhead_x"] == pytest.approx(2.0)

    def test_degraded_read_emits_latency_row(self):
        from repro.trace import runtime

        with runtime.session():
            cluster, _node, backend = build(replication=1)
            tier = backend.tiers[0]
            pages = make_pages(6, owner="t")
            swap_out_all(cluster, backend, pages)
            victim = tier.map.holders(pages[0].page_id)[0]
            doomed = next(
                page for page in pages
                if tier.map.holders(page.page_id) == (victim,)
            )
            cluster.crash_node(victim)
            cluster.env.run(until=cluster.env.now + 0.5)
            cluster.run_process(backend.swap_in(doomed))
            rows = {
                (row["category"], row["op"]): row
                for row in cluster.env.tracer.histogram_rows()
            }
            degraded = rows[("tier", "replicated.read.degraded")]
            assert degraded["count"] == 1
            assert degraded["p50_s"] > 0


class TestOneRttWriteProtocol:
    def test_invalid_protocol_is_rejected(self):
        from repro.tiers.replicated import ReplicatedRemoteTier

        cluster, node, _backend = build(replication=2)
        with pytest.raises(ValueError):
            ReplicatedRemoteTier(node, cluster, write_protocol="two-phase")

    def test_put_costs_one_round_and_full_replica_set(self):
        cluster, _node, backend = build(
            replication=3, backend_name="replicated-remote-1rtt"
        )
        tier = backend.tiers[0]
        assert tier.write_protocol == "one-rtt"
        pages = make_pages(8, owner="t")
        swap_out_all(cluster, backend, pages)
        assert tier.stats.puts.value == 8
        assert tier.write_rounds == 8  # one fan-out round per put
        for page in pages:
            holders = tier.map.holders(page.page_id)
            assert len(holders) == 3 and len(set(holders)) == 3
        used = sum(area.used_bytes for area in tier.areas.values())
        assert used == sum(page.size for page in pages) * 3

    def test_put_emits_single_fanout_span(self):
        from repro.trace import runtime

        with runtime.session():
            cluster, _node, backend = build(
                replication=3, backend_name="replicated-remote-1rtt"
            )
            pages = make_pages(4, owner="t")
            swap_out_all(cluster, backend, pages)
            sends = [
                event for event in cluster.env.tracer.events_json()
                if event["name"] == "net.send"
                and event["args"].get("fanout")
            ]
            # One fan-out span per put, each a 3-way round — against
            # write-all's three serialized per-copy rounds.
            assert len(sends) == 4
            assert all(event["args"]["fanout"] == 3 for event in sends)
            assert all(len(event["args"]["dsts"]) == 3 for event in sends)
            assert all(event["args"]["ok"] for event in sends)

    def test_one_rtt_is_faster_than_write_all(self):
        def swap_out_time(backend_name):
            cluster, _node, backend = build(
                replication=3, backend_name=backend_name
            )
            pages = make_pages(16, owner="t")
            began = cluster.env.now
            swap_out_all(cluster, backend, pages)
            return cluster.env.now - began

        assert swap_out_time("replicated-remote-1rtt") < swap_out_time(
            "replicated-remote"
        )

    def test_rewrite_detects_conflict_in_place(self):
        cluster, _node, backend = build(
            replication=3, backend_name="replicated-remote-1rtt"
        )
        tier = backend.tiers[0]
        pages = make_pages(2, owner="t")
        swap_out_all(cluster, backend, pages)
        assert tier.conflicts_detected == 0

        def rewrite():
            yield from backend.swap_in(pages[0])
            yield from backend.swap_out(pages[0])

        cluster.run_process(rewrite())
        # The second incarnation found the first's version tag on its
        # targets: a conflict detected by the in-place comparison, with
        # no extra round.
        assert tier.conflicts_detected == 1
        assert tier.write_rounds == tier.stats.puts.value

    def test_failed_round_delivers_nothing_and_spills(self):
        cluster, _node, backend = build(
            replication=3, backend_name="replicated-remote-1rtt"
        )
        tier = backend.tiers[0]
        victim = sorted(tier.areas)[0]
        cluster.fabric.set_node_down(victim, down=True)
        pages = make_pages(3, owner="t")
        swap_out_all(cluster, backend, pages)
        # The fan-out includes the dead target: all-or-nothing, so the
        # round fails whole and every page spills below.
        assert tier.stats.puts.value == 0
        for page in pages:
            label, _meta = backend.location(page.page_id)
            assert label is not None and label != tier.name
        used = sum(area.used_bytes for area in tier.areas.values())
        assert used == 0


class TestBatchedTopUp:
    def test_readmission_top_up_is_batched_not_per_page(self):
        """Regression pin for merged re-replication: topping a
        readmitted peer up with N pages must cost ~2 merged transfers
        per source batch, strictly cheaper than the N per-page round
        trips the sequential implementation paid."""
        cluster, node, backend = build(replication=3)
        tier = backend.tiers[0]
        pages = make_pages(96, owner="t")
        swap_out_all(cluster, backend, pages)
        victim = tier.map.holders(pages[0].page_id)[0]
        cluster.crash_node(victim)
        cluster.env.run(until=cluster.env.now + 0.1)
        # Only two peers remain: repair cannot restore the third copy.
        assert all(
            len(tier.map.holders(page.page_id)) == 2 for page in pages
        )
        cluster.run_process(cluster.reboot_node(victim))
        recovery_began = cluster.env.now
        deadline = recovery_began + 0.5
        # Step the clock finely so ``env.now`` at full redundancy bounds
        # the actual recovery time to within 10us.
        while cluster.env.now < deadline and any(
            len(tier.map.holders(page.page_id)) < 3 for page in pages
        ):
            cluster.env.run(until=cluster.env.now + 1e-5)
        assert tier.tracker.nodes_recovered.value == 1
        assert all(
            len(tier.map.holders(page.page_id)) == 3 for page in pages
        )
        # Sequential lower bound: each page pays at least a read and a
        # write message (per-message overhead + base RDMA latency each),
        # serialized on the sender.  The batched path must beat it.
        spec = cluster.fabric.spec
        per_page_floor = 2 * (spec.per_message_overhead + spec.rdma_latency)
        elapsed = cluster.env.now - recovery_began
        assert elapsed < len(pages) * per_page_floor

    def test_top_up_batches_split_at_the_byte_cap(self):
        from repro.tiers.replicated import ReplicatedRemoteTier

        cluster, node, _backend = build(replication=2)
        tier = ReplicatedRemoteTier(node, cluster)
        pages = [("p{}".format(index), 300 * 1024) for index in range(8)]
        batches = list(tier._chunk_batches(pages))
        # 300 KiB pages against a 1 MiB cap: three per batch.
        assert [len(batch) for batch in batches] == [3, 3, 2]
        assert all(
            sum(stored for _page, stored in batch)
            <= ReplicatedRemoteTier.TOP_UP_BATCH_BYTES
            for batch in batches
        )
