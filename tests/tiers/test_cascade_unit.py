"""Unit tests for cascade policies, metrics registry and factory wiring."""

import pytest

from repro.core.errors import NoRemoteCapacity
from repro.tiers.base import DisplacedPage, TierStats
from repro.tiers.cascade import (
    AdaptivePlacement,
    CascadeFull,
    FailFastFailover,
    FixedRatioPlacement,
    SpillDownFailover,
    TierCascade,
)
from tests.tiers.conftest import StubNode, StubTier, drive


def test_cascade_requires_a_tier():
    with pytest.raises(ValueError):
        TierCascade(StubNode(), [])


def test_duplicate_tier_labels_rejected():
    with pytest.raises(ValueError, match="duplicate tier label"):
        TierCascade(StubNode(), [StubTier("x", 1), StubTier("x", 1)])


def test_cascade_full_is_no_remote_capacity():
    # Callers that caught NoRemoteCapacity before the refactor still do.
    assert issubclass(CascadeFull, NoRemoteCapacity)


def test_swap_in_unknown_page_raises_key_error():
    cascade = TierCascade(StubNode(), [StubTier("t0", 4)], name="c")
    with pytest.raises(KeyError, match="page 9 not in c"):
        drive(cascade.swap_in(DisplacedPage(9)))


def test_fixed_ratio_placement_bounds():
    with pytest.raises(ValueError):
        FixedRatioPlacement(1.5)
    with pytest.raises(ValueError):
        FixedRatioPlacement(-0.1)


def test_fixed_ratio_extremes_and_block_alignment():
    cascade = TierCascade(
        StubNode(), [StubTier("top", 64), StubTier("low", 64)]
    )
    all_top = FixedRatioPlacement(1.0, window=8)
    all_low = FixedRatioPlacement(0.0, window=8)
    half = FixedRatioPlacement(0.5, window=8)
    for page_id in range(64):
        assert all_top.first_tier(cascade, page_id) == 0
        assert all_low.first_tier(cascade, page_id) == 1
        # Window-aligned blocks map as a unit (batching survives).
        block_start = (page_id // 8) * 8
        assert half.first_tier(cascade, page_id) == half.first_tier(
            cascade, block_start
        )


def test_policy_descriptions():
    assert AdaptivePlacement().describe() == "adaptive"
    assert FixedRatioPlacement(0.25).describe() == "fixed-ratio 25%"
    assert SpillDownFailover().describe() == "spill-down"
    assert SpillDownFailover().spill_on_failure
    assert FailFastFailover().describe() == "fail-fast"
    assert not FailFastFailover().spill_on_failure


def test_describe_stack_and_breakdown_rows():
    cascade = TierCascade(
        StubNode(), [StubTier("sm", 2), StubTier("disk", 2)], name="demo"
    )
    assert cascade.describe_stack() == "sm -> disk"
    for page_id in range(3):  # third put spills to disk
        drive(cascade.swap_out(DisplacedPage(page_id)))
    drive(cascade.swap_in(DisplacedPage(0)))
    rows = cascade.tier_breakdown()
    assert [row["tier"] for row in rows] == ["sm", "disk"]
    sm, disk = rows
    assert sm["puts"] == 2 and sm["gets"] == 1 and sm["spills"] == 1
    assert disk["puts"] == 1 and disk["gets"] == 0
    assert sm["bytes_in"] == 2 * 4096 and disk["bytes_in"] == 4096
    # Latency columns exist and are None-safe when a tier saw no gets.
    assert disk["get_mean_s"] is None and disk["get_max_s"] is None
    assert sm["get_mean_s"] is not None


def test_tier_stats_row_shape():
    row = TierStats("x").row()
    assert set(row) == {
        "tier", "puts", "gets", "bytes_in", "bytes_out", "spills",
        "failovers", "discards", "put_mean_s", "put_max_s", "get_mean_s",
        "get_max_s",
    }


def test_discard_then_refetch_fails():
    cascade = TierCascade(StubNode(), [StubTier("t0", 4)])
    page = DisplacedPage(1)
    drive(cascade.swap_out(page))
    cascade.discard(page)
    assert cascade.pages_held() == {}
    with pytest.raises(KeyError):
        drive(cascade.swap_in(page))


def test_reswap_out_moves_not_duplicates():
    # A page re-swapped while the cascade still holds a stale copy must
    # end with exactly one live copy (the MMU's discard-on-write can
    # race ahead of writeback in degenerate schedules).
    cascade = TierCascade(StubNode(), [StubTier("a", 1), StubTier("b", 4)])
    page = DisplacedPage(5)
    drive(cascade.swap_out(page))
    drive(cascade.swap_out(page))
    held = cascade.pages_held()
    assert held == {5: "a"}
    assert 5 in cascade.tiers[0].held
    assert 5 not in cascade.tiers[1].held
