"""Unit and integration tests for the erasure-coded remote tier."""

import pytest

from repro.core.cluster import DisaggregatedCluster
from repro.experiments.runner import default_cluster_config
from repro.mem.page import make_pages
from repro.swap.factory import make_swap_backend
from repro.tiers.erasure import StripeCodec, StripeMap


class TestStripeCodec:
    def test_roundtrip_from_any_k_fragments(self):
        codec = StripeCodec(4, 2)
        data = bytes(range(256)) * 16  # 4096 bytes
        fragments = codec.encode(data)
        assert len(fragments) == 6
        assert all(len(f) == 1024 for f in fragments)
        # Data fragments are verbatim slices (systematic code).
        assert b"".join(fragments[:4]) == data
        # Every 4-subset of the 6 fragments reconstructs bit-identically.
        import itertools

        for keep in itertools.combinations(range(6), 4):
            subset = {index: fragments[index] for index in keep}
            assert codec.reconstruct(subset, len(data)) == data, keep

    def test_single_parity_degenerates_to_xor(self):
        codec = StripeCodec(3, 1)
        data = b"erasure coding pays 1.33x, not 3x"
        fragments = codec.encode(data)
        frag = codec.fragment_size(len(data))
        xor = bytearray(frag)
        for shard in fragments[:3]:
            for offset, value in enumerate(shard):
                xor[offset] ^= value
        assert fragments[3] == bytes(xor)
        assert codec.reconstruct(
            {0: fragments[0], 2: fragments[2], 3: fragments[3]}, len(data)
        ) == data

    def test_odd_sizes_pad_and_trim(self):
        codec = StripeCodec(4, 2)
        for size in (1, 7, 4095, 4097):
            data = bytes((i * 37) % 256 for i in range(size))
            fragments = codec.encode(data)
            subset = {5: fragments[5], 3: fragments[3], 1: fragments[1],
                      4: fragments[4]}
            assert codec.reconstruct(subset, size) == data, size

    def test_rebuild_fragment_matches_original_encoding(self):
        codec = StripeCodec(4, 2)
        data = bytes((i * 13) % 256 for i in range(4096))
        fragments = codec.encode(data)
        survivors = {0: fragments[0], 2: fragments[2], 4: fragments[4],
                     5: fragments[5]}
        assert codec.rebuild_fragment(survivors, 1, len(data)) == fragments[1]
        assert codec.rebuild_fragment(survivors, 3, len(data)) == fragments[3]

    def test_too_few_fragments_is_an_error(self):
        codec = StripeCodec(4, 2)
        fragments = codec.encode(b"x" * 4096)
        with pytest.raises(ValueError):
            codec.reconstruct({0: fragments[0], 1: fragments[1],
                               2: fragments[2]}, 4096)

    def test_shard_count_validation(self):
        with pytest.raises(ValueError):
            StripeCodec(0, 2)
        with pytest.raises(ValueError):
            StripeCodec(4, 0)
        with pytest.raises(ValueError):
            StripeCodec(200, 100)


class TestStripeMap:
    def test_place_and_fragments(self):
        smap = StripeMap(4, 2)
        smap.place(1, ["a", "b", "c", "d", "e", "f"])
        assert smap.fragments(1) == {0: "a", 1: "b", 2: "c", 3: "d",
                                     4: "e", 5: "f"}
        assert smap.holders(1) == ["a", "b", "c", "d", "e", "f"]
        assert smap.pages_on("c") == [1]
        assert 1 in smap and len(smap) == 1
        assert smap.missing(1) == []

    def test_place_requires_distinct_full_stripe(self):
        smap = StripeMap(4, 2)
        with pytest.raises(ValueError):
            smap.place(1, ["a", "b", "c"])
        with pytest.raises(ValueError):
            smap.place(1, ["a", "b", "c", "d", "e", "a"])

    def test_drop_node_splits_degraded_and_lost(self):
        smap = StripeMap(2, 1)
        smap.place(1, ["a", "b", "c"])
        smap.place(2, ["a", "d", "e"])
        degraded, lost = smap.drop_node("a")
        assert degraded == [1, 2] and lost == []
        assert smap.missing(1) == [0]
        degraded, lost = smap.drop_node("b")
        assert degraded == [] and lost == [1]
        assert 1 not in smap and 2 in smap

    def test_set_fragment_rejects_duplicates_and_double_loads(self):
        smap = StripeMap(2, 1)
        smap.place(1, ["a", "b", "c"])
        smap.drop_node("a")
        assert not smap.set_fragment(1, 1, "d")  # index 1 still held
        assert not smap.set_fragment(1, 0, "b")  # b already holds one
        assert smap.set_fragment(1, 0, "d")
        assert smap.fragments(1)[0] == "d"
        assert not smap.set_fragment(99, 0, "d")  # unknown page
        assert smap.under_striped() == []

    def test_remove_page_clears_both_indexes(self):
        smap = StripeMap(2, 1)
        smap.place(1, ["a", "b", "c"])
        smap.remove_page(1)
        assert smap.fragments(1) == {}
        assert smap.pages_on("a") == []


def build(num_nodes=8, seed=11):
    config = default_cluster_config(seed=seed, num_nodes=num_nodes)
    cluster = DisaggregatedCluster.build(config)
    node = cluster.nodes()[0]
    backend = make_swap_backend(
        "ec-remote", node, cluster, rng=cluster.rng.stream("backend")
    )
    cluster.run_process(backend.setup())
    return cluster, node, backend


def swap_out_all(cluster, backend, pages):
    def job():
        for page in pages:
            yield from backend.swap_out(page)

    cluster.run_process(job())


class TestErasureCodedRemoteTier:
    def test_every_page_gets_full_distinct_stripe(self):
        cluster, _node, backend = build()
        tier = backend.tiers[0]
        pages = make_pages(8, owner="t")
        swap_out_all(cluster, backend, pages)
        frag = tier.codec.fragment_size(pages[0].size)
        for page in pages:
            holders = tier.map.holders(page.page_id)
            assert len(holders) == 6
        # Physical accounting: 6 fragments of nbytes/4 per page = 1.5x.
        used = sum(area.used_bytes for area in tier.areas.values())
        assert used == frag * 6 * len(pages)
        assert tier.overhead_x == pytest.approx(1.5)

    def test_reads_gather_the_data_fragments(self):
        cluster, _node, backend = build()
        tier = backend.tiers[0]
        pages = make_pages(4, owner="t")
        swap_out_all(cluster, backend, pages)
        cluster.run_process(backend.swap_in(pages[0]))
        assert tier.reads == 1
        assert tier.degraded_reconstructions == 0

    def test_crash_triggers_background_restriping(self):
        cluster, _node, backend = build()
        tier = backend.tiers[0]
        pages = make_pages(6, owner="t")
        swap_out_all(cluster, backend, pages)
        victim = tier.map.fragments(pages[0].page_id)[0]
        cluster.crash_node(victim)
        cluster.env.run(until=cluster.env.now + 0.5)
        # With a spare peer available every missing fragment is rebuilt.
        assert tier.tracker.pages_lost.value == 0
        assert tier.fragments_rebuilt > 0
        for page in pages:
            assert tier.map.missing(page.page_id) == []
            assert victim not in tier.map.holders(page.page_id)
        snap = tier.tracker.snapshot()
        assert snap["repairs_completed"] == 1
        assert snap["repair_mean_s"] is not None

    def test_degraded_read_reconstructs_from_survivors(self):
        cluster, _node, backend = build()
        tier = backend.tiers[0]
        pages = make_pages(4, owner="t")
        swap_out_all(cluster, backend, pages)
        page = pages[0]
        # Lose the holder of data fragment 0 and read before the
        # background repair has had any simulated time to run.
        victim = tier.map.fragments(page.page_id)[0]
        cluster.crash_node(victim)
        cluster.run_process(backend.swap_in(page))
        assert tier.degraded_reconstructions == 1
        assert tier.tracker.degraded_reads.value == 1
        assert tier.fallback_reads == 0

    def test_losing_more_than_parity_falls_back_to_disk(self):
        cluster, _node, backend = build()
        tier = backend.tiers[0]
        pages = make_pages(3, owner="t")
        swap_out_all(cluster, backend, pages)
        page = pages[0]
        victims = [
            tier.map.fragments(page.page_id)[index] for index in range(3)
        ]
        for victim in victims:
            cluster.crash_node(victim)
        # Three of six fragments gone: below k=4, the page is lost from
        # the tier; a read is served by the degraded disk-backup path.
        assert page.page_id not in tier.map
        assert tier.tracker.pages_lost.value >= 1
        cluster.env.run(until=cluster.env.now + 0.5)
        cluster.run_process(backend.swap_in(page))
        assert tier.fallback_reads == 1
        assert tier.degraded_reconstructions == 0

    def test_rebooted_peer_is_readmitted_and_restriped_onto(self):
        # 6 peers exactly: no spare, so a crash leaves every stripe
        # missing a fragment until the victim is readmitted.
        cluster, _node, backend = build(num_nodes=7)
        tier = backend.tiers[0]
        pages = make_pages(5, owner="t")
        swap_out_all(cluster, backend, pages)
        victim = tier.map.fragments(pages[0].page_id)[0]
        cluster.crash_node(victim)
        cluster.env.run(until=cluster.env.now + 0.1)
        assert all(
            len(tier.map.missing(page.page_id)) == 1 for page in pages
        )
        cluster.run_process(cluster.reboot_node(victim))
        cluster.env.run(until=cluster.env.now + 0.5)
        assert victim in tier.areas
        assert tier.tracker.nodes_recovered.value == 1
        for page in pages:
            assert tier.map.missing(page.page_id) == []
            assert victim in tier.map.holders(page.page_id)

    def test_under_striped_write_spills_down(self):
        cluster, _node, backend = build(num_nodes=7)
        tier = backend.tiers[0]
        victim = sorted(tier.areas)[0]
        cluster.crash_node(victim)
        pages = make_pages(3, owner="t")
        swap_out_all(cluster, backend, pages)
        # Five live peers < 6 fragments: every page spills below rather
        # than committing a short stripe.
        assert tier.stats.puts.value == 0
        for page in pages:
            label, _meta = backend.location(page.page_id)
            assert label is not None and label != tier.name

    def test_forget_releases_fragment_space(self):
        cluster, _node, backend = build()
        tier = backend.tiers[0]
        pages = make_pages(3, owner="t")
        swap_out_all(cluster, backend, pages)
        frag = tier.codec.fragment_size(pages[0].size)
        before = sum(area.used_bytes for area in tier.areas.values())
        backend.discard(pages[0])
        after = sum(area.used_bytes for area in tier.areas.values())
        assert before - after == frag * 6
        assert tier.map.fragments(pages[0].page_id) == {}

    def test_snapshot_reports_scheme_columns(self):
        cluster, _node, backend = build()
        pages = make_pages(2, owner="t")
        swap_out_all(cluster, backend, pages)
        row = backend.tier_breakdown()[0]
        assert row["scheme"] == "ec(4+2)"
        assert row["data_shards"] == 4 and row["parity_shards"] == 2
        assert row["overhead_x"] == pytest.approx(1.5)
        assert row["replication"] is None
        assert row["pages_lost"] == 0
        assert "repair_mean_s" in row and "degraded_reads" in row

    def test_degraded_read_emits_latency_row_and_spans(self):
        from repro.trace import runtime

        with runtime.session():
            cluster, _node, backend = build()
            tier = backend.tiers[0]
            pages = make_pages(4, owner="t")
            swap_out_all(cluster, backend, pages)
            page = pages[0]
            victim = tier.map.fragments(page.page_id)[0]
            cluster.crash_node(victim)
            cluster.run_process(backend.swap_in(page))
            tracer = cluster.env.tracer
            rows = {
                (row["category"], row["op"]): row
                for row in tracer.histogram_rows()
            }
            degraded = rows[("ec", "read.degraded")]
            assert degraded["count"] == 1
            assert degraded["p50_s"] > 0
            names = [e["name"] for e in tracer.events_json()]
            assert "ec.encode" in names
            assert "ec.reconstruct" in names
