"""Shared helpers for tier-cascade tests.

The cascade's placement logic (spill-on-full, demotion, conservation)
is pure bookkeeping — no simulated time — so these tests drive it with
stub tiers of bounded capacity and a stub node, no cluster required.
"""

from repro.tiers.base import Tier, TierFull
from repro.trace import NULL_TRACER


class StubEnv:
    now = 0.0
    tracer = NULL_TRACER


class StubNode:
    env = StubEnv()


class StubTier(Tier):
    """An in-memory tier holding at most ``capacity`` pages."""

    def __init__(self, name, capacity):
        self.name = name
        super().__init__()
        self.capacity = capacity
        self.held = {}

    def put(self, page, nbytes):
        if len(self.held) >= self.capacity:
            raise TierFull(self.name)
        self.held[page.page_id] = nbytes
        self.cascade.record(page.page_id, self.name, nbytes)
        self.stats.puts.increment()
        self.stats.bytes_in.increment(nbytes)
        return
        yield  # pragma: no cover

    def get(self, page, label, meta):
        assert page.page_id in self.held, "get for a page the tier lost"
        self.stats.bytes_out.increment(meta)
        return []
        yield  # pragma: no cover

    def forget(self, page_id, label, meta):
        self.held.pop(page_id, None)


def drive(generator):
    """Run a no-wait cascade generator to completion, return its value."""
    try:
        while True:
            next(generator)
    except StopIteration as stop:
        return stop.value
