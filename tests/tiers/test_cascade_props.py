"""Property tests for TierCascade's structural invariants.

Three guarantees the whole swap port leans on:

* **conservation** — every swapped-out, undiscarded page lives in
  exactly one tier at all times (no duplicates, no losses);
* **no page lost on tier-full** — a full tier spills downward; a page
  is only refused (``CascadeFull``) when *every* tier is full;
* **deterministic spill ordering** — placement is a pure function of
  the operation sequence: a page always lands in the first non-full
  tier from its start index, and replaying a sequence reproduces the
  identical placement map.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tiers.base import DisplacedPage
from repro.tiers.cascade import CascadeFull, TierCascade
from tests.tiers.conftest import StubNode, StubTier, drive

PAGE_IDS = st.integers(0, 23)


@st.composite
def operations(draw):
    ops = []
    for _ in range(draw(st.integers(0, 80))):
        kind = draw(st.sampled_from(("out", "in", "discard")))
        ops.append((kind, draw(PAGE_IDS)))
    return ops


@st.composite
def capacities(draw):
    n_tiers = draw(st.integers(1, 4))
    return [draw(st.integers(0, 8)) for _ in range(n_tiers)]


def build(caps):
    tiers = [StubTier("t{}".format(i), cap) for i, cap in enumerate(caps)]
    return TierCascade(StubNode(), tiers, name="stub"), tiers


def apply_ops(cascade, tiers, ops):
    """Run ops against the cascade and a reference model in lockstep.

    The model is the spec: a page swaps out into the first tier (top
    down) with spare capacity, or the whole cascade refuses it.
    """
    model = {}  # page_id -> tier index

    def model_placement():
        counts = [0] * len(tiers)
        for index in model.values():
            counts[index] += 1
        for index, tier in enumerate(tiers):
            if counts[index] < tier.capacity:
                return index
        return None

    for kind, page_id in ops:
        page = DisplacedPage(page_id)
        if kind == "out":
            expected = None
            if page_id in model:  # re-swap-out displaces the old copy
                del model[page_id]
            expected = model_placement()
            if expected is None:
                try:
                    drive(cascade.swap_out(page))
                except CascadeFull:
                    continue
                raise AssertionError("cascade accepted a page with no room")
            drive(cascade.swap_out(page))
            model[page_id] = expected
        elif kind == "in" and page_id in model:
            assert drive(cascade.swap_in(page)) == []
        elif kind == "discard":
            cascade.discard(page)
            model.pop(page_id, None)
    return model


@given(capacities(), operations())
@settings(max_examples=80)
def test_conservation_and_spill_ordering(caps, ops):
    cascade, tiers = build(caps)
    model = apply_ops(cascade, tiers, ops)

    held = cascade.pages_held()
    # Conservation: the cascade holds exactly the model's pages.
    assert set(held) == set(model)
    # Each page lives in exactly one tier, the one the spec placed it in.
    for page_id, index in model.items():
        assert held[page_id] == "t{}".format(index)
        assert page_id in tiers[index].held
        for other in tiers:
            if other is not tiers[index]:
                assert page_id not in other.held
    # No tier exceeds its capacity.
    for tier in tiers:
        assert len(tier.held) <= tier.capacity


@given(capacities(), operations())
@settings(max_examples=40)
def test_replay_is_deterministic(caps, ops):
    first, first_tiers = build(caps)
    second, second_tiers = build(caps)
    apply_ops(first, first_tiers, ops)
    apply_ops(second, second_tiers, ops)
    assert first.pages_held() == second.pages_held()
    assert [t.held for t in first_tiers] == [t.held for t in second_tiers]


@given(st.integers(1, 4), st.integers(1, 8))
@settings(max_examples=30)
def test_no_page_lost_on_tier_full(n_tiers, per_tier):
    cascade, tiers = build([per_tier] * n_tiers)
    total = n_tiers * per_tier
    for page_id in range(total):
        drive(cascade.swap_out(DisplacedPage(page_id)))
    # Every page landed somewhere, in stack order.
    assert len(cascade.pages_held()) == total
    for index, tier in enumerate(tiers):
        assert set(tier.held) == set(
            range(index * per_tier, (index + 1) * per_tier)
        )
        assert tier.stats.puts.value == per_tier
    # Spill counters account every refusal top-down.
    for index, tier in enumerate(tiers):
        assert tier.stats.spills.value == (len(tiers) - 1 - index) * per_tier
    # One page beyond total capacity is refused loudly, not dropped.
    try:
        drive(cascade.swap_out(DisplacedPage(total)))
    except CascadeFull:
        pass
    else:
        raise AssertionError("expected CascadeFull")
    assert total not in cascade.pages_held()
    # ...and every page is still fetchable afterwards.
    for page_id in range(total):
        assert drive(cascade.swap_in(DisplacedPage(page_id))) == []
