"""The factory's declarative cascades: naming, errors, new backends."""

import pytest

from repro.experiments.runner import (
    RunContext,
    run_paging_workload,
)
from repro.metrics.reporting import format_tier_breakdown
from repro.swap.factory import BACKEND_NAMES, make_swap_backend
from repro.workloads.ml import ML_WORKLOADS


@pytest.fixture(scope="module")
def spec():
    return ML_WORKLOADS["logistic_regression"].with_overrides(
        pages=256, iterations=2
    )


def test_unknown_backend_lists_valid_names():
    with pytest.raises(ValueError) as excinfo:
        make_swap_backend("betamax", None, None)
    message = str(excinfo.value)
    assert "betamax" in message
    for name in BACKEND_NAMES:
        assert name in message


def test_every_named_backend_is_a_cascade(cluster_factory=None):
    from repro.core.cluster import DisaggregatedCluster
    from repro.experiments.runner import default_cluster_config
    from repro.tiers.cascade import TierCascade

    cluster = DisaggregatedCluster.build(default_cluster_config(seed=3))
    node = cluster.nodes()[0]
    for name in BACKEND_NAMES:
        backend = make_swap_backend(
            name, node, cluster, rng=cluster.rng.stream(name)
        )
        assert isinstance(backend, TierCascade), name
        assert backend.name == name
        assert backend.describe_stack(), name


EXPECTED_STACKS = {
    "linux": "disk",
    "zswap": "pool -> disk",
    "nbdx": "remote -> disk-backup",
    "infiniswap": "remote -> disk-backup",
    "fastswap": "sm -> remote -> disk",
    "xmempod": "sm -> remote -> ssd",
    "nvm": "nvm",
    "nvm-remote": "nvm -> remote -> disk",
    "zswap-remote": "pool -> remote -> disk-backup",
}


def test_expected_tier_stacks():
    from repro.core.cluster import DisaggregatedCluster
    from repro.experiments.runner import default_cluster_config

    cluster = DisaggregatedCluster.build(default_cluster_config(seed=3))
    node = cluster.nodes()[0]
    for name, stack in EXPECTED_STACKS.items():
        backend = make_swap_backend(
            name, node, cluster, rng=cluster.rng.stream(name)
        )
        assert backend.describe_stack() == stack, name


def test_nvm_remote_backend_runs_and_spills(spec):
    result = run_paging_workload("nvm-remote", spec, 0.5, seed=5)
    assert result.completion_time > 0
    assert result.tier_stack == "nvm -> remote -> disk"
    rows = {row["tier"]: row for row in result.tier_stats}
    # The small NVM device takes the first pages, overflow goes remote.
    assert rows["nvm"]["puts"] > 0
    assert rows["nvm"]["gets"] > 0
    # Compression is on: NVM stores less than a raw page per put.
    assert rows["nvm"]["bytes_in"] < rows["nvm"]["puts"] * 4096


def test_zswap_remote_backend_runs(spec):
    result = run_paging_workload("zswap-remote", spec, 0.5, seed=5)
    assert result.completion_time > 0
    assert result.tier_stack == "pool -> remote -> disk-backup"
    rows = {row["tier"]: row for row in result.tier_stats}
    assert rows["pool"]["puts"] > 0
    assert rows["pool"]["gets"] > 0
    # Healthy cluster: the disk backup never serves a read.
    assert rows["disk-backup"]["gets"] == 0


def test_run_results_carry_context_and_render(spec):
    result = run_paging_workload("fastswap", spec, 0.5, seed=5)
    assert result.tier_stack == "sm -> remote -> disk"
    assert [row["tier"] for row in result.tier_stats] == [
        "sm", "remote", "disk",
    ]
    context_rows = result.context.tier_rows()
    assert len(context_rows) == 3
    assert context_rows[0]["backend"] == "fastswap"
    assert context_rows[0]["stack"] == "sm -> remote -> disk"
    text = format_tier_breakdown(result)
    assert "fastswap tiers: sm -> remote -> disk" in text
    assert "put_mean_s" in text


def test_contexts_are_per_run_not_global(spec):
    first = run_paging_workload("fastswap", spec, 0.5, seed=5)
    second = run_paging_workload("linux", spec, 0.5, seed=5)
    # Each run gets its own context: no cross-run accumulation.
    assert first.context is not second.context
    assert first.context.runs == 1
    assert second.context.runs == 1
    assert {row["backend"] for row in second.context.tier_rows()} == {"linux"}


def test_caller_supplied_context_accumulates(spec):
    context = RunContext()
    run_paging_workload("fastswap", spec, 0.5, seed=5, context=context)
    run_paging_workload("linux", spec, 0.5, seed=5, context=context)
    assert context.runs == 2
    backends = {row["backend"] for row in context.tier_rows()}
    assert backends == {"fastswap", "linux"}


def test_tier_registry_shim_is_gone():
    """The PR-2 deprecation shim promised one release of warnings; it
    has been removed, and the module must not quietly resurrect it."""
    import repro.experiments.runner as runner

    assert not hasattr(runner, "TIER_REGISTRY")
    assert not hasattr(runner, "TierRegistry")


def test_format_tier_breakdown_empty_for_plain_results():
    class Plain:
        backend = "x"
        tier_stats = []
        tier_stack = ""

    assert format_tier_breakdown(Plain()) == ""
