"""Benchmark: redundancy scheme x fault rate sweep (Section IV-D)."""

from benchmarks.conftest import SCALE
from repro.experiments import resilience_recovery


def test_bench_redundancy_sweep(run_once, benchmark):
    result = run_once(resilience_recovery.run, scale=SCALE)
    cells = {
        (row["scheme"], row["rate"], row["replication"]): row
        for row in result["rows"]
    }
    top_rate = max(resilience_recovery.RATES)
    triple = cells[("replicated", top_rate, 3)]
    one_rtt = cells[("one-rtt", top_rate, 3)]
    erasure = cells[("erasure", top_rate, None)]
    # Shape: every redundant scheme survives the faultiest schedule...
    assert triple["pages_lost"] == 0
    assert one_rtt["pages_lost"] == 0
    assert erasure["pages_lost"] == 0
    assert cells[("replicated", top_rate, 1)]["pages_lost"] > 0
    # ...erasure coding at half of replication's memory overhead...
    assert erasure["overhead_x"] <= 1.6 < triple["overhead_x"] == 3.0
    # ...and the one-RTT protocol at one fabric round per put instead
    # of one per copy.
    assert one_rtt["write_rounds"] == one_rtt["puts"]
    assert triple["write_rounds"] == 3 * triple["puts"]
    benchmark.extra_info["ec_overhead_x"] = erasure["overhead_x"]
    benchmark.extra_info["ec_degraded_reads"] = erasure["degraded_reads"]
    benchmark.extra_info["ec_repair_mean_s"] = erasure["repair_mean_s"]
    benchmark.extra_info["one_rtt_rounds_saved"] = (
        triple["write_rounds"] - one_rtt["write_rounds"]
    )
