"""Benchmark harness configuration.

Every benchmark regenerates one table/figure of the paper at a reduced
``SCALE`` (the experiments are deterministic, so a single round is
meaningful), asserts the figure's qualitative shape, and attaches the
headline numbers to the benchmark record via ``extra_info``.
"""

import pytest

#: Scale factor applied to every experiment when run under benchmarks.
SCALE = 0.25


@pytest.fixture
def run_once(benchmark):
    """Run ``fn`` exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, iterations=1, rounds=1
        )

    return runner
