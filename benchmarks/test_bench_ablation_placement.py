"""Benchmark: placement-policy ablation (paper Section IV-E)."""

from benchmarks.conftest import SCALE
from repro.experiments import ablations


def test_bench_ablation_placement(run_once, benchmark):
    result = run_once(ablations.run_placement, scale=SCALE)
    rows = {row["policy"]: row for row in result["rows"]}
    assert set(rows) == set(ablations.PLACEMENT_POLICIES)
    # Shape: two choices balance better than one random choice.
    assert rows["power_of_two"]["imbalance"] <= rows["random"]["imbalance"]
    benchmark.extra_info["imbalance"] = {
        policy: round(row["imbalance"], 3) for policy, row in rows.items()
    }
