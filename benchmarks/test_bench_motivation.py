"""Benchmark: the Section I motivating imbalance scenario."""

from benchmarks.conftest import SCALE
from repro.experiments import motivation_imbalance


def test_bench_motivation_imbalance(run_once, benchmark):
    result = run_once(motivation_imbalance.run, scale=SCALE)
    rows = {row["policy"]: row for row in result["rows"]}
    # Shape: disaggregation beats static partitioning; adding the
    # cluster level beats node-level alone once the pool saturates;
    # idle donated memory actually gets used.
    assert rows["node_level"]["completion_s"] < rows["static"]["completion_s"]
    assert (
        rows["node_plus_cluster"]["completion_s"]
        < rows["node_level"]["completion_s"]
    )
    assert rows["node_level"]["idle_pool_utilization"] > 0.5
    assert rows["node_plus_cluster"]["remote_mb_used"] > 0
    assert rows["static"]["idle_pool_mb"] == 0
    benchmark.extra_info["hybrid_speedup_vs_static"] = (
        rows["static"]["completion_s"]
        / rows["node_plus_cluster"]["completion_s"]
    )
