"""Benchmark: regenerate Figure 4 (compression ratio vs completion)."""

from benchmarks.conftest import SCALE
from repro.experiments import fig4_compression_effect


def test_bench_fig4(run_once, benchmark):
    result = run_once(fig4_compression_effect.run, scale=SCALE)
    rows = result["rows"]
    assert [row["compress_ratio"] for row in rows] == [1.3, 2.0, 3.0, 4.0]
    # Shape: better compression never hurts, on either backend; the
    # disk backend is slower and far more ratio-sensitive.
    for earlier, later in zip(rows, rows[1:]):
        assert later["disk_completion_s"] <= earlier["disk_completion_s"] * 1.02
    for row in rows:
        assert row["disk_completion_s"] > row["remote_completion_s"]
    disk_gain = rows[0]["disk_completion_s"] / rows[-1]["disk_completion_s"]
    remote_gain = rows[0]["remote_completion_s"] / rows[-1]["remote_completion_s"]
    assert disk_gain > remote_gain
    benchmark.extra_info["disk_gain_1.3_to_4"] = disk_gain
