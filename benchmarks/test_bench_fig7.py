"""Benchmark: regenerate Figure 7 (ML completion time comparison)."""

from benchmarks.conftest import SCALE
from repro.experiments import fig7_ml_completion


def test_bench_fig7(run_once, benchmark):
    result = run_once(fig7_ml_completion.run, scale=SCALE)
    rows = result["rows"]
    assert len(rows) == 10  # 5 workloads x 2 configs
    for row in rows:
        # Shape: FastSwap < Infiniswap << Linux, everywhere.
        assert row["fastswap_s"] < row["infiniswap_s"] < row["linux_s"]
        assert row["speedup_vs_linux"] > 10
        assert row["speedup_vs_infiniswap"] > 1.5
    summary = result["summary"]
    # More pressure -> bigger wins (50% beats 75%), as in the paper.
    assert (
        summary[0.5]["avg_speedup_vs_linux"]
        > summary[0.75]["avg_speedup_vs_linux"]
    )
    benchmark.extra_info["avg_speedup_vs_linux_50"] = summary[0.5][
        "avg_speedup_vs_linux"
    ]
    benchmark.extra_info["avg_speedup_vs_infiniswap_50"] = summary[0.5][
        "avg_speedup_vs_infiniswap"
    ]
