"""Benchmark: simulated events/sec, event engine vs flat-path engine.

Three probes of the two-speed engine:

* a fault-free Zipf paging workload driven straight through the
  engines (same pre-materialized reference string on both sides, only
  the simulation drive timed) — the headline events/sec ratio,
  asserted >= 5x;
* the fig6 sweep end to end with ``--fast-path`` on vs off — what a
  figure regeneration actually saves (boundary-dominated: the cells
  page through real backends, so the gain is far below the headline);
* the memory_balancing experiment, which has no runner-based cells —
  the flag must cost nothing and change nothing.
"""

import json
import time

from benchmarks.conftest import SCALE
from repro.experiments import memory_balancing
from repro.experiments.engine import run_experiment
from repro.experiments.runner import _build, default_cluster_config
from repro.mem.page import make_pages
from repro.swap.base import VirtualMemory
from repro.workloads.batch import ZipfBatchSpec, materialize

#: Fault-free and demand-zero-heavy (~60% first touches), with a
#: working set small enough that dict probes stay cache-resident:
#: the flat path's home turf.
ZIPF = ZipfBatchSpec(pages=65536, length=70_000, zipf_alpha=0.3)

#: Timing reps per engine; the minimum is the robust estimator.
REPS = 5


def _engine_seconds(fast_path):
    """Seconds to simulate ``ZIPF`` (engine drive only), plus the MMU.

    Builds the same cluster and pre-materializes the same batch on
    both sides; the timer covers only the simulation run, so the ratio
    is event engine vs flat-path kernel — not trace generation.
    """
    config = default_cluster_config(seed=0)
    cluster, _node, backend = _build("fastswap", config, None, 24)
    rng = cluster.rng
    pages = make_pages(
        ZIPF.pages,
        owner="fastswap",
        compressibility_sampler=ZIPF.compressibility.sampler(
            rng.stream("pages")
        ),
    )
    mmu = VirtualMemory(
        cluster.env,
        pages,
        ZIPF.pages,
        backend,
        cpu=config.calibration.cpu,
        compute_per_access=ZIPF.compute_per_access,
    )
    batch = materialize(ZIPF, rng.stream("trace"))

    def job():
        yield from backend.setup()
        if fast_path:
            yield from mmu.run_batch(batch)
        else:
            for page_id, is_write in batch.pairs():
                yield from mmu.access(page_id, write=is_write)
        yield from mmu.flush()

    started = time.perf_counter()
    cluster.run_process(job(), name="paging:fastswap")
    return mmu, time.perf_counter() - started


def _best_engine_rate(fast_path):
    best = float("inf")
    for _rep in range(REPS):
        mmu, elapsed = _engine_seconds(fast_path)
        best = min(best, elapsed)
    return mmu, mmu.stats.accesses / best


def test_bench_flatpath_zipf_paging(run_once, benchmark):
    slow_mmu, slow_rate = _best_engine_rate(fast_path=False)
    fast_mmu, fast_rate = run_once(_best_engine_rate, fast_path=True)
    assert fast_mmu.stats.snapshot() == slow_mmu.stats.snapshot()
    assert fast_mmu.env.now == slow_mmu.env.now
    speedup = fast_rate / slow_rate
    benchmark.extra_info["event_accesses_per_s"] = round(slow_rate)
    benchmark.extra_info["flat_accesses_per_s"] = round(fast_rate)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    assert speedup >= 5.0


def test_bench_flatpath_fig6_sweep(run_once, benchmark):
    started = time.perf_counter()
    slow = run_experiment("fig6", scale=SCALE, seed=0, jobs=1)
    slow_s = time.perf_counter() - started
    started = time.perf_counter()
    fast = run_once(
        run_experiment, "fig6", scale=SCALE, seed=0, jobs=1, fast_path=True
    )
    fast_s = time.perf_counter() - started
    assert json.dumps(fast.to_json()) == json.dumps(slow.to_json())
    benchmark.extra_info["event_sweep_s"] = round(slow_s, 3)
    benchmark.extra_info["flat_sweep_s"] = round(fast_s, 3)
    benchmark.extra_info["sweep_speedup"] = round(slow_s / fast_s, 2)
    # The sweep pages through real backends at fits below 1.0, so most
    # accesses are boundaries the event engine must handle either way;
    # the flag must not make regeneration meaningfully slower.
    assert fast_s < slow_s * 1.25


def test_bench_flatpath_memory_balancing_unaffected(run_once, benchmark):
    slow = run_experiment("memory_balancing", scale=SCALE, seed=0, jobs=1)
    fast = run_once(
        run_experiment, "memory_balancing", scale=SCALE, seed=0, jobs=1,
        fast_path=True,
    )
    assert json.dumps(fast.to_json()) == json.dumps(slow.to_json())
    benchmark.extra_info["cells"] = fast.stats.cells
    assert memory_balancing  # imported for the registry side effect
