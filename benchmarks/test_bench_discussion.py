"""Benchmarks: the Section III / VI discussion sweeps."""

from benchmarks.conftest import SCALE
from repro.experiments import discussion_sweeps


def test_bench_tier_ladder(run_once, benchmark):
    result = run_once(discussion_sweeps.run_tier_ladder, scale=SCALE)
    times = {row["tier"]: row["completion_s"] for row in result["rows"]}
    # Shape: the Section VI hierarchy, fastest to slowest.
    assert (
        times["shared_memory"]
        <= times["nvm"]
        <= times["remote_rdma"]
        < times["ssd"]
        < times["hdd"]
    )
    benchmark.extra_info["hdd_over_shm"] = times["hdd"] / times["shared_memory"]


def test_bench_transport(run_once, benchmark):
    result = run_once(discussion_sweeps.run_transport, scale=SCALE)
    rows = {row["transport"]: row for row in result["rows"]}
    # Shape: RDMA beats the TCP-class fabric for remote paging.
    assert rows["tcp_10g"]["completion_s"] > rows["rdma_56g"]["completion_s"]
    benchmark.extra_info["tcp_slowdown"] = rows["tcp_10g"]["slowdown_vs_rdma"]


def test_bench_full_disaggregation(run_once, benchmark):
    result = run_once(discussion_sweeps.run_full_disaggregation, scale=SCALE)
    rows = result["rows"]
    # Shape: the remote-vs-local gap shrinks monotonically as the
    # network approaches memory speed, trending toward parity (§III).
    slowdowns = [row["slowdown_vs_node_local"] for row in rows]
    assert slowdowns == sorted(slowdowns)
    assert slowdowns[0] < 1.2  # near-parity at DRAM-like latency
    assert slowdowns[-1] > slowdowns[0]
    benchmark.extra_info["slowdown_at_best_network"] = slowdowns[0]
