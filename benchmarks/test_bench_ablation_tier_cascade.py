"""Benchmark: the XMemPod SSD-tier cascade ablation (paper ref. [36])."""

from benchmarks.conftest import SCALE
from repro.experiments import ablations


def test_bench_ablation_tier_cascade(run_once, benchmark):
    result = run_once(ablations.run_tier_cascade, scale=SCALE)
    rows = {row["backend"]: row for row in result["rows"]}
    # Shape: interposing the SSD tier beats spilling straight to HDD.
    assert rows["xmempod"]["completion_s"] < rows["fastswap"]["completion_s"]
    assert rows["xmempod"]["ssd_reads"] > 0
    assert rows["xmempod"]["disk_reads"] == 0
    assert rows["fastswap"]["ssd_reads"] == 0
    benchmark.extra_info["ssd_cascade_speedup"] = (
        rows["fastswap"]["completion_s"] / rows["xmempod"]["completion_s"]
    )
