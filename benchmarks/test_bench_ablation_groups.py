"""Benchmark: group-size ablation (paper Section IV-C)."""

from benchmarks.conftest import SCALE
from repro.experiments import ablations


def test_bench_ablation_groups(run_once, benchmark):
    result = run_once(ablations.run_groups, scale=SCALE)
    rows = sorted(result["rows"], key=lambda r: r["group_size"])
    # Shape: bigger groups reach more remote memory but cost more map
    # metadata per node — the Section IV-C trade.
    for earlier, later in zip(rows, rows[1:]):
        assert later["reachable_remote_mb"] > earlier["reachable_remote_mb"]
        assert later["map_overhead_gb_at_2tb"] > earlier["map_overhead_gb_at_2tb"]
    # The flat (group of 16) case matches the paper's ~5 GB for 2 TB.
    flat = rows[-1]
    assert 4.0 <= flat["map_overhead_gb_at_2tb"] <= 6.0
    benchmark.extra_info["flat_map_gb"] = flat["map_overhead_gb_at_2tb"]
