"""Benchmark: regenerate Figure 6 (batching + PBS)."""

from benchmarks.conftest import SCALE
from repro.experiments import fig6_batching_pbs


def test_bench_fig6(run_once, benchmark):
    result = run_once(fig6_batching_pbs.run, scale=SCALE)
    rows = result["rows"]
    assert len(rows) == 4
    for row in rows:
        # Shape: FastSwap+PBS < FastSwap-PBS < Infiniswap << Linux.
        assert row["fastswap_pbs_s"] < row["fastswap_nopbs_s"]
        assert row["fastswap_nopbs_s"] < row["infiniswap_s"]
        assert row["infiniswap_s"] < row["linux_s"] / 5
    # Completion grows with the working set for every system.
    for earlier, later in zip(rows, rows[1:]):
        assert later["fastswap_pbs_s"] > earlier["fastswap_pbs_s"]
    benchmark.extra_info["pbs_gain_largest"] = (
        rows[-1]["fastswap_nopbs_s"] / rows[-1]["fastswap_pbs_s"]
    )
