"""Benchmark: fabric-oversubscription ablation (network requirements)."""

import pytest

from benchmarks.conftest import SCALE
from repro.experiments import ablations


def test_bench_ablation_oversubscription(run_once, benchmark):
    result = run_once(ablations.run_oversubscription, scale=SCALE)
    rows = result["rows"]

    def makespan(core, variant):
        return next(
            r["makespan_s"] for r in rows
            if r["core_concurrency"] == core and r["variant"] == variant
        )

    # Shape: narrowing the switch core slows remote paging monotonically
    # while node-local swapping is immune to the fabric entirely.
    assert makespan(1, "fs_rdma") > makespan("unlimited", "fs_rdma")
    assert makespan(1, "fs_rdma") >= makespan(2, "fs_rdma")
    assert makespan(1, "fs_sm") == pytest.approx(
        makespan("unlimited", "fs_sm")
    )
    benchmark.extra_info["core1_slowdown"] = (
        makespan(1, "fs_rdma") / makespan("unlimited", "fs_rdma")
    )
