"""Benchmark: the memory-balancing control plane sweep."""

from benchmarks.conftest import SCALE
from repro.experiments import memory_balancing


def test_bench_memory_balancing(run_once, benchmark):
    result = run_once(memory_balancing.run, scale=SCALE)
    cells = {
        (row["workload"], row["group"], row["rate"], row["policy"]): row
        for row in result["rows"]
    }
    # Shape: on the skewed hotspot sweep every active policy strictly
    # reduces the final imbalance CoV versus the static baseline, the
    # static baseline never moves a page, and balancing pays for itself
    # in moved bytes rather than aborted work.
    for row in memory_balancing.skewed_rows(result):
        if row["policy"] != "static":
            assert row["cov_vs_static"] < 0
            assert row["migrations"] > 0
            assert row["aborted"] == 0
    static = cells[("hotspot", 0, 0.0, "static")]
    assert static["migrations"] == 0 and static["moved_mb"] == 0.0
    best = min(
        memory_balancing.skewed_rows(result), key=lambda row: row["cov_final"]
    )
    benchmark.extra_info["best_policy"] = best["policy"]
    benchmark.extra_info["best_cov_final"] = best["cov_final"]
    benchmark.extra_info["static_cov_final"] = static["cov_final"]
    benchmark.extra_info["moved_mb"] = best["moved_mb"]
