"""Tracing overhead: disabled tracing must cost ~nothing.

Every hot path guards its tracer calls with ``if tracer.enabled:``, so
a run without an active trace session pays one attribute read and one
branch per call site.  These benchmarks pin that promise: the untraced
run *is* the pre-tracing engine, and the guard itself is measured in
isolation.  The traced wall clock rides along in ``extra_info`` so the
benchmark history shows the enabled-tracing cost too.
"""

import time

from repro.experiments.runner import run_paging_workload
from repro.trace import NULL_TRACER, runtime
from repro.workloads.ml import ML_WORKLOADS

SPEC = ML_WORKLOADS["logistic_regression"].with_overrides(
    pages=512, iterations=2
)


def _run():
    return run_paging_workload("fastswap", SPEC, 0.5, seed=0)


def test_bench_untraced_run_is_the_baseline(benchmark):
    result = benchmark.pedantic(_run, iterations=1, rounds=3)
    assert result.stats["major_faults"] > 0
    # No session was active: the run recorded no latency rows.
    assert result.latency_stats == []
    began = time.perf_counter()
    with runtime.session() as active:
        _run()
    traced_s = time.perf_counter() - began
    events = active.events_json()
    assert events, "the traced twin must actually record events"
    benchmark.extra_info["traced_s"] = traced_s
    benchmark.extra_info["traced_events"] = len(events)


def test_bench_null_tracer_guard(benchmark):
    """The per-call-site cost of disabled tracing, in isolation."""
    tracer = NULL_TRACER

    def guarded_loop(n=100_000):
        taken = 0
        for _ in range(n):
            if tracer.enabled:
                taken += 1
        return taken

    assert benchmark(guarded_loop) == 0
