"""Benchmark: ballooning-policy ablation (paper Section IV-F policy 2)."""

from benchmarks.conftest import SCALE
from repro.experiments import ablations


def test_bench_ablation_ballooning(run_once, benchmark):
    result = run_once(ablations.run_ballooning, scale=SCALE)
    rows = {row["ballooning"]: row for row in result["rows"]}
    # Shape: granting DRAM to the paging server cuts faults and time.
    assert rows["adaptive"]["completion_s"] < rows["off"]["completion_s"]
    assert rows["adaptive"]["major_faults"] < rows["off"]["major_faults"]
    assert (
        rows["adaptive"]["final_capacity_pages"]
        > rows["off"]["final_capacity_pages"]
    )
    benchmark.extra_info["speedup"] = (
        rows["off"]["completion_s"] / rows["adaptive"]["completion_s"]
    )
