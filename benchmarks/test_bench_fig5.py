"""Benchmark: regenerate Figure 5 (compression on application perf)."""

from benchmarks.conftest import SCALE
from repro.experiments import fig5_compression_app_perf


def test_bench_fig5(run_once, benchmark):
    result = run_once(fig5_compression_app_perf.run, scale=SCALE)
    rows = result["rows"]
    assert len(rows) == 5
    # Shape: compression wins on every workload once capacity binds.
    for row in rows:
        assert row["speedup"] > 1.0, row
    benchmark.extra_info["min_speedup"] = min(row["speedup"] for row in rows)
    benchmark.extra_info["max_speedup"] = max(row["speedup"] for row in rows)
