"""Benchmark: the experiment engine's cache — cold sweep vs all-hits rerun."""

from benchmarks.conftest import SCALE
from repro.experiments.engine import ResultCache, run_experiment


def test_bench_engine_cached_rerun(run_once, benchmark, tmp_path):
    cache = ResultCache(tmp_path, salt="bench")
    cold = run_experiment("fig3", scale=SCALE, cache=cache)
    assert cold.stats.cache_misses == len(cold.specs)
    warm = run_once(run_experiment, "fig3", scale=SCALE, cache=cache)
    # The timed run touched no simulator: every cell came from the cache.
    assert warm.stats.cache_hits == len(warm.specs)
    assert warm.stats.cache_misses == 0
    assert warm.result == cold.result
    benchmark.extra_info["cells"] = warm.stats.cells
    benchmark.extra_info["cache_bytes"] = cache.size_bytes()
