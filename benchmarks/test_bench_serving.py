"""Benchmark: the open-loop QoS serving sweep."""

from benchmarks.conftest import SCALE
from repro.experiments import open_loop_serving


def test_bench_open_loop_serving(run_once, benchmark):
    result = run_once(open_loop_serving.run, scale=SCALE)
    rows = result["rows"]
    # Shape: gold's envelope goodput share dominates best-effort in
    # every cell, and squeezing the disk-backed system costs goodput.
    for row in rows:
        assert row["gold_envelope"] >= row["bestEffort_envelope"] - 1e-9
    collapsed = [
        row for row in rows
        if row["system"] == "linux" and row["fit"] == 0.35
    ]
    assert any(row["goodput_rps"] < row["offered"] for row in collapsed)
    simulated_requests = sum(row["offered"] for row in rows)
    simulated_users = max(row["users"] for row in rows)
    wall = benchmark.stats["mean"]
    benchmark.extra_info["simulated_users_per_cell"] = simulated_users
    benchmark.extra_info["simulated_requests"] = simulated_requests
    benchmark.extra_info["simulated_requests_per_sec"] = (
        simulated_requests / wall if wall > 0 else 0.0
    )
    benchmark.extra_info["aggregate_goodput_rps"] = sum(
        row["goodput_rps"] for row in rows
    )
