"""Benchmark: the open-loop QoS serving sweep."""

from benchmarks.conftest import SCALE
from repro.experiments import open_loop_serving


def test_bench_open_loop_serving(run_once, benchmark):
    result = run_once(open_loop_serving.run, scale=SCALE)
    rows = result["rows"]
    # Shape: gold's envelope goodput share dominates best-effort in
    # every cell, and squeezing the disk-backed system costs goodput.
    for row in rows:
        assert row["gold_envelope"] >= row["bestEffort_envelope"] - 1e-9
    collapsed = [
        row for row in rows
        if row["system"] == "linux" and row["fit"] == 0.35
    ]
    assert any(row["goodput_rps"] < row["offered"] for row in collapsed)
    simulated_requests = sum(row["offered"] for row in rows)
    simulated_users = max(row["users"] for row in rows)
    wall = benchmark.stats["mean"]
    benchmark.extra_info["simulated_users_per_cell"] = simulated_users
    benchmark.extra_info["simulated_requests"] = simulated_requests
    benchmark.extra_info["simulated_requests_per_sec"] = (
        simulated_requests / wall if wall > 0 else 0.0
    )
    benchmark.extra_info["aggregate_goodput_rps"] = sum(
        row["goodput_rps"] for row in rows
    )


def test_bench_million_user_admission_cell(run_once, benchmark):
    """One full-scale shed cell: 1.05M users, batched arrivals on the
    flat path, queue-depth shedding.  The timed run is the fast path;
    the event-engine run of the identical cell (per-access yields,
    per-arrival heap pushes) is timed alongside for the speedup."""
    import time
    from dataclasses import replace

    spec = next(
        s for s in open_loop_serving.cells(scale=1.0, seed=0)
        if s.options.get("policy") == "queue-depth"
        and s.options["qos_mix"] == "scan-heavy"
        and not s.options["chaos"]
    )
    payload = run_once(open_loop_serving.compute, replace(spec,
                                                          fast_path=True))
    start = time.perf_counter()
    event_payload = open_loop_serving.compute(spec)
    event_wall = time.perf_counter() - start
    assert payload == event_payload  # two-speed equivalence, full scale
    assert payload["users"] >= 1_000_000
    assert payload["shed"] > 0
    assert payload["completed"] + payload["shed"] == payload["offered"]
    wall = benchmark.stats["mean"]
    benchmark.extra_info["simulated_users"] = payload["users"]
    benchmark.extra_info["users_per_sec"] = (
        payload["users"] / wall if wall > 0 else 0.0
    )
    benchmark.extra_info["shed_fraction"] = (
        payload["shed"] / payload["offered"]
    )
    benchmark.extra_info["speedup_vs_event_path"] = (
        event_wall / wall if wall > 0 else 0.0
    )
