"""Benchmark: shared-pool donation-fraction ablation (Section IV-F)."""

from benchmarks.conftest import SCALE
from repro.experiments import ablations


def test_bench_ablation_donation(run_once, benchmark):
    result = run_once(ablations.run_donation, scale=SCALE)
    rows = result["rows"]
    assert [row["donation_fraction"] for row in rows] == [0.0, 0.1, 0.2, 0.3, 0.4]
    # Shape: "maximizing the shared memory pool will provide higher
    # throughput and lower latency" — completion never degrades as the
    # donation grows, and zero donation is strictly worst.
    for earlier, later in zip(rows, rows[1:]):
        assert later["completion_s"] <= earlier["completion_s"] * 1.01
    assert rows[0]["completion_s"] > rows[-1]["completion_s"]
    assert rows[0]["sm_share"] == 0.0
    benchmark.extra_info["gain_0_to_40pct"] = (
        rows[0]["completion_s"] / rows[-1]["completion_s"]
    )
