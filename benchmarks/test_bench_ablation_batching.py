"""Benchmark: message-size x window batching ablation (Section IV-H)."""

from benchmarks.conftest import SCALE
from repro.experiments import ablations


def test_bench_ablation_batching(run_once, benchmark):
    result = run_once(ablations.run_batching, scale=SCALE)
    rows = result["rows"]

    def cell(message_kib, window):
        return next(
            r for r in rows
            if r["message_kib"] == message_kib and r["window"] == window
        )

    # Shape: batching pays most at small messages (Accelio's 8 KB
    # default), and bigger messages need less batching.
    assert cell(8, 16)["transfer_s"] < cell(8, 1)["transfer_s"] / 1.5
    assert cell(256, 16)["transfer_s"] > cell(256, 1)["transfer_s"] / 1.5
    # Batched small messages approach big-message throughput.
    assert cell(8, 64)["gbytes_per_s"] > 0.9 * cell(256, 1)["gbytes_per_s"]
    benchmark.extra_info["gain_8k_window16"] = (
        cell(8, 1)["transfer_s"] / cell(8, 16)["transfer_s"]
    )
