"""Benchmark: regenerate Figure 8 (distribution-ratio throughput)."""

from benchmarks.conftest import SCALE
from repro.experiments import fig8_distribution_ratio


def test_bench_fig8(run_once, benchmark):
    result = run_once(fig8_distribution_ratio.run, scale=SCALE)
    rows = result["rows"]
    assert {row["workload"] for row in rows} == {"redis", "memcached", "voltdb"}
    for row in rows:
        # Shape: every FastSwap variant beats Linux by a lot and the
        # block-device systems; throughput decays from FS-SM to FS-RDMA.
        assert row["fs_sm"] > 10 * row["linux"]
        assert row["fs_rdma"] > row["infiniswap"]
        assert row["fs_sm"] >= row["fs_5_5"] >= row["fs_rdma"]
    memcached = next(r for r in rows if r["workload"] == "memcached")
    benchmark.extra_info["memcached_fs_sm_over_linux"] = (
        memcached["fs_sm"] / memcached["linux"]
    )
