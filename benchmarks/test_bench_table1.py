"""Benchmark: regenerate Table 1 (applications)."""

from repro.experiments import table1_applications


def test_bench_table1(run_once, benchmark):
    result = run_once(table1_applications.run)
    rows = result["rows"]
    assert len(rows) == 10
    # Working sets 25-30 GB, inputs 12-20 GB, as in the paper.
    assert all(25 <= row["paper_ws_gb"] <= 30 for row in rows)
    assert all(12 <= row["paper_input_gb"] <= 20 for row in rows)
    benchmark.extra_info["applications"] = len(rows)
