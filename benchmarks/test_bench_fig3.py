"""Benchmark: regenerate Figure 3 (compression ratios)."""

from benchmarks.conftest import SCALE
from repro.experiments import fig3_compression_ratio


def test_bench_fig3(run_once, benchmark):
    result = run_once(fig3_compression_ratio.run, scale=SCALE)
    rows = result["rows"]
    assert len(rows) == 10
    # Shape: 4-granularity >= 2-granularity >= zswap for every workload.
    for row in rows:
        assert row["fastswap_4gran"] >= row["fastswap_2gran"] >= row["zswap"]
    benchmark.extra_info["mean_4gran_ratio"] = sum(
        row["fastswap_4gran"] for row in rows
    ) / len(rows)
