"""Benchmark: regenerate Figure 10 (vanilla Spark vs DAHI)."""

from benchmarks.conftest import SCALE
from repro.experiments import fig10_dahi_spark


def test_bench_fig10(run_once, benchmark):
    result = run_once(fig10_dahi_spark.run, scale=SCALE)
    rows = result["rows"]
    assert len(rows) == 12  # 4 jobs x 3 categories
    by_job = {}
    for row in rows:
        by_job.setdefault(row["job"], {})[row["dataset"]] = row["speedup"]
    for job, speedups in by_job.items():
        # Shape: no win when everything fits; wins grow with the dataset.
        assert speedups["small"] < 1.1
        assert speedups["small"] < speedups["medium"] < speedups["large"]
        assert speedups["large"] > 1.3
    # CC (compute-heavy) gains least, as in the paper.
    assert by_job["connected_components"]["large"] == min(
        speedups["large"] for speedups in by_job.values()
    )
    benchmark.extra_info["speedups_large"] = {
        job: round(speedups["large"], 2) for job, speedups in by_job.items()
    }
