"""Benchmark: replication-factor ablation (paper Section IV-D)."""

from benchmarks.conftest import SCALE
from repro.experiments import ablations


def test_bench_ablation_replication(run_once, benchmark):
    result = run_once(ablations.run_replication, scale=SCALE)
    rows = {row["replicas"]: row for row in result["rows"]}
    # Shape: more replicas cost more to write and move more bytes...
    assert rows[1]["write_time_s"] < rows[2]["write_time_s"] < rows[3]["write_time_s"]
    assert rows[1]["network_mb"] < rows[3]["network_mb"]
    # ...but survive a node crash without data loss.
    assert rows[1]["readable_after_crash"] < rows[1]["total_entries"]
    assert rows[2]["readable_after_crash"] == rows[2]["total_entries"]
    assert rows[3]["readable_after_crash"] == rows[3]["total_entries"]
    benchmark.extra_info["write_cost_3x_vs_1x"] = (
        rows[3]["write_time_s"] / rows[1]["write_time_s"]
    )
