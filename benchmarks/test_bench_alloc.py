"""Benchmarks: arena allocation throughput and the fragmentation sweep."""

import random

from benchmarks.conftest import SCALE
from repro.experiments import allocation_fragmentation
from repro.mem.allocator import AllocationError
from repro.mem.arena import make_allocator

CAPACITY = 4 * 1024 * 1024
CHURN_OPS = 20000
SIZES = (512, 1024, 2048, 4096, 16384)


def churn(allocator, ops=CHURN_OPS, seed=0):
    """A deterministic alloc-heavy churn loop; returns ops completed."""
    rng = random.Random(seed)
    live = []
    completed = 0
    for _ in range(ops):
        if live and rng.random() < 0.45:
            allocator.free(live.pop(rng.randrange(len(live))))
        else:
            try:
                live.append(allocator.allocate(rng.choice(SIZES)))
            except AllocationError:
                allocator.free(live.pop(rng.randrange(len(live))))
        completed += 1
    return completed, live


def test_bench_arena_churn_throughput(benchmark):
    def run():
        return churn(make_allocator("arena", CAPACITY))

    completed, _live = benchmark(run)
    assert completed == CHURN_OPS
    arena = make_allocator("arena", CAPACITY)
    churn(arena)
    stats = arena.frag_stats()
    assert arena.conserves()
    benchmark.extra_info["capacity_mb"] = CAPACITY / (1024.0 * 1024.0)
    benchmark.extra_info["external_fragmentation"] = (
        stats.external_fragmentation
    )
    benchmark.extra_info["internal_fragmentation"] = (
        stats.internal_fragmentation
    )
    benchmark.extra_info["metadata_fraction"] = stats.metadata_fraction


def test_bench_uniform_churn_throughput(benchmark):
    """The idealized counter baseline the arena's cost is judged
    against: same churn, zero fragmentation by construction."""

    def run():
        return churn(make_allocator("uniform", CAPACITY))

    completed, _live = benchmark(run)
    assert completed == CHURN_OPS
    uniform = make_allocator("uniform", CAPACITY)
    churn(uniform)
    stats = uniform.frag_stats()
    assert stats.external_fragmentation == 0.0
    benchmark.extra_info["external_fragmentation"] = 0.0


def test_bench_allocation_fragmentation(run_once, benchmark):
    result = run_once(allocation_fragmentation.run, scale=SCALE)
    # Shape: the harvest-yield gap is strictly positive on arena cells,
    # zero on the uniform baseline, and compaction keeps external
    # fragmentation under the CI bound while restoring moved bytes.
    gaps = {(row["churn"], row["alloc"]): row for row in result["gaps"]}
    for churn_level in allocation_fragmentation.CHURN:
        assert gaps[(churn_level, "arena")]["yield_gap"] > 0.0
        assert gaps[(churn_level, "uniform")]["yield_gap"] == 0.0
    for row in allocation_fragmentation.compaction_rows(result):
        assert row["ext_frag"] < allocation_fragmentation.COMPACT_EXT_FRAG_BOUND
        assert row["moved_mb"] > 0.0
    worst = max(result["gaps"], key=lambda row: row["yield_gap"])
    benchmark.extra_info["max_yield_gap"] = worst["yield_gap"]
    benchmark.extra_info["max_gap_churn"] = worst["churn"]
    benchmark.extra_info["aborted_raw"] = worst["aborted_raw"]
