"""Benchmark: regenerate Figure 9 (Memcached ETC recovery timeline)."""

from benchmarks.conftest import SCALE
from repro.experiments import fig9_memcached_timeline


def test_bench_fig9(run_once, benchmark):
    result = run_once(fig9_memcached_timeline.run, scale=SCALE)
    rows = {row["system"]: row for row in result["rows"]}
    # Shape: both FastSwap variants reach (near-)peak throughput while
    # Infiniswap plateaus well below it within the window.
    assert rows["fastswap_pbs"]["mean_ops_s"] > rows["infiniswap"]["mean_ops_s"]
    assert rows["infiniswap"]["final_ops_s"] < 0.9 * result["peak_ops_s"]
    for timeline in result["timelines"].values():
        assert timeline, "empty throughput timeline"
        # Recovery: the final window beats the cold first window.
        assert timeline[-1][1] >= timeline[0][1]
    benchmark.extra_info["infiniswap_peak_fraction"] = (
        rows["infiniswap"]["final_ops_s"] / result["peak_ops_s"]
    )
