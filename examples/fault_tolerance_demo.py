#!/usr/bin/env python3
"""Fault tolerance walkthrough (paper Sections IV-C and IV-D).

Demonstrates, on a 6-node cluster with triple replication and two
coordination groups:

1. leader election (max free disaggregated memory wins),
2. remote reads surviving a replica-node crash,
3. heartbeat-timeout re-election after the leader crashes,
4. receive-slab eviction + re-replication under local pressure.

Run:  python examples/fault_tolerance_demo.py
"""

from repro.core import ClusterConfig, DisaggregatedCluster
from repro.hw.latency import KiB, MiB


def main():
    config = ClusterConfig(
        num_nodes=6,
        servers_per_node=1,
        server_memory_bytes=16 * MiB,
        donation_fraction=0.1,
        replication_factor=3,
        group_size=3,
        heartbeat_period=0.2,
        heartbeat_timeout=0.7,
        seed=13,
    )
    cluster = DisaggregatedCluster.build(config, start_services=True)

    group = cluster.groups.group_of("node0")
    print("groups: {}".format(
        {g.group_id: g.members for g in cluster.groups.groups.values()}))
    print("group {} leader: {} (term {})".format(
        group.group_id, group.leader, group.term))

    # Push entries remote (the local pool is tiny).
    server = cluster.virtual_servers[0]

    def fill():
        for i in range(40):
            yield from server.ldmc.put(("entry", i), 128 * KiB)
        return True

    cluster.run_process(fill())
    record = cluster.nodes()[0].ldms.map_for(server).lookup(
        (server.server_id, ("entry", 39)))
    print("\nentry 39 replicated on: {}".format(list(record.replica_nodes)))

    victim = record.replica_nodes[0]
    print("crashing replica holder {} ...".format(victim))
    cluster.crash_node(victim)
    nbytes = cluster.get(server, ("entry", 39))
    print("read after crash still returns {} bytes".format(nbytes))

    # Crash the leader and let the heartbeat timeout trigger re-election.
    leader = group.leader
    if leader == victim:
        print("(leader {} was already the crashed node)".format(leader))
    else:
        print("\ncrashing group leader {} ...".format(leader))
        cluster.crash_node(leader)
    term_before = group.term
    cluster.env.run(until=cluster.env.now + 3.0)
    print("re-elected leader: {} (term {} -> {})".format(
        group.leader, term_before, group.term))
    assert group.leader not in (victim, leader)

    print("\nfailure log:")
    for when, kind, detail in cluster.injector.log:
        print("  t={:.3f}s {} {}".format(when, kind, detail))
    print("\nelections held: {}, heartbeats sent: {}".format(
        cluster.election.elections_held, cluster.election.heartbeats_sent))


if __name__ == "__main__":
    main()
