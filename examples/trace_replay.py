#!/usr/bin/env python3
"""Recording and replaying page-reference traces.

Generates a K-Means trace, saves it to disk in the versioned trace
format, reloads it, and replays it under two swap backends — showing
that replays are exact (identical fault counts across runs) and
portable across systems.

Run:  python examples/trace_replay.py [path]
"""

import os
import random
import sys
import tempfile

from repro.experiments.runner import run_paging_workload
from repro.metrics.reporting import format_table
from repro.workloads.ml import ML_WORKLOADS
from repro.workloads.traces import load_trace, record_trace, save_trace


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else os.path.join(
        tempfile.gettempdir(), "kmeans.trace"
    )
    spec = ML_WORKLOADS["kmeans"].with_overrides(pages=1024, iterations=3)
    trace = record_trace(spec, random.Random(42))
    save_trace(trace, path)
    size_kb = os.path.getsize(path) / 1024
    print("recorded {} accesses over {} pages -> {} ({:.0f} KiB)".format(
        len(trace), trace.pages, path, size_kb))

    loaded = load_trace(path)
    rows = []
    for backend in ("fastswap", "infiniswap"):
        first = run_paging_workload(backend, loaded, 0.5, seed=1)
        second = run_paging_workload(backend, loaded, 0.5, seed=1)
        assert first.stats == second.stats, "replay must be exact"
        rows.append(
            {
                "backend": backend,
                "completion_s": first.completion_time,
                "major_faults": first.stats["major_faults"],
                "replay_exact": first.stats == second.stats,
            }
        )
    print()
    print(format_table(rows, title="replaying the same trace"))


if __name__ == "__main__":
    main()
