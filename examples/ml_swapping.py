#!/usr/bin/env python3
"""Machine-learning workloads under memory pressure (paper Figure 7).

Runs an iterative analytics workload whose working set only half fits
in its virtual server's memory, under four swapping systems — FastSwap
(hybrid disaggregated memory), Infiniswap, NBDX and Linux disk swap —
and prints the completion times and speedups.

Run:  python examples/ml_swapping.py [workload] [fit]
      e.g. python examples/ml_swapping.py pagerank 0.75
"""

import sys

from repro.experiments.runner import run_paging_workload
from repro.metrics.reporting import format_table
from repro.workloads.ml import ML_WORKLOADS


def main():
    workload = sys.argv[1] if len(sys.argv) > 1 else "logistic_regression"
    fit = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    spec = ML_WORKLOADS[workload].with_overrides(pages=2048, iterations=3)
    print("workload={} working_set={} pages, {:.0%} fits in memory".format(
        spec.name, spec.pages, fit))

    rows = []
    baseline = None
    for backend in ("fastswap", "nbdx", "infiniswap", "linux"):
        result = run_paging_workload(backend, spec, fit, seed=1)
        if backend == "fastswap":
            baseline = result.completion_time
        rows.append(
            {
                "system": backend,
                "completion_s": result.completion_time,
                "major_faults": result.stats["major_faults"],
                "prefetch_hits": result.stats["prefetch_hits"],
                "vs_fastswap": result.completion_time / baseline,
            }
        )
    print()
    print(format_table(rows, title="completion time (lower is better)"))
    linux = rows[-1]["completion_s"]
    print("\nFastSwap speeds this workload up {:.0f}x over Linux disk swap "
          "and {:.1f}x over Infiniswap.".format(
              linux / baseline, rows[2]["completion_s"] / baseline))


if __name__ == "__main__":
    main()
