#!/usr/bin/env python3
"""Quickstart: build a disaggregated memory cluster and use it.

Builds the paper's Figure 1 architecture — four nodes, each hosting
virtual servers that donate part of their DRAM to a node-coordinated
shared memory pool and register RDMA buffer pools for the cluster —
then stores and fetches data entries and shows which tier served them.

Run:  python examples/quickstart.py
"""

from repro.core import ClusterConfig, DisaggregatedCluster
from repro.hw.latency import KiB, MiB


def main():
    config = ClusterConfig(
        num_nodes=4,
        servers_per_node=2,
        server_memory_bytes=32 * MiB,
        donation_fraction=0.25,   # the paper's x% donation
        replication_factor=3,     # triple replica modularity (§IV-D)
        seed=42,
    )
    cluster = DisaggregatedCluster.build(config)
    server = cluster.virtual_servers[0]
    print("cluster: {} nodes, {} virtual servers".format(
        config.num_nodes, len(cluster.virtual_servers)))
    print("shared pool on node0: {:.1f} MiB from donations".format(
        cluster.nodes()[0].shared_pool.capacity_bytes / MiB))

    # A small entry lands in the node shared memory pool (DRAM speed).
    tier = cluster.put(server, "greeting", 4 * KiB)
    print("\nput('greeting', 4 KiB)      -> stored in: {}".format(tier))
    nbytes = cluster.get(server, "greeting")
    print("get('greeting')             -> {} bytes".format(nbytes))

    # Keep putting until the pool overflows to cluster remote memory.
    index = 0
    while tier == "shared_memory":
        tier = cluster.put(server, ("bulk", index), 256 * KiB)
        index += 1
    print("\nafter {} bulk puts the pool overflowed".format(index))
    record = cluster.nodes()[0].ldms.map_for(server).lookup(
        (server.server_id, ("bulk", index - 1))
    )
    print("entry ('bulk', {}) -> tier={}, replicas={}".format(
        index - 1, record.location, list(record.replica_nodes)))

    # Reads transparently reach the right tier; crash one replica to
    # show failover.
    cluster.crash_node(record.replica_nodes[0])
    nbytes = cluster.get(server, ("bulk", index - 1))
    print("after crashing {}: get still returned {} bytes "
          "(served by a surviving replica)".format(
              record.replica_nodes[0], nbytes))

    print("\ncluster stats:")
    for key, value in sorted(cluster.stats().items()):
        print("  {:24s} {}".format(key, value))


if __name__ == "__main__":
    main()
