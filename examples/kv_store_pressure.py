#!/usr/bin/env python3
"""Key-value serving under memory pressure (paper Figures 8 and 9).

A closed-loop Memcached-style client runs against a store whose pages
only half fit in memory.  The example compares serving throughput under
Linux swap, Infiniswap, and FastSwap at several node/cluster
distribution ratios (FS-SM ... FS-RDMA), then shows the cold-start
recovery timeline after a memory-pressure event.

Run:  python examples/kv_store_pressure.py
"""

from repro.experiments.runner import run_kv_timeline, run_kv_workload
from repro.metrics.reporting import format_series, format_table
from repro.swap.fastswap import FastSwapConfig
from repro.workloads.kv import KV_WORKLOADS


def main():
    spec = KV_WORKLOADS["memcached"].with_overrides(keys=2048)
    systems = [
        ("linux", "linux", None),
        ("infiniswap", "infiniswap", None),
        ("fs-rdma (all remote)", "fastswap", FastSwapConfig(sm_fraction=0.0)),
        ("fs-5:5", "fastswap", FastSwapConfig(sm_fraction=0.5)),
        ("fs-sm (all node-local)", "fastswap", FastSwapConfig(sm_fraction=1.0)),
    ]
    rows = []
    for label, backend, fs_config in systems:
        result = run_kv_workload(
            backend, spec, 0.5, duration=1.5, seed=7,
            fastswap_config=fs_config,
        )
        rows.append({"system": label, "ops_per_s": result.mean_throughput})
    print(format_table(rows, title="Memcached ETC throughput, 50% config",
                       float_format="{:,.0f}"))

    print("\ncold-start recovery (store fully swapped out at t=0):")
    recovery = run_kv_timeline(
        "fastswap",
        spec.with_overrides(keys=4096),
        0.5,
        duration=1.0,
        window=0.1,
        seed=7,
        fastswap_config=FastSwapConfig(sm_fraction=0.0),
    )
    print(format_series(recovery.timeline, title="fastswap (FS-RDMA)",
                        x_label="t_s", y_label="ops_per_s",
                        float_format="{:,.0f}"))


if __name__ == "__main__":
    main()
