#!/usr/bin/env python3
"""A tour of the paper's Section IV design space.

Runs five quick ablations — placement, replication, batching, donation
fraction and the XMemPod SSD cascade — and prints what each design
choice costs or buys.  Pass ``--full`` for the full-scale versions.

Run:  python examples/design_space_tour.py [--full]
"""

import sys

from repro.experiments import ablations
from repro.metrics.reporting import format_table


def main():
    scale = 1.0 if "--full" in sys.argv else 0.3

    print("1. Placement (§IV-E): how evenly do policies fill peers?")
    rows = ablations.run_placement(scale=scale)["rows"]
    print(format_table(rows))
    best = min(rows, key=lambda r: r["imbalance"])
    print("   -> best balance: {}\n".format(best["policy"]))

    print("2. Replication (§IV-D): durability vs write cost")
    rows = ablations.run_replication(scale=scale)["rows"]
    print(format_table(rows))
    print("   -> factor 1 loses data on a crash; factor 3 pays ~3x the "
          "write time\n")

    print("3. Batching (§IV-H): window size x message size")
    rows = [r for r in ablations.run_batching(scale=scale)["rows"]
            if r["message_kib"] in (8, 256)]
    print(format_table(rows))
    print("   -> batching makes 8 KB messages behave like 256 KB ones\n")

    print("4. Donation fraction (§IV-F): how much to give the pool?")
    rows = ablations.run_donation(scale=scale)["rows"]
    print(format_table(rows))
    print("   -> more donated shared memory never hurts; saturates once "
          "the compressed overflow fits\n")

    print("5. Storage cascade (XMemPod): where should overflow land?")
    rows = ablations.run_tier_cascade(scale=scale)["rows"]
    print(format_table(rows))
    speedup = rows[0]["completion_s"] / rows[1]["completion_s"]
    print("   -> an SSD tier under remote memory is {:.0f}x faster than "
          "spilling to the HDD".format(speedup))


if __name__ == "__main__":
    main()
