#!/usr/bin/env python3
"""Spark RDD caching with DAHI (paper Figure 10).

Runs an iterative logistic-regression job whose cached RDD does not fit
in executor storage memory, under vanilla Spark (dropped partitions are
recomputed from lineage) and DAHI (dropped partitions are parked in
node-level shared memory / cluster remote memory and fetched back).

Run:  python examples/spark_rdd_caching.py [job]
      jobs: logistic_regression svm kmeans connected_components
"""

import sys

from repro.cache.jobs import SPARK_JOBS, run_spark_job
from repro.metrics.reporting import format_table


def main():
    job = sys.argv[1] if len(sys.argv) > 1 else "logistic_regression"
    spec = SPARK_JOBS[job]
    print("job={} iterations={}".format(spec.name, spec.iterations))

    rows = []
    for category in ("small", "medium", "large"):
        spark = run_spark_job("spark", spec, category, seed=3)
        dahi = run_spark_job("dahi", spec, category, seed=3)
        rows.append(
            {
                "dataset": category,
                "partitions": spec.num_partitions(category, 24 * 1024 ** 2),
                "vanilla_spark_s": spark.completion_time,
                "dahi_s": dahi.completion_time,
                "speedup": spark.completion_time / dahi.completion_time,
                "spark_recomputes": spark.stats["recomputes"],
                "dahi_offheap_fetches": dahi.stats["offheap_fetches"],
            }
        )
    print()
    print(format_table(rows, title="vanilla Spark vs DAHI"))
    print("\nSmall datasets cache fully (no benefit); as the dataset "
          "outgrows executor memory, DAHI replaces lineage recomputation "
          "with disaggregated-memory fetches.")


if __name__ == "__main__":
    main()
