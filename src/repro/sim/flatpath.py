"""The flat-path kernel: fault-free access stretches without events.

The event engine charges a paging access through a generator resume per
access, even though the overwhelmingly common cases — a resident hit, a
swap-cache promote with clean evictions, a demand-zero fault with an
empty schedule — never suspend, or suspend only to fire a single
timeout that nothing can interleave with.  :func:`advance` executes
such stretches as flat arithmetic over a pre-materialized address
array (in the style of trace-driven cycle accounting: a running
``avail_cycle`` per device instead of one event object per request),
mutating the *same* :class:`~repro.swap.base.VirtualMemory` state in
the *same* order, so a run that mixes both speeds is bit-identical to
a pure event-engine run.

Equivalence contract (checked by the golden and property tests):

* only zero-yield access shapes are inlined — resident hits, and
  swap-cache promotes whose evictions are all clean;
* a demand-zero minor fault (which flushes pending time through one
  timeout) is inlined only when that timeout would pop strictly before
  every event already on the heap: it then fires with nothing able to
  observe the wait, so adding to the clock directly is the identical
  float computation (a strict compare wins every tie-break, whatever
  the other event's priority or sequence number);
* pending-time accumulation replicates the event path's exact float
  addition order (one ``+=`` per component per access — never a
  factored ``n * (a + b)``);
* everything else — major faults, dirty eviction I/O, fault-injection
  windows, migration epochs (``env.bulk_holds``), retries/timeouts
  (which imply a non-empty heap) — is a *boundary*: the kernel stops
  before touching the access and hands it back to the event engine.

``env._seq`` is deliberately not consumed for inlined timeouts: the
skipped draws shift every later event's tie-break sequence number by
the same amount, which preserves the relative order of all heap
entries and therefore the event-engine behaviour.
"""

__all__ = ["FlatPathStats", "advance", "inline_jump"]

#: Boundary reasons, as recorded in :class:`FlatPathStats.boundaries`.
BOUNDARY_REASONS = (
    "bulk-hold",      # a held protocol window (e.g. staged migration)
    "fault-window",   # inside / about to enter a fault-injection window
    "sched-events",   # heap not empty: a flush could interleave
    "major-fault",    # backend swap-in I/O
    "eviction-io",    # a dirty (or invalid-copy) victim needs swap-out
)


class FlatPathStats:
    """What the kernel did for one :class:`VirtualMemory` instance."""

    __slots__ = ("bulk_runs", "bulk_accesses", "boundaries")

    def __init__(self):
        #: Bulk stretches that executed at least one access.
        self.bulk_runs = 0
        #: Accesses executed inline (the rest went to the event engine).
        self.bulk_accesses = 0
        #: Boundary reason -> count of stretches stopped by it.
        self.boundaries = {}

    def note(self, reason):
        self.boundaries[reason] = self.boundaries.get(reason, 0) + 1

    def snapshot(self):
        return {
            "bulk_runs": self.bulk_runs,
            "bulk_accesses": self.bulk_accesses,
            "boundaries": dict(sorted(self.boundaries.items())),
        }


def inline_jump(env, delay):
    """Advance the clock by ``delay`` without an event, when nothing
    could observe the wait; returns False to request event fallback.

    The same strict-compare argument :func:`advance` uses for inlined
    demand-zero flushes, exposed for fast-path callers (the serving
    driver's idle waits and pending-time flushes): the jump is legal
    only when no bulk hold is open and the landing time pops strictly
    before everything already on the event heap — a strict winner
    fires with nothing able to interleave, so adding to the clock is
    the identical float computation.  ``env._seq`` is deliberately not
    consumed (see the module docstring).
    """
    if env.bulk_holds:
        return False
    new_now = env.now + delay
    heap = env._heap
    if heap and heap[0][0] <= new_now:
        return False
    env.now = new_now
    return True


def _window_state(windows, now):
    """``(inside, horizon)``: whether ``now`` is inside a fallback
    window, and the earliest window start strictly after ``now``."""
    inside = False
    horizon = float("inf")
    for start, end in windows:
        if start <= now < end:
            inside = True
            break
        if now < start < horizon:
            horizon = start
    return inside, horizon


def advance(vm, addresses, writes, start, stop=None):
    """Execute accesses ``[start, stop)`` inline until a boundary.

    Returns ``(index, reason)``: accesses ``[start, index)`` are fully
    charged; ``reason`` is ``None`` when the stretch ran to ``stop``
    (default: the end of the arrays), else the boundary that stopped it
    — in which case the caller must run access ``index`` (untouched by
    the kernel) through the event engine and call back in.
    """
    env = vm.env
    total = len(addresses) if stop is None else stop
    flat = vm.flat_stats
    if start >= total:
        return start, None
    if env.bulk_holds:
        flat.note("bulk-hold")
        return start, "bulk-hold"
    inside, horizon = _window_state(vm.fallback_windows, env.now)
    if inside:
        flat.note("fault-window")
        return start, "fault-window"

    resident = vm.resident
    move_to_end = resident.move_to_end
    prefetch = vm.prefetch
    swapped_valid = vm.swapped_valid
    pages = vm.pages
    backend = vm.backend
    capacity = vm.capacity_pages
    compute = vm.compute_per_access
    hit_time = vm.HIT_TIME
    promote_time = vm.PROMOTE_TIME
    # The event path evaluates the sum before the +=, so one precomputed
    # float is the identical quantity.
    fault_overhead = vm.cpu.page_fault_overhead + vm.cpu.context_switch
    # A demand-zero fault with nothing pending flushes exactly
    # ``(0.0 + compute) + fault_overhead`` — a constant (``0.0 + x``
    # is ``x``), so runs of first touches skip the flush arithmetic.
    zero_flush = compute + fault_overhead
    zero_flush_positive = zero_flush > 0.0
    # The resident set only ever holds this VM's pages, so a working
    # set that fits outright can never evict — skip the checks.
    evict_possible = len(pages) > capacity
    heap = env._heap
    pending = vm._pending_time
    # Nothing observes the clock inside a bulk stretch (no process can
    # run, and the only inline backend call — ``discard`` — is
    # timeless), so the clock lives in a local until the epilogue.
    now = env.now

    tracer = env.tracer
    span = tracer.begin("flatpath.bulk") if tracer.enabled else None

    # Per-access counters are derived, not incremented: every executed
    # access is exactly one of {resident hit, promote, demand-zero},
    # and both miss shapes grow the resident set by one, so the miss
    # split falls out of ``len(resident)`` growth plus the eviction
    # count — the hot paths carry no counter bookkeeping at all
    # (``executed = index - start`` at the end).
    prefetch_hits = 0
    resident_before = len(resident)
    evicted = 0
    # Untouched swap state (nothing prefetched, no valid swap copies):
    # every miss is necessarily demand-zero and every eviction
    # necessarily needs swap-out I/O.  The flag is loop-invariant —
    # the only inline operation that populates ``swapped_valid`` is a
    # clean eviction, which in this state boundaries out instead — so
    # misses skip the classification probes entirely.
    virgin = not prefetch and not swapped_valid
    reason = None
    for index in range(start, total):
        page_id = addresses[index]

        if page_id in resident:
            # Resident hit: never advances the clock, always inline.
            pending += compute
            move_to_end(page_id)
            pending += hit_time
            if writes[index]:
                page = pages[page_id]
                page.dirty = True
                if not virgin and page_id in swapped_valid:
                    swapped_valid.discard(page_id)
                    backend.discard(page)
            continue

        if virgin:
            # Probe-free demand-zero (see the ``virgin`` note above).
            if evict_possible and len(resident) >= capacity:
                reason = "eviction-io"
                break
            if pending == 0.0:
                new_now = now + zero_flush if zero_flush_positive else now
            else:
                flush = pending + compute
                flush += fault_overhead
                new_now = now + flush if flush > 0.0 else now
            if heap and heap[0][0] <= new_now:
                reason = "sched-events"
                break
            if new_now >= horizon:
                reason = "fault-window"
                break
            now = new_now
            pending = 0.0
            page = pages[page_id]
            if writes[index]:
                page.dirty = True
            resident[page_id] = page
            continue

        # A miss.  Classify it *before* mutating anything, so a
        # boundary access reaches the event engine untouched.
        in_prefetch = page_id in prefetch
        if not in_prefetch and page_id in swapped_valid:
            reason = "major-fault"
            break
        if evict_possible:
            evictions = len(resident) - capacity + 1
            if evictions > 0:
                clean = True
                for victim_id, victim in resident.items():
                    if victim.dirty or victim_id not in swapped_valid:
                        clean = False
                        break
                    evictions -= 1
                    if evictions == 0:
                        break
                if not clean:
                    reason = "eviction-io"
                    break

        if in_prefetch:
            # Swap-cache promote: clean evictions yield nothing, so the
            # whole access is zero-yield and clock-neutral.
            pending += compute
            del prefetch[page_id]
            pending += promote_time
            prefetch_hits += 1
            if evict_possible:
                while len(resident) >= capacity:
                    victim_id, _victim = resident.popitem(last=False)
                    swapped_valid.add(victim_id)
                    evicted += 1
            page = pages[page_id]
            if writes[index]:
                page.dirty = True
                if page_id in swapped_valid:
                    swapped_valid.discard(page_id)
                    backend.discard(page)
            resident[page_id] = page
        else:
            # Demand-zero minor fault: flushes pending time through one
            # timeout, advancing the clock.  Inline only when that
            # timeout would pop strictly before anything already on the
            # heap (so nothing can interleave — a strict compare wins
            # every priority/seq tie-break), and only if the jump stays
            # clear of the next fault-injection window.
            if pending == 0.0:
                new_now = now + zero_flush if zero_flush_positive else now
            else:
                flush = pending + compute
                flush += fault_overhead
                new_now = now + flush if flush > 0.0 else now
            if heap and heap[0][0] <= new_now:
                reason = "sched-events"
                break
            if new_now >= horizon:
                reason = "fault-window"
                break
            now = new_now
            pending = 0.0
            if evict_possible:
                while len(resident) >= capacity:
                    victim_id, _victim = resident.popitem(last=False)
                    swapped_valid.add(victim_id)
                    evicted += 1
            page = pages[page_id]
            if writes[index]:
                # First touch: there is no swap copy to invalidate.
                page.dirty = True
            resident[page_id] = page
    else:
        index = total

    env.now = now
    vm._pending_time = pending
    accesses = index - start
    demand_zero = (
        len(resident) - resident_before + evicted - prefetch_hits
    )
    stats = vm.stats
    stats.accesses += accesses
    stats.resident_hits += accesses - prefetch_hits - demand_zero
    stats.prefetch_hits += prefetch_hits
    stats.minor_faults += prefetch_hits + demand_zero
    if reason is not None:
        flat.note(reason)
    if accesses:
        flat.bulk_runs += 1
        flat.bulk_accesses += accesses
        if span is not None:
            tracer.end(span, accesses=accesses,
                       boundary=reason or "end-of-batch")
    return index, reason
