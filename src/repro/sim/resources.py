"""Contention primitives: resources, containers and stores.

These model the queueing behaviour of shared devices (disks, NICs,
links, CPUs).  All waiting is FIFO unless a priority variant is used;
ties are deterministic.

Usage from a process::

    request = disk.request()
    yield request
    try:
        yield env.timeout(service_time)
    finally:
        disk.release(request)

or, equivalently, with the context-manager form::

    with disk.request() as request:
        yield request
        yield env.timeout(service_time)
"""

import heapq
from itertools import count

from repro.sim.events import Event


class Request(Event):
    """A pending or granted claim on a :class:`Resource` slot."""

    def __init__(self, resource):
        super().__init__(resource.env, name="request:{}".format(resource.name))
        self.resource = resource

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.resource.release(self)
        return False

    def cancel(self):
        """Withdraw a not-yet-granted request (no-op if already granted)."""
        self.resource._cancel(self)


class Resource:
    """``capacity`` interchangeable slots with a FIFO wait queue."""

    def __init__(self, env, capacity=1, name="resource"):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.users = set()
        self._queue = []

    @property
    def count(self):
        """Number of slots currently held."""
        return len(self.users)

    @property
    def queue_length(self):
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def request(self):
        """Return a :class:`Request` event; it succeeds when a slot frees."""
        request = Request(self)
        self._queue.append(request)
        self._grant()
        return request

    def release(self, request):
        """Return a granted slot.  Releasing twice is a silent no-op."""
        if request in self.users:
            self.users.remove(request)
            self._grant()

    def _cancel(self, request):
        if request in self._queue and not request.triggered:
            self._queue.remove(request)

    def _grant(self):
        while self._queue and len(self.users) < self.capacity:
            request = self._queue.pop(0)
            self.users.add(request)
            request.succeed()


class PriorityRequest(Request):
    """A claim carrying a priority (lower value is served first)."""

    def __init__(self, resource, priority):
        super().__init__(resource)
        self.priority = priority


class PriorityResource(Resource):
    """A resource whose waiters are served in (priority, arrival) order."""

    def __init__(self, env, capacity=1, name="priority-resource"):
        super().__init__(env, capacity=capacity, name=name)
        self._heap = []
        self._seq = count()

    @property
    def queue_length(self):
        return len(self._heap)

    def request(self, priority=0):
        request = PriorityRequest(self, priority)
        heapq.heappush(self._heap, (priority, next(self._seq), request))
        self._grant()
        return request

    def _cancel(self, request):
        self._heap = [entry for entry in self._heap if entry[2] is not request]
        heapq.heapify(self._heap)

    def _grant(self):
        while self._heap and len(self.users) < self.capacity:
            _priority, _seq, request = heapq.heappop(self._heap)
            self.users.add(request)
            request.succeed()


class Container:
    """A homogeneous quantity (e.g. bytes of free memory) with blocking put/get."""

    def __init__(self, env, capacity=float("inf"), init=0.0, name="container"):
        if init < 0 or init > capacity:
            raise ValueError("init must be within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.level = init
        self._getters = []  # (amount, event)
        self._putters = []  # (amount, event)

    def put(self, amount):
        """Event that succeeds once ``amount`` fits under ``capacity``."""
        if amount < 0:
            raise ValueError("amount must be >= 0")
        event = Event(self.env, name="put:{}".format(self.name))
        self._putters.append((amount, event))
        self._settle()
        return event

    def get(self, amount):
        """Event that succeeds once ``amount`` is available."""
        if amount < 0:
            raise ValueError("amount must be >= 0")
        event = Event(self.env, name="get:{}".format(self.name))
        self._getters.append((amount, event))
        self._settle()
        return event

    def _settle(self):
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                amount, event = self._putters[0]
                if self.level + amount <= self.capacity:
                    self._putters.pop(0)
                    self.level += amount
                    event.succeed(amount)
                    progressed = True
            if self._getters:
                amount, event = self._getters[0]
                if amount <= self.level:
                    self._getters.pop(0)
                    self.level -= amount
                    event.succeed(amount)
                    progressed = True


class Store:
    """A FIFO buffer of arbitrary objects with blocking put/get."""

    def __init__(self, env, capacity=float("inf"), name="store"):
        self.env = env
        self.capacity = capacity
        self.name = name
        self.items = []
        self._getters = []
        self._putters = []  # (item, event)

    def __len__(self):
        return len(self.items)

    def put(self, item):
        """Event that succeeds once there is room for ``item``."""
        event = Event(self.env, name="put:{}".format(self.name))
        self._putters.append((item, event))
        self._settle()
        return event

    def get(self):
        """Event that succeeds with the oldest item once one exists."""
        event = Event(self.env, name="get:{}".format(self.name))
        self._getters.append(event)
        self._settle()
        return event

    def _settle(self):
        progressed = True
        while progressed:
            progressed = False
            if self._putters and len(self.items) < self.capacity:
                item, event = self._putters.pop(0)
                self.items.append(item)
                event.succeed(item)
                progressed = True
            if self._getters and self.items:
                event = self._getters.pop(0)
                event.succeed(self.items.pop(0))
                progressed = True
