"""Events: the unit of synchronization in the simulation kernel.

An :class:`Event` starts *pending*, is *triggered* exactly once with
either a value (success) or an exception (failure), and then runs its
callbacks when the environment pops it off the event heap.  Processes
wait on events by yielding them; composite conditions (:class:`AllOf`,
:class:`AnyOf`) are themselves events.
"""

from repro.sim.errors import EventAlreadyTriggered

_PENDING = object()


class Event:
    """A one-shot occurrence at a point in simulated time.

    Parameters
    ----------
    env:
        The :class:`~repro.sim.engine.Environment` the event belongs to.
    name:
        Optional label used in ``repr`` for debugging.
    """

    def __init__(self, env, name=None):
        self.env = env
        self.name = name
        self.callbacks = []
        self._value = _PENDING
        self._ok = None

    def __repr__(self):
        label = self.name or self.__class__.__name__
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return "<{} {}>".format(label, state)

    @property
    def triggered(self):
        """True once the event has an outcome (it may not have fired yet)."""
        return self._value is not _PENDING

    @property
    def ok(self):
        """True if the event succeeded.  Only meaningful once triggered."""
        return bool(self._ok)

    @property
    def value(self):
        """The event outcome: its value on success, exception on failure."""
        if self._value is _PENDING:
            raise AttributeError("event has not been triggered")
        return self._value

    def succeed(self, value=None):
        """Trigger the event successfully with ``value``.

        Returns the event so calls can be chained/yielded directly.
        """
        if self._value is not _PENDING:
            raise EventAlreadyTriggered(repr(self))
        self._ok = True
        self._value = value
        self.env._push(self)
        return self

    def fail(self, exception):
        """Trigger the event as failed with ``exception``.

        A process waiting on the event will have the exception thrown
        into it.
        """
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self._value is not _PENDING:
            raise EventAlreadyTriggered(repr(self))
        self._ok = False
        self._value = exception
        self.env._push(self)
        return self

    def trigger(self, event):
        """Trigger this event with the outcome of another event."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)
        return self


class Timeout(Event):
    """An event that succeeds after a relative simulated ``delay``."""

    def __init__(self, env, delay, value=None, name=None):
        if delay < 0:
            raise ValueError("negative delay: {!r}".format(delay))
        super().__init__(env, name=name or "Timeout({})".format(delay))
        self.delay = delay
        self._ok = True
        self._value = value
        env._push(self, delay=delay)


class ConditionValue(dict):
    """Outcome of a condition: maps each triggered sub-event to its value."""


class _Condition(Event):
    """Shared machinery for :class:`AllOf` / :class:`AnyOf`."""

    def __init__(self, env, events, name=None):
        super().__init__(env, name=name)
        self.events = tuple(events)
        for event in self.events:
            if event.env is not env:
                raise ValueError("event from a different environment")
        self._remaining = len(self.events)
        for event in self.events:
            if event.callbacks is None:
                # Already fired (callbacks consumed): account for it now.
                self._on_child(event)
            else:
                event.callbacks.append(self._on_child)
        if not self.triggered and self._satisfied():
            self._resolve()

    def _on_child(self, event):
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._satisfied():
            self._resolve()

    def _satisfied(self):
        raise NotImplementedError

    def _resolve(self):
        value = ConditionValue()
        for event in self.events:
            if event.callbacks is None and event._ok:
                value[event] = event._value
        self.succeed(value)


class AllOf(_Condition):
    """Succeeds when *all* sub-events succeed; fails fast on any failure."""

    def _satisfied(self):
        return self._remaining == 0


class AnyOf(_Condition):
    """Succeeds as soon as *any* sub-event succeeds (or fails on a failure)."""

    def _satisfied(self):
        return self._remaining < len(self.events) or not self.events
