"""Discrete-event simulation kernel.

A small, dependency-free kernel in the style of SimPy: an
:class:`~repro.sim.engine.Environment` drives a time-ordered event heap,
and *processes* are Python generators that ``yield`` events to wait on
them.  The kernel provides:

* :class:`~repro.sim.events.Event` — one-shot events with success /
  failure outcomes and callback chains;
* :class:`~repro.sim.events.Timeout` — events scheduled at a relative
  simulated delay;
* :class:`~repro.sim.events.AllOf` / :class:`~repro.sim.events.AnyOf` —
  composite conditions;
* :class:`~repro.sim.process.Process` — generator-based coroutines with
  interruption support;
* :mod:`~repro.sim.resources` — FIFO and priority resources, counting
  containers and object stores for modelling contention;
* :class:`~repro.sim.rng.RngStreams` — named, independently seeded
  random streams so experiments are reproducible stream-by-stream.

The simulated clock is a float; all repro models interpret it as
**seconds**.
"""

from repro.sim.engine import Environment
from repro.sim.errors import Interrupt, SimulationError, StopProcess
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.resources import Container, PriorityResource, Resource, Store
from repro.sim.rng import RngStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Environment",
    "Event",
    "Interrupt",
    "PriorityResource",
    "Process",
    "Resource",
    "RngStreams",
    "SimulationError",
    "StopProcess",
    "Store",
    "Timeout",
]
