"""Generator-based simulation processes.

A process wraps a Python generator.  Each value the generator yields
must be an :class:`~repro.sim.events.Event`; the process sleeps until
the event fires and is resumed with the event's value (or has the
event's exception thrown into it).  A process is itself an event that
triggers when the generator returns, so processes can wait on each
other simply by yielding them.
"""

from repro.sim import engine as _engine
from repro.sim.errors import Interrupt, StopProcess
from repro.sim.events import Event


class Process(Event):
    """A running simulation process (also an event: fires on completion)."""

    def __init__(self, env, generator, name=None):
        if not hasattr(generator, "send"):
            raise TypeError(
                "process() expects a generator, got {!r}".format(generator)
            )
        super().__init__(env, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._target = None
        # Kick the generator off via an already-successful init event so
        # the first body statement runs at the current simulated time.
        init = Event(env, name="init:{}".format(self.name))
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        env._push(init, priority=_engine.PRIORITY_URGENT)

    @property
    def is_alive(self):
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause=None):
        """Throw :class:`~repro.sim.errors.Interrupt` into the process.

        The process may catch the interrupt and keep running (e.g. to
        handle a failure notice and retry).  Interrupting a finished
        process raises ``RuntimeError``.
        """
        if self.triggered:
            raise RuntimeError("cannot interrupt finished process {!r}".format(self))
        # Detach from whatever the process is currently waiting on so it
        # is not resumed twice.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        poke = Event(self.env, name="interrupt:{}".format(self.name))
        poke._ok = False
        poke._value = Interrupt(cause)
        poke.callbacks.append(self._resume)
        self.env._push(poke, priority=_engine.PRIORITY_URGENT)

    # -- internal ----------------------------------------------------------

    def _resume(self, event):
        self.env.active_process = self
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                target = self._generator.throw(event._value)
        except StopIteration as exc:
            self.succeed(exc.value)
            return
        except StopProcess as exc:
            self.succeed(exc.value)
            return
        except Interrupt as exc:
            # The generator let an interrupt escape: treat as failure.
            self.fail(exc)
            if not self.callbacks:
                raise
            return
        except BaseException as exc:
            self.fail(exc)
            if not self.callbacks:
                # Nobody is waiting on this process; crash loudly rather
                # than losing the error.
                raise
            return
        finally:
            self.env.active_process = None

        if not isinstance(target, Event):
            error = RuntimeError(
                "process {!r} yielded a non-event: {!r}".format(self.name, target)
            )
            self.fail(error)
            raise error
        if target.callbacks is not None:
            # Pending, or triggered but not yet fired: hook its callback
            # chain directly.
            target.callbacks.append(self._resume)
            self._target = target
        else:
            # The event already fired; resume at the current timestamp
            # with the same outcome via a proxy event.
            proxy = Event(self.env, name="replay")
            proxy._ok = target._ok
            proxy._value = target._value
            proxy.callbacks.append(self._resume)
            self.env._push(proxy, priority=_engine.PRIORITY_URGENT)
            self._target = proxy
