"""Named, independently seeded random streams.

Simulation models that share one global RNG become coupled: adding a
draw in one component perturbs every other component.  ``RngStreams``
derives an independent ``random.Random`` per (master seed, stream name)
so each model component owns its own stream and runs stay reproducible
under refactoring.
"""

import hashlib
import random


def derive_seed(master_seed, name):
    """Derive a 64-bit seed from ``master_seed`` and a stream ``name``."""
    digest = hashlib.sha256(
        "{}/{}".format(master_seed, name).encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big")


class RngStreams:
    """A factory of named deterministic random streams."""

    def __init__(self, seed=0):
        self.seed = seed
        self._streams = {}

    def stream(self, name):
        """Return the ``random.Random`` for ``name`` (created on demand)."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.seed, name))
            self._streams[name] = stream
        return stream

    def spawn(self, name):
        """Derive a child ``RngStreams`` namespaced under ``name``."""
        return RngStreams(derive_seed(self.seed, "spawn/" + name))

    def __repr__(self):
        return "RngStreams(seed={!r}, streams={})".format(
            self.seed, sorted(self._streams)
        )
