"""The simulation environment: clock + event heap + run loop."""

import heapq
from itertools import count

from repro.sim.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.trace.runtime import tracer_for_env

#: Scheduling priorities. Events pushed at the same timestamp fire in
#: priority order, then insertion order, which keeps runs deterministic.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1


class EmptySchedule(SimulationError):
    """``run()`` was asked to advance but no events remain."""


class Environment:
    """Coordinates simulated time and event execution.

    The environment is the single mutable hub of a simulation: models
    create events through it, processes are registered on it, and
    :meth:`run` advances the clock by firing events in timestamp order.

    Determinism: two runs with the same model code and the same RNG
    seeds produce identical event orders — ties are broken by
    (priority, insertion sequence).
    """

    def __init__(self, initial_time=0.0):
        self.now = float(initial_time)
        self._heap = []
        self._seq = count()
        self.active_process = None
        #: While positive, the flat-path kernel must not run: some
        #: multi-step protocol (e.g. a staged page migration) is in an
        #: intermediate state that bulk execution is not allowed to
        #: overlap.  Managed via :meth:`hold_bulk` / :meth:`release_bulk`.
        self.bulk_holds = 0
        #: The run's tracer: the shared no-op :data:`~repro.trace.tracer.
        #: NULL_TRACER` unless a trace session is active.  Models guard
        #: hot paths with ``if env.tracer.enabled:`` so disabled runs
        #: pay one attribute read and one branch.
        self.tracer = tracer_for_env(self)

    # -- event construction ------------------------------------------------

    def event(self, name=None):
        """Create a new pending :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay, value=None):
        """Create an event that succeeds ``delay`` time units from now."""
        return Timeout(self, delay, value=value)

    def process(self, generator, name=None):
        """Register ``generator`` as a new :class:`Process` starting now."""
        return Process(self, generator, name=name)

    def all_of(self, events):
        """Condition event succeeding when all ``events`` succeed."""
        return AllOf(self, events)

    def any_of(self, events):
        """Condition event succeeding when any of ``events`` succeeds."""
        return AnyOf(self, events)

    # -- flat-path gating --------------------------------------------------

    def hold_bulk(self):
        """Forbid flat-path bulk execution until the matching release."""
        self.bulk_holds += 1

    def release_bulk(self):
        """Release one :meth:`hold_bulk` (pair them with try/finally)."""
        if self.bulk_holds <= 0:
            raise SimulationError("release_bulk without a matching hold")
        self.bulk_holds -= 1

    # -- scheduling --------------------------------------------------------

    def _push(self, event, delay=0.0, priority=PRIORITY_NORMAL):
        """Put a triggered event on the heap, to fire after ``delay``."""
        heapq.heappush(
            self._heap, (self.now + delay, priority, next(self._seq), event)
        )

    def peek(self):
        """Timestamp of the next event, or ``float('inf')`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self):
        """Fire the single next event; advances ``now`` to its timestamp."""
        if not self._heap:
            raise EmptySchedule("no scheduled events")
        when, _priority, _seq, event = heapq.heappop(self._heap)
        self.now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

    def run(self, until=None):
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until no events remain; a number — run until
            the clock reaches that time; an :class:`Event` — run until
            that event fires, returning (or raising) its outcome.
        """
        if until is None:
            while self._heap:
                self.step()
            return None
        if isinstance(until, Event):
            return self._run_until_event(until)
        deadline = float(until)
        if deadline < self.now:
            raise ValueError(
                "until ({}) is in the past (now={})".format(deadline, self.now)
            )
        while self._heap and self.peek() <= deadline:
            self.step()
        self.now = deadline
        return None

    def _run_until_event(self, event):
        finished = []
        if event.callbacks is None:
            # Already fired; report its outcome directly.
            finished.append(event)
        else:
            event.callbacks.append(finished.append)
        while not finished:
            if not self._heap:
                raise EmptySchedule(
                    "event {!r} can never fire: schedule is empty".format(event)
                )
            self.step()
        if event._ok:
            return event._value
        # Mark as handled for Process events so defused errors do not
        # re-raise; then surface the failure to the caller.
        raise event._value
