"""Exception types used by the simulation kernel."""


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class StopProcess(SimulationError):
    """Raised inside a process to terminate it early with a value.

    ``return value`` inside the generator is the idiomatic way to finish
    a process; ``raise StopProcess(value)`` exists for helper functions
    that need to end the *calling* process without returning through
    every stack frame.
    """

    def __init__(self, value=None):
        super().__init__(value)
        self.value = value


class Interrupt(SimulationError):
    """Thrown into a process that another process interrupted.

    The interrupted process may catch the interrupt and continue; the
    ``cause`` attribute carries an arbitrary object describing why the
    interrupt happened (e.g. a failure notice).
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


class EventAlreadyTriggered(SimulationError):
    """An event was succeeded or failed more than once."""
