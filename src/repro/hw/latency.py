"""Calibration constants for every simulated device.

All values live in one place so an experiment can swap the whole table
(e.g. "what if the network were 100 Gbps?") without touching models.
Times are **seconds**, sizes **bytes**, rates **bytes/second**.

Sources: the paper's Section VI hierarchy; FDR 4x InfiniBand (56 Gbps)
from Section IV-G; commodity 7.2K RPM SATA drives and E5-2650v2 hosts
from Section V's testbed description; LZO-class software compression
throughput for the zswap/FastSwap compression models.
"""

from dataclasses import dataclass, field, replace

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB
TiB = 1024 * GiB

#: Default page size used throughout (Linux base page).
PAGE_SIZE = 4 * KiB


@dataclass(frozen=True)
class DramSpec:
    """Local DRAM: what a resident page access and a memory copy cost."""

    #: Single cache-missing access (row activate + CAS), seconds.
    access_time: float = 100e-9
    #: Sustained copy bandwidth of one channel, bytes/second.
    copy_bandwidth: float = 10.0 * GiB
    #: Number of independently schedulable channels per node.
    channels: int = 4


@dataclass(frozen=True)
class SharedMemorySpec:
    """Node-coordinated shared memory (paper Section III).

    Accessed "at the DRAM speed" via mapped shared segments; we charge a
    small per-operation software overhead (segment lookup + mapping) on
    top of the DRAM copy itself.
    """

    #: Software overhead per get/put (hash lookup, bookkeeping), seconds.
    op_overhead: float = 0.3e-6
    #: Copy bandwidth through the shared segment, bytes/second.
    copy_bandwidth: float = 10.0 * GiB


@dataclass(frozen=True)
class NetworkSpec:
    """An RDMA-capable interconnect (defaults: FDR 4x InfiniBand)."""

    #: One-sided verb base latency (post to completion, small message).
    rdma_latency: float = 1.5e-6
    #: Two-sided send/recv adds a receiver-side posting cost.
    send_recv_extra: float = 1.0e-6
    #: Payload bandwidth after encoding/protocol overhead, bytes/second.
    bandwidth: float = 6.0 * GiB
    #: Per-message CPU/doorbell cost on the initiator, seconds.
    per_message_overhead: float = 0.7e-6
    #: Cost to register (pin + map) one memory region, seconds.
    registration_time: float = 60e-6
    #: TCP/IP fallback path: base latency and bandwidth.
    tcp_latency: float = 30e-6
    tcp_bandwidth: float = 1.2 * GiB


@dataclass(frozen=True)
class DiskSpec:
    """A rotational or solid-state block device."""

    #: Fixed per-request access latency (seek + rotation for HDD).
    access_time: float = 8.0e-3
    #: Streaming transfer rate, bytes/second.
    bandwidth: float = 150.0 * MiB
    #: Access latency when the request is sequential to the previous one.
    sequential_access_time: float = 0.15e-3
    #: Device-internal queue width (1 for HDD head; >1 for SSD parallelism).
    queue_depth: int = 1


@dataclass(frozen=True)
class NvmSpec:
    """Byte-addressable non-volatile memory (PCM / 3D-XPoint class)."""

    read_latency: float = 300e-9
    write_latency: float = 1.0e-6
    bandwidth: float = 2.0 * GiB
    queue_depth: int = 4


@dataclass(frozen=True)
class CompressionSpec:
    """LZO-class software page compression (zswap / FastSwap §IV-H)."""

    #: Compression throughput per core, bytes/second (uncompressed side).
    compress_bandwidth: float = 2.5 * GiB
    #: Decompression throughput per core, bytes/second.
    decompress_bandwidth: float = 4.0 * GiB
    #: Fixed per-page software cost (allocation, tree insert), seconds.
    per_page_overhead: float = 0.4e-6


@dataclass(frozen=True)
class CpuSpec:
    """Software-path costs charged by the paging and caching models."""

    #: Kernel page-fault handling cost (trap, VMA walk, map), seconds.
    page_fault_overhead: float = 2.0e-6
    #: Generic block-layer per-request overhead (bio submit/complete).
    block_layer_overhead: float = 12.0e-6
    #: Context switch / wakeup charged when an I/O blocks the faulting task.
    context_switch: float = 1.5e-6


@dataclass(frozen=True)
class Calibration:
    """The full device calibration used by a simulation run."""

    dram: DramSpec = field(default_factory=DramSpec)
    shared_memory: SharedMemorySpec = field(default_factory=SharedMemorySpec)
    network: NetworkSpec = field(default_factory=NetworkSpec)
    hdd: DiskSpec = field(default_factory=DiskSpec)
    ssd: DiskSpec = field(
        default_factory=lambda: DiskSpec(
            access_time=90e-6,
            bandwidth=500.0 * MiB,
            sequential_access_time=60e-6,
            queue_depth=8,
        )
    )
    nvm: NvmSpec = field(default_factory=NvmSpec)
    compression: CompressionSpec = field(default_factory=CompressionSpec)
    cpu: CpuSpec = field(default_factory=CpuSpec)
    page_size: int = PAGE_SIZE

    def with_overrides(self, **kwargs):
        """Return a copy with top-level fields replaced."""
        return replace(self, **kwargs)


#: The calibration every experiment uses unless it overrides something.
DEFAULT_CALIBRATION = Calibration()
