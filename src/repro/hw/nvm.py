"""Byte-addressable non-volatile memory tier.

The paper's Section VI points at PCM / 3D-XPoint class devices as a
tier between DRAM and SSD.  :class:`NvmDevice` models asymmetric
read/write latencies and limited bandwidth so experiments can slot an
NVM tier into the swap hierarchy (see the NVM-tier ablation benchmark).
"""

from repro.hw.latency import NvmSpec
from repro.sim import Resource


class NvmDevice:
    """A byte-addressable persistent-memory device."""

    def __init__(self, env, capacity_bytes, spec=None, name="nvm"):
        self.env = env
        self.capacity_bytes = int(capacity_bytes)
        self.spec = spec or NvmSpec()
        self.name = name
        self.used_bytes = 0
        self._queue = Resource(env, capacity=self.spec.queue_depth, name=name + ":q")
        self.reads = 0
        self.writes = 0

    @property
    def free_bytes(self):
        return self.capacity_bytes - self.used_bytes

    def reserve(self, nbytes):
        """Claim ``nbytes`` of capacity; returns False if it does not fit."""
        if nbytes > self.free_bytes:
            return False
        self.used_bytes += nbytes
        return True

    def free(self, nbytes):
        """Release ``nbytes`` of capacity."""
        if nbytes > self.used_bytes:
            raise ValueError("freeing more than reserved")
        self.used_bytes -= nbytes

    def read_time(self, nbytes):
        return self.spec.read_latency + nbytes / self.spec.bandwidth

    def write_time(self, nbytes):
        return self.spec.write_latency + nbytes / self.spec.bandwidth

    def read(self, nbytes):
        """Generator: timed read of ``nbytes``."""
        request = self._queue.request()
        yield request
        try:
            yield self.env.timeout(self.read_time(nbytes))
            self.reads += 1
        finally:
            self._queue.release(request)

    def write(self, nbytes):
        """Generator: timed write of ``nbytes``."""
        request = self._queue.request()
        yield request
        try:
            yield self.env.timeout(self.write_time(nbytes))
            self.writes += 1
        finally:
            self._queue.release(request)
