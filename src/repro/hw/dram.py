"""DRAM module model: capacity accounting plus timed copies.

A :class:`DramModule` plays two roles:

* capacity bookkeeping for the node (how many bytes are allocated to
  virtual servers, shared pools and RDMA buffer pools), and
* a timing model for memory copies, with the node's memory channels as
  a contended resource.
"""

from repro.hw.latency import DramSpec
from repro.sim import Resource


class OutOfMemory(Exception):
    """An allocation exceeded the module's remaining capacity."""


class DramModule:
    """A node's physical DRAM.

    Parameters
    ----------
    env:
        Simulation environment.
    capacity_bytes:
        Installed physical memory.
    spec:
        Timing parameters (:class:`~repro.hw.latency.DramSpec`).
    name:
        Label used in stats and errors.
    """

    def __init__(self, env, capacity_bytes, spec=None, name="dram"):
        self.env = env
        self.capacity_bytes = int(capacity_bytes)
        self.spec = spec or DramSpec()
        self.name = name
        self.allocated_bytes = 0
        self._channels = Resource(
            env, capacity=self.spec.channels, name=name + ":channels"
        )
        self.bytes_copied = 0

    # -- capacity ----------------------------------------------------------

    @property
    def free_bytes(self):
        return self.capacity_bytes - self.allocated_bytes

    def allocate(self, nbytes):
        """Reserve ``nbytes``; raises :class:`OutOfMemory` if impossible."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if nbytes > self.free_bytes:
            raise OutOfMemory(
                "{}: requested {} bytes, {} free".format(
                    self.name, nbytes, self.free_bytes
                )
            )
        self.allocated_bytes += nbytes

    def release(self, nbytes):
        """Return ``nbytes`` previously allocated."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if nbytes > self.allocated_bytes:
            raise ValueError(
                "{}: releasing {} bytes but only {} allocated".format(
                    self.name, nbytes, self.allocated_bytes
                )
            )
        self.allocated_bytes -= nbytes

    # -- timing ------------------------------------------------------------

    def copy_time(self, nbytes):
        """Uncontended time to copy ``nbytes`` through one channel."""
        return self.spec.access_time + nbytes / self.spec.copy_bandwidth

    def copy(self, nbytes):
        """Generator: perform a timed copy through a memory channel.

        Use as ``yield from dram.copy(nbytes)`` inside a process.
        """
        request = self._channels.request()
        yield request
        try:
            yield self.env.timeout(self.copy_time(nbytes))
            self.bytes_copied += nbytes
        finally:
            self._channels.release(request)
