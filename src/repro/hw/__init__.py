"""Hardware device models.

The paper's Section VI gives the memory/storage hierarchy the whole
argument rests on: SRAM (1–30 cycles), DRAM (~100–300 cycles), SSD
(25k–2M cycles), HDD (>5M cycles), with RDMA networks falling between
DRAM and SSD.  This package turns that hierarchy into explicit,
configurable device models with queueing:

* :mod:`repro.hw.latency` — the calibration table (single source of
  truth for every latency/bandwidth constant used in the simulation);
* :mod:`repro.hw.dram` — DRAM modules with channel contention;
* :mod:`repro.hw.disk` — HDD (seek + rotation + streaming) and SSD
  models behind a request queue;
* :mod:`repro.hw.nvm` — an NVM tier (PCM / 3D-XPoint class) for the
  Section VI "emerging technologies" discussion.
"""

from repro.hw.disk import DiskStats, Hdd, Ssd
from repro.hw.dram import DramModule
from repro.hw.latency import (
    DEFAULT_CALIBRATION,
    Calibration,
    CompressionSpec,
    DiskSpec,
    DramSpec,
    NetworkSpec,
    NvmSpec,
)
from repro.hw.nvm import NvmDevice

__all__ = [
    "Calibration",
    "CompressionSpec",
    "DEFAULT_CALIBRATION",
    "DiskSpec",
    "DiskStats",
    "DramModule",
    "DramSpec",
    "Hdd",
    "NetworkSpec",
    "NvmDevice",
    "NvmSpec",
    "Ssd",
]
