"""Block-device models: rotational HDD and flash SSD.

Both devices serve requests through an internal queue (``queue_depth``
concurrent requests); an HDD additionally models head position so that
sequential requests skip the seek penalty — this is what makes batched
swap-out measurably cheaper than random single-page swap-out on disk.
"""

from dataclasses import dataclass

from repro.hw.latency import DiskSpec
from repro.sim import PriorityResource


@dataclass
class DiskStats:
    """Aggregate counters for one block device."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    busy_time: float = 0.0
    sequential_hits: int = 0

    def snapshot(self):
        """A plain-dict copy (for reports)."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "busy_time": self.busy_time,
            "sequential_hits": self.sequential_hits,
        }


class BlockDevice:
    """Common machinery for queued block devices."""

    #: Sync reads jump ahead of background writeback, like the kernel's
    #: deadline/CFQ schedulers.
    READ_PRIORITY = 0
    WRITE_PRIORITY = 1

    def __init__(self, env, spec, name):
        self.env = env
        self.spec = spec
        self.name = name
        self.stats = DiskStats()
        self._queue = PriorityResource(
            env, capacity=spec.queue_depth, name=name + ":q"
        )
        self._head_offset = None  # byte offset after the previous request

    def _access_time(self, offset):
        """Seek/access cost for a request starting at byte ``offset``."""
        if self._head_offset is not None and offset == self._head_offset:
            self.stats.sequential_hits += 1
            return self.spec.sequential_access_time
        return self.spec.access_time

    def _service(self, offset, nbytes, is_write):
        priority = self.WRITE_PRIORITY if is_write else self.READ_PRIORITY
        request = self._queue.request(priority=priority)
        yield request
        try:
            duration = self._access_time(offset) + nbytes / self.spec.bandwidth
            self._head_offset = offset + nbytes
            yield self.env.timeout(duration)
            self.stats.busy_time += duration
            if is_write:
                self.stats.writes += 1
                self.stats.bytes_written += nbytes
            else:
                self.stats.reads += 1
                self.stats.bytes_read += nbytes
        finally:
            self._queue.release(request)

    def read(self, offset, nbytes):
        """Generator: timed read of ``nbytes`` at byte ``offset``."""
        yield from self._service(offset, nbytes, is_write=False)

    def write(self, offset, nbytes):
        """Generator: timed write of ``nbytes`` at byte ``offset``."""
        yield from self._service(offset, nbytes, is_write=True)

    def service_time(self, nbytes, sequential=False):
        """Uncontended service time estimate (used by planners, not I/O)."""
        access = (
            self.spec.sequential_access_time if sequential else self.spec.access_time
        )
        return access + nbytes / self.spec.bandwidth


class Hdd(BlockDevice):
    """A 7.2K RPM SATA drive (the paper testbed's swap device)."""

    def __init__(self, env, spec=None, name="hdd"):
        super().__init__(env, spec or DiskSpec(), name)


class Ssd(BlockDevice):
    """A SATA/NVMe-class flash device (alternative swap tier)."""

    DEFAULT_SPEC = DiskSpec(
        access_time=90e-6,
        bandwidth=500 * 1024 * 1024,
        sequential_access_time=60e-6,
        queue_depth=8,
    )

    def __init__(self, env, spec=None, name="ssd"):
        super().__init__(env, spec or self.DEFAULT_SPEC, name)
