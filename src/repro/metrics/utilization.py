"""Cluster memory-utilization monitoring.

The paper's motivation is an accounting argument — "average of 30%
idle memory during 70% of the running time", "of the 80% allocated,
only 50% used".  This monitor samples the simulated cluster's pools on
a fixed period so experiments can report the same quantities:
utilization of the donated node pools, of the cluster receive pools,
and how much idle memory disaggregation actually recovered.
"""

from repro.metrics.stats import TimeSeries


class UtilizationSample:
    """One snapshot of cluster memory state."""

    __slots__ = ("time", "pool_used", "pool_capacity", "receive_used",
                 "receive_capacity")

    def __init__(self, time, pool_used, pool_capacity, receive_used,
                 receive_capacity):
        self.time = time
        self.pool_used = pool_used
        self.pool_capacity = pool_capacity
        self.receive_used = receive_used
        self.receive_capacity = receive_capacity

    @property
    def pool_utilization(self):
        if self.pool_capacity == 0:
            return 0.0
        return self.pool_used / self.pool_capacity

    @property
    def receive_utilization(self):
        if self.receive_capacity == 0:
            return 0.0
        return self.receive_used / self.receive_capacity


class ClusterUtilizationMonitor:
    """Samples pool usage across a cluster on a fixed period.

    ``nodes`` restricts sampling to a subset of the cluster (e.g. the
    nodes actually *participating* in an experiment).  Averaging over
    the full cluster dilutes utilization with pools no workload can
    ever touch — tier-1 puts land in the local node's shared pool, so
    with one tenant on a four-node cluster three donated pools sit
    idle by construction and the cluster-wide mean understates the
    participating pools' utilization by 4x.
    """

    def __init__(self, cluster, period=0.05, nodes=None):
        if period <= 0:
            raise ValueError("period must be positive")
        self.cluster = cluster
        self.nodes = list(nodes) if nodes is not None else None
        self.period = period
        self.samples = []
        self.pool_series = TimeSeries("pool-utilization")
        self.receive_series = TimeSeries("receive-utilization")
        self._process = None

    def start(self):
        """Spawn the sampling process (runs until the simulation ends)."""
        self._process = self.cluster.env.process(
            self._sample_loop(), name="utilization-monitor"
        )
        return self._process

    def sample_now(self):
        """Take one snapshot immediately."""
        nodes = self.nodes if self.nodes is not None else self.cluster.nodes()
        sample = UtilizationSample(
            self.cluster.env.now,
            sum(n.shared_pool.used_bytes for n in nodes),
            sum(n.shared_pool.capacity_bytes for n in nodes),
            sum(n.receive_pool.used_bytes for n in nodes),
            sum(n.receive_pool.capacity_bytes for n in nodes),
        )
        self.samples.append(sample)
        self.pool_series.record(sample.time, sample.pool_utilization)
        self.receive_series.record(sample.time, sample.receive_utilization)
        return sample

    def _sample_loop(self):
        while True:
            yield self.cluster.env.timeout(self.period)
            self.sample_now()

    # -- summaries ---------------------------------------------------------

    def mean_pool_utilization(self):
        if not self.samples:
            return 0.0
        return sum(s.pool_utilization for s in self.samples) / len(self.samples)

    def peak_pool_utilization(self):
        if not self.samples:
            return 0.0
        return max(s.pool_utilization for s in self.samples)

    def summary(self):
        return {
            "samples": len(self.samples),
            "mean_pool_utilization": self.mean_pool_utilization(),
            "peak_pool_utilization": self.peak_pool_utilization(),
            "mean_receive_utilization": (
                sum(s.receive_utilization for s in self.samples)
                / len(self.samples) if self.samples else 0.0
            ),
        }
