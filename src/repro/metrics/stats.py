"""Light statistics primitives for simulation instrumentation."""

import math


class Counter:
    """A named monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def increment(self, amount=1):
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def __repr__(self):
        return "Counter({!r}, {})".format(self.name, self.value)


class RunningStats:
    """Streaming mean/variance/min/max (Welford's algorithm)."""

    __slots__ = ("count", "_mean", "_m2", "minimum", "maximum")

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def record(self, value):
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self):
        return self._mean if self.count else 0.0

    @property
    def variance(self):
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stdev(self):
        return math.sqrt(self.variance)

    def snapshot(self):
        return {
            "count": self.count,
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
        }


class Histogram:
    """Fixed-bucket histogram with percentile estimation.

    Buckets grow geometrically from ``least`` — appropriate for latency
    measurements spanning nanoseconds to seconds.
    """

    def __init__(self, least=1e-7, factor=2.0, buckets=40):
        if least <= 0 or factor <= 1 or buckets < 1:
            raise ValueError("invalid histogram shape")
        self.bounds = [least * (factor ** i) for i in range(buckets)]
        self.counts = [0] * (buckets + 1)
        self.total = 0

    def record(self, value):
        self.total += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def percentile(self, fraction):
        """Upper bound of the bucket containing the requested quantile."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if self.total == 0:
            return 0.0
        target = fraction * self.total
        seen = 0
        for i, count in enumerate(self.counts):
            seen += count
            if seen >= target:
                return self.bounds[min(i, len(self.bounds) - 1)]
        return self.bounds[-1]


class TimeSeries:
    """(time, value) samples with simple window aggregation."""

    def __init__(self, name="series"):
        self.name = name
        self.samples = []

    def record(self, time, value):
        self.samples.append((time, value))

    def window_means(self, window):
        """Collapse samples into fixed windows; returns (end, mean) pairs."""
        if window <= 0:
            raise ValueError("window must be positive")
        if not self.samples:
            return []
        result = []
        bucket = []
        edge = self.samples[0][0] + window
        for time, value in self.samples:
            while time >= edge:
                if bucket:
                    result.append((edge, sum(bucket) / len(bucket)))
                    bucket = []
                edge += window
            bucket.append(value)
        if bucket:
            result.append((edge, sum(bucket) / len(bucket)))
        return result
