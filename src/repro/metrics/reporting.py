"""Plain-text rendering of experiment results."""


def format_table(rows, columns=None, title=None, float_format="{:.4g}"):
    """Render dict rows as an aligned text table.

    ``columns`` defaults to the keys of the first row, in order.
    """
    if not rows:
        return (title + "\n(empty)") if title else "(empty)"
    if columns is None:
        columns = list(rows[0].keys())

    def cell(value):
        if value is None:
            return ""
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[cell(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), max(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for line in rendered:
        lines.append("  ".join(v.ljust(w) for v, w in zip(line, widths)))
    return "\n".join(lines)


def format_tier_breakdown(result, float_format="{:.4g}"):
    """Render a run result's per-tier cascade breakdown as a table.

    ``result`` is any run result carrying ``tier_stats`` rows (from
    :meth:`~repro.tiers.cascade.TierCascade.tier_breakdown`) and a
    ``tier_stack`` description; returns ``""`` when the backend exposed
    no tiers.
    """
    rows = getattr(result, "tier_stats", None)
    if not rows:
        return ""
    title = "{} tiers: {}".format(result.backend, result.tier_stack)
    return format_table(rows, title=title, float_format=float_format)


def format_series(series, title=None, x_label="t", y_label="value",
                  float_format="{:.4g}"):
    """Render (x, y) pairs as two aligned columns."""
    rows = [
        {x_label: x, y_label: y}
        for x, y in series
    ]
    return format_table(rows, columns=[x_label, y_label], title=title,
                        float_format=float_format)
