"""Metrics for the memory-balancing control plane (``repro.balance``).

The balancer's health is an accounting question — how many plans ran,
how many migrations completed versus aborted, how many bytes moved, how
long planning+execution takes, and above all whether the cluster's
*imbalance* actually shrinks.  Imbalance is measured as the coefficient
of variation (population stdev / mean) of per-node receive-pool
utilization, the standard dimensionless skew measure: 0 means perfectly
even, and it is invariant under scaling the workload up or down.
"""

import math

from repro.metrics.stats import RunningStats, TimeSeries


def coefficient_of_variation(values):
    """Population CoV of ``values``; 0.0 for empty or all-zero input."""
    values = list(values)
    if not values:
        return 0.0
    mean = sum(values) / len(values)
    if mean == 0:
        return 0.0
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return math.sqrt(variance) / mean


class BalanceMetrics:
    """Counters, timings and the imbalance time series of one balancer."""

    def __init__(self):
        self.epochs = 0
        self.plans_built = 0
        self.empty_plans = 0
        self.reports_received = 0
        self.reports_lost = 0
        self.migrations_started = 0
        self.migrations_completed = 0
        self.migrations_aborted = 0
        self.moved_bytes = 0
        #: Bytes the leader *planned* to move (sum of move budgets).
        #: ``moved_bytes / planned_bytes`` is the harvest yield; the
        #: shortfall is reserve-refused aborts on fragmented receivers.
        self.planned_bytes = 0
        self.slabs_transferred = 0
        self.slabs_shrunk = 0
        self.slabs_grown = 0
        #: Wall-clock (simulated) seconds from plan start to last order done.
        self.plan_latency = RunningStats()
        #: (time, CoV of per-node receive utilization), one row per epoch.
        self.cov_series = TimeSeries("imbalance-cov")

    # -- recording -----------------------------------------------------------

    def record_cov(self, time, value):
        self.cov_series.record(time, value)

    # -- summaries -----------------------------------------------------------

    def cov_values(self):
        return [value for _time, value in self.cov_series.samples]

    def initial_cov(self):
        samples = self.cov_series.samples
        return samples[0][1] if samples else 0.0

    def final_cov(self):
        samples = self.cov_series.samples
        return samples[-1][1] if samples else 0.0

    def mean_cov(self):
        values = self.cov_values()
        return sum(values) / len(values) if values else 0.0

    def convergence_time(self, threshold):
        """When the imbalance CoV dropped to ``threshold`` *for good*.

        The earliest sample time after which every later sample also
        sits at or below the threshold — a series that starts balanced
        (empty cluster), spikes under load and is then balanced back
        down converges when it re-crosses the threshold, not at its
        trivially balanced start.  ``None`` when the series is empty or
        ends above the threshold.
        """
        converged = None
        for time, value in self.cov_series.samples:
            if value > threshold:
                converged = None
            elif converged is None:
                converged = time
        return converged

    def harvest_yield(self):
        """Fraction of planned bytes that actually moved (1.0 if none
        were planned)."""
        if self.planned_bytes == 0:
            return 1.0
        return self.moved_bytes / self.planned_bytes

    def snapshot(self):
        return {
            "epochs": self.epochs,
            "plans_built": self.plans_built,
            "empty_plans": self.empty_plans,
            "reports_received": self.reports_received,
            "reports_lost": self.reports_lost,
            "migrations_started": self.migrations_started,
            "migrations_completed": self.migrations_completed,
            "migrations_aborted": self.migrations_aborted,
            "moved_bytes": self.moved_bytes,
            "planned_bytes": self.planned_bytes,
            "harvest_yield": self.harvest_yield(),
            "slabs_transferred": self.slabs_transferred,
            "slabs_shrunk": self.slabs_shrunk,
            "slabs_grown": self.slabs_grown,
            "plan_latency": self.plan_latency.snapshot(),
            "cov_initial": self.initial_cov(),
            "cov_final": self.final_cov(),
            "cov_mean": self.mean_cov(),
        }
