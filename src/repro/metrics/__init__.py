"""Metrics and reporting utilities.

* :mod:`repro.metrics.stats` — counters, running statistics, histograms
  and time series used by long-running simulations;
* :mod:`repro.metrics.reporting` — plain-text tables and series
  renderers so every experiment prints the same rows the paper's
  figures plot;
* :mod:`repro.metrics.recovery` — per-tier recovery metrics
  (time-to-recover, pages lost, degraded-mode reads) for the
  resilience experiments;
* :mod:`repro.metrics.balance` — migration/plan counters and the
  imbalance coefficient-of-variation series for the memory-balancing
  control plane.
"""

from repro.metrics.balance import BalanceMetrics, coefficient_of_variation
from repro.metrics.recovery import RecoveryTracker
from repro.metrics.reporting import (
    format_series,
    format_table,
    format_tier_breakdown,
)
from repro.metrics.stats import Counter, Histogram, RunningStats, TimeSeries

__all__ = [
    "BalanceMetrics",
    "Counter",
    "Histogram",
    "coefficient_of_variation",
    "RecoveryTracker",
    "RunningStats",
    "TimeSeries",
    "format_series",
    "format_table",
    "format_tier_breakdown",
]
