"""Per-tier recovery metrics for the resilience experiments.

One :class:`RecoveryTracker` per replicated tier accumulates the three
quantities the paper's resilience discussion (Section IV-D) cares
about: how much data a failure actually loses, how fast redundancy is
restored (time-to-recover), and how often the degraded path serves
reads while it is not.
"""

from repro.metrics.stats import Counter, RunningStats


class RecoveryTracker:
    """Counters and repair timings for one replicated tier."""

    def __init__(self, clock=None):
        #: Callable returning the current simulated time (wired to
        #: ``env.now`` by the owning tier); repairs are timed with it.
        self.clock = clock or (lambda: 0.0)
        #: Pages whose every replica died before repair could run.
        self.pages_lost = Counter("pages_lost")
        #: Page copies recreated on a new holder after a failure.
        self.pages_re_replicated = Counter("pages_re_replicated")
        #: Reads served from the degraded path (disk backup) because no
        #: live replica could.
        self.degraded_reads = Counter("degraded_reads")
        #: Failures observed (repairs started).
        self.failures_seen = Counter("failures_seen")
        #: Recoveries observed (nodes re-admitted as replica holders).
        self.nodes_recovered = Counter("nodes_recovered")
        #: Wall-clock (simulated) time from failure to restored
        #: redundancy, one sample per completed repair.
        self.repair_time = RunningStats()
        self._open_repairs = {}

    # -- repair timing -------------------------------------------------------

    def begin_repair(self, node_id):
        """A failure of ``node_id`` was detected; repair starts now."""
        self.failures_seen.increment()
        self._open_repairs[node_id] = self.clock()

    def complete_repair(self, node_id):
        """Redundancy for ``node_id``'s pages is restored (or given up)."""
        started = self._open_repairs.pop(node_id, None)
        if started is not None:
            self.repair_time.record(self.clock() - started)

    @property
    def open_repairs(self):
        return len(self._open_repairs)

    # -- reporting -----------------------------------------------------------

    def snapshot(self):
        repair = self.repair_time.snapshot()
        return {
            "pages_lost": self.pages_lost.value,
            "pages_re_replicated": self.pages_re_replicated.value,
            "degraded_reads": self.degraded_reads.value,
            "failures_seen": self.failures_seen.value,
            "nodes_recovered": self.nodes_recovered.value,
            "repairs_completed": repair["count"],
            "repair_mean_s": repair["mean"] if repair["count"] else None,
            "repair_max_s": repair["max"],
        }
