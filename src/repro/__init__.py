"""repro — a simulation-based reproduction of *Memory Disaggregation:
Research Problems and Opportunities* (Liu et al., ICDCS 2019).

The package builds, in pure Python, every system the paper describes or
evaluates:

* a discrete-event simulation kernel (:mod:`repro.sim`),
* hardware models for DRAM, SSD/HDD and NVM tiers (:mod:`repro.hw`),
* an RDMA fabric with registration, one-sided verbs and failure
  injection (:mod:`repro.net`),
* the memory substrate — pages, slabs, shared pools, buffer pools and a
  multi-granularity compression model (:mod:`repro.mem`),
* the paper's disaggregated memory architecture — LDMC/LDMS/RDMC/RDMS
  agents, node manager, memory map, placement, replication, groups and
  leader election (:mod:`repro.core`),
* the evaluated swapping systems — Linux disk swap, zswap, NBDX,
  Infiniswap and FastSwap (:mod:`repro.swap`),
* the evaluated RDD caching systems — vanilla Spark and DAHI
  (:mod:`repro.cache`),
* the ten workloads of the paper's Table 1 (:mod:`repro.workloads`),
* metrics and the per-figure experiment harness
  (:mod:`repro.metrics`, :mod:`repro.experiments`).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
