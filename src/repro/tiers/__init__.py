"""Composable memory tiers: the unifying abstraction of the paper.

Every disaggregated-memory design in the paper is a choice of *which
tier serves a page* — local DRAM, node shared pool, cluster remote
memory over RDMA, NVM, SSD, disk — plus policies for placement,
compression and failure.  This package factors those choices out of
the swap backends:

* :class:`~repro.tiers.base.Tier` — the per-level protocol (put/get
  generators charging simulated time, per-tier stats, spill/failover
  hooks);
* :class:`~repro.tiers.cascade.TierCascade` — a
  :class:`~repro.swap.base.SwapBackend` assembled from an ordered tier
  stack with spill-on-full, demotion and pluggable placement /
  compression / failover policies;
* concrete tiers wrapping the existing primitives: shared pool,
  batched RDMA remote memory (+PBS), kernel disk swap, batch spill
  (SSD/HDD), NVM, and a zswap-style compressed pool.

Every backend in :mod:`repro.swap` is a declarative cascade built from
these parts (see :func:`repro.swap.factory.make_swap_backend`).
"""

from repro.tiers.base import DisplacedPage, Tier, TierFull, TierStats
from repro.tiers.cascade import (
    AdaptivePlacement,
    CascadeFull,
    DegradeToDisk,
    EvictAndRebuild,
    FailFastFailover,
    FailoverPolicy,
    FailoverToReplica,
    FixedRatioPlacement,
    SpillDownFailover,
    TierCascade,
)
from repro.tiers.compressed import CompressedPoolTier, CompressionLayer
from repro.tiers.disk import BatchSpillTier, DiskSwapTier
from repro.tiers.erasure import ErasureCodedRemoteTier, StripeCodec, StripeMap
from repro.tiers.nvm import NvmTier
from repro.tiers.pbs import PbsController
from repro.tiers.remote import RemoteArea, RemoteRdmaTier
from repro.tiers.remote_block import DiskBackupTier, RemoteBlockTier
from repro.tiers.replicated import ReplicaMap, ReplicatedRemoteTier
from repro.tiers.shared_pool import SharedPoolTier

__all__ = [
    "AdaptivePlacement",
    "BatchSpillTier",
    "CascadeFull",
    "CompressedPoolTier",
    "CompressionLayer",
    "DegradeToDisk",
    "DiskBackupTier",
    "DiskSwapTier",
    "DisplacedPage",
    "ErasureCodedRemoteTier",
    "EvictAndRebuild",
    "FailFastFailover",
    "FailoverPolicy",
    "FailoverToReplica",
    "FixedRatioPlacement",
    "NvmTier",
    "PbsController",
    "RemoteArea",
    "RemoteBlockTier",
    "RemoteRdmaTier",
    "ReplicaMap",
    "ReplicatedRemoteTier",
    "SharedPoolTier",
    "SpillDownFailover",
    "StripeCodec",
    "StripeMap",
    "Tier",
    "TierCascade",
    "TierFull",
    "TierStats",
]
