"""Proactive batch swap-in (PBS) shared across cascade tiers.

One fault fetches a whole window of neighbouring swapped pages in the
same operation (Figures 6 and 9).  The controller owns the adaptive
window: it scales with observed prefetch effectiveness like the
kernel's VMA-based swap readahead — sequential streams keep the full
window, random access shrinks it to a probe.

Any tier whose fetch path can cover several pages at once (shared pool,
batched RDMA) asks the controller for *neighbours*: adjacent page ids
resident in the same tier (and, where it matters, co-located on the
same target so one one-sided read covers them).
"""


class PbsController:
    """Adaptive prefetch-window state shared by a cascade's tiers."""

    #: Issued prefetch pages per feedback epoch.
    EPOCH_PAGES = 512
    #: Below this hit rate the window halves (prefetches clearly wasted).
    SHRINK_BELOW = 0.15
    #: Above this hit rate the window doubles (prefetches paying off).
    GROW_ABOVE = 0.35

    def __init__(self, window, enabled=True):
        #: Hard cap: one fault plus (window - 1) neighbours fill a batch.
        self.cap = max(1, window - 1)
        self.window = self.cap
        self.enabled = enabled
        self.cascade = None
        #: Total pages prefetched on behalf of faults (reporting).
        self.pages = 0
        self._epoch_issued = 0
        self._epoch_base_hits = 0

    def attach(self, cascade):
        self.cascade = cascade

    def neighbours(self, page_id, label, match=None):
        """Adjacent swapped pages in the same tier (PBS batch mates).

        Returns ``[(page, meta)]`` for up to ``window`` pages directly
        following ``page_id`` whose location label equals ``label`` and
        whose meta satisfies ``match`` (e.g. co-location on one remote
        target).  The scan stops at the first mismatch — PBS only ever
        extends a contiguous run.
        """
        neighbours = []
        if not self.enabled or self.cascade.page_table is None:
            return neighbours
        for offset in range(1, self.window + 1):
            neighbour_id = page_id + offset
            found_label, meta = self.cascade.location(neighbour_id)
            if found_label != label:
                break
            if match is not None and not match(meta):
                break
            neighbour = self.cascade.page_table.get(neighbour_id)
            if neighbour is None:
                break
            neighbours.append((neighbour, meta))
        return neighbours

    def note(self, issued):
        """Account ``issued`` prefetched pages and feed the window."""
        self.pages += issued
        self.feedback(issued)

    def feedback(self, issued):
        """Scale the window by observed prefetch effectiveness."""
        stats = self.cascade._mmu_stats
        if stats is None or issued == 0:
            return
        self._epoch_issued += issued
        if self._epoch_issued < self.EPOCH_PAGES:
            return
        # Hits lag issuance by up to a buffer's worth of accesses, so
        # the thresholds are deliberately forgiving: shrink only when
        # prefetches are clearly wasted, grow as soon as they pay.
        hits = stats.prefetch_hits - self._epoch_base_hits
        effectiveness = hits / self._epoch_issued
        if effectiveness < self.SHRINK_BELOW:
            self.window = max(1, self.window // 2)
        elif effectiveness > self.GROW_ABOVE:
            self.window = min(self.cap, self.window * 2)
        self._epoch_base_hits = stats.prefetch_hits
        self._epoch_issued = 0
