"""The node-coordinated shared memory pool as a cascade tier."""

from repro.mem.shared_pool import PoolFull
from repro.tiers.base import DisplacedPage, Tier, TierFull


class SharedPoolTier(Tier):
    """Pages parked in the node's shared DRAM pool (Section IV-B).

    The fastest place an evicted page can live: a shared-memory copy on
    put/get, no network, no block layer.  Under a fixed-ratio placement
    the tier keeps hot pages by displacing its LRU entry down the
    cascade and retrying once; under adaptive placement a full pool
    simply spills the incoming page.
    """

    name = "sm"

    def __init__(self, node, key_tag="fswap"):
        super().__init__()
        self.node = node
        self.env = node.env
        self.pool = node.shared_pool
        self.key_tag = key_tag

    def _key(self, page_id):
        return (self.key_tag, self.node.node_id, page_id)

    def put(self, page, nbytes):
        key = self._key(page.page_id)
        try:
            yield from self.pool.put(key, nbytes)
        except PoolFull:
            if not self.cascade.placement.displace_on_full:
                raise TierFull("shared pool full") from None
            # Keep hot pages in SM: displace the LRU entry down the
            # cascade, then retry once.
            victim = self.pool.evict_lru()
            if victim is None:
                raise TierFull("shared pool full, nothing to displace") \
                    from None
            victim_key, victim_bytes = victim
            victim_page = DisplacedPage(victim_key[2])
            yield from self.cascade.place(
                victim_page, victim_bytes, self.index + 1
            )
            try:
                yield from self.pool.put(key, nbytes)
            except PoolFull:
                raise TierFull("shared pool still full") from None
        self.cascade.record(page.page_id, self.name, nbytes)
        self.stats.puts.increment()
        self.stats.bytes_in.increment(nbytes)

    def get(self, page, label, meta):
        batch = [(page, meta)]
        pbs = self.cascade.pbs
        if pbs is not None:
            batch.extend(pbs.neighbours(page.page_id, self.name))
        for fetched, stored in batch:
            yield from self.pool.get(self._key(fetched.page_id))
            yield from self.cascade.decompress(fetched)
            self.stats.bytes_out.increment(stored)
        if pbs is not None:
            pbs.note(len(batch) - 1)
        return [fetched for fetched, _stored in batch[1:]]

    def forget(self, page_id, label, meta):
        self.pool.remove(self._key(page_id))
