"""The memory-tier protocol: what one level of a swap cascade provides.

Every disaggregated-memory design in the paper is, at bottom, a choice
of *which tier serves a page*: local DRAM, the node-coordinated shared
pool, cluster remote memory over RDMA, NVM, SSD or disk.  A
:class:`Tier` wraps one such level behind a uniform contract so a
:class:`~repro.tiers.cascade.TierCascade` can compose an ordered stack
with spill-on-full, demotion and failover — instead of every swap
backend hand-rolling its own tier ordering.

A tier *stores pages, charges simulated time, and keeps stats*; it
never touches the resident set and never decides placement order — the
cascade does.  Placement metadata lives in the cascade's page-location
map: a tier receives back, on ``get``/``forget``, exactly the
``(label, meta)`` it recorded on ``put``.
"""

from repro.hw.latency import PAGE_SIZE
from repro.metrics.stats import Counter, RunningStats


class TierFull(Exception):
    """The tier cannot take this page; the cascade should try the next."""


class TierStats:
    """Per-tier counters and latency stats for the unified registry.

    Built on :mod:`repro.metrics.stats` primitives; every cascade
    exposes one of these per tier through
    :meth:`~repro.tiers.cascade.TierCascade.tier_breakdown`, which is
    what experiment reports render.
    """

    __slots__ = (
        "tier",
        "puts",
        "gets",
        "bytes_in",
        "bytes_out",
        "spills",
        "failovers",
        "discards",
        "put_latency",
        "get_latency",
    )

    def __init__(self, tier):
        self.tier = tier
        self.puts = Counter("puts")
        self.gets = Counter("gets")
        self.bytes_in = Counter("bytes_in")
        self.bytes_out = Counter("bytes_out")
        #: Pages this tier refused (full/reject) that fell to a lower tier.
        self.spills = Counter("spills")
        #: Operations that hit the tier's failure path (dead peer, NIC error).
        self.failovers = Counter("failovers")
        self.discards = Counter("discards")
        self.put_latency = RunningStats()
        self.get_latency = RunningStats()

    def row(self):
        """One flat dict for table rendering / JSON reporting."""
        put = self.put_latency.snapshot()
        get = self.get_latency.snapshot()
        return {
            "tier": self.tier,
            "puts": self.puts.value,
            "gets": self.gets.value,
            "bytes_in": self.bytes_in.value,
            "bytes_out": self.bytes_out.value,
            "spills": self.spills.value,
            "failovers": self.failovers.value,
            "discards": self.discards.value,
            "put_mean_s": put["mean"] if put["count"] else None,
            "put_max_s": put["max"],
            "get_mean_s": get["mean"] if get["count"] else None,
            "get_max_s": get["max"],
        }


class Tier:
    """Contract one level of a swap cascade implements.

    Attributes
    ----------
    name:
        The tier's primary label, unique within its cascade.
    labels:
        Every page-location label the tier owns (a tier may track pages
        in more than one internal state, e.g. the remote tier's
        ``buffer`` vs ``remote``).
    """

    name = "abstract"

    def __init__(self):
        self.stats = TierStats(self.name)
        self.cascade = None
        self.index = None

    @property
    def labels(self):
        return (self.name,)

    def attach(self, cascade, index):
        """Wire the tier into its cascade (called by the cascade)."""
        self.cascade = cascade
        self.index = index

    # -- lifecycle -----------------------------------------------------------

    def setup(self):
        """Generator: one-time initialization (slab reservation etc.)."""
        return
        yield  # pragma: no cover

    def drain(self):
        """Generator: flush buffered writes (end-of-run barrier)."""
        return
        yield  # pragma: no cover

    # -- data path -----------------------------------------------------------

    def put(self, page, nbytes):
        """Generator: store ``page`` (``nbytes`` charged size).

        Must record the page's location via ``cascade.record`` on
        success and raise :class:`TierFull` when the tier cannot take
        the page (the cascade then tries the next tier down).
        """
        raise NotImplementedError

    def put_batch(self, batch, nbytes):
        """Generator: store a whole ``[(page, stored)]`` batch.

        The default stores pages one by one; tiers with a cheaper bulk
        path (one merged device write per batch) override this.
        """
        for page, stored in batch:
            yield from self.put(page, stored)

    def get(self, page, label, meta):
        """Generator: fetch ``page`` back; returns extra prefetched pages."""
        raise NotImplementedError

    def forget(self, page_id, label, meta):
        """Release the tier's copy of ``page_id`` (no simulated time)."""

    # -- reporting -----------------------------------------------------------

    def snapshot(self):
        """The tier's stats row for the cascade-wide breakdown."""
        return self.stats.row()


class DisplacedPage:
    """Stand-in for a page displaced from a tier whose object is gone.

    Demotions (SM LRU displacement, compressed-pool writeback) move
    pages whose :class:`~repro.mem.page.Page` object the tier never
    held — only identity and charged size survive the move.
    """

    __slots__ = ("page_id", "size", "dirty")

    def __init__(self, page_id, size=PAGE_SIZE):
        self.page_id = page_id
        self.size = size
        self.dirty = True
