"""Replicated cluster remote memory (paper Section IV-D).

"The failure of one machine can cause the failure of many others" —
the resilience answer the paper sketches (and Hydra develops) is
replication across memory servers.  :class:`ReplicatedRemoteTier`
implements it on the cascade contract:

* **write-all** — a swap-out is written to ``replication`` live peer
  areas in parallel and committed only when *every* copy lands; a
  write that cannot reach a full replica set spills down the cascade
  instead of accepting under-replication (so a page in this tier
  always starts with ``r`` holders);
* **read-one** — with ``W = r`` the read quorum is one: a fault is
  served by the first live holder, falling over to the next replica
  (per the failover policy) and only past the last to the degraded
  disk-backup path;
* **re-replication** — a crash orphans the victim's copies; a repair
  process copies each orphaned page from a surviving holder to a new
  area, and recovered nodes are re-admitted (fresh area reservation,
  with backoff) and topped up with under-replicated pages in merged
  per-source batches (one read and one write per batch, not per page).

The write path is selectable by policy (``write_protocol``):
``"write-all"`` issues one RDMA WRITE per copy — the copies run in
parallel but serialize on the sender's TX lane, so a put costs ~``r``
wire rounds; ``"one-rtt"`` is the SWARM-style single-round variant —
queue pairs are pre-connected at setup and a put is a single fabric
fan-out round (one doorbell, one ``net.send``) carrying a version tag
each target compares in place, so a stale earlier incarnation of the
page is detected and superseded with no extra round and no rollback
(a round that cannot reach every target delivers nothing and spills).

:class:`ReplicaMap` is the pure bookkeeping core (page -> holders,
holder -> pages, failure/repair transitions) — separated so the
property tests can drive it through arbitrary failure schedules
without a simulator in the loop.
"""

from repro.core.errors import ControlTimeout
from repro.hw.latency import PAGE_SIZE
from repro.metrics.recovery import RecoveryTracker
from repro.net.errors import NetworkError
from repro.net.rdma import RemoteAccessError
from repro.net.retry import RetryPolicy, retrying
from repro.tiers.base import DisplacedPage, Tier, TierFull
from repro.tiers.remote import RemoteArea, area_policy

_TRANSIENT = (NetworkError, RemoteAccessError)


class ReplicaMap:
    """Pure replica bookkeeping: which nodes hold which page.

    All mutation goes through four transitions — :meth:`place`,
    :meth:`add_holder`, :meth:`remove_page` and :meth:`drop_node` — so
    the invariant "a page is lost only when its last holder drops" is
    enforced in one small, simulator-free class.
    """

    def __init__(self, factor):
        if factor < 1:
            raise ValueError("replication factor must be >= 1")
        self.factor = factor
        self._holders = {}  # page_id -> tuple of node ids
        self._by_node = {}  # node_id -> set of page_ids

    def __len__(self):
        return len(self._holders)

    def __contains__(self, page_id):
        return page_id in self._holders

    def holders(self, page_id):
        return self._holders.get(page_id, ())

    def pages_on(self, node_id):
        return sorted(self._by_node.get(node_id, ()))

    def place(self, page_id, holders):
        """Record a fresh placement (replaces any previous holders)."""
        holders = tuple(dict.fromkeys(holders))
        if not holders:
            raise ValueError("a placement needs at least one holder")
        self.remove_page(page_id)
        self._holders[page_id] = holders
        for node_id in holders:
            self._by_node.setdefault(node_id, set()).add(page_id)

    def add_holder(self, page_id, node_id):
        """A repair copied ``page_id`` onto ``node_id``."""
        current = self._holders.get(page_id)
        if current is None or node_id in current:
            return
        self._holders[page_id] = current + (node_id,)
        self._by_node.setdefault(node_id, set()).add(page_id)

    def remove_page(self, page_id):
        """The page was discarded or moved out of the tier."""
        for node_id in self._holders.pop(page_id, ()):
            pages = self._by_node.get(node_id)
            if pages is not None:
                pages.discard(page_id)

    def drop_node(self, node_id):
        """A holder died; returns ``(orphans, lost)`` page-id lists.

        Orphans keep at least one live holder and should be
        re-replicated; lost pages had their last copy on the victim and
        leave the map entirely.
        """
        orphans, lost = [], []
        for page_id in sorted(self._by_node.pop(node_id, ())):
            remaining = tuple(
                holder for holder in self._holders[page_id] if holder != node_id
            )
            if remaining:
                self._holders[page_id] = remaining
                orphans.append(page_id)
            else:
                del self._holders[page_id]
                lost.append(page_id)
        return orphans, lost

    def under_replicated(self, factor=None):
        """Page ids currently holding fewer than ``factor`` copies."""
        factor = self.factor if factor is None else factor
        return sorted(
            page_id
            for page_id, holders in self._holders.items()
            if len(holders) < factor
        )


class ReplicatedRemoteTier(Tier):
    """Write-all / read-one replication over peer-donated slab areas."""

    name = "replicated"

    #: Per-page software cost on the remote path (work-request build +
    #: completion handling), charged once per operation.
    REMOTE_PER_PAGE_OVERHEAD = 1.2e-6

    #: Backoff applied while waiting for a recovered peer to finish
    #: re-registering its pools before re-admitting it as a target.
    READMIT_POLICY = RetryPolicy(
        max_attempts=6, base_delay=1e-4, multiplier=4.0, max_delay=0.05
    )

    #: Largest merged transfer a readmission top-up batch issues (stays
    #: within one slab's worth of any receive region).
    TOP_UP_BATCH_BYTES = 1 << 20

    #: Selectable write protocols (see the module docstring).
    WRITE_PROTOCOLS = ("write-all", "one-rtt")

    def __init__(
        self,
        node,
        directory,
        replication=3,
        slabs_per_target=24,
        reserve_tag="replica-slab",
        retry=None,
        rng=None,
        tracker=None,
        write_protocol="write-all",
    ):
        super().__init__()
        if replication < 1:
            raise ValueError("replication must be >= 1")
        if write_protocol not in self.WRITE_PROTOCOLS:
            raise ValueError(
                "unknown write protocol {!r}; valid: {}".format(
                    write_protocol, ", ".join(self.WRITE_PROTOCOLS)
                )
            )
        self.node = node
        self.env = node.env
        self.directory = directory
        self.replication = replication
        self.slabs_per_target = slabs_per_target
        self.reserve_tag = reserve_tag
        #: Optional :class:`~repro.net.retry.RetryPolicy` on the read
        #: path (transient errors retried before the next replica).
        self.retry = retry
        self._rng = rng
        self.tracker = tracker or RecoveryTracker()
        self.tracker.clock = lambda: self.env.now
        self.map = ReplicaMap(replication)
        self.areas = {}  # node_id -> RemoteArea
        self.write_protocol = write_protocol
        self._listening = False
        self._repairs = []
        #: Version tags for the one-RTT in-place conflict check: each
        #: fan-out round stamps its targets with a fresh tag; finding a
        #: tag from an earlier incarnation of the page is a detected
        #: (and superseded) conflict.
        self._versions = {}
        self._version_counter = 0
        # Counters for reports and tests.
        self.reads = 0
        self.replica_fallbacks = 0
        self.fallback_reads = 0
        self.rebuilds = 0
        #: Fabric rounds spent by committed puts: ``write-all`` pays
        #: one serialized TX-lane round per copy, ``one-rtt`` exactly
        #: one fan-out round per put.
        self.write_rounds = 0
        self.conflicts_detected = 0

    # -- setup ---------------------------------------------------------------

    def setup(self):
        """Generator: reserve areas on live peers, hook failure events."""
        injector = getattr(self.directory, "injector", None)
        if injector is not None and not self._listening:
            injector.on_crash(self._on_node_crash)
            injector.on_recover(self._on_node_recover)
            self._listening = True
        for peer in self.directory.peers_of(self.node.node_id):
            if self.directory.is_down(peer):
                continue
            yield from self._reserve_area(peer)
        if self.write_protocol == "one-rtt":
            # The one-RTT protocol pays connection setup here, once,
            # so a put is a single fan-out round on the data plane.
            for peer in sorted(self.areas):
                try:
                    yield from self.node.device.connect(
                        self.directory.device_of(peer)
                    )
                except _TRANSIENT:
                    continue

    def _reserve_area(self, peer):
        slab_bytes = self.node.config.slab_bytes
        desired = self.slabs_per_target * slab_bytes
        available = self.directory.free_receive_bytes(peer)
        nbytes = min(desired, (available // slab_bytes) * slab_bytes)
        if nbytes <= 0:
            return False
        key = (self.reserve_tag, self.node.node_id, peer)
        try:
            reply = yield from self.node.rdmc.control_call(
                peer, {"op": "reserve", "key": key, "nbytes": nbytes}
            )
        except (ControlTimeout,) + _TRANSIENT:
            return False
        if not reply.get("ok"):
            return False
        self.areas[peer] = RemoteArea(
            peer,
            nbytes,
            policy=area_policy(self.node),
            env=self.env,
            name="{}:{}->{}".format(self.name, self.node.node_id, peer),
        )
        return True

    # -- swap-out path (write-all) -------------------------------------------

    def put(self, page, nbytes):
        """Generator: write ``replication`` copies in parallel, or spill."""
        if self.write_protocol == "one-rtt":
            yield from self._put_one_rtt(page, nbytes)
            return
        targets = self._select_targets(nbytes)
        if targets is None:
            raise TierFull(
                "{}: fewer than {} live areas with {} free bytes".format(
                    self.name, self.replication, nbytes
                )
            )
        yield self.env.timeout(self.REMOTE_PER_PAGE_OVERHEAD)
        outcomes = {}
        yield self.env.all_of(
            [
                self.env.process(
                    self._write_copy(page.page_id, target, nbytes, outcomes),
                    name="replicate:{}:{}".format(page.page_id, target),
                )
                for target in targets
            ]
        )
        winners = [target for target in targets if outcomes.get(target)]
        if len(winners) < len(targets):
            # Partial failure: roll back, never commit under-replicated.
            for target in winners:
                area = self.areas.get(target)
                if area is not None:
                    area.release(page.page_id)
            self.stats.failovers.increment()
            if not self.cascade.failover.spill_on_failure:
                raise RemoteAccessError(
                    "replica write reached {}/{} targets".format(
                        len(winners), len(targets)
                    )
                )
            yield from self.cascade.place(page, nbytes, self.index + 1)
            return
        self.map.place(page.page_id, targets)
        self.cascade.record(page.page_id, self.name, nbytes)
        self.stats.puts.increment()
        self.stats.bytes_in.increment(nbytes * len(targets))
        self.write_rounds += len(targets)

    def _put_one_rtt(self, page, nbytes):
        """Generator: one fan-out round to every target, or spill.

        There is no rollback round: the fan-out delivers to all targets
        or to none (a mid-flight endpoint failure loses the whole
        round), and conflicts with an earlier incarnation of the page
        are detected in place via the version tag the round carries.
        """
        targets = self._select_targets(nbytes)
        if targets is None:
            raise TierFull(
                "{}: fewer than {} live areas with {} free bytes".format(
                    self.name, self.replication, nbytes
                )
            )
        yield self.env.timeout(self.REMOTE_PER_PAGE_OVERHEAD)
        try:
            yield from self._fanout_write(targets, nbytes)
        except _TRANSIENT:
            self.stats.failovers.increment()
            if not self.cascade.failover.spill_on_failure:
                raise RemoteAccessError(
                    "one-RTT replica round to {} failed".format(targets)
                )
            yield from self.cascade.place(page, nbytes, self.index + 1)
            return
        reserved = []
        refused = False
        for target in targets:
            area = self.areas.get(target)
            if area is None:
                continue
            if area.reserve(page.page_id, nbytes):
                reserved.append(area)
            else:
                # Arena-only: a fragmented target could not place the
                # copy.  The round delivers to all or none, so undo the
                # reservations and spill (uniform areas never refuse).
                refused = True
                break
        if refused:
            for area in reserved:
                area.release(page.page_id)
            self.stats.failovers.increment()
            if not self.cascade.failover.spill_on_failure:
                raise RemoteAccessError(
                    "one-RTT replica round to {} refused".format(targets)
                )
            yield from self.cascade.place(page, nbytes, self.index + 1)
            return
        if page.page_id in self._versions:
            # A target still held the tag of an earlier incarnation of
            # this page: detected by the in-place comparison, counted,
            # and superseded by this round's tag — no second round.
            self.conflicts_detected += 1
        self._versions[page.page_id] = self._version_counter
        self._version_counter += 1
        self.map.place(page.page_id, targets)
        self.cascade.record(page.page_id, self.name, nbytes)
        self.stats.puts.increment()
        self.stats.bytes_in.increment(nbytes * len(targets))
        self.write_rounds += 1

    def _fanout_write(self, targets, nbytes):
        """Generator: a single doorbell replicating to every target."""
        for target in targets:
            if self.directory.receive_region_of(target) is None:
                raise RemoteAccessError("no region on {!r}".format(target))
        fabric = self.node.device.fabric
        yield self.env.timeout(fabric.spec.per_message_overhead)
        yield from fabric.fanout(self.node.node_id, targets, nbytes)

    def _select_targets(self, nbytes):
        live = sorted(
            (
                area
                for area in self.areas.values()
                if area.can_fit(nbytes)
                and not self.directory.is_down(area.node_id)
            ),
            key=lambda area: (-area.free_bytes, area.node_id),
        )
        if len(live) < self.replication:
            return None
        return [area.node_id for area in live[: self.replication]]

    def _write_copy(self, page_id, target, nbytes, outcomes):
        try:
            yield from self._one_sided(target, nbytes, write=True)
        except _TRANSIENT:
            outcomes[target] = False
        else:
            area = self.areas.get(target)
            if area is not None and not area.reserve(page_id, nbytes):
                # An arena-backed area refused the copy: fragmentation
                # made it unplaceable despite the selection-time check.
                outcomes[target] = False
                return
            outcomes[target] = True

    # -- swap-in path (read-one) ---------------------------------------------

    def get(self, page, label, meta):
        """Generator: first live holder serves; degrade past the last."""
        stored = meta
        holders = list(self.map.holders(page.page_id))
        if not self.cascade.failover.read_from_replica:
            holders = holders[:1]
        for position, holder in enumerate(holders):
            if self.directory.is_down(holder):
                continue
            try:
                yield self.env.timeout(self.REMOTE_PER_PAGE_OVERHEAD)
                yield from self._read_copy(holder, stored)
            except _TRANSIENT:
                self.stats.failovers.increment()
                continue
            yield from self.cascade.decompress(page)
            self.reads += 1
            if position:
                self.replica_fallbacks += 1
            self.stats.bytes_out.increment(stored)
            return []
        # Every replica is gone or unreachable: the degraded path.
        self.stats.failovers.increment()
        if not self.cascade.failover.spill_on_failure:
            raise RemoteAccessError(
                "no live replica for page {}".format(page.page_id)
            )
        self.tracker.degraded_reads.increment()
        self.fallback_reads += 1
        began = self.env.now
        yield from self.node.hdd.read(self.node.alloc_disk_span(0), PAGE_SIZE)
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.latency(
                "tier", self.name + ".read.degraded", self.env.now - began
            )
        return []

    def _read_copy(self, holder, stored):
        if self.retry is None:
            yield from self._one_sided(holder, stored, write=False)
        else:
            yield from retrying(
                self.env,
                self.retry,
                lambda: self._one_sided(holder, stored, write=False),
                retry_on=_TRANSIENT,
                rng=self._rng,
            )

    # -- failure handling ----------------------------------------------------

    def _on_node_crash(self, node_id):
        area = self.areas.pop(node_id, None)
        orphans, lost = self.map.drop_node(node_id)
        if area is None and not orphans and not lost:
            return
        self.tracker.begin_repair(node_id)
        if lost:
            self._record_lost(lost)
        self._repairs.append(
            self.env.process(
                self._repair(node_id, orphans), name="repair:" + node_id
            )
        )

    def _record_lost(self, page_ids):
        self.tracker.pages_lost.increment(len(page_ids))
        if self.cascade is not None and self.cascade.failover.rebuild_on_failure:
            self._repairs.append(
                self.env.process(
                    self._rebuild(page_ids), name="rebuild:{}".format(len(page_ids))
                )
            )

    def _repair(self, node_id, orphans):
        """Generator: restore redundancy for the victim's orphans."""
        for page_id in orphans:
            label, meta = self.cascade.location(page_id)
            if label != self.name:
                continue  # moved or discarded since the crash
            stored = meta
            holders = self.map.holders(page_id)
            survivors = [
                holder for holder in holders if not self.directory.is_down(holder)
            ]
            if not survivors:
                self.map.remove_page(page_id)
                self._record_lost([page_id])
                continue
            target = self._pick_repair_target(stored, exclude=holders)
            if target is None:
                continue  # stays under-replicated until a peer returns
            try:
                yield from self._one_sided(survivors[0], stored, write=False)
                yield from self._one_sided(target, stored, write=True)
            except _TRANSIENT:
                continue
            area = self.areas.get(target)
            if area is None or not area.reserve(page_id, stored):
                continue
            self.map.add_holder(page_id, target)
            self.tracker.pages_re_replicated.increment()
        self.tracker.complete_repair(node_id)

    def _rebuild(self, page_ids):
        """Generator: re-place wholly lost pages below, from the backup."""
        for page_id in page_ids:
            label, meta = self.cascade.location(page_id)
            if label != self.name:
                continue
            stored = meta
            yield from self.node.hdd.read(self.node.alloc_disk_span(0), PAGE_SIZE)
            yield from self.cascade.place(
                DisplacedPage(page_id, stored), stored, self.index + 1
            )
            self.rebuilds += 1

    def _pick_repair_target(self, nbytes, exclude=()):
        exclude = set(exclude)
        live = sorted(
            (
                area
                for area in self.areas.values()
                if area.node_id not in exclude
                and area.can_fit(nbytes)
                and not self.directory.is_down(area.node_id)
            ),
            key=lambda area: (-area.free_bytes, area.node_id),
        )
        return live[0].node_id if live else None

    # -- recovery handling ---------------------------------------------------

    def _on_node_recover(self, node_id):
        if node_id == self.node.node_id or node_id in self.areas:
            return
        if node_id not in self.directory.peers_of(self.node.node_id):
            return
        self._repairs.append(
            self.env.process(self._readmit(node_id), name="readmit:" + node_id)
        )

    def _readmit(self, node_id):
        """Generator: re-reserve an area on a recovered peer, with backoff,
        then top it up with under-replicated pages."""
        policy = self.READMIT_POLICY
        for attempt in range(1, policy.max_attempts + 1):
            if self.directory.is_down(node_id):
                return
            admitted = yield from self._reserve_area(node_id)
            if admitted:
                self.tracker.nodes_recovered.increment()
                yield from self._top_up(node_id)
                return
            if attempt < policy.max_attempts:
                yield self.env.timeout(policy.delay(attempt, self._rng))

    def _top_up(self, node_id):
        """Generator: batch-copy under-replicated pages onto the peer.

        Pages are grouped by surviving source holder and shipped as
        merged transfers — one read from the source and one write to
        the recovered node per batch — instead of a round trip per
        page, so readmission recovery time scales with bytes moved,
        not page count.  Batches cap at :attr:`TOP_UP_BATCH_BYTES`;
        bookkeeping is re-verified per page after each batch lands
        (the cluster kept running while the batch flew).
        """
        area = self.areas.get(node_id)
        if area is None or self.directory.is_down(node_id):
            return
        groups = {}  # source holder -> [(page_id, stored)]
        budget = area.free_bytes
        for page_id in self.map.under_replicated():
            label, meta = self.cascade.location(page_id)
            if label != self.name:
                continue
            stored = meta
            holders = self.map.holders(page_id)
            if node_id in holders or stored > budget:
                continue
            survivors = [
                holder for holder in holders if not self.directory.is_down(holder)
            ]
            if not survivors:
                continue
            groups.setdefault(survivors[0], []).append((page_id, stored))
            budget -= stored
        for source in sorted(groups):
            for batch in self._chunk_batches(groups[source]):
                total = sum(stored for _page_id, stored in batch)
                try:
                    yield from self._one_sided(source, total, write=False)
                    yield from self._one_sided(node_id, total, write=True)
                except _TRANSIENT:
                    continue
                area = self.areas.get(node_id)
                if area is None or self.directory.is_down(node_id):
                    return
                for page_id, stored in batch:
                    label, _meta = self.cascade.location(page_id)
                    if label != self.name:
                        continue  # moved or discarded mid-flight
                    holders = self.map.holders(page_id)
                    if (
                        node_id in holders
                        or source not in holders
                        or len(holders) >= self.map.factor
                        or not area.can_fit(stored)
                        or not area.reserve(page_id, stored)
                    ):
                        continue
                    self.map.add_holder(page_id, node_id)
                    self.tracker.pages_re_replicated.increment()

    def _chunk_batches(self, pages):
        """Split ``[(page_id, stored)]`` at the merged-transfer cap."""
        batch, batch_bytes = [], 0
        for page_id, stored in pages:
            if batch and batch_bytes + stored > self.TOP_UP_BATCH_BYTES:
                yield batch
                batch, batch_bytes = [], 0
            batch.append((page_id, stored))
            batch_bytes += stored
        if batch:
            yield batch

    # -- bookkeeping ---------------------------------------------------------

    def forget(self, page_id, label, meta):
        for holder in self.map.holders(page_id):
            area = self.areas.get(holder)
            if area is not None:
                area.release(page_id)
        self.map.remove_page(page_id)

    def _one_sided(self, target, nbytes, write):
        region = self.directory.receive_region_of(target)
        if region is None:
            raise RemoteAccessError("no region on {!r}".format(target))
        qp = yield from self.node.device.connect(self.directory.device_of(target))
        if write:
            yield from qp.write(region, nbytes)
        else:
            yield from qp.read(region, nbytes)

    # -- reporting -----------------------------------------------------------

    def snapshot(self):
        row = self.stats.row()
        row.update(self.tracker.snapshot())
        row.update(
            {
                "replication": self.replication,
                "replica_fallbacks": self.replica_fallbacks,
                "rebuilds": self.rebuilds,
                "write_protocol": self.write_protocol,
                "write_rounds": self.write_rounds,
                "conflicts_detected": self.conflicts_detected,
                # Physical bytes per logical byte stored (r copies).
                "overhead_x": float(self.replication),
            }
        )
        return row
