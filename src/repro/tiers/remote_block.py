"""Remote memory behind a block device, as cascade tiers.

The NBDX / Infiniswap substrate (Section V baselines): every 4 KB page
pays the kernel block layer plus a per-request software cost on top of
the RDMA round trip — no batching, no compression.  Two tiers:

* :class:`RemoteBlockTier` — per-page one-sided reads/writes against
  slab areas reserved on peers, placed first-fit (one fixed server,
  NBDX) or with the power of two choices (Infiniswap);
* :class:`DiskBackupTier` — the asynchronous disk backup Infiniswap
  keeps: writes land on the local HDD without block-layer charge (the
  backup write was already amortized), reads pay the block path.
"""

from repro.core.errors import ControlTimeout, NoRemoteCapacity
from repro.hw.latency import PAGE_SIZE, CpuSpec
from repro.net.errors import NetworkError
from repro.net.rdma import RemoteAccessError
from repro.tiers.base import Tier, TierFull
from repro.tiers.remote import RemoteArea, area_policy


class RemoteBlockTier(Tier):
    """Per-page remote paging through the block layer."""

    name = "remote"

    def __init__(self, node, directory, backend_name, slabs_per_target=4,
                 extra_op_overhead=0.0, cpu=None, rng=None,
                 single_server=False, power_of_two=False):
        super().__init__()
        self.node = node
        self.env = node.env
        self.directory = directory
        self.backend_name = backend_name
        self.slabs_per_target = slabs_per_target
        self.extra_op_overhead = extra_op_overhead
        self.cpu = cpu or CpuSpec()
        self.rng = rng
        self.single_server = single_server
        self.power_of_two = power_of_two
        self.areas = {}  # node_id -> RemoteArea
        self.writes = 0
        self.reads = 0
        self.fallback_reads = 0

    # -- setup ---------------------------------------------------------------

    def _targets(self):
        peers = [
            peer
            for peer in self.directory.peers_of(self.node.node_id)
            if not self.directory.is_down(peer)
        ]
        if self.single_server:
            # All slabs on the single chosen server.
            return peers[:1]
        return peers

    def setup(self):
        """Generator: reserve slab space on the chosen remote targets."""
        slab_bytes = self.node.config.slab_bytes
        slabs = self.slabs_per_target
        if self.single_server:
            # One server hosts the whole device: scale the reservation up.
            slabs *= max(1, len(self.directory.peers_of(self.node.node_id)))
        for target in self._targets():
            desired = slabs * slab_bytes
            # Clamp to what the target actually donates (the group
            # leader would report this in the real protocol).
            available = self.directory.free_receive_bytes(target)
            nbytes = min(desired, (available // slab_bytes) * slab_bytes)
            if nbytes <= 0:
                continue
            key = ("{}-slab".format(self.backend_name),
                   self.node.node_id, target)
            try:
                reply = yield from self.node.rdmc.control_call(
                    target, {"op": "reserve", "key": key, "nbytes": nbytes}
                )
            except (NetworkError, ControlTimeout):
                continue
            if reply.get("ok"):
                self.areas[target] = RemoteArea(
                    target,
                    nbytes,
                    policy=area_policy(self.node),
                    env=self.env,
                    name="{}:{}->{}".format(
                        self.backend_name, self.node.node_id, target
                    ),
                )
        if not self.areas:
            raise NoRemoteCapacity(
                "{}: no remote slab space obtained".format(self.backend_name)
            )

    # -- placement ------------------------------------------------------------

    def _live_areas(self):
        return [
            area for area in self.areas.values()
            if not self.directory.is_down(area.node_id)
        ]

    def _place(self):
        viable = [
            area for area in self._live_areas()
            if area.can_fit(PAGE_SIZE)
        ]
        if not viable:
            return None
        if not self.power_of_two or len(viable) == 1 or self.rng is None:
            return viable[0]
        first, second = self.rng.sample(viable, 2)
        return first if first.free_bytes >= second.free_bytes else second

    # -- data path -------------------------------------------------------------

    def put(self, page, nbytes):
        """Generator: one block write = block layer + RDMA WRITE."""
        area = self._place()
        if area is None or not area.reserve(page.page_id, PAGE_SIZE):
            raise TierFull("no free slab area")
        self.cascade.record(page.page_id, self.name, area.node_id)
        self.stats.puts.increment()
        self.stats.bytes_in.increment(PAGE_SIZE)
        yield self.env.timeout(
            self.cpu.block_layer_overhead + self.extra_op_overhead
        )
        try:
            yield from self._one_sided(area.node_id, PAGE_SIZE, write=True)
            self.writes += 1
        except (NetworkError, RemoteAccessError):
            # Target died mid-write: degrade to the next tier down.
            self.stats.failovers.increment()
            self.cascade.forget(page.page_id)
            if not self.cascade.failover.spill_on_failure:
                raise
            yield from self.cascade.place(page, nbytes, self.index + 1)

    def get(self, page, label, meta):
        """Generator: one block read; disk backup on remote failure."""
        yield self.env.timeout(
            self.cpu.block_layer_overhead + self.extra_op_overhead
        )
        try:
            yield from self._one_sided(meta, PAGE_SIZE, write=False)
            self.reads += 1
            self.stats.bytes_out.increment(PAGE_SIZE)
        except (NetworkError, RemoteAccessError):
            self.stats.failovers.increment()
            if not self.cascade.failover.spill_on_failure:
                raise
            # Asynchronous disk backup saves the day at disk cost.
            yield from self.node.hdd.read(
                self.node.alloc_disk_span(PAGE_SIZE), PAGE_SIZE
            )
            self.fallback_reads += 1
        return []

    def forget(self, page_id, label, meta):
        area = self.areas.get(meta)
        if area is not None:
            area.release(page_id)

    def _one_sided(self, target, nbytes, write):
        region = self.directory.receive_region_of(target)
        if region is None:
            raise RemoteAccessError("no region on {!r}".format(target))
        qp = yield from self.node.device.connect(
            self.directory.device_of(target)
        )
        if write:
            yield from qp.write(region, nbytes)
        else:
            yield from qp.read(region, nbytes)


class DiskBackupTier(Tier):
    """Infiniswap-style local disk backup below a remote tier."""

    name = "disk-backup"

    def __init__(self, node, op_overhead=0.0):
        super().__init__()
        self.node = node
        self.env = node.env
        self.op_overhead = op_overhead
        self.writes = 0
        self.reads = 0

    def put(self, page, nbytes):
        # The backup stream is asynchronous in the real system: no
        # block-layer charge on top of the raw device write.
        yield from self.node.hdd.write(
            self.node.alloc_disk_span(PAGE_SIZE), PAGE_SIZE
        )
        self.writes += 1
        self.cascade.record(page.page_id, self.name, None)
        self.stats.puts.increment()
        self.stats.bytes_in.increment(PAGE_SIZE)

    def get(self, page, label, meta):
        yield self.env.timeout(self.op_overhead)
        yield from self.node.hdd.read(
            self.node.alloc_disk_span(PAGE_SIZE), PAGE_SIZE
        )
        self.reads += 1
        self.stats.bytes_out.increment(PAGE_SIZE)
        return []
