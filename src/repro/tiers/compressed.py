"""Compression in the cascade: a cascade-wide layer, and a pool tier.

Two distinct shapes the paper evaluates:

* :class:`CompressionLayer` — FastSwap's scheme (Section IV-H): every
  swapped-out page is compressed *once* on the way down, stored at
  multi-granularity charge in whatever tier takes it, and decompressed
  per fetched page on the way back.  Attached to the cascade, not to a
  tier, so the same compressed bytes flow through SM, remote and disk.
* :class:`CompressedPoolTier` — the zswap baseline: a bounded
  compressed RAM pool (zbud accounting) as a *tier of its own* in front
  of slower storage.  Incompressible pages are rejected down the
  cascade; pool pressure writes the oldest entries back to the next
  tier (decompressed to raw pages).
"""

from collections import OrderedDict

from repro.hw.latency import PAGE_SIZE
from repro.mem.compression import CompressionEngine, ZbudStore
from repro.tiers.base import DisplacedPage, Tier, TierFull


class CompressionLayer:
    """Cascade-wide page compression with store-model accounting."""

    def __init__(self, env, engine, store):
        self.env = env
        self.engine = engine
        self.store = store

    def compress_out(self, page):
        """Generator: compress ``page``; returns the charged stored size."""
        charged = self.store.charged_size(page.compressed_size)
        yield self.env.timeout(self.engine.compress_time(page.size))
        self.store.store(page)
        return charged

    def decompress_in(self, page):
        """Generator: charge decompression for a fetched page."""
        yield self.env.timeout(self.engine.decompress_time(page.size))


class CompressedPoolTier(Tier):
    """A bounded compressed RAM pool (zbud) as the top cascade tier."""

    name = "pool"

    def __init__(self, node, pool_bytes, engine=None):
        super().__init__()
        self.node = node
        self.env = node.env
        self.engine = engine or CompressionEngine(
            node.config.calibration.compression
        )
        self.pool_bytes = pool_bytes
        self.store = ZbudStore()
        self._pool = OrderedDict()  # page_id -> charged bytes
        self._pool_used = 0
        self.writebacks = 0
        self.rejects = 0

    def put(self, page, nbytes):
        """Generator: compress into the pool; write back oldest on
        pressure; reject incompressible pages down the cascade."""
        yield self.env.timeout(self.engine.compress_time(page.size))
        charged = self.store.charged_size(page.compressed_size)
        if charged >= PAGE_SIZE:
            # Incompressible page: reject it straight down a tier.
            self.rejects += 1
            raise TierFull("incompressible page")
        while self._pool_used + charged > self.pool_bytes and self._pool:
            yield from self._writeback_oldest()
        if self._pool_used + charged > self.pool_bytes:
            raise TierFull("compressed pool full")
        previous = self._pool.pop(page.page_id, None)
        if previous is not None:
            self._pool_used -= previous
        self._pool[page.page_id] = charged
        self._pool_used += charged
        self.store.store(page)
        self.cascade.record(page.page_id, self.name, charged)
        self.stats.puts.increment()
        self.stats.bytes_in.increment(charged)

    def _writeback_oldest(self):
        page_id, charged = self._pool.popitem(last=False)
        self._pool_used -= charged
        # Decompress + push the raw page down the cascade.
        yield self.env.timeout(self.engine.decompress_time(PAGE_SIZE))
        victim = DisplacedPage(page_id)
        yield from self.cascade.place(victim, PAGE_SIZE, self.index + 1)
        self.writebacks += 1

    def get(self, page, label, meta):
        """Generator: decompress from the pool; the entry stays put
        (swap-cache semantics)."""
        yield self.env.timeout(self.engine.decompress_time(page.size))
        self.stats.bytes_out.increment(meta)
        return []

    def forget(self, page_id, label, meta):
        charged = self._pool.pop(page_id, None)
        if charged is not None:
            self._pool_used -= charged
