"""Cluster remote memory over RDMA, with batching and PBS.

The paper's cluster-level tier (Sections IV-C, IV-G): swap-outs
accumulate in a local send buffer and ship as one RDMA write per
window; faults on remote pages fetch a whole window of neighbours in
the same one-sided read (PBS).  Pages track through two labels:

* ``buffer`` — still staged locally awaiting a batch flush (a DRAM
  copy serves a fault);
* ``remote`` — shipped to a peer's reserved slab area.

A full cluster or a dead target cascades the *whole batch* down to the
next tier (one merged device write), which is what keeps the XMemPod
SSD tier and the HDD fallback cheap.
"""

from repro.core.errors import ControlTimeout
from repro.hw.latency import PAGE_SIZE
from repro.net.errors import NetworkError
from repro.net.rdma import RemoteAccessError
from repro.tiers.base import Tier


class RemoteArea:
    """Bookkeeping for slab space reserved on one remote node."""

    __slots__ = ("node_id", "capacity_bytes", "used_bytes")

    def __init__(self, node_id, capacity_bytes):
        self.node_id = node_id
        self.capacity_bytes = capacity_bytes
        self.used_bytes = 0

    @property
    def free_bytes(self):
        return self.capacity_bytes - self.used_bytes


class RemoteRdmaTier(Tier):
    """Batched one-sided RDMA to peer-donated slab areas."""

    name = "remote"

    #: Serving a page still sitting in the local send buffer: DRAM copy.
    BUFFER_HIT_TIME = 0.8e-6
    #: Per-page software cost on the remote path (work-request build +
    #: completion handling); batching amortizes the doorbell/latency but
    #: not this, which is what keeps node-level SM ahead of FS-RDMA.
    REMOTE_PER_PAGE_OVERHEAD = 1.2e-6

    def __init__(self, node, directory, window=8, slabs_per_target=24,
                 reserve_tag="fastswap-slab"):
        super().__init__()
        self.node = node
        self.env = node.env
        self.directory = directory
        self.window = window
        self.slabs_per_target = slabs_per_target
        self.reserve_tag = reserve_tag
        self.areas = {}  # node_id -> RemoteArea
        self._pending = []  # [(page, stored_bytes)] awaiting batch flush
        self._pending_bytes = 0
        self._flush_cursor = 0
        # Counters for reports and tests.
        self.batches = 0
        self.pages_out = 0
        self.reads = 0
        self.fallback_reads = 0

    @property
    def labels(self):
        return ("buffer", self.name)

    # -- setup ---------------------------------------------------------------

    def setup(self):
        """Generator: reserve remote slab areas on live group peers."""
        slab_bytes = self.node.config.slab_bytes
        for peer in self.directory.peers_of(self.node.node_id):
            if self.directory.is_down(peer):
                continue
            desired = self.slabs_per_target * slab_bytes
            available = self.directory.free_receive_bytes(peer)
            nbytes = min(desired, (available // slab_bytes) * slab_bytes)
            if nbytes <= 0:
                continue
            key = (self.reserve_tag, self.node.node_id, peer)
            try:
                reply = yield from self.node.rdmc.control_call(
                    peer, {"op": "reserve", "key": key, "nbytes": nbytes}
                )
            except (NetworkError, ControlTimeout):
                continue
            if reply.get("ok"):
                self.areas[peer] = RemoteArea(peer, nbytes)

    # -- swap-out path -------------------------------------------------------

    def put(self, page, nbytes):
        """Generator: stage the page in the send buffer; flush per window."""
        self._pending.append((page, nbytes))
        self._pending_bytes += nbytes
        self.cascade.record(page.page_id, "buffer", nbytes)
        self.stats.puts.increment()
        self.stats.bytes_in.increment(nbytes)
        if len(self._pending) >= self.window:
            yield from self._flush_batch()

    def _flush_batch(self):
        """Ship the pending batch as one RDMA write to one target."""
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        nbytes, self._pending_bytes = self._pending_bytes, 0
        area = self._pick_area(nbytes)
        if area is None:
            # Cluster full: the compressed batch cascades down a tier.
            self.stats.spills.increment(len(batch))
            yield from self.cascade.place_batch(batch, nbytes, self.index + 1)
            return
        try:
            yield self.env.timeout(self.REMOTE_PER_PAGE_OVERHEAD * len(batch))
            yield from self._one_sided(area.node_id, nbytes, write=True)
        except (NetworkError, RemoteAccessError):
            # Target died mid-batch: cascade this batch down a tier.
            self.stats.failovers.increment(len(batch))
            if not self.cascade.failover.spill_on_failure:
                raise
            yield from self.cascade.place_batch(batch, nbytes, self.index + 1)
            return
        area.used_bytes += nbytes
        for page, stored in batch:
            self.cascade.record(page.page_id, self.name, (area.node_id, stored))
        self.batches += 1
        self.pages_out += len(batch)

    def _pick_area(self, nbytes):
        live = [
            area
            for area in self.areas.values()
            if area.free_bytes >= nbytes
            and not self.directory.is_down(area.node_id)
        ]
        if not live:
            return None
        area = live[self._flush_cursor % len(live)]
        self._flush_cursor += 1
        return area

    # -- swap-in path --------------------------------------------------------

    def get(self, page, label, meta):
        """Generator: buffer hit, or a (PBS-batched) one-sided read."""
        if label == "buffer":
            # Still staged locally: a DRAM copy suffices.
            yield self.env.timeout(self.BUFFER_HIT_TIME)
            return []
        target, stored = meta
        batch = [(page, stored)]
        pbs = self.cascade.pbs
        if pbs is not None:
            batch.extend(
                (neighbour, neighbour_meta[1])
                for neighbour, neighbour_meta in pbs.neighbours(
                    page.page_id, self.name,
                    match=lambda m: m[0] == target,
                )
            )
        nbytes = sum(s for _p, s in batch)
        try:
            yield self.env.timeout(self.REMOTE_PER_PAGE_OVERHEAD * len(batch))
            yield from self._one_sided(target, nbytes, write=False)
        except (NetworkError, RemoteAccessError):
            self.stats.failovers.increment()
            if not self.cascade.failover.spill_on_failure:
                raise
            # Remote gone: the asynchronous disk backup serves the page.
            yield from self.node.hdd.read(
                self.node.alloc_disk_span(0), PAGE_SIZE
            )
            self.fallback_reads += 1
            return []
        for fetched, _stored in batch:
            yield from self.cascade.decompress(fetched)
        self.reads += 1
        self.stats.bytes_out.increment(nbytes)
        if pbs is not None:
            pbs.note(len(batch) - 1)
        return [fetched for fetched, _stored in batch[1:]]

    # -- bookkeeping ---------------------------------------------------------

    def forget(self, page_id, label, meta):
        if label == "buffer":
            for index, (pending_page, stored) in enumerate(self._pending):
                if pending_page.page_id == page_id:
                    self._pending.pop(index)
                    self._pending_bytes -= stored
                    break
        else:
            target, stored = meta
            area = self.areas.get(target)
            if area is not None:
                area.used_bytes -= stored

    def drain(self):
        """Generator: flush any partially filled remote batch."""
        yield from self._flush_batch()

    def _one_sided(self, target, nbytes, write):
        region = self.directory.receive_region_of(target)
        if region is None:
            raise RemoteAccessError("no region on {!r}".format(target))
        qp = yield from self.node.device.connect(
            self.directory.device_of(target)
        )
        if write:
            yield from qp.write(region, nbytes)
        else:
            yield from qp.read(region, nbytes)
