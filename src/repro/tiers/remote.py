"""Cluster remote memory over RDMA, with batching and PBS.

The paper's cluster-level tier (Sections IV-C, IV-G): swap-outs
accumulate in a local send buffer and ship as one RDMA write per
window; faults on remote pages fetch a whole window of neighbours in
the same one-sided read (PBS).  Pages track through two labels:

* ``buffer`` — still staged locally awaiting a batch flush (a DRAM
  copy serves a fault);
* ``remote`` — shipped to a peer's reserved slab area.

A full cluster or a dead target cascades the *whole batch* down to the
next tier (one merged device write), which is what keeps the XMemPod
SSD tier and the HDD fallback cheap.
"""

from repro.core.errors import ControlTimeout
from repro.hw.latency import PAGE_SIZE
from repro.mem.allocator import AllocationError
from repro.mem.arena import make_allocator
from repro.net.errors import NetworkError
from repro.net.rdma import RemoteAccessError
from repro.tiers.base import Tier


class RemoteArea:
    """The client-side view of slab space reserved on one remote node.

    Historically a single used-byte counter — the idealized uniform
    model.  It is now a *keyed store* over a pluggable allocator
    (:func:`repro.mem.arena.make_allocator`): every page or fragment is
    reserved under a key and released by it, so when the cluster runs
    the ``arena`` policy the area models the real extent/run layout of
    the peer's pool — including the fragmentation that makes a page
    unplaceable despite ample raw free bytes.  The default ``uniform``
    policy reproduces the historical counter bit for bit.
    """

    __slots__ = ("node_id", "allocator", "policy", "name", "_env", "_held",
                 "_capacity", "_used")

    def __init__(self, node_id, capacity_bytes, policy="uniform", env=None,
                 name=None):
        if policy not in ("uniform", "arena"):
            raise ValueError("area policy must be 'uniform' or 'arena'")
        self.node_id = node_id
        self.policy = policy
        self.name = name or "area:{}".format(node_id)
        self._env = env
        self._held = {}  # key -> block handles (arena) or nbytes (uniform)
        self._capacity = int(capacity_bytes)
        self._used = 0
        self.allocator = (
            make_allocator("arena", capacity_bytes) if policy == "arena"
            else None
        )

    @property
    def capacity_bytes(self):
        return self._capacity

    @property
    def used_bytes(self):
        if self.allocator is not None:
            return self._capacity - self.allocator.free_bytes
        return self._used

    @property
    def free_bytes(self):
        return self.capacity_bytes - self.used_bytes

    def can_fit(self, nbytes):
        """Whether a reservation of ``nbytes`` should succeed.

        Uniform areas answer from the free counter (the historical
        check); arena areas answer from the free-extent structure, so
        fragmented areas stop attracting placements they would refuse.
        """
        if self.allocator is not None:
            return self.allocator.allocatable_bytes(nbytes) >= nbytes
        return self.free_bytes >= nbytes

    def holds(self, key):
        return key in self._held

    def reserve(self, key, nbytes):
        """Reserve ``nbytes`` under ``key``; False when it cannot fit.

        Uniform reservations never fail: the historical counter added
        blindly after a caller's own free-bytes check, overcommitting
        under racing writers, and that behaviour is preserved bit for
        bit.  Arena reservations go through the extent allocator and
        refuse when fragmentation leaves no usable space.
        """
        if key in self._held:
            raise ValueError(
                "{}: duplicate reservation {!r}".format(self.name, key)
            )
        if self.allocator is None:
            self._held[key] = nbytes
            self._used += nbytes
            return True
        try:
            blocks = self.allocator.allocate_entry(nbytes)
        except AllocationError:
            return False
        self._held[key] = blocks
        if self._env is not None:
            tracer = self._env.tracer
            if tracer.enabled:
                tracer.instant(
                    "alloc.reserve", store=self.name, key=key, nbytes=nbytes
                )
        return True

    def release(self, key):
        """Release the reservation under ``key``; returns its payload bytes
        (0 when the key is unknown — e.g. the area was rebuilt after a
        crash)."""
        held = self._held.pop(key, None)
        if held is None:
            return 0
        if self.allocator is None:
            self._used -= held
            return held
        payload = sum(block.payload_bytes for block in held)
        if self._env is not None:
            tracer = self._env.tracer
            if tracer.enabled:
                tracer.instant("alloc.free", store=self.name, key=key)
        self.allocator.free_entry(held)
        return payload

    def frag_stats(self):
        if self.allocator is not None:
            return self.allocator.frag_stats()
        from repro.mem.fragstats import FragmentationStats, build_histogram

        free = max(self.free_bytes, 0)
        return FragmentationStats(
            capacity_bytes=self._capacity,
            payload_bytes=self._used,
            live_bytes=self._used,
            free_bytes=free,
            metadata_bytes=0,
            largest_free_extent=free,
            allocatable_bytes=free,
            free_extent_histogram=build_histogram([free] if free else []),
        )


def area_policy(node):
    """The RemoteArea policy for a cluster config's ``alloc_policy``.

    Areas never modelled memcached slabs — anything but ``arena``
    keeps the historical uniform counter.
    """
    policy = getattr(getattr(node, "config", None), "alloc_policy", "slab")
    return "arena" if policy == "arena" else "uniform"


class RemoteRdmaTier(Tier):
    """Batched one-sided RDMA to peer-donated slab areas."""

    name = "remote"

    #: Serving a page still sitting in the local send buffer: DRAM copy.
    BUFFER_HIT_TIME = 0.8e-6
    #: Per-page software cost on the remote path (work-request build +
    #: completion handling); batching amortizes the doorbell/latency but
    #: not this, which is what keeps node-level SM ahead of FS-RDMA.
    REMOTE_PER_PAGE_OVERHEAD = 1.2e-6

    def __init__(self, node, directory, window=8, slabs_per_target=24,
                 reserve_tag="fastswap-slab"):
        super().__init__()
        self.node = node
        self.env = node.env
        self.directory = directory
        self.window = window
        self.slabs_per_target = slabs_per_target
        self.reserve_tag = reserve_tag
        self.areas = {}  # node_id -> RemoteArea
        self._pending = []  # [(page, stored_bytes)] awaiting batch flush
        self._pending_bytes = 0
        self._flush_cursor = 0
        # Counters for reports and tests.
        self.batches = 0
        self.pages_out = 0
        self.reads = 0
        self.fallback_reads = 0

    @property
    def labels(self):
        return ("buffer", self.name)

    # -- setup ---------------------------------------------------------------

    def setup(self):
        """Generator: reserve remote slab areas on live group peers."""
        slab_bytes = self.node.config.slab_bytes
        for peer in self.directory.peers_of(self.node.node_id):
            if self.directory.is_down(peer):
                continue
            desired = self.slabs_per_target * slab_bytes
            available = self.directory.free_receive_bytes(peer)
            nbytes = min(desired, (available // slab_bytes) * slab_bytes)
            if nbytes <= 0:
                continue
            key = (self.reserve_tag, self.node.node_id, peer)
            try:
                reply = yield from self.node.rdmc.control_call(
                    peer, {"op": "reserve", "key": key, "nbytes": nbytes}
                )
            except (NetworkError, ControlTimeout):
                continue
            if reply.get("ok"):
                self.areas[peer] = RemoteArea(
                    peer,
                    nbytes,
                    policy=area_policy(self.node),
                    env=self.env,
                    name="{}:{}->{}".format(
                        self.name, self.node.node_id, peer
                    ),
                )

    # -- swap-out path -------------------------------------------------------

    def put(self, page, nbytes):
        """Generator: stage the page in the send buffer; flush per window."""
        self._pending.append((page, nbytes))
        self._pending_bytes += nbytes
        self.cascade.record(page.page_id, "buffer", nbytes)
        self.stats.puts.increment()
        self.stats.bytes_in.increment(nbytes)
        if len(self._pending) >= self.window:
            yield from self._flush_batch()

    def _flush_batch(self):
        """Ship the pending batch as one RDMA write to one target."""
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        nbytes, self._pending_bytes = self._pending_bytes, 0
        area = self._pick_area(nbytes)
        if area is not None and not self._reserve_batch(area, batch):
            # An arena-backed area refused the batch despite the
            # heuristic check: fragmentation made it unplaceable.
            area = None
        if area is None:
            # Cluster full: the compressed batch cascades down a tier.
            self.stats.spills.increment(len(batch))
            yield from self.cascade.place_batch(batch, nbytes, self.index + 1)
            return
        try:
            yield self.env.timeout(self.REMOTE_PER_PAGE_OVERHEAD * len(batch))
            yield from self._one_sided(area.node_id, nbytes, write=True)
        except (NetworkError, RemoteAccessError):
            # Target died mid-batch: cascade this batch down a tier.
            for page, _stored in batch:
                area.release(page.page_id)
            self.stats.failovers.increment(len(batch))
            if not self.cascade.failover.spill_on_failure:
                raise
            yield from self.cascade.place_batch(batch, nbytes, self.index + 1)
            return
        for page, stored in batch:
            self.cascade.record(page.page_id, self.name, (area.node_id, stored))
        self.batches += 1
        self.pages_out += len(batch)

    def _reserve_batch(self, area, batch):
        """Reserve every page of the batch on ``area``, all or nothing."""
        reserved = []
        for page, stored in batch:
            if not area.reserve(page.page_id, stored):
                for key in reserved:
                    area.release(key)
                return False
            reserved.append(page.page_id)
        return True

    def _pick_area(self, nbytes):
        live = [
            area
            for area in self.areas.values()
            if area.can_fit(nbytes)
            and not self.directory.is_down(area.node_id)
        ]
        if not live:
            return None
        area = live[self._flush_cursor % len(live)]
        self._flush_cursor += 1
        return area

    # -- swap-in path --------------------------------------------------------

    def get(self, page, label, meta):
        """Generator: buffer hit, or a (PBS-batched) one-sided read."""
        if label == "buffer":
            # Still staged locally: a DRAM copy suffices.
            yield self.env.timeout(self.BUFFER_HIT_TIME)
            return []
        target, stored = meta
        batch = [(page, stored)]
        pbs = self.cascade.pbs
        if pbs is not None:
            batch.extend(
                (neighbour, neighbour_meta[1])
                for neighbour, neighbour_meta in pbs.neighbours(
                    page.page_id, self.name,
                    match=lambda m: m[0] == target,
                )
            )
        nbytes = sum(s for _p, s in batch)
        try:
            yield self.env.timeout(self.REMOTE_PER_PAGE_OVERHEAD * len(batch))
            yield from self._one_sided(target, nbytes, write=False)
        except (NetworkError, RemoteAccessError):
            self.stats.failovers.increment()
            if not self.cascade.failover.spill_on_failure:
                raise
            # Remote gone: the asynchronous disk backup serves the page.
            yield from self.node.hdd.read(
                self.node.alloc_disk_span(0), PAGE_SIZE
            )
            self.fallback_reads += 1
            return []
        for fetched, _stored in batch:
            yield from self.cascade.decompress(fetched)
        self.reads += 1
        self.stats.bytes_out.increment(nbytes)
        if pbs is not None:
            pbs.note(len(batch) - 1)
        return [fetched for fetched, _stored in batch[1:]]

    # -- bookkeeping ---------------------------------------------------------

    def forget(self, page_id, label, meta):
        if label == "buffer":
            for index, (pending_page, stored) in enumerate(self._pending):
                if pending_page.page_id == page_id:
                    self._pending.pop(index)
                    self._pending_bytes -= stored
                    break
        else:
            target, _stored = meta
            area = self.areas.get(target)
            if area is not None:
                area.release(page_id)

    def drain(self):
        """Generator: flush any partially filled remote batch."""
        yield from self._flush_batch()

    def _one_sided(self, target, nbytes, write):
        region = self.directory.receive_region_of(target)
        if region is None:
            raise RemoteAccessError("no region on {!r}".format(target))
        qp = yield from self.node.device.connect(
            self.directory.device_of(target)
        )
        if write:
            yield from qp.write(region, nbytes)
        else:
            yield from qp.read(region, nbytes)
