"""Erasure-coded cluster remote memory (Hydra; paper Section IV-D).

Replication answers the paper's resilience problem at 3x memory.
Hydra's answer is k-of-n striping: a page is split into ``k`` data
fragments, ``m`` parity fragments are computed over them, and the
``n = k + m`` fragments land on ``n`` distinct remote nodes.  Any
``k`` surviving fragments reconstruct the page bit-identically, so the
scheme rides out ``m`` concurrent node losses at ``n / k`` memory
overhead (1.5x for the default 4+2) instead of ``r``x.

Three cooperating pieces:

* :class:`StripeCodec` — the pure math: a systematic Reed-Solomon code
  over GF(256) built from a Vandermonde matrix (``m = 1`` degenerates
  to plain XOR parity).  Real bytes in, real bytes out — the property
  tests drive it with random payloads and arbitrary surviving subsets.
* :class:`StripeMap` — pure fragment bookkeeping (page -> fragment
  holders, node -> fragments, crash/repair transitions), separated so
  hypothesis can drive it through failure schedules without a
  simulator, mirroring :class:`~repro.tiers.replicated.ReplicaMap`.
* :class:`ErasureCodedRemoteTier` — the cascade tier: striped puts
  (one ``ec.encode`` span charging codec CPU, then a parallel fragment
  fan-out committed all-or-spill), reads served from the ``k`` data
  fragments, **degraded reads** reconstructing from any ``k`` surviving
  fragments inside the fault window, and **background reconstruction**
  re-striping lost fragments onto spare or readmitted nodes — both
  under ``ec.reconstruct`` spans the trace analyzer holds to its
  reconstruction invariants.
"""

from repro.core.errors import ControlTimeout
from repro.hw.latency import GiB, PAGE_SIZE
from repro.metrics.recovery import RecoveryTracker
from repro.net.errors import NetworkError
from repro.net.rdma import RemoteAccessError
from repro.net.retry import RetryPolicy
from repro.tiers.base import DisplacedPage, Tier, TierFull
from repro.tiers.remote import RemoteArea, area_policy

_TRANSIENT = (NetworkError, RemoteAccessError)


# -- GF(256) arithmetic -------------------------------------------------------
#
# The field of the AES polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d),
# generator 2.  Exp table doubled so products of logs index directly.

_GF_EXP = [0] * 512
_GF_LOG = [0] * 256
_value = 1
for _power in range(255):
    _GF_EXP[_power] = _value
    _GF_LOG[_value] = _power
    _value <<= 1
    if _value & 0x100:
        _value ^= 0x11D
for _power in range(255, 512):
    _GF_EXP[_power] = _GF_EXP[_power - 255]
del _value, _power


def _gf_mul(a, b):
    if a == 0 or b == 0:
        return 0
    return _GF_EXP[_GF_LOG[a] + _GF_LOG[b]]


def _gf_pow(a, power):
    if power == 0:
        return 1
    if a == 0:
        return 0
    return _GF_EXP[(_GF_LOG[a] * power) % 255]


def _gf_inv(a):
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(256)")
    return _GF_EXP[255 - _GF_LOG[a]]


def _matmul(left, right):
    rows = len(left)
    inner = len(right)
    cols = len(right[0])
    out = [[0] * cols for _ in range(rows)]
    for i in range(rows):
        for j in range(cols):
            acc = 0
            for t in range(inner):
                acc ^= _gf_mul(left[i][t], right[t][j])
            out[i][j] = acc
    return out


def _invert(matrix):
    """Gauss-Jordan inversion over GF(256)."""
    size = len(matrix)
    work = [list(row) + [int(i == j) for j in range(size)]
            for i, row in enumerate(matrix)]
    for col in range(size):
        pivot = next(
            (row for row in range(col, size) if work[row][col]), None
        )
        if pivot is None:
            raise ValueError("matrix is singular over GF(256)")
        work[col], work[pivot] = work[pivot], work[col]
        inv = _gf_inv(work[col][col])
        work[col] = [_gf_mul(inv, item) for item in work[col]]
        for row in range(size):
            if row == col or not work[row][col]:
                continue
            factor = work[row][col]
            work[row] = [
                item ^ _gf_mul(factor, work[col][index])
                for index, item in enumerate(work[row])
            ]
    return [row[size:] for row in work]


class StripeCodec:
    """Systematic Reed-Solomon erasure code over GF(256).

    ``encode`` splits a payload into ``data_shards`` fragments and
    appends ``parity_shards`` parity fragments; ``reconstruct``
    recovers the payload bit-identically from *any*
    ``data_shards``-sized subset of the fragments.  The encoding
    matrix is a Vandermonde matrix normalized so its top ``k`` rows
    are the identity (data fragments are verbatim slices), which
    keeps every ``k``-row submatrix invertible — the standard
    construction Hydra builds on.
    """

    def __init__(self, data_shards, parity_shards):
        if data_shards < 1:
            raise ValueError("data_shards must be >= 1")
        if parity_shards < 1:
            raise ValueError("parity_shards must be >= 1")
        if data_shards + parity_shards > 256:
            raise ValueError("GF(256) supports at most 256 shards")
        self.data_shards = data_shards
        self.parity_shards = parity_shards
        self.total_shards = data_shards + parity_shards
        vandermonde = [
            [_gf_pow(point, column) for column in range(data_shards)]
            for point in range(self.total_shards)
        ]
        top_inverse = _invert([row[:] for row in vandermonde[:data_shards]])
        self.matrix = _matmul(vandermonde, top_inverse)

    def fragment_size(self, nbytes):
        """Bytes per fragment for an ``nbytes`` payload (ceil split)."""
        return max(1, -(-nbytes // self.data_shards))

    def encode(self, data):
        """Split ``data`` into ``total_shards`` fragments (data first)."""
        frag = self.fragment_size(len(data))
        shards = [
            bytes(data[index * frag:(index + 1) * frag]).ljust(frag, b"\0")
            for index in range(self.data_shards)
        ]
        fragments = list(shards)
        for parity in range(self.parity_shards):
            row = self.matrix[self.data_shards + parity]
            out = bytearray(frag)
            for column, shard in enumerate(shards):
                coefficient = row[column]
                if not coefficient:
                    continue
                log_c = _GF_LOG[coefficient]
                for offset, value in enumerate(shard):
                    if value:
                        out[offset] ^= _GF_EXP[log_c + _GF_LOG[value]]
            fragments.append(bytes(out))
        return fragments

    def reconstruct(self, fragments, size):
        """Rebuild the original ``size``-byte payload.

        ``fragments`` maps fragment index -> fragment bytes; any
        ``data_shards`` entries suffice.  Raises :class:`ValueError`
        with fewer survivors or mismatched fragment lengths.
        """
        if len(fragments) < self.data_shards:
            raise ValueError(
                "need {} fragments, have {}".format(
                    self.data_shards, len(fragments)
                )
            )
        indices = sorted(fragments)[:self.data_shards]
        frag = len(fragments[indices[0]])
        if any(len(fragments[index]) != frag for index in indices):
            raise ValueError("fragments differ in size")
        if indices == list(range(self.data_shards)):
            shards = [fragments[index] for index in indices]
        else:
            decode = _invert([list(self.matrix[i]) for i in indices])
            shards = []
            for row in decode:
                out = bytearray(frag)
                for column, index in enumerate(indices):
                    coefficient = row[column]
                    if not coefficient:
                        continue
                    log_c = _GF_LOG[coefficient]
                    for offset, value in enumerate(fragments[index]):
                        if value:
                            out[offset] ^= _GF_EXP[log_c + _GF_LOG[value]]
                shards.append(bytes(out))
        return b"".join(shards)[:size]

    def rebuild_fragment(self, fragments, index, size):
        """Recompute one missing fragment from any ``k`` survivors."""
        data = self.reconstruct(fragments, size)
        return self.encode(data)[index]


class StripeMap:
    """Pure stripe bookkeeping: which node holds which fragment.

    The invariants the property tests pin: every fragment index of a
    page has at most one holder, a page's fragments live on distinct
    nodes, and a page leaves the map only when fewer than
    ``data_shards`` fragments survive (:meth:`drop_node` reports it as
    lost) or it is removed outright.
    """

    def __init__(self, data_shards, parity_shards):
        if data_shards < 1 or parity_shards < 1:
            raise ValueError("shard counts must be >= 1")
        self.data_shards = data_shards
        self.parity_shards = parity_shards
        self.total_shards = data_shards + parity_shards
        self._fragments = {}  # page_id -> {fragment index: node_id}
        self._by_node = {}  # node_id -> set of (page_id, index)

    def __len__(self):
        return len(self._fragments)

    def __contains__(self, page_id):
        return page_id in self._fragments

    def fragments(self, page_id):
        return dict(self._fragments.get(page_id, ()))

    def holders(self, page_id):
        return sorted(set(self._fragments.get(page_id, {}).values()))

    def pages_on(self, node_id):
        return sorted({
            page_id for page_id, _index in self._by_node.get(node_id, ())
        })

    def missing(self, page_id):
        held = self._fragments.get(page_id)
        if held is None:
            return []
        return [index for index in range(self.total_shards)
                if index not in held]

    def place(self, page_id, holders):
        """Record a full stripe: ``holders[i]`` gets fragment ``i``."""
        holders = tuple(holders)
        if len(holders) != self.total_shards:
            raise ValueError(
                "a stripe needs {} holders, got {}".format(
                    self.total_shards, len(holders)
                )
            )
        if len(set(holders)) != len(holders):
            raise ValueError("stripe holders must be distinct nodes")
        self.remove_page(page_id)
        self._fragments[page_id] = dict(enumerate(holders))
        for index, node_id in enumerate(holders):
            self._by_node.setdefault(node_id, set()).add((page_id, index))

    def set_fragment(self, page_id, index, node_id):
        """A reconstruction rebuilt fragment ``index`` onto ``node_id``."""
        held = self._fragments.get(page_id)
        if held is None or not 0 <= index < self.total_shards:
            return False
        if index in held or node_id in held.values():
            return False  # never duplicate a fragment or double-load a node
        held[index] = node_id
        self._by_node.setdefault(node_id, set()).add((page_id, index))
        return True

    def remove_page(self, page_id):
        for index, node_id in self._fragments.pop(page_id, {}).items():
            entries = self._by_node.get(node_id)
            if entries is not None:
                entries.discard((page_id, index))

    def drop_node(self, node_id):
        """A holder died; returns ``(degraded, lost)`` page-id lists.

        Degraded pages lost fragments but keep at least ``data_shards``
        and should be re-striped; lost pages fell below the threshold
        and leave the map entirely.
        """
        degraded, lost = [], []
        for page_id, index in sorted(self._by_node.pop(node_id, ())):
            held = self._fragments[page_id]
            del held[index]
            if len(held) >= self.data_shards:
                if not degraded or degraded[-1] != page_id:
                    degraded.append(page_id)
            else:
                self.remove_page(page_id)
                lost.append(page_id)
        return degraded, lost

    def under_striped(self):
        """Page ids currently missing at least one fragment."""
        return sorted(
            page_id
            for page_id, held in self._fragments.items()
            if len(held) < self.total_shards
        )


class ErasureCodedRemoteTier(Tier):
    """k-of-n striping over peer-donated slab areas."""

    name = "erasure"

    #: Per-page software cost on the remote path (work-request build +
    #: completion handling), charged once per operation.
    REMOTE_PER_PAGE_OVERHEAD = 1.2e-6

    #: Codec throughput per core: parity generation is XOR-heavy table
    #: lookups, decoding adds the matrix inversion.
    ENCODE_BANDWIDTH = 4.0 * GiB
    DECODE_BANDWIDTH = 2.5 * GiB

    #: Backoff applied while waiting for a recovered peer to finish
    #: re-registering its pools before re-admitting it as a target.
    READMIT_POLICY = RetryPolicy(
        max_attempts=6, base_delay=1e-4, multiplier=4.0, max_delay=0.05
    )

    def __init__(
        self,
        node,
        directory,
        data_shards=4,
        parity_shards=2,
        slabs_per_target=24,
        reserve_tag="ec-slab",
        rng=None,
        tracker=None,
    ):
        super().__init__()
        self.node = node
        self.env = node.env
        self.directory = directory
        self.codec = StripeCodec(data_shards, parity_shards)
        self.map = StripeMap(data_shards, parity_shards)
        self.slabs_per_target = slabs_per_target
        self.reserve_tag = reserve_tag
        self._rng = rng
        self.tracker = tracker or RecoveryTracker()
        self.tracker.clock = lambda: self.env.now
        self.areas = {}  # node_id -> RemoteArea
        self._listening = False
        self._repairs = []
        # Memory-overhead accounting: physical fragment bytes written
        # per logical byte stored (placement traffic, monotonic).
        self.logical_put_bytes = 0
        self.physical_put_bytes = 0
        # Counters for reports and tests.
        self.reads = 0
        self._read_seq = 0
        self.degraded_reconstructions = 0
        self.fragments_rebuilt = 0
        self.fallback_reads = 0
        self.rebuilds = 0

    @property
    def data_shards(self):
        return self.codec.data_shards

    @property
    def parity_shards(self):
        return self.codec.parity_shards

    @property
    def overhead_x(self):
        """Measured physical bytes per logical byte stored."""
        if not self.logical_put_bytes:
            return self.codec.total_shards / self.codec.data_shards
        return self.physical_put_bytes / self.logical_put_bytes

    def _fragment_size(self, nbytes):
        return self.codec.fragment_size(nbytes)

    def _encode_time(self, nbytes):
        return nbytes / self.ENCODE_BANDWIDTH

    def _decode_time(self, nbytes):
        return nbytes / self.DECODE_BANDWIDTH

    # -- setup ---------------------------------------------------------------

    def setup(self):
        """Generator: reserve areas on live peers, hook failure events."""
        injector = getattr(self.directory, "injector", None)
        if injector is not None and not self._listening:
            injector.on_crash(self._on_node_crash)
            injector.on_recover(self._on_node_recover)
            self._listening = True
        for peer in self.directory.peers_of(self.node.node_id):
            if self.directory.is_down(peer):
                continue
            yield from self._reserve_area(peer)

    def _reserve_area(self, peer):
        slab_bytes = self.node.config.slab_bytes
        desired = self.slabs_per_target * slab_bytes
        available = self.directory.free_receive_bytes(peer)
        nbytes = min(desired, (available // slab_bytes) * slab_bytes)
        if nbytes <= 0:
            return False
        key = (self.reserve_tag, self.node.node_id, peer)
        try:
            reply = yield from self.node.rdmc.control_call(
                peer, {"op": "reserve", "key": key, "nbytes": nbytes}
            )
        except (ControlTimeout,) + _TRANSIENT:
            return False
        if not reply.get("ok"):
            return False
        self.areas[peer] = RemoteArea(
            peer,
            nbytes,
            policy=area_policy(self.node),
            env=self.env,
            name="{}:{}->{}".format(self.name, self.node.node_id, peer),
        )
        return True

    # -- swap-out path (stripe fan-out) --------------------------------------

    def put(self, page, nbytes):
        """Generator: encode, fan ``n`` fragments out, commit or spill."""
        frag = self._fragment_size(nbytes)
        targets = self._select_targets(frag)
        if targets is None:
            raise TierFull(
                "{}: fewer than {} live areas with {} free bytes".format(
                    self.name, self.codec.total_shards, frag
                )
            )
        yield self.env.timeout(self.REMOTE_PER_PAGE_OVERHEAD)
        tracer = self.env.tracer
        span = None
        if tracer.enabled:
            span = tracer.begin(
                "ec.encode",
                page=page.page_id,
                k=self.codec.data_shards,
                m=self.codec.parity_shards,
                nbytes=nbytes,
            )
        yield self.env.timeout(self._encode_time(nbytes))
        if tracer.enabled:
            tracer.end(span, ok=True)
        outcomes = {}
        yield self.env.all_of(
            [
                self.env.process(
                    self._write_fragment(page.page_id, target, frag, outcomes),
                    name="stripe:{}:{}".format(page.page_id, target),
                )
                for target in targets
            ]
        )
        winners = [target for target in targets if outcomes.get(target)]
        if len(winners) < len(targets):
            # Partial failure: roll back, never commit an under-striped
            # page (a short stripe silently weakens the fault budget).
            for target in winners:
                area = self.areas.get(target)
                if area is not None:
                    area.release(page.page_id)
            self.stats.failovers.increment()
            if not self.cascade.failover.spill_on_failure:
                raise RemoteAccessError(
                    "stripe write reached {}/{} targets".format(
                        len(winners), len(targets)
                    )
                )
            yield from self.cascade.place(page, nbytes, self.index + 1)
            return
        self.map.place(page.page_id, targets)
        self.cascade.record(page.page_id, self.name, nbytes)
        self.stats.puts.increment()
        self.stats.bytes_in.increment(frag * len(targets))
        self.logical_put_bytes += nbytes
        self.physical_put_bytes += frag * len(targets)

    def _select_targets(self, frag):
        live = sorted(
            (
                area
                for area in self.areas.values()
                if area.can_fit(frag)
                and not self.directory.is_down(area.node_id)
            ),
            key=lambda area: (-area.free_bytes, area.node_id),
        )
        if len(live) < self.codec.total_shards:
            return None
        return [area.node_id for area in live[: self.codec.total_shards]]

    def _write_fragment(self, page_id, target, frag, outcomes):
        try:
            yield from self._one_sided(target, frag, write=True)
        except _TRANSIENT:
            outcomes[target] = False
        else:
            area = self.areas.get(target)
            if area is not None and not area.reserve(page_id, frag):
                # An arena-backed area refused the fragment despite the
                # selection-time check: fragmentation left no usable run.
                outcomes[target] = False
                return
            outcomes[target] = True

    # -- swap-in path --------------------------------------------------------

    def get(self, page, label, meta):
        """Generator: read the ``k`` data fragments; degrade to parity.

        The healthy path gathers the systematic (data) fragments — no
        decoding needed.  If any data-fragment holder is missing,
        down, or fails mid-read, the degraded path reconstructs from
        any ``k`` surviving fragments under an ``ec.reconstruct``
        span; only when fewer than ``k`` survive does the read fall to
        the disk backup.
        """
        stored = meta
        frag = self._fragment_size(stored)
        fragments = self.map.fragments(page.page_id)
        data_holders = []
        degraded = False
        for index in range(self.codec.data_shards):
            holder = fragments.get(index)
            if holder is None or self.directory.is_down(holder):
                degraded = True
                break
            data_holders.append(holder)
        if not degraded:
            yield self.env.timeout(self.REMOTE_PER_PAGE_OVERHEAD)
            try:
                yield from self._read_fragments(
                    page.page_id, data_holders, frag
                )
            except _TRANSIENT:
                self.stats.failovers.increment()
                degraded = True
        if degraded:
            served = yield from self._degraded_read(
                page, stored, frag, fragments
            )
            if not served:
                # Fewer than k fragments survive (or the degraded read
                # itself failed): the degraded disk-backup path.
                self.stats.failovers.increment()
                if not self.cascade.failover.spill_on_failure:
                    raise RemoteAccessError(
                        "fewer than {} live fragments for page {}".format(
                            self.codec.data_shards, page.page_id
                        )
                    )
                self.fallback_reads += 1
                yield from self.node.hdd.read(
                    self.node.alloc_disk_span(0), PAGE_SIZE
                )
                return []
        yield from self.cascade.decompress(page)
        self.reads += 1
        self.stats.bytes_out.increment(stored)
        return []

    def _degraded_read(self, page, stored, frag, fragments):
        """Generator: reconstruct from any ``k`` survivors; True if served."""
        live = sorted(
            (index, holder)
            for index, holder in fragments.items()
            if not self.directory.is_down(holder)
        )
        if len(live) < self.codec.data_shards:
            return False
        chosen = live[: self.codec.data_shards]
        tracer = self.env.tracer
        began = self.env.now
        span = None
        if tracer.enabled:
            span = tracer.begin(
                "ec.reconstruct",
                mode="degraded-read",
                page=page.page_id,
                missing=self.codec.total_shards - len(live),
            )
        yield self.env.timeout(self.REMOTE_PER_PAGE_OVERHEAD)
        try:
            yield from self._read_fragments(
                page.page_id, [holder for _index, holder in chosen], frag
            )
        except _TRANSIENT:
            if tracer.enabled:
                tracer.end(span, ok=False)
            return False
        yield self.env.timeout(self._decode_time(stored))
        if tracer.enabled:
            tracer.end(span, ok=True)
            tracer.latency("ec", "read.degraded", self.env.now - began)
        self.tracker.degraded_reads.increment()
        self.degraded_reconstructions += 1
        return True

    def _read_fragments(self, page_id, holders, frag):
        outcomes = {}
        # The sequence number keeps concurrent reads of the same
        # fragment (a degraded read racing a repair's source read) on
        # distinct trace tracks.
        self._read_seq += 1
        seq = self._read_seq
        yield self.env.all_of(
            [
                self.env.process(
                    self._read_fragment(holder, frag, position, outcomes),
                    name="ec-read:{}:{}:{}".format(seq, page_id, holder),
                )
                for position, holder in enumerate(holders)
            ]
        )
        if not all(outcomes.get(position) for position in range(len(holders))):
            raise RemoteAccessError(
                "fragment read for page {} failed".format(page_id)
            )

    def _read_fragment(self, holder, frag, position, outcomes):
        try:
            yield from self._one_sided(holder, frag, write=False)
        except _TRANSIENT:
            outcomes[position] = False
        else:
            outcomes[position] = True

    # -- failure handling ----------------------------------------------------

    def _on_node_crash(self, node_id):
        area = self.areas.pop(node_id, None)
        degraded, lost = self.map.drop_node(node_id)
        if area is None and not degraded and not lost:
            return
        self.tracker.begin_repair(node_id)
        if lost:
            self._record_lost(lost)
        self._repairs.append(
            self.env.process(
                self._reconstruct(node_id, degraded),
                name="ec-repair:" + node_id,
            )
        )

    def _record_lost(self, page_ids):
        self.tracker.pages_lost.increment(len(page_ids))
        if self.cascade is not None and self.cascade.failover.rebuild_on_failure:
            self._repairs.append(
                self.env.process(
                    self._rebuild(page_ids),
                    name="ec-rebuild:{}".format(len(page_ids)),
                )
            )

    def _reconstruct(self, victim, page_ids):
        """Generator: background re-striping of the victim's fragments."""
        for page_id in page_ids:
            yield from self._restripe_page(victim, page_id)
        self.tracker.complete_repair(victim)

    def _restripe_page(self, victim, page_id, target=None):
        """Generator: rebuild missing fragments of one page.

        With ``target=None`` (crash repair) every missing fragment goes
        to a freely chosen spare; with a ``target`` (readmission
        top-up) at most one fragment is rebuilt onto that node — a
        stripe never doubles up on a holder.
        """
        label, meta = self.cascade.location(page_id)
        if label != self.name:
            return
        stored = meta
        frag = self._fragment_size(stored)
        for index in self.map.missing(page_id):
            fragments = self.map.fragments(page_id)
            live = sorted(
                (held_index, holder)
                for held_index, holder in fragments.items()
                if not self.directory.is_down(holder)
            )
            if len(live) < self.codec.data_shards:
                return  # not reconstructible until a holder returns
            if target is None:
                destination = self._pick_spare(frag, exclude=fragments.values())
            else:
                area = self.areas.get(target)
                if (
                    area is None
                    or self.directory.is_down(target)
                    or target in fragments.values()
                    or not area.can_fit(frag)
                ):
                    return
                destination = target
            if destination is None:
                return  # stays under-striped until a peer returns
            sources = live[: self.codec.data_shards]
            tracer = self.env.tracer
            began = self.env.now
            span = None
            if tracer.enabled:
                span = tracer.begin(
                    "ec.reconstruct",
                    mode="repair",
                    victim=victim,
                    page=page_id,
                    index=index,
                    source=sources[0][1],
                    target=destination,
                )
            try:
                yield from self._read_fragments(
                    page_id, [holder for _i, holder in sources], frag
                )
                yield self.env.timeout(self._decode_time(stored))
                yield from self._one_sided(destination, frag, write=True)
            except _TRANSIENT:
                if tracer.enabled:
                    tracer.end(span, ok=False)
                continue
            if tracer.enabled:
                tracer.end(span, ok=True)
                tracer.latency("ec", "reconstruct", self.env.now - began)
            # Re-verify before committing: the cluster kept running
            # while the fragment reads and the write were in flight.
            area = self.areas.get(destination)
            if (
                area is None
                or self.directory.is_down(destination)
                or self.cascade.location(page_id)[0] != self.name
                or not area.reserve(page_id, frag)
            ):
                continue
            if self.map.set_fragment(page_id, index, destination):
                self.fragments_rebuilt += 1
                self.tracker.pages_re_replicated.increment()
            else:
                area.release(page_id)
            if target is not None:
                return  # one fragment per readmitted node per page

    def _rebuild(self, page_ids):
        """Generator: re-place wholly lost pages below, from the backup."""
        for page_id in page_ids:
            label, meta = self.cascade.location(page_id)
            if label != self.name:
                continue
            stored = meta
            yield from self.node.hdd.read(self.node.alloc_disk_span(0), PAGE_SIZE)
            yield from self.cascade.place(
                DisplacedPage(page_id, stored), stored, self.index + 1
            )
            self.rebuilds += 1

    def _pick_spare(self, frag, exclude=()):
        exclude = set(exclude)
        live = sorted(
            (
                area
                for area in self.areas.values()
                if area.node_id not in exclude
                and area.can_fit(frag)
                and not self.directory.is_down(area.node_id)
            ),
            key=lambda area: (-area.free_bytes, area.node_id),
        )
        return live[0].node_id if live else None

    # -- recovery handling ---------------------------------------------------

    def _on_node_recover(self, node_id):
        if node_id == self.node.node_id or node_id in self.areas:
            return
        if node_id not in self.directory.peers_of(self.node.node_id):
            return
        self._repairs.append(
            self.env.process(
                self._readmit(node_id), name="ec-readmit:" + node_id
            )
        )

    def _readmit(self, node_id):
        """Generator: re-reserve an area on a recovered peer, with backoff,
        then re-stripe under-striped pages onto it."""
        policy = self.READMIT_POLICY
        for attempt in range(1, policy.max_attempts + 1):
            if self.directory.is_down(node_id):
                return
            admitted = yield from self._reserve_area(node_id)
            if admitted:
                self.tracker.nodes_recovered.increment()
                yield from self._top_up_stripes(node_id)
                return
            if attempt < policy.max_attempts:
                yield self.env.timeout(policy.delay(attempt, self._rng))

    def _top_up_stripes(self, node_id):
        """Generator: rebuild missing fragments onto the returned peer."""
        for page_id in self.map.under_striped():
            if (
                self.areas.get(node_id) is None
                or self.directory.is_down(node_id)
            ):
                return
            yield from self._restripe_page(node_id, page_id, target=node_id)

    # -- bookkeeping ---------------------------------------------------------

    def forget(self, page_id, label, meta):
        held = self.map.fragments(page_id)
        for _index, holder in held.items():
            area = self.areas.get(holder)
            if area is not None:
                area.release(page_id)
        self.map.remove_page(page_id)

    def _one_sided(self, target, nbytes, write):
        region = self.directory.receive_region_of(target)
        if region is None:
            raise RemoteAccessError("no region on {!r}".format(target))
        qp = yield from self.node.device.connect(self.directory.device_of(target))
        if write:
            yield from qp.write(region, nbytes)
        else:
            yield from qp.read(region, nbytes)

    # -- reporting -----------------------------------------------------------

    def snapshot(self):
        row = self.stats.row()
        row.update(self.tracker.snapshot())
        row.update(
            {
                "scheme": "ec({}+{})".format(
                    self.codec.data_shards, self.codec.parity_shards
                ),
                "data_shards": self.codec.data_shards,
                "parity_shards": self.codec.parity_shards,
                "replication": None,
                "overhead_x": self.overhead_x,
                "degraded_reconstructions": self.degraded_reconstructions,
                "fragments_rebuilt": self.fragments_rebuilt,
                "rebuilds": self.rebuilds,
            }
        )
        return row
