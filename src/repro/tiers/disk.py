"""Local storage tiers: kernel swap slots, and batch spill areas.

Two very different ways a cascade uses local block storage:

* :class:`DiskSwapTier` — the full kernel swap path (Section V's Linux
  baseline): log-structured slot allocation, coalesced asynchronous
  writeback with dirty throttling, cluster readahead on swap-in;
* :class:`BatchSpillTier` — the bottom of the FastSwap/XMemPod
  cascade: whole compressed batches land in one merged device write
  when the tiers above are full, single pages read back on fault.
"""

from repro.hw.latency import PAGE_SIZE, CpuSpec
from repro.sim import Resource
from repro.tiers.base import Tier


class DiskSwapTier(Tier):
    """Swap to a local block device through the kernel swap path.

    Swap-out is *asynchronous*: kswapd writes dirty pages back in the
    background, so eviction only charges the submit cost — but the
    writeback stream occupies the disk, delaying the swap-in reads that
    do block the faulting task.  A bounded writeback window models the
    kernel's dirty throttling: eviction stalls once too many writes are
    in flight.
    """

    name = "disk"

    #: Effective swap readahead in pages.  The block layer's default
    #: device readahead is 128 KB (read_ahead_kb) = 32 pages, which is
    #: what sequential swap-in streams settle at.
    DEFAULT_READAHEAD = 32
    #: Contiguous swap-out pages merged into one writeback bio (the
    #: block layer merges adjacent requests; slots are log-allocated so
    #: eviction bursts are contiguous).
    WRITE_COALESCE_PAGES = 32
    #: In-flight writeback bios before eviction throttles.
    WRITEBACK_WINDOW = 8

    def __init__(self, node, readahead=DEFAULT_READAHEAD, cpu=None,
                 device=None):
        super().__init__()
        self.node = node
        self.env = node.env
        self.disk = device if device is not None else node.hdd
        self.readahead = readahead
        self.cpu = cpu or CpuSpec()
        self._slot_of = {}  # page_id -> slot index
        self._page_at = {}  # slot index -> Page
        self._free_slots = []
        self._next_slot = 0
        self._writeback = Resource(
            node.env, capacity=self.WRITEBACK_WINDOW, name="writeback"
        )
        self._pending_write_slots = []
        self.reads = 0
        self.writes = 0

    def _allocate_slot(self, page):
        # Log-structured slot allocation: the kernel's cluster allocator
        # hands out contiguous runs, so the writeback stream stays
        # sequential; freed slots are reclaimed lazily (the swap area is
        # provisioned much larger than the working set).
        slot = self._next_slot
        self._next_slot += 1
        self._slot_of[page.page_id] = slot
        self._page_at[slot] = page
        return slot

    def _release_slot(self, page_id):
        slot = self._slot_of.pop(page_id, None)
        if slot is not None:
            self._page_at.pop(slot, None)
            self._free_slots.append(slot)

    def put(self, page, nbytes):
        """Generator: submit the page for background writeback."""
        # Rewrites get a fresh slot at the log head (the old copy was
        # invalidated when the page was dirtied), keeping writeback
        # sequential.
        self._release_slot(page.page_id)
        slot = self._allocate_slot(page)
        self.cascade.record(page.page_id, self.name, None)
        yield self.env.timeout(self.cpu.block_layer_overhead)
        self._pending_write_slots.append(slot)
        self.writes += 1
        self.stats.puts.increment()
        self.stats.bytes_in.increment(PAGE_SIZE)
        if len(self._pending_write_slots) >= self.WRITE_COALESCE_PAGES:
            yield from self._submit_writeback()

    def drain(self):
        """Generator: push out any partially merged writeback bio."""
        if self._pending_write_slots:
            yield from self._submit_writeback()

    def _submit_writeback(self):
        slots, self._pending_write_slots = self._pending_write_slots, []
        window_slot = self._writeback.request()
        yield window_slot  # dirty throttling: stall when backlogged
        self.env.process(
            self._writeback_io(slots, window_slot), name="kswapd-write"
        )

    def _writeback_io(self, slots, window_slot):
        try:
            # Slots from one eviction burst are contiguous: one merged bio.
            yield from self.disk.write(min(slots) * PAGE_SIZE,
                                       len(slots) * PAGE_SIZE)
        finally:
            self._writeback.release(window_slot)

    def get(self, page, label, meta):
        """Generator: read the page (+ readahead cluster) from disk."""
        slot = self._slot_of[page.page_id]
        # Cluster readahead: the whole extent is read in one request
        # (one seek, sequential transfer); slots that still hold valid
        # pages land in the swap cache, holes are just wasted bytes.
        extra = [
            neighbour
            for offset in range(1, self.readahead)
            for neighbour in (self._page_at.get(slot + offset),)
            if neighbour is not None
        ]
        yield self.env.timeout(self.cpu.block_layer_overhead)
        yield from self.disk.read(slot * PAGE_SIZE,
                                  self.readahead * PAGE_SIZE)
        self.reads += 1
        self.stats.bytes_out.increment(self.readahead * PAGE_SIZE)
        return extra

    def forget(self, page_id, label, meta):
        self._release_slot(page_id)


class BatchSpillTier(Tier):
    """Merged batch writes to a local device below the remote tier.

    With an SSD device this is the XMemPod cascade's third level
    (shared memory → remote → SSD); with the HDD it is FastSwap's
    disk fallback.  The tier label doubles as its name ("ssd"/"disk").
    """

    def __init__(self, node, device, label, cpu=None):
        self.name = label
        super().__init__()
        self.node = node
        self.env = node.env
        self.device = device
        self.cpu = cpu or CpuSpec()
        self.writes = 0
        self.reads = 0

    def put(self, page, nbytes):
        yield from self.put_batch([(page, nbytes)], nbytes)

    def put_batch(self, batch, nbytes):
        """Generator: one merged device write for the whole batch."""
        offset = self.node.alloc_disk_span(nbytes)
        yield self.env.timeout(self.cpu.block_layer_overhead)
        yield from self.device.write(offset, nbytes)
        self.writes += 1
        for page, stored in batch:
            self.cascade.record(page.page_id, self.name, stored)
        self.stats.puts.increment(len(batch))
        self.stats.bytes_in.increment(nbytes)

    def get(self, page, label, meta):
        stored = meta
        yield self.env.timeout(self.cpu.block_layer_overhead)
        yield from self.device.read(self.node.alloc_disk_span(0), stored)
        yield from self.cascade.decompress(page)
        self.reads += 1
        self.stats.bytes_out.increment(stored)
        return []
