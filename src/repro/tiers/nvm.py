"""Byte-addressable NVM as a cascade tier (paper Section VI).

The paper's discussion section places emerging non-volatile memories
(PCM, 3D-XPoint) between DRAM and SSD.  The tier swaps pages over the
DAX path — no block layer — and raises tier-full when the device's
reserved capacity runs out, letting a cascade put NVM *above* remote
memory or SSD (the hybrid designs of Section VI).
"""

from repro.hw.nvm import NvmDevice
from repro.tiers.base import Tier, TierFull


class NvmTier(Tier):
    """Paging onto local persistent memory."""

    name = "nvm"

    def __init__(self, node, capacity_bytes=None):
        super().__init__()
        self.node = node
        self.env = node.env
        capacity = capacity_bytes or 4 * node.config.slab_bytes * 64
        self.device = NvmDevice(
            node.env,
            capacity,
            spec=node.config.calibration.nvm,
            name="nvm:{}".format(node.node_id),
        )

    def put(self, page, nbytes):
        """Generator: store the page on NVM (byte-addressable, no block
        layer — the DAX path)."""
        if not self.device.reserve(nbytes):
            raise TierFull("nvm swap area full")
        self.cascade.record(page.page_id, self.name, nbytes)
        self.stats.puts.increment()
        self.stats.bytes_in.increment(nbytes)
        yield from self.device.write(nbytes)

    def get(self, page, label, meta):
        """Generator: load the page back from NVM."""
        yield from self.device.read(meta)
        yield from self.cascade.decompress(page)
        self.stats.bytes_out.increment(meta)
        return []

    def forget(self, page_id, label, meta):
        self.device.free(meta)
