"""Composable memory-tier cascades (the unifying abstraction).

A :class:`TierCascade` is a :class:`~repro.swap.base.SwapBackend`
assembled from an ordered stack of :class:`~repro.tiers.base.Tier`
objects plus three pluggable policies:

* a **placement policy** — which tier a swap-out *starts* at (adaptive
  top-down, or a fixed distribution ratio pinning address blocks to a
  tier, the paper's FS-SM … FS-RDMA knob);
* an optional **compression layer** — multi-granularity compression
  charged once on the way out, decompression charged per fetched page
  on the way in (Section IV-H);
* a **failover policy** — what a tier does when its medium fails
  mid-operation (spill down the cascade, Hydra-style, or fail fast).

Spill-on-full is structural: a tier that raises
:class:`~repro.tiers.base.TierFull` passes the page to the next tier
down.  Demotions (LRU displacement, compressed-pool writeback) re-enter
the cascade *below* the demoting tier, so pages conserve: every
swapped-out, undiscarded page lives in exactly one tier at all times.
"""

from repro.core.errors import NoRemoteCapacity
from repro.hw.latency import PAGE_SIZE
from repro.swap.base import SwapBackend
from repro.tiers.base import TierFull


class CascadeFull(NoRemoteCapacity):
    """No tier in the cascade could hold the page."""


class AdaptivePlacement:
    """Top-down placement: always start at the fastest tier."""

    #: Whether the top tier may displace its LRU entry downward to make
    #: room instead of spilling the incoming page.
    displace_on_full = False

    def first_tier(self, cascade, page_id):
        return 0

    def describe(self):
        return "adaptive"


class FixedRatioPlacement:
    """Pin a fixed fraction of the address space to the top tier.

    Window-aligned blocks of the page-id space are hashed to one tier,
    so batching/PBS adjacency survives the split (per-page round-robin
    would shred every window).  ``fraction`` is the share served by the
    top tier: 1.0 = all top (FS-SM), 0.0 = all second tier (FS-RDMA).
    """

    #: Fixed-ratio mode keeps hot pages in the top tier by displacing
    #: its LRU entry downward, then retrying once.
    displace_on_full = True

    def __init__(self, fraction, window=8):
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        self.fraction = fraction
        self.window = max(1, window)

    def first_tier(self, cascade, page_id):
        block = page_id // self.window
        # Knuth multiplicative hash: stable across processes (unlike
        # built-in hash(), which is salted).
        bucket = (block * 2654435761) % 4294967296
        return 0 if bucket < self.fraction * 4294967296 else 1

    def describe(self):
        return "fixed-ratio {:.0%}".format(self.fraction)


class FailoverPolicy:
    """What a tier does when its medium fails mid-operation.

    Three orthogonal capabilities, read by the tiers as flags:

    * ``spill_on_failure`` — failed writes cascade to the next tier and
      failed reads fall back to the tier's backup medium instead of
      propagating the error;
    * ``read_from_replica`` — a replicated tier may serve a read from a
      surviving replica before considering the operation failed;
    * ``rebuild_on_failure`` — pages whose every copy died are
      re-placed lower in the cascade (from the backup) instead of
      lingering on the degraded path.
    """

    spill_on_failure = True
    read_from_replica = False
    rebuild_on_failure = False

    def describe(self):
        return "failover"


class DegradeToDisk(FailoverPolicy):
    """On a tier failure, route the operation down the cascade.

    Writes cascade to the next tier (a dead RDMA target degrades to
    SSD/disk); reads fall back to the tier's local backup medium.  This
    is the resilience behaviour every Section V system ships with.
    """

    def describe(self):
        return "degrade-to-disk"


class FailoverToReplica(DegradeToDisk):
    """Serve from surviving replicas first; degrade only past the last.

    The Hydra-style policy for replicated tiers: reads try the next
    live holder before touching the backup medium, writes that cannot
    reach a full replica set spill down rather than under-replicate.
    """

    read_from_replica = True

    def describe(self):
        return "failover-to-replica"


class EvictAndRebuild(FailoverToReplica):
    """Replica failover plus eager rebuild of wholly lost pages.

    When a page's last replica dies, the page is re-placed below the
    failed tier from the backup copy, so subsequent reads pay the lower
    tier's price once instead of the degraded path's price every time.
    """

    rebuild_on_failure = True

    def describe(self):
        return "evict-and-rebuild"


class SpillDownFailover(DegradeToDisk):
    """Deprecated name for :class:`DegradeToDisk` (kept one release)."""

    def describe(self):
        return "spill-down"


class FailFastFailover(FailoverPolicy):
    """Propagate tier failures to the caller (no degraded mode).

    Useful for experiments isolating a single tier's behaviour, and as
    the baseline against which replication/failover policies are
    measured.
    """

    spill_on_failure = False

    def describe(self):
        return "fail-fast"


class TierCascade(SwapBackend):
    """A swap backend composed from an ordered stack of tiers."""

    name = "cascade"

    def __init__(self, node, tiers, name=None, placement=None,
                 compression=None, failover=None, pbs=None):
        if not tiers:
            raise ValueError("a cascade needs at least one tier")
        self.node = node
        self.env = node.env
        self.tiers = list(tiers)
        if name is not None:
            self.name = name
        self.placement = placement or AdaptivePlacement()
        self.compression = compression
        self.failover = failover or SpillDownFailover()
        self.pbs = pbs
        #: page_id -> (label, meta): which tier holds each page, and the
        #: tier-private metadata needed to fetch it back.
        self._where = {}
        self._by_label = {}
        for index, tier in enumerate(self.tiers):
            tier.attach(self, index)
            for label in tier.labels:
                if label in self._by_label:
                    raise ValueError("duplicate tier label {!r}".format(label))
                self._by_label[label] = tier
        if pbs is not None:
            pbs.attach(self)
        self.page_table = None  # set via bind_page_table (enables PBS)
        self._mmu_stats = None

    # -- location map -------------------------------------------------------

    def record(self, page_id, label, meta):
        """Note that ``page_id`` now lives under ``label`` (tier-called)."""
        self._where[page_id] = (label, meta)

    def location(self, page_id):
        """``(label, meta)`` of a page, or ``(None, None)`` if absent."""
        return self._where.get(page_id, (None, None))

    def pages_held(self):
        """page_id -> label for every page the cascade currently holds."""
        return {page_id: label for page_id, (label, _m) in self._where.items()}

    # -- SwapBackend contract -----------------------------------------------

    def setup(self):
        """Generator: initialize every tier, top to bottom."""
        for tier in self.tiers:
            yield from tier.setup()

    def swap_out(self, page):
        """Generator: compress (optional), then place down the cascade."""
        if self.compression is not None:
            stored = yield from self.compression.compress_out(page)
        else:
            stored = PAGE_SIZE
        self.forget(page.page_id)
        start = self.placement.first_tier(self, page.page_id)
        yield from self.place(page, stored, start)

    def place(self, page, stored, start=0):
        """Generator: store ``page`` in the first tier from ``start`` that
        takes it; spill-on-full walks the stack downward."""
        tracer = self.env.tracer
        for tier in self.tiers[start:]:
            began = self.env.now
            span = (
                tracer.begin(
                    "tier.put", tier=tier.name, page=page.page_id,
                    stored=stored,
                )
                if tracer.enabled else None
            )
            try:
                yield from tier.put(page, stored)
            except TierFull:
                # The un-ended span is simply dropped: refusals record a
                # tier.miss instant instead.
                tier.stats.spills.increment()
                if tracer.enabled:
                    tracer.instant(
                        "tier.miss", tier=tier.name, page=page.page_id,
                        stored=stored,
                    )
                continue
            tier.stats.put_latency.record(self.env.now - began)
            if span is not None:
                tracer.end(span)
                tracer.latency("tier", tier.name + ".put", self.env.now - began)
            return
        raise CascadeFull(
            "{}: no tier of [{}] could hold page {} ({} bytes)".format(
                self.name,
                ", ".join(tier.name for tier in self.tiers),
                page.page_id,
                stored,
            )
        )

    def place_batch(self, batch, nbytes, start=0):
        """Generator: store a whole batch in one tier (one merged write)."""
        tracer = self.env.tracer
        for tier in self.tiers[start:]:
            began = self.env.now
            try:
                yield from tier.put_batch(batch, nbytes)
            except TierFull:
                tier.stats.spills.increment(len(batch))
                if tracer.enabled:
                    tracer.instant(
                        "tier.miss", tier=tier.name, batch=len(batch),
                        stored=nbytes,
                    )
                continue
            tier.stats.put_latency.record(self.env.now - began)
            if tracer.enabled:
                tracer.latency("tier", tier.name + ".put", self.env.now - began)
            return
        raise CascadeFull(
            "{}: no tier below index {} could hold a {}-page batch".format(
                self.name, start, len(batch)
            )
        )

    def demote(self, page, stored, below):
        """Generator: push a displaced page to the tiers below ``below``."""
        tracer = self.env.tracer
        if not tracer.enabled:
            return self.place(page, stored, below.index + 1)
        return self._traced_demote(page, stored, below, tracer)

    def _traced_demote(self, page, stored, below, tracer):
        span = tracer.begin(
            "tier.demote", tier=below.name, page=page.page_id, stored=stored
        )
        yield from self.place(page, stored, below.index + 1)
        tracer.end(span)

    def swap_in(self, page):
        """Generator: fetch the page from whichever tier holds it."""
        try:
            label, meta = self._where[page.page_id]
        except KeyError:
            raise KeyError(
                "page {} not in {}".format(page.page_id, self.name)
            ) from None
        tier = self._by_label[label]
        began = self.env.now
        tracer = self.env.tracer
        span = (
            tracer.begin(
                "tier.hit", tier=tier.name, label=label, page=page.page_id
            )
            if tracer.enabled else None
        )
        extra = yield from tier.get(page, label, meta)
        if span is not None:
            tracer.end(span, prefetched=len(extra) if extra else 0)
            tracer.latency("tier", tier.name + ".get", self.env.now - began)
        tier.stats.get_latency.record(self.env.now - began)
        tier.stats.gets.increment()
        return extra or []

    def drain(self):
        """Generator: flush every tier's buffered writes, top to bottom."""
        for tier in self.tiers:
            yield from tier.drain()

    def discard(self, page):
        self.forget(page.page_id)

    def forget(self, page_id):
        """Invalidate the cascade's copy of ``page_id`` wherever it lives."""
        label, meta = self._where.pop(page_id, (None, None))
        if label is not None:
            tier = self._by_label[label]
            tier.forget(page_id, label, meta)
            tier.stats.discards.increment()

    # -- prefetch wiring ----------------------------------------------------

    def bind_page_table(self, pages_by_id, mmu_stats=None):
        """Give prefetching tiers access to page objects.

        ``mmu_stats`` (a :class:`~repro.swap.base.PagingStats`) enables
        the readahead-style feedback that scales the PBS window.
        """
        self.page_table = pages_by_id
        self._mmu_stats = mmu_stats

    def decompress(self, page):
        """Generator: charge decompression for a fetched page (no-op when
        the cascade stores raw pages)."""
        if self.compression is not None:
            yield from self.compression.decompress_in(page)

    # -- unified metrics registry -------------------------------------------

    def tier_breakdown(self):
        """Per-tier stats rows, top tier first (the metrics registry)."""
        return [tier.snapshot() for tier in self.tiers]

    def describe_stack(self):
        """Human-readable tier stack, e.g. ``sm -> remote -> disk``."""
        return " -> ".join(tier.name for tier in self.tiers)
