"""Construction of swap backends by name (used by every benchmark).

Every backend is a :class:`~repro.tiers.cascade.TierCascade`; the named
classics keep their historical classes (and counters), while the
cascade-only design points the paper discusses but no shipped system
implements — an NVM-before-remote hybrid, a compressed-remote-only
store — are assembled declaratively right here.
"""

from dataclasses import replace

from repro.hw.latency import MiB
from repro.mem.compression import CompressionEngine, GranularityStore
from repro.swap.fastswap import FastSwap, FastSwapConfig
from repro.swap.linux_swap import LinuxDiskSwap
from repro.swap.nvm_swap import NvmSwap
from repro.swap.remote_block import Infiniswap, Nbdx
from repro.swap.zswap import Zswap
from repro.tiers.cascade import FailoverToReplica, TierCascade
from repro.tiers.compressed import CompressedPoolTier, CompressionLayer
from repro.tiers.disk import BatchSpillTier
from repro.tiers.nvm import NvmTier
from repro.tiers.pbs import PbsController
from repro.tiers.remote import RemoteRdmaTier
from repro.tiers.erasure import ErasureCodedRemoteTier
from repro.tiers.remote_block import DiskBackupTier, RemoteBlockTier
from repro.tiers.replicated import ReplicatedRemoteTier

#: Baselines and systems compared across Section V ("xmempod" is the
#: paper's reference [36]: FastSwap's cascade extended with an SSD
#: tier), the Section VI NVM tier, and two cascade-only design points.
BACKEND_NAMES = (
    "linux",
    "zswap",
    "nbdx",
    "infiniswap",
    "fastswap",
    "xmempod",
    "nvm",
    "nvm-remote",
    "zswap-remote",
    "replicated-remote",
    "replicated-remote-1rtt",
    "ec-remote",
)


def _make_nvm_remote(node, directory, slabs_per_target, cpu):
    """NVM-before-remote hybrid (Section VI): a design point no shipped
    system implements — compressed pages fill a small local NVM device
    first, overflow to batched RDMA remote memory with PBS, and only a
    full cluster spills to disk."""
    engine = CompressionEngine(node.config.calibration.compression)
    store = GranularityStore((512, 1024, 2048, 4096))
    return TierCascade(
        node,
        [
            NvmTier(node, capacity_bytes=8 * node.config.slab_bytes),
            RemoteRdmaTier(
                node,
                directory,
                slabs_per_target=slabs_per_target,
                reserve_tag="nvm-remote-slab",
            ),
            BatchSpillTier(node, node.hdd, "disk", cpu=cpu),
        ],
        name="nvm-remote",
        compression=CompressionLayer(node.env, engine, store),
        pbs=PbsController(8),
    )


def _make_zswap_remote(node, directory, pool_bytes, slabs_per_target, cpu,
                       rng):
    """Compressed-remote-only store: a zbud RAM pool whose writebacks
    and rejects land in remote memory (power-of-two placement) instead
    of the local swap device; disk serves only as failure backup."""
    return TierCascade(
        node,
        [
            CompressedPoolTier(node, pool_bytes),
            RemoteBlockTier(
                node,
                directory,
                backend_name="zswap-remote",
                slabs_per_target=slabs_per_target,
                extra_op_overhead=Nbdx.EXTRA_OP_OVERHEAD,
                cpu=cpu,
                rng=rng,
                power_of_two=True,
            ),
            DiskBackupTier(
                node,
                op_overhead=cpu.block_layer_overhead + Nbdx.EXTRA_OP_OVERHEAD,
            ),
        ],
        name="zswap-remote",
    )


def _make_ec_remote(node, directory, slabs_per_target, cpu, rng,
                    data_shards=4, parity_shards=2):
    """Hydra-style erasure-coded remote memory: every page is striped
    k-of-n across peer areas (1.5x memory at the default 4+2 instead of
    replication's r-x); degraded reads reconstruct from any ``k``
    surviving fragments inside the fault window, and background
    reconstruction re-stripes lost fragments onto spare or readmitted
    nodes."""
    return TierCascade(
        node,
        [
            ErasureCodedRemoteTier(
                node,
                directory,
                data_shards=data_shards,
                parity_shards=parity_shards,
                slabs_per_target=slabs_per_target,
                rng=rng,
            ),
            DiskBackupTier(node, op_overhead=cpu.block_layer_overhead),
        ],
        name="ec-remote",
        failover=FailoverToReplica(),
    )


def _make_replicated_remote(node, directory, slabs_per_target, cpu, rng,
                            write_protocol="write-all"):
    """Hydra-style resilient remote memory (Section IV-D): every page is
    written to ``replication_factor`` peer areas in parallel; reads fall
    over to surviving replicas and only past the last to the disk
    backup.  Crashes trigger re-replication; recovered peers are
    re-admitted and topped up.  ``write_protocol="one-rtt"`` selects
    the SWARM-style single-round write path (one fabric fan-out per
    put, in-place conflict detection via version tags)."""
    from repro.net.retry import RetryPolicy

    replication = node.config.replication_factor
    name = "replicated-remote"
    if write_protocol == "one-rtt":
        name = "replicated-remote-1rtt"
    return TierCascade(
        node,
        [
            ReplicatedRemoteTier(
                node,
                directory,
                replication=replication,
                slabs_per_target=slabs_per_target,
                retry=RetryPolicy(max_attempts=3, base_delay=20e-6),
                rng=rng,
                write_protocol=write_protocol,
            ),
            DiskBackupTier(node, op_overhead=cpu.block_layer_overhead),
        ],
        name=name,
        failover=FailoverToReplica(),
    )


def make_swap_backend(name, node, directory, rng=None, fastswap_config=None,
                      zswap_pool_bytes=8 * MiB, slabs_per_target=8):
    """Build the named swap backend wired to ``node``.

    Parameters mirror what the Section V experiments vary: a
    :class:`~repro.swap.fastswap.FastSwapConfig` for the FastSwap
    variants (FS-SM ... FS-RDMA, PBS on/off, compression on/off), the
    zswap RAM pool size, and per-target slab reservations for the
    remote backends.
    """
    if name not in BACKEND_NAMES:
        raise ValueError(
            "unknown swap backend {!r}; valid backends: {}".format(
                name, ", ".join(sorted(BACKEND_NAMES))
            )
        )
    cpu = node.config.calibration.cpu
    if name == "linux":
        return LinuxDiskSwap(node, cpu=cpu)
    if name == "zswap":
        return Zswap(node, pool_bytes=zswap_pool_bytes, cpu=cpu)
    if name == "nbdx":
        return Nbdx(node, directory, slabs_per_target=slabs_per_target, cpu=cpu)
    if name == "infiniswap":
        return Infiniswap(
            node, directory, slabs_per_target=slabs_per_target, cpu=cpu, rng=rng
        )
    if name == "fastswap":
        return FastSwap(node, directory, config=fastswap_config, cpu=cpu)
    if name == "xmempod":
        config = fastswap_config or FastSwapConfig()
        backend = FastSwap(node, directory, config=replace(config, ssd_tier=True),
                           cpu=cpu)
        backend.name = "xmempod"
        return backend
    if name == "nvm":
        return NvmSwap(node, cpu=cpu)
    if name == "nvm-remote":
        return _make_nvm_remote(node, directory, slabs_per_target, cpu)
    if name == "replicated-remote":
        return _make_replicated_remote(node, directory, slabs_per_target, cpu, rng)
    if name == "replicated-remote-1rtt":
        return _make_replicated_remote(
            node, directory, slabs_per_target, cpu, rng,
            write_protocol="one-rtt",
        )
    if name == "ec-remote":
        return _make_ec_remote(node, directory, slabs_per_target, cpu, rng)
    assert name == "zswap-remote"
    return _make_zswap_remote(
        node, directory, zswap_pool_bytes, slabs_per_target, cpu, rng
    )
