"""Construction of swap backends by name (used by every benchmark)."""

from repro.hw.latency import MiB
from repro.swap.fastswap import FastSwap, FastSwapConfig
from repro.swap.linux_swap import LinuxDiskSwap
from repro.swap.remote_block import Infiniswap, Nbdx
from repro.swap.zswap import Zswap

#: Baselines and systems compared across Section V ("xmempod" is the
#: paper's reference [36]: FastSwap's cascade extended with an SSD tier).
BACKEND_NAMES = ("linux", "zswap", "nbdx", "infiniswap", "fastswap", "xmempod")


def make_swap_backend(name, node, directory, rng=None, fastswap_config=None,
                      zswap_pool_bytes=8 * MiB, slabs_per_target=8):
    """Build the named swap backend wired to ``node``.

    Parameters mirror what the Section V experiments vary: a
    :class:`~repro.swap.fastswap.FastSwapConfig` for the FastSwap
    variants (FS-SM ... FS-RDMA, PBS on/off, compression on/off), the
    zswap RAM pool size, and per-target slab reservations for the
    remote backends.
    """
    cpu = node.config.calibration.cpu
    if name == "linux":
        return LinuxDiskSwap(node, cpu=cpu)
    if name == "zswap":
        return Zswap(node, pool_bytes=zswap_pool_bytes, cpu=cpu)
    if name == "nbdx":
        return Nbdx(node, directory, slabs_per_target=slabs_per_target, cpu=cpu)
    if name == "infiniswap":
        return Infiniswap(
            node, directory, slabs_per_target=slabs_per_target, cpu=cpu, rng=rng
        )
    if name == "fastswap":
        return FastSwap(node, directory, config=fastswap_config, cpu=cpu)
    if name == "xmempod":
        config = fastswap_config or FastSwapConfig()
        from dataclasses import replace

        backend = FastSwap(node, directory, config=replace(config, ssd_tier=True),
                           cpu=cpu)
        backend.name = "xmempod"
        return backend
    raise ValueError("unknown swap backend {!r}".format(name))
