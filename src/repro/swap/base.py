"""The paging substrate: resident set, faults, and the backend contract.

:class:`VirtualMemory` models the guest MMU + kernel swap logic of one
virtual server.  Page accesses either hit the resident set (cheap), hit
the prefetch buffer / swap cache (a DRAM copy), or fault — at which
point the configured :class:`SwapBackend` is charged for the swap-in,
and LRU eviction may charge a swap-out.

Design notes
------------
* Completion time is dominated by fault service; resident hits and
  per-access compute are accumulated and charged in bulk right before
  any I/O, which keeps the event count (and wall-clock runtime) low
  without changing simulated time.
* A page evicted clean whose swap copy is still valid costs nothing on
  the way out (Linux swap-cache semantics); dirty pages always pay the
  backend's write path.
"""

from collections import OrderedDict

from repro.hw.latency import CpuSpec
from repro.sim import flatpath


class PagingStats:
    """Counters for one paging run."""

    __slots__ = (
        "accesses",
        "resident_hits",
        "prefetch_hits",
        "major_faults",
        "minor_faults",
        "swap_ins",
        "swap_outs",
        "start_time",
        "end_time",
    )

    def __init__(self):
        self.accesses = 0
        self.resident_hits = 0
        self.prefetch_hits = 0
        self.major_faults = 0
        self.minor_faults = 0
        self.swap_ins = 0
        self.swap_outs = 0
        self.start_time = 0.0
        self.end_time = 0.0

    @property
    def completion_time(self):
        return self.end_time - self.start_time

    @property
    def fault_rate(self):
        if self.accesses == 0:
            return 0.0
        return self.major_faults / self.accesses

    def snapshot(self):
        return {name: getattr(self, name) for name in self.__slots__}


class SwapBackend:
    """Contract every swap backend implements.

    Backends are charged simulated time through their generator
    methods; they never touch the resident set — that is
    :class:`VirtualMemory`'s job.
    """

    name = "abstract"

    def setup(self):
        """Generator: one-time initialization (slab reservation etc.)."""
        return
        yield  # pragma: no cover

    def swap_out(self, page):
        """Generator: persist ``page`` out of DRAM."""
        raise NotImplementedError

    def swap_in(self, page):
        """Generator: bring ``page`` back.  Returns a list of *extra*
        pages the backend opportunistically fetched in the same request
        (readahead / proactive batch swap-in); may be empty."""
        raise NotImplementedError

    def drain(self):
        """Generator: flush any buffered writes (end-of-run barrier)."""
        return
        yield  # pragma: no cover

    def discard(self, page):
        """Invalidate the backend copy of ``page`` (freed by the guest)."""


class VirtualMemory:
    """One virtual server's memory under pressure.

    Parameters
    ----------
    env:
        Simulation environment.
    pages:
        All pages of the working set (:class:`repro.mem.page.Page`).
    capacity_pages:
        Resident-set capacity; ``capacity / len(pages)`` is the paper's
        "N% configuration".
    backend:
        The swap backend to charge for misses.
    cpu:
        :class:`~repro.hw.latency.CpuSpec` for fault-path costs.
    prefetch_capacity:
        Size of the prefetch buffer / swap cache, in pages.
    fallback_windows:
        ``(start, end)`` spans of simulated time during which the
        flat-path kernel must not run (fault-injection windows); the
        event engine handles every access inside them.  Only consulted
        by :meth:`run_batch` — the streamed :meth:`access` path ignores
        them.
    """

    #: Cost of a resident hit (TLB+cache-missing DRAM access).
    HIT_TIME = 120e-9
    #: Cost of promoting a prefetched page (DRAM page copy + map).
    PROMOTE_TIME = 0.9e-6

    def __init__(self, env, pages, capacity_pages, backend, cpu=None,
                 prefetch_capacity=128, compute_per_access=1.0e-6,
                 fault_histogram=None, fallback_windows=()):
        if capacity_pages < 1:
            raise ValueError("capacity_pages must be >= 1")
        self.env = env
        self.pages = {page.page_id: page for page in pages}
        self.capacity_pages = capacity_pages
        self.backend = backend
        self.cpu = cpu or CpuSpec()
        self.prefetch_capacity = prefetch_capacity
        self.compute_per_access = compute_per_access
        #: Optional :class:`repro.metrics.stats.Histogram`: when set,
        #: every major fault's service time is recorded, so experiments
        #: can report tail latency per backend.
        self.fault_histogram = fault_histogram
        self.resident = OrderedDict()
        self.prefetch = OrderedDict()
        self.swapped_valid = set()
        self.stats = PagingStats()
        self._pending_time = 0.0
        self.fallback_windows = tuple(sorted(fallback_windows))
        #: What the flat-path kernel did for this instance.
        self.flat_stats = flatpath.FlatPathStats()

    # -- capacity (ballooning hook) ------------------------------------------

    def grow_capacity(self, extra_pages):
        """Balloon: grant the server ``extra_pages`` more resident frames."""
        self.capacity_pages += extra_pages

    # -- main entry point ------------------------------------------------------

    def access(self, page_id, write=False):
        """Generator: one memory access; charges whatever it costs."""
        self.stats.accesses += 1
        self._pending_time += self.compute_per_access
        page = self.pages[page_id]

        if page_id in self.resident:
            self.resident.move_to_end(page_id)
            self._pending_time += self.HIT_TIME
            self.stats.resident_hits += 1
            if write:
                page.dirty = True
                # Writing invalidates any swap-cache copy.
                if page_id in self.swapped_valid:
                    self.swapped_valid.discard(page_id)
                    self.backend.discard(page)
            return

        if page_id in self.prefetch:
            # Swap-cache hit: promote without backend I/O.
            del self.prefetch[page_id]
            self._pending_time += self.PROMOTE_TIME
            self.stats.prefetch_hits += 1
            self.stats.minor_faults += 1
            yield from self._make_room()
            self._insert_resident(page, write)
            return

        # Real fault.
        self._pending_time += self.cpu.page_fault_overhead + self.cpu.context_switch
        yield from self._flush_pending()
        yield from self._make_room()
        if page_id in self.swapped_valid:
            self.stats.major_faults += 1
            fault_started = self.env.now
            tracer = self.env.tracer
            span = (
                tracer.begin("page.fault", page=page_id, write=write)
                if tracer.enabled else None
            )
            extra = yield from self.backend.swap_in(page)
            if span is not None:
                tracer.end(span, prefetched=len(extra) if extra else 0)
                tracer.latency("fault", "major", self.env.now - fault_started)
            if self.fault_histogram is not None:
                self.fault_histogram.record(self.env.now - fault_started)
            self.stats.swap_ins += 1
            self._absorb_prefetched(extra or ())
        else:
            # First touch: demand-zero fault, no backend involved.
            self.stats.minor_faults += 1
        self._insert_resident(page, write)

    def run_batch(self, batch, start=0, stop=None):
        """Generator: drive a pre-materialized
        :class:`~repro.workloads.batch.AccessBatch` (two-speed engine).

        Fault-free stretches execute through the flat-path kernel
        (:func:`repro.sim.flatpath.advance`); every boundary access —
        major fault, eviction I/O, scheduled events, fault-injection
        window, held migration epoch — runs through the ordinary
        :meth:`access` generator, so the run is bit-identical to
        streaming the same reference string one access at a time.

        ``start``/``stop`` select the half-open access slice
        ``[start, stop)`` (default: the whole batch) without copying:
        request-oriented callers — the serving driver above all —
        build one batch per tenant class and replay it one request
        window at a time, so a million-user schedule costs zero
        per-request array allocations.

        Open-loop batches (``gaps`` set) are not bulked: the timed
        waits between accesses must interleave with other processes,
        so the whole batch runs on the event engine.
        """
        addresses = batch.addresses
        writes = batch.writes
        gaps = batch.gaps
        total = len(addresses) if stop is None else stop
        if gaps is not None:
            for index in range(start, total):
                gap = gaps[index]
                if gap > 0.0:
                    yield self.env.timeout(gap)
                yield from self.access(addresses[index], write=writes[index])
            return
        resident = self.resident
        prefetch = self.prefetch
        swapped_valid = self.swapped_valid
        index = start
        while index < total:
            # Cheap pre-checks: an access that would immediately hit a
            # boundary — a major fault, or an eviction whose LRU victim
            # needs swap-out I/O — goes straight to the event engine.
            # Fault storms and thrashing would otherwise pay the
            # kernel's entry cost once per access for zero bulked work.
            page_id = addresses[index]
            if page_id not in resident:
                if page_id not in prefetch and page_id in swapped_valid:
                    yield from self.access(page_id, write=writes[index])
                    index += 1
                    continue
                if len(resident) >= self.capacity_pages:
                    victim_id, victim = next(iter(resident.items()))
                    if victim.dirty or victim_id not in swapped_valid:
                        yield from self.access(page_id, write=writes[index])
                        index += 1
                        continue
            index, reason = flatpath.advance(
                self, addresses, writes, index, total
            )
            if reason is None:
                break
            yield from self.access(addresses[index], write=writes[index])
            index += 1

    def flush(self):
        """Generator: charge accumulated cheap-path time (end of run)."""
        yield from self._flush_pending()
        yield from self.backend.drain()

    # -- internals ----------------------------------------------------------

    def _flush_pending(self):
        if self._pending_time > 0.0:
            pending, self._pending_time = self._pending_time, 0.0
            yield self.env.timeout(pending)

    def _insert_resident(self, page, write):
        if write:
            page.dirty = True
            # The swap copy (if any) is stale once the page is written.
            if page.page_id in self.swapped_valid:
                self.swapped_valid.discard(page.page_id)
                self.backend.discard(page)
        self.resident[page.page_id] = page

    def _make_room(self):
        while len(self.resident) >= self.capacity_pages:
            victim_id, victim = self.resident.popitem(last=False)
            if victim.dirty or victim_id not in self.swapped_valid:
                yield from self.backend.swap_out(victim)
                self.stats.swap_outs += 1
                victim.dirty = False
            self.swapped_valid.add(victim_id)

    def _absorb_prefetched(self, extra_pages):
        for page in extra_pages:
            if page.page_id in self.resident or page.page_id in self.prefetch:
                continue
            self.prefetch[page.page_id] = page
            # Prefetched pages keep their swap copy; dropping them from
            # the buffer later costs nothing.
            while len(self.prefetch) > self.prefetch_capacity:
                self.prefetch.popitem(last=False)
