"""Linux disk swap: the slowest baseline of Section V.

A single-tier :class:`~repro.tiers.cascade.TierCascade` around
:class:`~repro.tiers.disk.DiskSwapTier`, which models the kernel swap
path onto a rotational disk:

* swap-slot allocation is clustered (next free slot), so swap-out
  bursts are mostly sequential writes;
* swap-in is a random read, mitigated by cluster readahead —
  ``page-cluster`` adjacent slots are read in the same request and
  parked in the swap cache (the MMU's prefetch buffer).
"""

from repro.tiers.cascade import TierCascade
from repro.tiers.disk import DiskSwapTier


class LinuxDiskSwap(TierCascade):
    """Swap to a local HDD/SSD block device.

    Swap-out is *asynchronous*: kswapd writes dirty pages back in the
    background, so eviction only charges the submit cost — but the
    writeback stream occupies the disk, delaying the swap-in reads that
    do block the faulting task.  A bounded writeback window models the
    kernel's dirty throttling: eviction stalls once too many writes are
    in flight.
    """

    name = "linux"

    DEFAULT_READAHEAD = DiskSwapTier.DEFAULT_READAHEAD
    WRITE_COALESCE_PAGES = DiskSwapTier.WRITE_COALESCE_PAGES
    WRITEBACK_WINDOW = DiskSwapTier.WRITEBACK_WINDOW

    def __init__(self, node, readahead=DEFAULT_READAHEAD, cpu=None):
        self._disk = DiskSwapTier(node, readahead=readahead, cpu=cpu)
        super().__init__(node, [self._disk])

    # -- compatibility surface -----------------------------------------------

    @property
    def disk(self):
        return self._disk.disk

    @property
    def readahead(self):
        return self._disk.readahead

    @property
    def reads(self):
        return self._disk.reads

    @property
    def writes(self):
        return self._disk.writes

    @property
    def _slot_of(self):
        return self._disk._slot_of
