"""Linux disk swap: the slowest baseline of Section V.

Models the kernel swap path onto a rotational disk:

* swap-slot allocation is clustered (next free slot), so swap-out
  bursts are mostly sequential writes;
* swap-in is a random read, mitigated by cluster readahead —
  ``page-cluster`` adjacent slots are read in the same request and
  parked in the swap cache (the MMU's prefetch buffer).
"""

from repro.hw.latency import PAGE_SIZE, CpuSpec
from repro.sim import Resource
from repro.swap.base import SwapBackend


class LinuxDiskSwap(SwapBackend):
    """Swap to a local HDD/SSD block device.

    Swap-out is *asynchronous*: kswapd writes dirty pages back in the
    background, so eviction only charges the submit cost — but the
    writeback stream occupies the disk, delaying the swap-in reads that
    do block the faulting task.  A bounded writeback window models the
    kernel's dirty throttling: eviction stalls once too many writes are
    in flight.
    """

    name = "linux"

    #: Effective swap readahead in pages.  The block layer's default
    #: device readahead is 128 KB (read_ahead_kb) = 32 pages, which is
    #: what sequential swap-in streams settle at.
    DEFAULT_READAHEAD = 32
    #: Contiguous swap-out pages merged into one writeback bio (the
    #: block layer merges adjacent requests; slots are log-allocated so
    #: eviction bursts are contiguous).
    WRITE_COALESCE_PAGES = 32
    #: In-flight writeback bios before eviction throttles.
    WRITEBACK_WINDOW = 8

    def __init__(self, node, readahead=DEFAULT_READAHEAD, cpu=None):
        self.node = node
        self.env = node.env
        self.disk = node.hdd
        self.readahead = readahead
        self.cpu = cpu or CpuSpec()
        self._slot_of = {}  # page_id -> slot index
        self._page_at = {}  # slot index -> Page
        self._free_slots = []
        self._next_slot = 0
        self._writeback = Resource(
            node.env, capacity=self.WRITEBACK_WINDOW, name="writeback"
        )
        self._pending_write_slots = []
        self.reads = 0
        self.writes = 0

    def _allocate_slot(self, page):
        # Log-structured slot allocation: the kernel's cluster allocator
        # hands out contiguous runs, so the writeback stream stays
        # sequential; freed slots are reclaimed lazily (the swap area is
        # provisioned much larger than the working set).
        slot = self._next_slot
        self._next_slot += 1
        self._slot_of[page.page_id] = slot
        self._page_at[slot] = page
        return slot

    def _release_slot(self, page_id):
        slot = self._slot_of.pop(page_id, None)
        if slot is not None:
            self._page_at.pop(slot, None)
            self._free_slots.append(slot)

    def swap_out(self, page):
        """Generator: submit the page for background writeback."""
        # Rewrites get a fresh slot at the log head (the old copy was
        # invalidated when the page was dirtied), keeping writeback
        # sequential.
        self._release_slot(page.page_id)
        slot = self._allocate_slot(page)
        yield self.env.timeout(self.cpu.block_layer_overhead)
        self._pending_write_slots.append(slot)
        self.writes += 1
        if len(self._pending_write_slots) >= self.WRITE_COALESCE_PAGES:
            yield from self._submit_writeback()

    def drain(self):
        """Generator: push out any partially merged writeback bio."""
        if self._pending_write_slots:
            yield from self._submit_writeback()

    def _submit_writeback(self):
        slots, self._pending_write_slots = self._pending_write_slots, []
        window_slot = self._writeback.request()
        yield window_slot  # dirty throttling: stall when backlogged
        self.env.process(
            self._writeback_io(slots, window_slot), name="kswapd-write"
        )

    def _writeback_io(self, slots, window_slot):
        try:
            # Slots from one eviction burst are contiguous: one merged bio.
            yield from self.disk.write(min(slots) * PAGE_SIZE,
                                       len(slots) * PAGE_SIZE)
        finally:
            self._writeback.release(window_slot)

    def swap_in(self, page):
        """Generator: read the page (+ readahead cluster) from disk."""
        slot = self._slot_of[page.page_id]
        # Cluster readahead: the whole extent is read in one request
        # (one seek, sequential transfer); slots that still hold valid
        # pages land in the swap cache, holes are just wasted bytes.
        extra = [
            neighbour
            for offset in range(1, self.readahead)
            for neighbour in (self._page_at.get(slot + offset),)
            if neighbour is not None
        ]
        yield self.env.timeout(self.cpu.block_layer_overhead)
        yield from self.disk.read(slot * PAGE_SIZE, self.readahead * PAGE_SIZE)
        self.reads += 1
        return extra

    def discard(self, page):
        self._release_slot(page.page_id)
