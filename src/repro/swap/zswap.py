"""zswap: a compressed RAM cache for disk-based swap (Figure 3 baseline).

Pages on their way to the swap device are compressed and kept in a
zbud-managed RAM pool; only on pool pressure do the oldest compressed
pages get written back to disk.  The zbud allocator pairs at most two
compressed pages per physical page, capping the effective compression
ratio at 2 — which is exactly why FastSwap's multi-granularity store
wins Figure 3.
"""

from collections import OrderedDict

from repro.hw.latency import PAGE_SIZE, CpuSpec
from repro.mem.compression import CompressionEngine, ZbudStore
from repro.swap.linux_swap import LinuxDiskSwap
from repro.swap.base import SwapBackend


class Zswap(SwapBackend):
    """Compressed RAM front (zbud) over :class:`LinuxDiskSwap`."""

    name = "zswap"

    def __init__(self, node, pool_bytes, cpu=None, compression=None):
        self.node = node
        self.env = node.env
        self.cpu = cpu or CpuSpec()
        self.engine = compression or CompressionEngine(
            node.config.calibration.compression
        )
        self.pool_bytes = pool_bytes
        self.store = ZbudStore()
        self.disk_swap = LinuxDiskSwap(node, cpu=cpu)
        self._pool = OrderedDict()  # page_id -> charged bytes
        self._pool_used = 0
        self.pool_hits = 0
        self.pool_misses = 0
        self.writebacks = 0
        self.rejects = 0

    def swap_out(self, page):
        """Generator: compress into the pool; write back oldest on pressure."""
        yield self.env.timeout(self.engine.compress_time(page.size))
        charged = self.store.charged_size(page.compressed_size)
        if charged >= PAGE_SIZE:
            # Incompressible page: zswap rejects it straight to disk.
            self.rejects += 1
            yield from self.disk_swap.swap_out(page)
            return
        while self._pool_used + charged > self.pool_bytes and self._pool:
            yield from self._writeback_oldest()
        if self._pool_used + charged > self.pool_bytes:
            yield from self.disk_swap.swap_out(page)
            return
        previous = self._pool.pop(page.page_id, None)
        if previous is not None:
            self._pool_used -= previous
        self._pool[page.page_id] = charged
        self._pool_used += charged
        self.store.store(page)

    def swap_in(self, page):
        """Generator: decompress from the pool, or fall through to disk."""
        charged = self._pool.get(page.page_id)
        if charged is not None:
            # Entry stays in the pool (swap-cache semantics); only a
            # decompress is charged.
            yield self.env.timeout(self.engine.decompress_time(page.size))
            self.pool_hits += 1
            return []
        self.pool_misses += 1
        extra = yield from self.disk_swap.swap_in(page)
        return extra

    def drain(self):
        yield from self.disk_swap.drain()

    def discard(self, page):
        charged = self._pool.pop(page.page_id, None)
        if charged is not None:
            self._pool_used -= charged
        self.disk_swap.discard(page)

    def _writeback_oldest(self):
        page_id, charged = self._pool.popitem(last=False)
        self._pool_used -= charged
        # Decompress + write the raw page to the swap device.
        yield self.env.timeout(self.engine.decompress_time(PAGE_SIZE))
        victim = _PagePlaceholder(page_id)
        yield from self.disk_swap.swap_out(victim)
        self.writebacks += 1


class _PagePlaceholder:
    """Minimal page stand-in for writeback of an already-evicted page."""

    __slots__ = ("page_id", "size", "dirty")

    def __init__(self, page_id):
        self.page_id = page_id
        self.size = PAGE_SIZE
        self.dirty = True
