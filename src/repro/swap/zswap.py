"""zswap: a compressed RAM cache for disk-based swap (Figure 3 baseline).

A two-tier :class:`~repro.tiers.cascade.TierCascade`:
:class:`~repro.tiers.compressed.CompressedPoolTier` over
:class:`~repro.tiers.disk.DiskSwapTier`.  Pages on their way to the
swap device are compressed and kept in a zbud-managed RAM pool; only on
pool pressure do the oldest compressed pages get written back to disk.
The zbud allocator pairs at most two compressed pages per physical
page, capping the effective compression ratio at 2 — which is exactly
why FastSwap's multi-granularity store wins Figure 3.
"""

from repro.tiers.cascade import TierCascade
from repro.tiers.compressed import CompressedPoolTier
from repro.tiers.disk import DiskSwapTier


class Zswap(TierCascade):
    """Compressed RAM front (zbud) over kernel disk swap."""

    name = "zswap"

    def __init__(self, node, pool_bytes, cpu=None, compression=None):
        self._pool = CompressedPoolTier(node, pool_bytes, engine=compression)
        self._disk = DiskSwapTier(node, cpu=cpu)
        super().__init__(node, [self._pool, self._disk])

    # -- compatibility surface -----------------------------------------------

    @property
    def engine(self):
        return self._pool.engine

    @property
    def pool_bytes(self):
        return self._pool.pool_bytes

    @property
    def store(self):
        return self._pool.store

    @property
    def pool_hits(self):
        return self._pool.stats.gets.value

    @property
    def pool_misses(self):
        return self._disk.stats.gets.value

    @property
    def writebacks(self):
        return self._pool.writebacks

    @property
    def rejects(self):
        return self._pool.rejects
