"""FastSwap: the paper's hybrid disaggregated-memory swapping system.

FastSwap combines every mechanism Sections III–IV argue for, expressed
as a three-level :class:`~repro.tiers.cascade.TierCascade`:

* **hybrid tiers** — evicted pages go to the node-coordinated shared
  memory pool first (DRAM speed), then to remote memory over RDMA, then
  to disk (:class:`~repro.tiers.shared_pool.SharedPoolTier` →
  :class:`~repro.tiers.remote.RemoteRdmaTier` →
  :class:`~repro.tiers.disk.BatchSpillTier`);
* **multi-granularity compression** (Section IV-H, Figures 3–5) —
  a cascade-wide :class:`~repro.tiers.compressed.CompressionLayer`:
  pages are LZO-compressed and charged at 512 B / 1 K / 2 K / 4 K
  granularity, so the same pools hold several times more pages;
* **window-based batching** (Figure 6) — remote swap-outs accumulate in
  the send buffer and ship as one RDMA transfer per window;
* **proactive batch swap-in, PBS** (Figures 6 and 9) — a shared
  :class:`~repro.tiers.pbs.PbsController`: a fault fetches a window of
  neighbouring swapped pages in the same operation and parks them in
  the swap cache;
* a **distribution-ratio knob** (Figure 8) — FS-SM / FS-9:1 / FS-7:3 /
  FS-5:5 / FS-RDMA fix the fraction of swap traffic served by the node
  shared pool vs. cluster remote memory
  (:class:`~repro.tiers.cascade.FixedRatioPlacement`).
"""

from dataclasses import dataclass

from repro.hw.latency import CpuSpec
from repro.mem.compression import CompressionEngine, GranularityStore
from repro.tiers.cascade import (
    AdaptivePlacement,
    FixedRatioPlacement,
    TierCascade,
)
from repro.tiers.compressed import CompressionLayer
from repro.tiers.disk import BatchSpillTier
from repro.tiers.pbs import PbsController
from repro.tiers.remote import RemoteRdmaTier
from repro.tiers.shared_pool import SharedPoolTier


@dataclass
class FastSwapConfig:
    """Tuning knobs of a FastSwap instance."""

    #: Fraction of swap-out traffic pinned to the shared memory pool;
    #: ``None`` = adaptive (SM until full, then remote), 1.0 = FS-SM,
    #: 0.0 = FS-RDMA, 0.9/0.7/0.5 = FS-9:1 / FS-7:3 / FS-5:5.
    sm_fraction: float = None
    #: Enable multi-granularity page compression.
    compression: bool = True
    #: Compressed-store granularities (Figure 3's "4 page sizes").
    granularities: tuple = (512, 1024, 2048, 4096)
    #: Pages per remote write batch / PBS read batch.
    window: int = 8
    #: Enable proactive batch swap-in.
    pbs: bool = True
    #: Remote slab reservations per peer node (clamped to what each
    #: peer's receive pool actually donates).
    slabs_per_target: int = 24
    #: Spill overflowing batches to the local SSD before the HDD — the
    #: XMemPod tier cascade (shared memory → remote → SSD).
    ssd_tier: bool = False


class FastSwap(TierCascade):
    """The hybrid node-level + cluster-level swap backend."""

    name = "fastswap"

    #: Serving a page still sitting in the local send buffer: DRAM copy.
    BUFFER_HIT_TIME = RemoteRdmaTier.BUFFER_HIT_TIME
    #: Per-page software cost on the remote path; see
    #: :class:`~repro.tiers.remote.RemoteRdmaTier`.
    REMOTE_PER_PAGE_OVERHEAD = RemoteRdmaTier.REMOTE_PER_PAGE_OVERHEAD

    def __init__(self, node, directory, config=None, cpu=None):
        self.directory = directory
        self.config = config or FastSwapConfig()
        self.cpu = cpu or CpuSpec()
        self.engine = CompressionEngine(node.config.calibration.compression)
        self.store_model = GranularityStore(self.config.granularities)
        compression = None
        if self.config.compression:
            compression = CompressionLayer(
                node.env, self.engine, self.store_model
            )
        if self.config.sm_fraction is None:
            placement = AdaptivePlacement()
        else:
            placement = FixedRatioPlacement(
                self.config.sm_fraction, self.config.window
            )
        self._sm = SharedPoolTier(node)
        self._remote = RemoteRdmaTier(
            node,
            directory,
            window=self.config.window,
            slabs_per_target=self.config.slabs_per_target,
        )
        if self.config.ssd_tier:
            self._spill = BatchSpillTier(node, node.ssd, "ssd", cpu=self.cpu)
        else:
            self._spill = BatchSpillTier(node, node.hdd, "disk", cpu=self.cpu)
        super().__init__(
            node,
            [self._sm, self._remote, self._spill],
            placement=placement,
            compression=compression,
            pbs=PbsController(self.config.window, enabled=self.config.pbs),
        )

    # -- compatibility surface (reports, tests, experiments) -----------------

    @property
    def areas(self):
        return self._remote.areas

    @property
    def sm_puts(self):
        return self._sm.stats.puts.value

    @property
    def sm_gets(self):
        return self._sm.stats.gets.value

    @property
    def remote_batches(self):
        return self._remote.batches

    @property
    def remote_pages_out(self):
        return self._remote.pages_out

    @property
    def remote_reads(self):
        return self._remote.reads

    @property
    def pbs_pages(self):
        return self.pbs.pages

    @property
    def disk_writes(self):
        return self._spill.writes if self._spill.name == "disk" else 0

    @property
    def disk_reads(self):
        return self._spill.reads if self._spill.name == "disk" else 0

    @property
    def ssd_writes(self):
        return self._spill.writes if self._spill.name == "ssd" else 0

    @property
    def ssd_reads(self):
        return self._spill.reads if self._spill.name == "ssd" else 0

    @property
    def disk_fallback_reads(self):
        return self._remote.fallback_reads

    @property
    def _pbs_window(self):
        return self.pbs.window

    def _pbs_feedback(self, issued):
        self.pbs.feedback(issued)

    def _wants_shared_memory(self, page_id):
        return self.placement.first_tier(self, page_id) == 0
