"""FastSwap: the paper's hybrid disaggregated-memory swapping system.

FastSwap combines every mechanism Sections III–IV argue for:

* **hybrid tiers** — evicted pages go to the node-coordinated shared
  memory pool first (DRAM speed), then to remote memory over RDMA, then
  to disk;
* **multi-granularity compression** (Section IV-H, Figures 3–5) —
  pages are LZO-compressed and charged at 512 B / 1 K / 2 K / 4 K
  granularity, so the same pools hold several times more pages;
* **window-based batching** (Figure 6) — remote swap-outs accumulate in
  the send buffer and ship as one RDMA transfer per window;
* **proactive batch swap-in, PBS** (Figures 6 and 9) — a remote fault
  fetches a window of neighbouring swapped pages in the same one-sided
  read and parks them in the swap cache;
* a **distribution-ratio knob** (Figure 8) — FS-SM / FS-9:1 / FS-7:3 /
  FS-5:5 / FS-RDMA fix the fraction of swap traffic served by the node
  shared pool vs. cluster remote memory.
"""

from dataclasses import dataclass

from repro.core.errors import ControlTimeout
from repro.hw.latency import PAGE_SIZE, CpuSpec
from repro.mem.compression import CompressionEngine, GranularityStore
from repro.mem.shared_pool import PoolFull
from repro.net.errors import NetworkError
from repro.net.rdma import RemoteAccessError
from repro.swap.base import SwapBackend


@dataclass
class FastSwapConfig:
    """Tuning knobs of a FastSwap instance."""

    #: Fraction of swap-out traffic pinned to the shared memory pool;
    #: ``None`` = adaptive (SM until full, then remote), 1.0 = FS-SM,
    #: 0.0 = FS-RDMA, 0.9/0.7/0.5 = FS-9:1 / FS-7:3 / FS-5:5.
    sm_fraction: float = None
    #: Enable multi-granularity page compression.
    compression: bool = True
    #: Compressed-store granularities (Figure 3's "4 page sizes").
    granularities: tuple = (512, 1024, 2048, 4096)
    #: Pages per remote write batch / PBS read batch.
    window: int = 8
    #: Enable proactive batch swap-in.
    pbs: bool = True
    #: Remote slab reservations per peer node (clamped to what each
    #: peer's receive pool actually donates).
    slabs_per_target: int = 24
    #: Spill overflowing batches to the local SSD before the HDD — the
    #: XMemPod tier cascade (shared memory → remote → SSD → HDD).
    ssd_tier: bool = False


class _RemoteArea:
    __slots__ = ("node_id", "capacity_bytes", "used_bytes")

    def __init__(self, node_id, capacity_bytes):
        self.node_id = node_id
        self.capacity_bytes = capacity_bytes
        self.used_bytes = 0

    @property
    def free_bytes(self):
        return self.capacity_bytes - self.used_bytes


class FastSwap(SwapBackend):
    """The hybrid node-level + cluster-level swap backend."""

    name = "fastswap"

    #: Serving a page still sitting in the local send buffer: DRAM copy.
    BUFFER_HIT_TIME = 0.8e-6
    #: Per-page software cost on the remote path (work-request build +
    #: completion handling); batching amortizes the doorbell/latency but
    #: not this, which is what keeps node-level SM ahead of FS-RDMA.
    REMOTE_PER_PAGE_OVERHEAD = 1.2e-6

    def __init__(self, node, directory, config=None, cpu=None):
        self.node = node
        self.env = node.env
        self.directory = directory
        self.config = config or FastSwapConfig()
        self.cpu = cpu or CpuSpec()
        self.engine = CompressionEngine(node.config.calibration.compression)
        self.store_model = GranularityStore(self.config.granularities)
        self.areas = {}
        self.page_table = None  # set via bind_page_table (enables PBS)
        self._mmu_stats = None
        # PBS window scales with observed prefetch effectiveness, like
        # the kernel's VMA-based swap readahead: sequential streams keep
        # the full window, random access shrinks it to a probe.
        self._pbs_window = max(1, (config or FastSwapConfig()).window - 1)
        self._pbs_epoch_issued = 0
        self._pbs_epoch_base_hits = 0
        self._where = {}  # page_id -> (tier, meta)
        self._pending = []  # [(page, stored_bytes)] awaiting batch flush
        self._pending_bytes = 0
        self._flush_cursor = 0
        self._out_counter = 0
        # Counters for reports and tests.
        self.sm_puts = 0
        self.sm_gets = 0
        self.remote_batches = 0
        self.remote_pages_out = 0
        self.remote_reads = 0
        self.pbs_pages = 0
        self.disk_writes = 0
        self.disk_reads = 0
        self.ssd_writes = 0
        self.ssd_reads = 0
        self.disk_fallback_reads = 0

    # -- setup ---------------------------------------------------------------

    def setup(self):
        """Generator: reserve remote slab areas on live group peers."""
        slab_bytes = self.node.config.slab_bytes
        for peer in self.directory.peers_of(self.node.node_id):
            if self.directory.is_down(peer):
                continue
            desired = self.config.slabs_per_target * slab_bytes
            available = self.directory.free_receive_bytes(peer)
            nbytes = min(desired, (available // slab_bytes) * slab_bytes)
            if nbytes <= 0:
                continue
            key = ("fastswap-slab", self.node.node_id, peer)
            try:
                reply = yield from self.node.rdmc.control_call(
                    peer, {"op": "reserve", "key": key, "nbytes": nbytes}
                )
            except (NetworkError, ControlTimeout):
                continue
            if reply.get("ok"):
                self.areas[peer] = _RemoteArea(peer, nbytes)

    # -- helpers -----------------------------------------------------------

    def _stored_size(self, page):
        if not self.config.compression:
            return PAGE_SIZE
        return self.store_model.charged_size(page.compressed_size)

    def _sm_key(self, page_id):
        return ("fswap", self.node.node_id, page_id)

    def _wants_shared_memory(self, page_id):
        fraction = self.config.sm_fraction
        if fraction is None:
            return True  # adaptive: always try SM first
        # Fixed-ratio mode: window-aligned blocks of the address space
        # are pinned to one tier, so batch/PBS adjacency survives the
        # split (per-page round-robin would shred every window).
        block = page_id // max(1, self.config.window)
        # Knuth multiplicative hash: stable across processes (unlike
        # built-in hash(), which is salted).
        bucket = (block * 2654435761) % 4294967296
        return bucket < fraction * 4294967296

    # -- swap-out path ----------------------------------------------------------

    def swap_out(self, page):
        """Generator: compress, pick a tier, store (batching remote I/O)."""
        stored = self._stored_size(page)
        if self.config.compression:
            yield self.env.timeout(self.engine.compress_time(page.size))
            self.store_model.store(page)
        self._forget(page.page_id)
        if self._wants_shared_memory(page.page_id):
            placed = yield from self._try_shared_memory(page, stored)
            if placed:
                return
        yield from self._queue_remote(page, stored)

    def _try_shared_memory(self, page, stored):
        pool = self.node.shared_pool
        key = self._sm_key(page.page_id)
        try:
            yield from pool.put(key, stored)
        except PoolFull:
            if self.config.sm_fraction is None:
                return False
            # Fixed-ratio mode keeps hot pages in SM: displace the LRU
            # entry to remote memory, then retry once.
            victim = pool.evict_lru()
            if victim is None:
                return False
            victim_key, victim_bytes = victim
            victim_page_id = victim_key[2]
            victim_page = _Displaced(victim_page_id, victim_bytes)
            yield from self._queue_remote(victim_page, victim_bytes)
            try:
                yield from pool.put(key, stored)
            except PoolFull:
                return False
        self._where[page.page_id] = ("sm", stored)
        self.sm_puts += 1
        return True

    def _queue_remote(self, page, stored):
        self._pending.append((page, stored))
        self._pending_bytes += stored
        self._where[page.page_id] = ("buffer", stored)
        if len(self._pending) >= self.config.window:
            yield from self._flush_batch()

    def _flush_batch(self):
        """Ship the pending batch as one RDMA write to one target."""
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        nbytes, self._pending_bytes = self._pending_bytes, 0
        area = self._pick_area(nbytes)
        if area is None:
            # Cluster full: the compressed batch cascades down a tier.
            yield from self._spill_batch(batch, nbytes)
            return
        try:
            yield self.env.timeout(self.REMOTE_PER_PAGE_OVERHEAD * len(batch))
            yield from self._one_sided(area.node_id, nbytes, write=True)
        except (NetworkError, RemoteAccessError):
            # Target died mid-batch: cascade this batch down a tier.
            yield from self._spill_batch(batch, nbytes)
            return
        area.used_bytes += nbytes
        for page, stored in batch:
            self._where[page.page_id] = ("remote", (area.node_id, stored))
        self.remote_batches += 1
        self.remote_pages_out += len(batch)

    def _spill_batch(self, batch, nbytes):
        """Write an overflowing batch to the next storage tier down.

        With ``ssd_tier`` enabled this is the XMemPod cascade: shared
        memory → remote memory → SSD → HDD; otherwise straight to HDD.
        """
        offset = self.node.alloc_disk_span(nbytes)
        yield self.env.timeout(self.cpu.block_layer_overhead)
        if self.config.ssd_tier:
            yield from self.node.ssd.write(offset, nbytes)
            tier = "ssd"
            self.ssd_writes += 1
        else:
            yield from self.node.hdd.write(offset, nbytes)
            tier = "disk"
            self.disk_writes += 1
        for page, stored in batch:
            self._where[page.page_id] = (tier, stored)

    def _pick_area(self, nbytes):
        live = [
            area
            for area in self.areas.values()
            if area.free_bytes >= nbytes and not self.directory.is_down(area.node_id)
        ]
        if not live:
            return None
        area = live[self._flush_cursor % len(live)]
        self._flush_cursor += 1
        return area

    # -- swap-in path ------------------------------------------------------------

    def swap_in(self, page):
        """Generator: fetch from its tier; PBS batches remote reads."""
        tier, meta = self._where.get(page.page_id, (None, None))
        if tier == "buffer":
            # Still staged locally: a DRAM copy suffices.
            yield self.env.timeout(self.BUFFER_HIT_TIME)
            return []
        if tier == "sm":
            return (yield from self._sm_swap_in(page))
        if tier == "remote":
            return (yield from self._remote_swap_in(page, meta))
        if tier == "ssd":
            stored = meta
            yield self.env.timeout(self.cpu.block_layer_overhead)
            yield from self.node.ssd.read(self.node.alloc_disk_span(0), stored)
            if self.config.compression:
                yield self.env.timeout(self.engine.decompress_time(page.size))
            self.ssd_reads += 1
            return []
        if tier == "disk":
            stored = meta
            yield self.env.timeout(self.cpu.block_layer_overhead)
            yield from self.node.hdd.read(self.node.alloc_disk_span(0), stored)
            if self.config.compression:
                yield self.env.timeout(self.engine.decompress_time(page.size))
            self.disk_reads += 1
            return []
        raise KeyError("page {} not in FastSwap".format(page.page_id))

    def _sm_swap_in(self, page):
        """Fetch from the shared pool; PBS promotes neighbours too."""
        batch = [page]
        if self.config.pbs:
            batch.extend(
                neighbour
                for neighbour, _stored in self._neighbours(page.page_id, "sm")
            )
        for fetched in batch:
            yield from self.node.shared_pool.get(self._sm_key(fetched.page_id))
            if self.config.compression:
                yield self.env.timeout(self.engine.decompress_time(fetched.size))
        self.sm_gets += 1
        self.pbs_pages += len(batch) - 1
        self._pbs_feedback(len(batch) - 1)
        return batch[1:]

    def _remote_swap_in(self, page, meta):
        target, stored = meta
        batch = [(page, stored)]
        if self.config.pbs:
            batch.extend(self._neighbours(page.page_id, "remote", target))
        nbytes = sum(s for _p, s in batch)
        try:
            yield self.env.timeout(self.REMOTE_PER_PAGE_OVERHEAD * len(batch))
            yield from self._one_sided(target, nbytes, write=False)
        except (NetworkError, RemoteAccessError):
            # Remote gone: the asynchronous disk backup serves the page.
            yield from self.node.hdd.read(
                self.node.alloc_disk_span(0), PAGE_SIZE
            )
            self.disk_fallback_reads += 1
            return []
        if self.config.compression:
            for fetched, _stored in batch:
                yield self.env.timeout(
                    self.engine.decompress_time(fetched.size)
                )
        self.remote_reads += 1
        self.pbs_pages += len(batch) - 1
        self._pbs_feedback(len(batch) - 1)
        return [p for p, _s in batch[1:]]

    def _neighbours(self, page_id, want_tier, target=None):
        """Adjacent swapped pages in the same tier (PBS batch mates).

        For the remote tier only pages co-located on ``target`` qualify
        (one one-sided read covers them); for the shared-memory tier
        adjacency in page-id space is enough.
        """
        neighbours = []
        if self.page_table is None:
            return neighbours
        for offset in range(1, self._pbs_window + 1):
            neighbour_id = page_id + offset
            tier, meta = self._where.get(neighbour_id, (None, None))
            if tier != want_tier:
                break
            if want_tier == "remote" and meta[0] != target:
                break
            neighbour = self.page_table.get(neighbour_id)
            if neighbour is None:
                break
            stored = meta[1] if want_tier == "remote" else meta
            neighbours.append((neighbour, stored))
        return neighbours

    # -- misc -----------------------------------------------------------------

    def bind_page_table(self, pages_by_id, mmu_stats=None):
        """Give PBS access to page objects (set by the workload runner).

        ``mmu_stats`` (a :class:`~repro.swap.base.PagingStats`) enables
        the readahead-style feedback that scales the PBS window.
        """
        self.page_table = pages_by_id
        self._mmu_stats = mmu_stats

    def _pbs_feedback(self, issued):
        """Scale the PBS window by observed prefetch effectiveness."""
        if self._mmu_stats is None or issued == 0:
            return
        self._pbs_epoch_issued += issued
        if self._pbs_epoch_issued < 512:
            return
        # Hits lag issuance by up to a buffer's worth of accesses, so
        # the thresholds are deliberately forgiving: shrink only when
        # prefetches are clearly wasted, grow as soon as they pay.
        hits = self._mmu_stats.prefetch_hits - self._pbs_epoch_base_hits
        effectiveness = hits / self._pbs_epoch_issued
        if effectiveness < 0.15:
            self._pbs_window = max(1, self._pbs_window // 2)
        elif effectiveness > 0.35:
            self._pbs_window = min(
                max(1, self.config.window - 1), self._pbs_window * 2
            )
        self._pbs_epoch_base_hits = self._mmu_stats.prefetch_hits
        self._pbs_epoch_issued = 0

    def drain(self):
        """Generator: flush any partially filled remote batch."""
        yield from self._flush_batch()

    def discard(self, page):
        self._forget(page.page_id)

    def _forget(self, page_id):
        tier, meta = self._where.pop(page_id, (None, None))
        if tier == "sm":
            self.node.shared_pool.remove(self._sm_key(page_id))
        elif tier == "remote":
            target, stored = meta
            area = self.areas.get(target)
            if area is not None:
                area.used_bytes -= stored
        elif tier == "buffer":
            for index, (pending_page, stored) in enumerate(self._pending):
                if pending_page.page_id == page_id:
                    self._pending.pop(index)
                    self._pending_bytes -= stored
                    break

    def _one_sided(self, target, nbytes, write):
        region = self.directory.receive_region_of(target)
        if region is None:
            raise RemoteAccessError("no region on {!r}".format(target))
        qp = yield from self.node.device.connect(self.directory.device_of(target))
        if write:
            yield from qp.write(region, nbytes)
        else:
            yield from qp.read(region, nbytes)


class _Displaced:
    """Stand-in for a page displaced from SM whose object we no longer hold."""

    __slots__ = ("page_id", "size")

    def __init__(self, page_id, stored_bytes):
        self.page_id = page_id
        self.size = PAGE_SIZE
