"""Swapping systems: the paper's in-memory paging evaluation targets.

The paging substrate (:mod:`repro.swap.base`) models a virtual server's
MMU under memory pressure: a resident set with LRU replacement, page
faults, dirty tracking, a swap cache / prefetch buffer, and pluggable
*swap backends* that decide where evicted pages go and what a swap-in
costs.  The five backends compared in Section V:

* :class:`~repro.swap.linux_swap.LinuxDiskSwap` — the kernel baseline:
  swap slots on a rotational disk, cluster readahead on swap-in;
* :class:`~repro.swap.zswap.Zswap` — a compressed RAM cache (zbud
  allocator) in front of disk swap;
* :class:`~repro.swap.remote_block.Nbdx` — a remote block device over
  RDMA (per-page ops through the block layer);
* :class:`~repro.swap.remote_block.Infiniswap` — decentralized remote
  paging over NBDX-style block I/O with power-of-two slab placement;
* :class:`~repro.swap.fastswap.FastSwap` — the paper's hybrid system:
  node shared-memory pool first, then batched + compressed RDMA remote
  memory, then disk; with proactive batch swap-in (PBS).
"""

from repro.swap.base import PagingStats, SwapBackend, VirtualMemory
from repro.swap.fastswap import FastSwap, FastSwapConfig
from repro.swap.linux_swap import LinuxDiskSwap
from repro.swap.remote_block import Infiniswap, Nbdx
from repro.swap.zswap import Zswap

__all__ = [
    "FastSwap",
    "FastSwapConfig",
    "Infiniswap",
    "LinuxDiskSwap",
    "Nbdx",
    "PagingStats",
    "SwapBackend",
    "VirtualMemory",
    "Zswap",
]
