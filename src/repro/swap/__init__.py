"""Swapping systems: the paper's in-memory paging evaluation targets.

The paging substrate (:mod:`repro.swap.base`) models a virtual server's
MMU under memory pressure: a resident set with LRU replacement, page
faults, dirty tracking, a swap cache / prefetch buffer, and pluggable
*swap backends* that decide where evicted pages go and what a swap-in
costs.  Every backend is a :class:`~repro.tiers.cascade.TierCascade` —
an ordered stack of :mod:`repro.tiers` with spill-on-full, demotion and
pluggable placement / compression / failover policies.  The backends
compared in Section V, as tier stacks:

* :class:`~repro.swap.linux_swap.LinuxDiskSwap` — ``disk``: the kernel
  baseline, swap slots on a rotational disk with cluster readahead;
* :class:`~repro.swap.zswap.Zswap` — ``pool → disk``: a compressed RAM
  cache (zbud allocator) in front of disk swap;
* :class:`~repro.swap.remote_block.Nbdx` — ``remote → disk-backup``: a
  remote block device over RDMA (per-page ops through the block layer);
* :class:`~repro.swap.remote_block.Infiniswap` — ``remote →
  disk-backup``: decentralized remote paging over NBDX-style block I/O
  with power-of-two slab placement;
* :class:`~repro.swap.fastswap.FastSwap` — ``sm → remote → disk``: the
  paper's hybrid system with batching, multi-granularity compression
  and proactive batch swap-in (PBS);
* :class:`~repro.swap.nvm_swap.NvmSwap` — ``nvm``: the Section VI
  local persistent-memory tier.

:func:`~repro.swap.factory.make_swap_backend` also assembles
cascade-only design points ("nvm-remote", "zswap-remote") that have no
dedicated class.
"""

import importlib

# Exports resolve lazily (PEP 562): the concrete backends subclass
# repro.tiers.TierCascade, which itself imports repro.swap.base, so an
# eager import here would be circular whenever repro.tiers loads first.
_EXPORTS = {
    "FastSwap": "repro.swap.fastswap",
    "FastSwapConfig": "repro.swap.fastswap",
    "Infiniswap": "repro.swap.remote_block",
    "LinuxDiskSwap": "repro.swap.linux_swap",
    "Nbdx": "repro.swap.remote_block",
    "NvmSwap": "repro.swap.nvm_swap",
    "PagingStats": "repro.swap.base",
    "SwapBackend": "repro.swap.base",
    "VirtualMemory": "repro.swap.base",
    "Zswap": "repro.swap.zswap",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            "module {!r} has no attribute {!r}".format(__name__, name)
        ) from None
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value
