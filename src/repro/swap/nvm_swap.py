"""Swap to a local NVM tier (paper Section VI).

The paper's discussion section places emerging non-volatile memories
(PCM, 3D-XPoint) between DRAM and SSD and asks which combinations of
memory, network and storage make sense.  ``NvmSwap`` is a single-tier
cascade around :class:`~repro.tiers.nvm.NvmTier`: pages swap to a local
byte-addressable NVM device, so the tiering ablation can place it
against the node shared pool, cluster remote memory, SSD and HDD (and
the ``nvm-remote`` factory backend stacks the same tier *above* remote
memory).
"""

from repro.hw.latency import CpuSpec
from repro.tiers.cascade import TierCascade
from repro.tiers.nvm import NvmTier


class NvmSwap(TierCascade):
    """Paging onto local persistent memory."""

    name = "nvm"

    def __init__(self, node, capacity_bytes=None, cpu=None):
        self.cpu = cpu or CpuSpec()
        self._nvm = NvmTier(node, capacity_bytes=capacity_bytes)
        super().__init__(node, [self._nvm])

    @property
    def device(self):
        return self._nvm.device
