"""Swap to a local NVM tier (paper Section VI).

The paper's discussion section places emerging non-volatile memories
(PCM, 3D-XPoint) between DRAM and SSD and asks which combinations of
memory, network and storage make sense.  ``NvmSwap`` swaps pages to a
local byte-addressable NVM device, so the tiering ablation can place it
against the node shared pool, cluster remote memory, SSD and HDD.
"""

from repro.core.errors import NoRemoteCapacity
from repro.hw.latency import PAGE_SIZE, CpuSpec
from repro.hw.nvm import NvmDevice
from repro.swap.base import SwapBackend


class NvmSwap(SwapBackend):
    """Paging onto local persistent memory."""

    name = "nvm"

    def __init__(self, node, capacity_bytes=None, cpu=None):
        self.node = node
        self.env = node.env
        self.cpu = cpu or CpuSpec()
        capacity = capacity_bytes or 4 * node.config.slab_bytes * 64
        self.device = NvmDevice(
            node.env,
            capacity,
            spec=node.config.calibration.nvm,
            name="nvm:{}".format(node.node_id),
        )
        self._held = set()

    def swap_out(self, page):
        """Generator: store the page on NVM (byte-addressable, no block
        layer — the DAX path)."""
        if page.page_id not in self._held:
            if not self.device.reserve(PAGE_SIZE):
                raise NoRemoteCapacity("nvm swap area full")
            self._held.add(page.page_id)
        yield from self.device.write(PAGE_SIZE)

    def swap_in(self, page):
        """Generator: load the page back from NVM."""
        yield from self.device.read(PAGE_SIZE)
        return []

    def discard(self, page):
        if page.page_id in self._held:
            self._held.discard(page.page_id)
            self.device.free(PAGE_SIZE)
