"""Remote-memory paging over block I/O: NBDX and Infiniswap baselines.

Both systems expose remote memory as a block device, so every 4 KB page
pays the kernel block layer on top of the RDMA round trip, and neither
compresses nor batches — exactly the overheads FastSwap removes.  As
cascades they are :class:`~repro.tiers.remote_block.RemoteBlockTier`
over :class:`~repro.tiers.remote_block.DiskBackupTier`.

* **NBDX** — a network block device over Accelio/RDMA with a fixed
  remote server; the paper describes it as the substrate Infiniswap
  (and the first FastSwap prototype) builds on.
* **Infiniswap** [Gu et al., NSDI'17] — decentralized remote paging:
  the swap area is striped over per-node slabs placed with the power of
  two choices, one-sided verbs move pages, and an asynchronous disk
  backup covers remote failures (reads fall back to disk).
"""

from repro.hw.latency import CpuSpec
from repro.tiers.cascade import TierCascade
from repro.tiers.remote_block import DiskBackupTier, RemoteBlockTier


class RemoteBlockSwap(TierCascade):
    """Shared machinery for block-device-style remote paging."""

    name = "remote-block"
    #: Extra per-request software cost beyond the generic block layer
    #: (slab lookup, bio remapping); subclasses override.
    EXTRA_OP_OVERHEAD = 0.0
    #: NBDX keeps every slab on one fixed server; Infiniswap stripes.
    SINGLE_SERVER = False
    #: Power-of-two-choices slab placement (Infiniswap).
    POWER_OF_TWO = False

    def __init__(self, node, directory, slabs_per_target=4, cpu=None,
                 rng=None):
        self.directory = directory
        self.cpu = cpu or CpuSpec()
        self.rng = rng
        self._remote = RemoteBlockTier(
            node,
            directory,
            backend_name=self.name,
            slabs_per_target=slabs_per_target,
            extra_op_overhead=self.EXTRA_OP_OVERHEAD,
            cpu=self.cpu,
            rng=rng,
            single_server=self.SINGLE_SERVER,
            power_of_two=self.POWER_OF_TWO,
        )
        self._backup = DiskBackupTier(
            node,
            op_overhead=self.cpu.block_layer_overhead + self.EXTRA_OP_OVERHEAD,
        )
        super().__init__(node, [self._remote, self._backup])

    # -- compatibility surface -----------------------------------------------

    @property
    def areas(self):
        return self._remote.areas

    @property
    def slabs_per_target(self):
        return self._remote.slabs_per_target

    @property
    def _location(self):
        return {
            page_id: meta
            for page_id, (label, meta) in self._where.items()
            if label == "remote"
        }

    @property
    def remote_reads(self):
        return self._remote.reads

    @property
    def remote_writes(self):
        return self._remote.writes

    @property
    def disk_fallback_reads(self):
        return self._remote.fallback_reads + self._backup.reads

    @property
    def disk_fallback_writes(self):
        return self._backup.writes


class Nbdx(RemoteBlockSwap):
    """A plain remote block device: one fixed remote server."""

    name = "nbdx"
    EXTRA_OP_OVERHEAD = 1.0e-6
    SINGLE_SERVER = True


class Infiniswap(RemoteBlockSwap):
    """Decentralized remote paging with power-of-two slab placement."""

    name = "infiniswap"
    EXTRA_OP_OVERHEAD = 3.0e-6
    POWER_OF_TWO = True
