"""Remote-memory paging over block I/O: NBDX and Infiniswap baselines.

Both systems expose remote memory as a block device, so every 4 KB page
pays the kernel block layer on top of the RDMA round trip, and neither
compresses nor batches — exactly the overheads FastSwap removes.

* **NBDX** — a network block device over Accelio/RDMA with a fixed
  remote server; the paper describes it as the substrate Infiniswap
  (and the first FastSwap prototype) builds on.
* **Infiniswap** [Gu et al., NSDI'17] — decentralized remote paging:
  the swap area is striped over per-node slabs placed with the power of
  two choices, one-sided verbs move pages, and an asynchronous disk
  backup covers remote failures (reads fall back to disk).
"""

from repro.core.errors import ControlTimeout, NoRemoteCapacity
from repro.hw.latency import PAGE_SIZE, CpuSpec
from repro.net.errors import NetworkError
from repro.net.rdma import RemoteAccessError
from repro.swap.base import SwapBackend


class _RemoteSlabArea:
    """Bookkeeping for slab space reserved on one remote node."""

    __slots__ = ("node_id", "capacity_bytes", "used_bytes")

    def __init__(self, node_id, capacity_bytes):
        self.node_id = node_id
        self.capacity_bytes = capacity_bytes
        self.used_bytes = 0

    @property
    def free_bytes(self):
        return self.capacity_bytes - self.used_bytes


class RemoteBlockSwap(SwapBackend):
    """Shared machinery for block-device-style remote paging."""

    name = "remote-block"
    #: Extra per-request software cost beyond the generic block layer
    #: (slab lookup, bio remapping); subclasses override.
    EXTRA_OP_OVERHEAD = 0.0

    def __init__(self, node, directory, slabs_per_target=4, cpu=None):
        self.node = node
        self.env = node.env
        self.directory = directory
        self.slabs_per_target = slabs_per_target
        self.cpu = cpu or CpuSpec()
        self.areas = {}  # node_id -> _RemoteSlabArea
        self._location = {}  # page_id -> node_id
        self._on_disk = set()  # pages living only in the disk backup
        self.remote_reads = 0
        self.remote_writes = 0
        self.disk_fallback_reads = 0
        self.disk_fallback_writes = 0

    # -- setup ---------------------------------------------------------------

    def _targets(self):
        """Remote nodes to stripe the swap area over (subclass hook)."""
        raise NotImplementedError

    def setup(self):
        """Generator: reserve slab space on the chosen remote targets."""
        slab_bytes = self.node.config.slab_bytes
        for target in self._targets():
            desired = self.slabs_per_target * slab_bytes
            # Clamp to what the target actually donates (the group
            # leader would report this in the real protocol).
            available = self.directory.free_receive_bytes(target)
            nbytes = min(desired, (available // slab_bytes) * slab_bytes)
            if nbytes <= 0:
                continue
            key = ("{}-slab".format(self.name), self.node.node_id, target)
            try:
                reply = yield from self.node.rdmc.control_call(
                    target, {"op": "reserve", "key": key, "nbytes": nbytes}
                )
            except (NetworkError, ControlTimeout):
                continue
            if reply.get("ok"):
                self.areas[target] = _RemoteSlabArea(target, nbytes)
        if not self.areas:
            raise NoRemoteCapacity(
                "{}: no remote slab space obtained".format(self.name)
            )

    # -- placement ------------------------------------------------------------

    def _place(self, page):
        """Pick the slab area for a page (subclass hook). ``None`` = full."""
        raise NotImplementedError

    # -- data path -------------------------------------------------------------

    def _live_areas(self):
        return [
            area for area in self.areas.values()
            if not self.directory.is_down(area.node_id)
        ]

    def swap_out(self, page):
        """Generator: one block write = block layer + RDMA WRITE.

        A dead or full remote target degrades to the disk backup (which
        Infiniswap maintains asynchronously anyway) instead of failing
        the eviction.
        """
        self._on_disk.discard(page.page_id)
        target = self._location.get(page.page_id)
        if target is None or self.directory.is_down(target):
            self._evacuate(page.page_id)
            area = self._place(page)
            if area is None:
                yield from self._disk_write(page)
                return
            area.used_bytes += PAGE_SIZE
            target = area.node_id
            self._location[page.page_id] = target
        yield self.env.timeout(
            self.cpu.block_layer_overhead + self.EXTRA_OP_OVERHEAD
        )
        try:
            yield from self._one_sided(target, PAGE_SIZE, write=True)
            self.remote_writes += 1
        except (NetworkError, RemoteAccessError):
            self._evacuate(page.page_id)
            yield from self._disk_write(page)

    def swap_in(self, page):
        """Generator: one block read; disk backup on remote failure."""
        yield self.env.timeout(
            self.cpu.block_layer_overhead + self.EXTRA_OP_OVERHEAD
        )
        target = self._location.get(page.page_id)
        if page.page_id in self._on_disk or target is None:
            yield from self.node.hdd.read(
                self.node.alloc_disk_span(PAGE_SIZE), PAGE_SIZE
            )
            self.disk_fallback_reads += 1
            return []
        try:
            yield from self._one_sided(target, PAGE_SIZE, write=False)
            self.remote_reads += 1
        except (NetworkError, RemoteAccessError):
            # Asynchronous disk backup saves the day at disk cost.
            yield from self.node.hdd.read(
                self.node.alloc_disk_span(PAGE_SIZE), PAGE_SIZE
            )
            self.disk_fallback_reads += 1
        return []

    def _disk_write(self, page):
        yield from self.node.hdd.write(
            self.node.alloc_disk_span(PAGE_SIZE), PAGE_SIZE
        )
        self._on_disk.add(page.page_id)
        self.disk_fallback_writes += 1

    def _evacuate(self, page_id):
        target = self._location.pop(page_id, None)
        if target is not None and target in self.areas:
            self.areas[target].used_bytes -= PAGE_SIZE

    def discard(self, page):
        self._on_disk.discard(page.page_id)
        self._evacuate(page.page_id)

    def _one_sided(self, target, nbytes, write):
        region = self.directory.receive_region_of(target)
        if region is None:
            raise RemoteAccessError("no region on {!r}".format(target))
        qp = yield from self.node.device.connect(self.directory.device_of(target))
        if write:
            yield from qp.write(region, nbytes)
        else:
            yield from qp.read(region, nbytes)


class Nbdx(RemoteBlockSwap):
    """A plain remote block device: one fixed remote server."""

    name = "nbdx"
    EXTRA_OP_OVERHEAD = 1.0e-6

    def _targets(self):
        for peer in self.directory.peers_of(self.node.node_id):
            if not self.directory.is_down(peer):
                # All slabs on the single chosen server.
                return [peer]
        return []

    def setup(self):
        # One server hosts the whole device: scale the reservation up.
        self.slabs_per_target *= max(
            1, len(self.directory.peers_of(self.node.node_id))
        )
        yield from super().setup()

    def _place(self, page):
        for area in self._live_areas():
            if area.free_bytes >= PAGE_SIZE:
                return area
        return None


class Infiniswap(RemoteBlockSwap):
    """Decentralized remote paging with power-of-two slab placement."""

    name = "infiniswap"
    EXTRA_OP_OVERHEAD = 3.0e-6

    def __init__(self, node, directory, slabs_per_target=4, cpu=None, rng=None):
        super().__init__(node, directory, slabs_per_target, cpu)
        self.rng = rng

    def _targets(self):
        return [
            peer
            for peer in self.directory.peers_of(self.node.node_id)
            if not self.directory.is_down(peer)
        ]

    def _place(self, page):
        viable = [a for a in self._live_areas() if a.free_bytes >= PAGE_SIZE]
        if not viable:
            return None
        if len(viable) == 1 or self.rng is None:
            return viable[0]
        first, second = self.rng.sample(viable, 2)
        return first if first.free_bytes >= second.free_bytes else second
