"""Installs a fault schedule into a built cluster as timed processes.

The driver is the bridge between the declarative schedule and the
imperative failure machinery: each event becomes one simulation
process that sleeps until the event time, applies the fault through
the cluster facade / :class:`~repro.net.failures.FailureInjector`,
and (for transient faults) applies the recovery at ``until``.

Crashed nodes come back through
:meth:`~repro.core.cluster.DisaggregatedCluster.reboot_node`, so a
recovered node re-registers its buffer pools and can host remote
memory again — permanent ``server_loss`` victims never do.
"""


class FaultDriver:
    """Applies a :class:`~repro.faults.schedule.FaultSchedule` to a cluster."""

    def __init__(self, cluster, schedule):
        self.cluster = cluster
        self.env = cluster.env
        self.schedule = schedule
        self.processes = []
        #: ``(time, kind, detail)`` rows, appended as events are applied.
        self.applied = []

    def install(self):
        """Spawn one simulation process per scheduled event."""
        for index, event in enumerate(self.schedule):
            name = "fault:{}:{}".format(index, event.kind)
            self.processes.append(
                self.env.process(self._apply(event), name=name)
            )
        return self.processes

    # -- event application ---------------------------------------------------

    def _apply(self, event):
        yield self.env.timeout(max(0.0, event.at - self.env.now))
        handler = getattr(self, "_apply_" + event.kind)
        yield from handler(event)

    #: Note kinds that undo an earlier fault (traced as ``fault.recover``).
    RECOVERY_KINDS = ("reboot", "heal", "restore")

    def _note(self, kind, detail, **trace_args):
        """Record an applied event; mirrors it onto the trace."""
        self.applied.append((self.env.now, kind, detail))
        tracer = self.env.tracer
        if tracer.enabled:
            name = (
                "fault.recover" if kind in self.RECOVERY_KINDS
                else "fault.inject"
            )
            tracer.instant(name, kind=kind, **trace_args)

    def _apply_crash(self, event):
        self.cluster.crash_node(event.node)
        self._note("crash", event.node, node=event.node, until=event.until)
        if event.until is not None:
            yield self.env.timeout(max(0.0, event.until - self.env.now))
            # The down window closes here: reboot_node lifts the fabric
            # down-state immediately (recovery listeners fire and peers
            # may talk to the node again), then spends simulated time
            # re-registering pools.  The recover event must carry the
            # reachable-again timestamp, not the re-registration end.
            self._note("reboot", event.node, node=event.node)
            yield from self.cluster.reboot_node(event.node)

    def _apply_server_loss(self, event):
        self.cluster.crash_node(event.node)
        self._note("server_loss", event.node, node=event.node)
        return
        yield  # pragma: no cover

    def _apply_link_flap(self, event):
        injector = self.cluster.injector
        injector.partition_link(event.node, event.peer)
        self._note(
            "link_flap", (event.node, event.peer),
            node=event.node, peer=event.peer, until=event.until,
        )
        yield self.env.timeout(max(0.0, event.until - self.env.now))
        injector.heal_link(event.node, event.peer)
        self._note(
            "heal", (event.node, event.peer),
            node=event.node, peer=event.peer,
        )

    def _apply_degrade(self, event):
        injector = self.cluster.injector
        injector.degrade_node(event.node, event.factor)
        self._note(
            "degrade", (event.node, event.factor),
            node=event.node, factor=event.factor, until=event.until,
        )
        if event.until is not None:
            yield self.env.timeout(max(0.0, event.until - self.env.now))
            injector.restore_node(event.node)
            self._note("restore", event.node, node=event.node)

    def _apply_partition(self, event):
        injector = self.cluster.injector
        injector.partition_link(event.node, event.peer)
        self._note(
            "partition", (event.node, event.peer),
            node=event.node, peer=event.peer, until=event.until,
        )
        if event.until is not None:
            yield self.env.timeout(max(0.0, event.until - self.env.now))
            injector.heal_link(event.node, event.peer)
            self._note(
                "heal", (event.node, event.peer),
                node=event.node, peer=event.peer,
            )
