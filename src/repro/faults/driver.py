"""Installs a fault schedule into a built cluster as timed processes.

The driver is the bridge between the declarative schedule and the
imperative failure machinery: each event becomes one simulation
process that sleeps until the event time, applies the fault through
the cluster facade / :class:`~repro.net.failures.FailureInjector`,
and (for transient faults) applies the recovery at ``until``.

Crashed nodes come back through
:meth:`~repro.core.cluster.DisaggregatedCluster.reboot_node`, so a
recovered node re-registers its buffer pools and can host remote
memory again — permanent ``server_loss`` victims never do.
"""


class FaultDriver:
    """Applies a :class:`~repro.faults.schedule.FaultSchedule` to a cluster."""

    def __init__(self, cluster, schedule):
        self.cluster = cluster
        self.env = cluster.env
        self.schedule = schedule
        self.processes = []
        #: ``(time, kind, detail)`` rows, appended as events are applied.
        self.applied = []

    def install(self):
        """Spawn one simulation process per scheduled event."""
        for index, event in enumerate(self.schedule):
            name = "fault:{}:{}".format(index, event.kind)
            self.processes.append(
                self.env.process(self._apply(event), name=name)
            )
        return self.processes

    # -- event application ---------------------------------------------------

    def _apply(self, event):
        yield self.env.timeout(max(0.0, event.at - self.env.now))
        handler = getattr(self, "_apply_" + event.kind)
        yield from handler(event)

    def _note(self, kind, detail):
        self.applied.append((self.env.now, kind, detail))

    def _apply_crash(self, event):
        self.cluster.crash_node(event.node)
        self._note("crash", event.node)
        if event.until is not None:
            yield self.env.timeout(max(0.0, event.until - self.env.now))
            yield from self.cluster.reboot_node(event.node)
            self._note("reboot", event.node)

    def _apply_server_loss(self, event):
        self.cluster.crash_node(event.node)
        self._note("server_loss", event.node)
        return
        yield  # pragma: no cover

    def _apply_link_flap(self, event):
        injector = self.cluster.injector
        injector.partition_link(event.node, event.peer)
        self._note("link_flap", (event.node, event.peer))
        yield self.env.timeout(max(0.0, event.until - self.env.now))
        injector.heal_link(event.node, event.peer)
        self._note("heal", (event.node, event.peer))

    def _apply_degrade(self, event):
        injector = self.cluster.injector
        injector.degrade_node(event.node, event.factor)
        self._note("degrade", (event.node, event.factor))
        if event.until is not None:
            yield self.env.timeout(max(0.0, event.until - self.env.now))
            injector.restore_node(event.node)
            self._note("restore", event.node)

    def _apply_partition(self, event):
        injector = self.cluster.injector
        injector.partition_link(event.node, event.peer)
        self._note("partition", (event.node, event.peer))
        if event.until is not None:
            yield self.env.timeout(max(0.0, event.until - self.env.now))
            injector.heal_link(event.node, event.peer)
            self._note("heal", (event.node, event.peer))
