"""Fault events and seeded random fault schedules.

A :class:`FaultSchedule` is pure data: an immutable, time-sorted tuple
of :class:`FaultEvent` rows plus the horizon they were drawn for.  The
:class:`~repro.faults.driver.FaultDriver` turns it into simulation
processes; tests reason about it directly.

:func:`random_schedule` draws a schedule from an explicitly passed
``random.Random`` (a :class:`~repro.sim.rng.RngStreams` stream), never
the process-global RNG — the same (seed, stream name, arguments) always
yield the same schedule, which is what makes the chaos-smoke CI job's
byte-identical-output assertion possible.
"""

from dataclasses import dataclass, fields

#: Everything the driver knows how to apply.
#:
#: * ``crash`` — node down at ``at``, rebooted at ``until``;
#: * ``server_loss`` — node down at ``at`` forever (its hosted memory
#:   is gone; only replicas or the disk backup can serve those pages);
#: * ``link_flap`` — the ``node``/``peer`` path drops and heals within
#:   a short window (transient RDMA errors, absorbed by retries);
#: * ``degrade`` — every path touching ``node`` slows by ``factor``
#:   until ``until`` (congestion, a misbehaving NIC);
#: * ``partition`` — the ``node``/``peer`` path is cut until ``until``
#:   (a partial partition: both ends stay up and reachable by others).
FAULT_KINDS = ("crash", "server_loss", "link_flap", "degrade", "partition")

#: Kinds that take a node fully out (used for concurrency accounting).
_DOWN_KINDS = ("crash", "server_loss")

_FOREVER = float("inf")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault, fully described by plain data."""

    kind: str
    at: float
    node: str
    peer: str = ""
    until: float = None
    factor: float = 1.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                "unknown fault kind {!r}; expected one of {}".format(
                    self.kind, ", ".join(FAULT_KINDS)
                )
            )
        if self.at < 0:
            raise ValueError("fault time must be non-negative")
        if self.until is not None and self.until < self.at:
            raise ValueError("recovery must not precede the fault")
        if self.kind in ("link_flap", "partition") and not self.peer:
            raise ValueError("{} needs a peer".format(self.kind))
        if self.kind == "degrade" and self.factor <= 1.0:
            raise ValueError("degrade factor must be > 1")

    @property
    def down_until(self):
        """End of the node-down interval (inf for a permanent loss)."""
        return _FOREVER if self.until is None else self.until

    def to_dict(self):
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}


class FaultSchedule:
    """An immutable, time-sorted sequence of fault events."""

    def __init__(self, events, horizon, nodes=()):
        self.events = tuple(
            sorted(events, key=lambda event: (event.at, event.kind, event.node))
        )
        self.horizon = float(horizon)
        self.nodes = tuple(nodes)

    def __len__(self):
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def blackout_windows(self):
        """``(start, end)`` spans the flat-path kernel must stay out of.

        One window per scheduled event, whatever its kind — a degrade
        or partition perturbs latencies just as observably as a crash —
        closing at ``down_until`` (``inf`` for permanent losses, which
        conservatively pins the rest of the run to the event engine).
        Overlaps are not merged; the kernel treats the tuple as a set.
        """
        return tuple(
            (event.at, event.down_until) for event in self.events
        )

    def down_intervals(self):
        """``(start, end, node)`` spans during which a node is down."""
        return [
            (event.at, event.down_until, event.node)
            for event in self.events
            if event.kind in _DOWN_KINDS
        ]

    def concurrent_down(self, at):
        """How many distinct nodes are down at time ``at``."""
        return len(
            {
                node
                for start, end, node in self.down_intervals()
                if start <= at < end
            }
        )

    def max_concurrent_down(self):
        """Peak number of simultaneously down nodes over the horizon."""
        edges = {start for start, _end, _node in self.down_intervals()}
        return max((self.concurrent_down(at) for at in edges), default=0)

    def lost_nodes(self):
        """Nodes that never come back (``server_loss`` victims)."""
        return tuple(
            event.node for event in self.events if event.kind == "server_loss"
        )

    def to_json(self):
        return {
            "horizon": self.horizon,
            "nodes": list(self.nodes),
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_json(cls, payload):
        return cls(
            [FaultEvent(**row) for row in payload["events"]],
            payload["horizon"],
            payload.get("nodes", ()),
        )

    @classmethod
    def single(cls, kind, node, at, horizon, **kwargs):
        """A schedule holding exactly one targeted fault.

        Convenience for surgical chaos tests — e.g. crashing a specific
        node at a precise moment inside a migration window — where
        :func:`random_schedule` would be the wrong tool.
        """
        return cls([FaultEvent(kind, at, node, **kwargs)], horizon, (node,))

    def describe(self):
        kinds = {}
        for event in self.events:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        body = ", ".join(
            "{}x{}".format(kinds[kind], kind) for kind in FAULT_KINDS if kind in kinds
        )
        return "{} fault(s) over {:.3g}s ({})".format(
            len(self.events), self.horizon, body or "none"
        )

    def __repr__(self):
        return "<FaultSchedule {}>".format(self.describe())


def _poisson(rng, expectation):
    """Knuth's Poisson sampler on an explicit ``random.Random``."""
    if expectation <= 0:
        return 0
    bound = 2.718281828459045 ** -expectation
    count, product = 0, rng.random()
    while product > bound:
        count += 1
        product *= rng.random()
    return count


class _DownLedger:
    """Tracks planned node-down intervals against a concurrency cap."""

    def __init__(self, cap):
        self.cap = cap
        self.intervals = []  # (start, end, node)

    def admits(self, start, end, node):
        if any(
            node == other and start < other_end and other_start < end
            for other_start, other_end, other in self.intervals
        ):
            return False  # the node is already down somewhere in there
        if self.cap is None:
            return True
        edges = [start] + [
            other_start
            for other_start, other_end, _other in self.intervals
            if start <= other_start < end
        ]
        for edge in edges:
            down = {
                other
                for other_start, other_end, other in self.intervals
                if other_start <= edge < other_end
            }
            if len(down) + 1 > self.cap:
                return False
        return True

    def add(self, start, end, node):
        self.intervals.append((start, end, node))


def random_schedule(
    rng,
    nodes,
    horizon,
    rate,
    max_concurrent_down=None,
    guaranteed_loss=False,
    attempts_per_event=8,
):
    """Draw a random fault schedule from an explicit RNG stream.

    ``rate`` is the expected number of random fault events over the
    whole horizon (a dimensionless intensity, so scaled-down runs keep
    the same amount of chaos).  ``max_concurrent_down`` caps how many
    nodes may be down at once — schedules honouring ``cap < r`` are the
    ones a replication factor of ``r`` must survive without losing a
    page.  ``guaranteed_loss=True`` adds one permanent ``server_loss``
    at 40% of the horizon, so loss-accounting paths are always
    exercised; the victim draw is the first thing taken from ``rng``,
    keeping the whole schedule a pure function of (stream, arguments).
    """
    nodes = list(nodes)
    if not nodes:
        raise ValueError("a fault schedule needs at least one node")
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if rate < 0:
        raise ValueError("rate must be non-negative")
    if max_concurrent_down is not None and max_concurrent_down < 1:
        raise ValueError("max_concurrent_down must be >= 1")
    ledger = _DownLedger(max_concurrent_down)
    events = []
    if guaranteed_loss:
        victim = rng.choice(nodes)
        at = 0.4 * horizon
        events.append(FaultEvent("server_loss", at, victim))
        ledger.add(at, _FOREVER, victim)
    if len(nodes) >= 2:
        kinds, weights = ("crash", "link_flap", "degrade", "partition"), (
            0.35,
            0.2,
            0.25,
            0.2,
        )
    else:
        kinds, weights = ("crash", "degrade"), (0.6, 0.4)
    for _ in range(_poisson(rng, rate)):
        for _attempt in range(attempts_per_event):
            kind = rng.choices(kinds, weights=weights)[0]
            at = rng.uniform(0.05, 0.95) * horizon
            node = rng.choice(nodes)
            if kind == "crash":
                until = min(horizon, at + rng.uniform(0.05, 0.15) * horizon)
                if not ledger.admits(at, until, node):
                    continue
                ledger.add(at, until, node)
                events.append(FaultEvent("crash", at, node, until=until))
            elif kind == "link_flap":
                peer = rng.choice([other for other in nodes if other != node])
                until = at + rng.uniform(0.001, 0.005) * horizon
                events.append(FaultEvent("link_flap", at, node, peer=peer, until=until))
            elif kind == "degrade":
                factor = rng.uniform(2.0, 8.0)
                until = min(horizon, at + rng.uniform(0.1, 0.3) * horizon)
                events.append(
                    FaultEvent("degrade", at, node, until=until, factor=factor)
                )
            else:
                peer = rng.choice([other for other in nodes if other != node])
                until = min(horizon, at + rng.uniform(0.05, 0.2) * horizon)
                events.append(FaultEvent("partition", at, node, peer=peer, until=until))
            break
    return FaultSchedule(events, horizon, nodes)
