"""Seeded, deterministic fault schedules (paper Section IV-D).

Disaggregated memory turns every node's DRAM into a shared dependency:
"the failure of one machine can cause the failure of many others".
This package provides the machinery the resilience experiments inject
faults with:

* :mod:`repro.faults.schedule` — declarative fault events (node crash,
  permanent memory-server loss, RDMA link flap, latency degradation,
  partial partition) and a generator drawing random schedules from a
  named :class:`~repro.sim.rng.RngStreams` stream, so every schedule is
  reproducible from the master seed alone;
* :mod:`repro.faults.driver` — :class:`FaultDriver`, which installs a
  schedule into a built cluster as timed simulation processes driving
  :class:`~repro.net.failures.FailureInjector`.

The split mirrors the injector's contract: the injector applies events
it is told about and holds no randomness; this package decides *what*
happens *when*, from an explicit seed.
"""

from repro.faults.driver import FaultDriver
from repro.faults.schedule import (
    FAULT_KINDS,
    FaultEvent,
    FaultSchedule,
    random_schedule,
)

__all__ = [
    "FAULT_KINDS",
    "FaultDriver",
    "FaultEvent",
    "FaultSchedule",
    "random_schedule",
]
