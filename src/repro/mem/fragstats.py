"""Shared fragmentation-accounting surface for allocator backends.

Every allocator in :mod:`repro.mem` — the memcached-style
:class:`~repro.mem.allocator.SlabAllocator`, the jemalloc-style
:class:`~repro.mem.arena.Arena` and the idealized
:class:`~repro.mem.arena.UniformAllocator` baseline — reports its state
through one :class:`FragmentationStats` snapshot, so experiments and
the balance control plane can compare backends without knowing their
internals.

Definitions (all byte counts, all at snapshot time):

* *payload* — what callers asked to store;
* *live* — what the blocks holding that payload actually cost
  (size-class rounding makes ``live >= payload``);
* *free* — bytes not committed to any live block;
* *metadata* — allocator bookkeeping (run headers, slab headers,
  free-list entries, unusable slack);
* *internal fragmentation* — ``1 - payload/live``: waste inside blocks;
* *external fragmentation* — ``1 - largest_free_extent/free``: how
  scattered the free bytes are (a pool with plenty of free bytes but no
  large contiguous extent cannot satisfy large requests);
* *allocatable* — bytes actually satisfiable for requests at the
  reporting grain, derived from the free-extent histogram.  This is the
  number harvest policies should plan against, not raw ``free``.
"""

from dataclasses import dataclass


def log2_bucket(nbytes):
    """Largest power of two ``<= nbytes`` (the histogram bucket floor)."""
    if nbytes < 1:
        raise ValueError("nbytes must be >= 1")
    return 1 << (int(nbytes).bit_length() - 1)


def build_histogram(sizes):
    """Bucket free-extent ``sizes`` by :func:`log2_bucket`.

    Returns a sorted tuple of ``(bucket_bytes, count)`` pairs — a
    JSON-friendly, mergeable summary of the free-space shape.
    """
    counts = {}
    for size in sizes:
        if size < 1:
            continue
        bucket = log2_bucket(size)
        counts[bucket] = counts.get(bucket, 0) + 1
    return tuple(sorted(counts.items()))


@dataclass(frozen=True)
class FragmentationStats:
    """One allocator's fragmentation accounting at a point in time."""

    capacity_bytes: int
    payload_bytes: int
    live_bytes: int
    free_bytes: int
    metadata_bytes: int
    largest_free_extent: int
    allocatable_bytes: int
    free_extent_histogram: tuple = ()

    @property
    def internal_fragmentation(self):
        """Wasted fraction inside live blocks (0 when empty)."""
        if self.live_bytes == 0:
            return 0.0
        return 1.0 - self.payload_bytes / self.live_bytes

    @property
    def external_fragmentation(self):
        """How scattered the free bytes are (0 when none are free)."""
        if self.free_bytes == 0:
            return 0.0
        return 1.0 - self.largest_free_extent / self.free_bytes

    @property
    def utilization(self):
        """Stored payload over pool capacity."""
        if self.capacity_bytes == 0:
            return 0.0
        return self.payload_bytes / self.capacity_bytes

    @property
    def metadata_fraction(self):
        """Allocator bookkeeping over pool capacity."""
        if self.capacity_bytes == 0:
            return 0.0
        return self.metadata_bytes / self.capacity_bytes

    @property
    def allocatable_ratio(self):
        """Satisfiable over raw free bytes (1.0 when nothing is free)."""
        if self.free_bytes == 0:
            return 1.0
        return self.allocatable_bytes / self.free_bytes

    def as_row(self):
        """Flat JSON-friendly dict (histogram as a list of pairs)."""
        return {
            "capacity_bytes": self.capacity_bytes,
            "payload_bytes": self.payload_bytes,
            "live_bytes": self.live_bytes,
            "free_bytes": self.free_bytes,
            "metadata_bytes": self.metadata_bytes,
            "largest_free_extent": self.largest_free_extent,
            "allocatable_bytes": self.allocatable_bytes,
            "free_extent_histogram": [list(pair) for pair in self.free_extent_histogram],
            "internal_fragmentation": self.internal_fragmentation,
            "external_fragmentation": self.external_fragmentation,
            "utilization": self.utilization,
            "metadata_fraction": self.metadata_fraction,
            "allocatable_ratio": self.allocatable_ratio,
        }
