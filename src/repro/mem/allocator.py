"""A slab/chunk allocator in the memcached style.

The pool is carved into fixed-size *slabs* (default 1 MiB).  Each slab
is assigned on demand to a *size class* and split into equal chunks of
that class's size.  Freeing a chunk returns it to its slab's free list;
a fully free slab can be reclaimed and reassigned to another class.

This is the allocator behind the node shared-memory pool and the
compressed page stores, where Figure 3's effective compression ratios
come from: what a page *costs* is the chunk size of its class, not its
raw compressed size.

It shares the :class:`~repro.mem.fragstats.FragmentationStats`
reporting surface with the jemalloc-style :mod:`repro.mem.arena`
backends.  Unlike the arena, slab metadata (per-slab headers and
free-list entries) is *reported* in the stats but not carved out of
the pool's capacity, preserving the allocator's historical behaviour;
the ``live + free + metadata == capacity`` conservation identity is an
arena-only guarantee.
"""

from repro.mem.fragstats import FragmentationStats, build_histogram


class AllocationError(Exception):
    """The pool cannot satisfy an allocation."""


class Chunk:
    """A handle to one allocated chunk."""

    __slots__ = ("slab", "chunk_size", "index", "payload_bytes")

    def __init__(self, slab, chunk_size, index, payload_bytes=0):
        self.slab = slab
        self.chunk_size = chunk_size
        self.index = index
        self.payload_bytes = payload_bytes

    def __repr__(self):
        return "<Chunk {}B slab={}>".format(self.chunk_size, self.slab.slab_id)


class _Slab:
    __slots__ = ("slab_id", "size", "chunk_size", "free_indices", "used")

    def __init__(self, slab_id, size):
        self.slab_id = slab_id
        self.size = size
        self.chunk_size = None
        self.free_indices = []
        self.used = 0

    def assign(self, chunk_size):
        self.chunk_size = chunk_size
        count = self.size // chunk_size
        self.free_indices = list(range(count))
        self.used = 0

    def reset(self):
        self.chunk_size = None
        self.free_indices = []
        self.used = 0


class SlabAllocator:
    """Allocates chunks of the configured size classes from a byte pool."""

    DEFAULT_SLAB_BYTES = 1024 * 1024
    #: Per-slab descriptor cost, charged whether or not the slab is assigned.
    SLAB_HEADER_BYTES = 64
    #: Per free-chunk free-list entry cost on assigned slabs.
    FREELIST_ENTRY_BYTES = 8

    def __init__(self, capacity_bytes, size_classes, slab_bytes=None):
        if slab_bytes is None:
            slab_bytes = self.DEFAULT_SLAB_BYTES
        if slab_bytes <= 0:
            raise ValueError("slab_bytes must be positive")
        size_classes = sorted(set(size_classes))
        if not size_classes:
            raise ValueError("need at least one size class")
        if any(c <= 0 or c > slab_bytes for c in size_classes):
            raise ValueError("size classes must be in (0, slab_bytes]")
        self.capacity_bytes = int(capacity_bytes)
        self.slab_bytes = slab_bytes
        self.size_classes = size_classes
        self._free_slabs = [
            _Slab(i, slab_bytes) for i in range(self.capacity_bytes // slab_bytes)
        ]
        self._class_slabs = {c: [] for c in size_classes}
        self.allocated_chunks = 0
        self.stored_payload_bytes = 0  # what callers asked for
        self.stored_chunk_bytes = 0  # what it actually cost

    # -- introspection -------------------------------------------------------

    @property
    def total_slabs(self):
        return len(self._free_slabs) + sum(
            len(slabs) for slabs in self._class_slabs.values()
        )

    @property
    def free_bytes(self):
        """Bytes not yet committed to any chunk (free slabs + free chunks)."""
        free = len(self._free_slabs) * self.slab_bytes
        for chunk_size, slabs in self._class_slabs.items():
            for slab in slabs:
                free += len(slab.free_indices) * chunk_size
        return free

    @property
    def payload_bytes(self):
        return self.stored_payload_bytes

    @property
    def live_bytes(self):
        return self.stored_chunk_bytes

    @property
    def metadata_bytes(self):
        """Slab headers plus free-list entries on assigned slabs.

        Reported overhead only — the slab allocator does not carve its
        bookkeeping out of the pool, so this does not reduce
        ``free_bytes`` (see the module docstring).
        """
        metadata = self.total_slabs * self.SLAB_HEADER_BYTES
        for slabs in self._class_slabs.values():
            for slab in slabs:
                metadata += len(slab.free_indices) * self.FREELIST_ENTRY_BYTES
        return metadata

    @property
    def largest_free_extent(self):
        """Largest contiguous free range (a whole slab, else a chunk)."""
        if self._free_slabs:
            return self.slab_bytes
        largest = 0
        for chunk_size, slabs in self._class_slabs.items():
            if chunk_size <= largest:
                continue
            if any(slab.free_indices for slab in slabs):
                largest = chunk_size
        return largest

    def utilization(self):
        """stored payload bytes / pool capacity."""
        if self.capacity_bytes == 0:
            return 0.0
        return self.stored_payload_bytes / self.capacity_bytes

    def internal_fragmentation(self):
        """Wasted fraction inside allocated chunks (0 when empty)."""
        if self.stored_chunk_bytes == 0:
            return 0.0
        return 1.0 - self.stored_payload_bytes / self.stored_chunk_bytes

    def allocatable_bytes(self, request=None):
        """Bytes satisfiable by requests of ``request`` payload each.

        A slab assigned to one class only serves that class, so free
        chunks of other classes do not help a request: what counts is
        free chunks of the request's own class plus whatever whole free
        slabs could be assigned to it.  Requests above the largest
        class split into largest-class pieces (the
        :meth:`allocate_entry` contract).
        """
        if request is None:
            request = self.size_classes[-1]
        if request <= 0:
            raise ValueError("request must be positive")
        chunk_size = self.class_for(request)
        if chunk_size is None:
            largest = self.size_classes[-1]
            pieces_per_request = -(-request // largest)
            piece_capacity = self.allocatable_bytes(largest) // largest
            return (piece_capacity // pieces_per_request) * request
        per_slab = self.slab_bytes // chunk_size
        count = len(self._free_slabs) * per_slab
        for slab in self._class_slabs[chunk_size]:
            count += len(slab.free_indices)
        return count * request

    def free_extent_sizes(self):
        """Sizes feeding the free-extent histogram (slabs + free chunks)."""
        sizes = [self.slab_bytes] * len(self._free_slabs)
        for chunk_size, slabs in self._class_slabs.items():
            for slab in slabs:
                sizes.extend([chunk_size] * len(slab.free_indices))
        return sizes

    def frag_stats(self):
        """The shared :class:`FragmentationStats` snapshot."""
        return FragmentationStats(
            capacity_bytes=self.capacity_bytes,
            payload_bytes=self.stored_payload_bytes,
            live_bytes=self.stored_chunk_bytes,
            free_bytes=self.free_bytes,
            metadata_bytes=self.metadata_bytes,
            largest_free_extent=self.largest_free_extent,
            allocatable_bytes=self.allocatable_bytes(),
            free_extent_histogram=build_histogram(self.free_extent_sizes()),
        )

    def class_for(self, nbytes):
        """Smallest size class that fits ``nbytes`` (None if too big)."""
        for chunk_size in self.size_classes:
            if nbytes <= chunk_size:
                return chunk_size
        return None

    # -- allocation ------------------------------------------------------------

    def allocate(self, nbytes):
        """Allocate a chunk for a payload of ``nbytes``.

        Raises :class:`AllocationError` when the payload exceeds the
        largest class or no space remains.
        """
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        chunk_size = self.class_for(nbytes)
        if chunk_size is None:
            raise AllocationError(
                "{} bytes exceeds largest size class {}".format(
                    nbytes, self.size_classes[-1]
                )
            )
        slab = self._slab_with_space(chunk_size)
        if slab is None:
            raise AllocationError("pool exhausted")
        index = slab.free_indices.pop()
        slab.used += 1
        self.allocated_chunks += 1
        self.stored_payload_bytes += nbytes
        self.stored_chunk_bytes += chunk_size
        return Chunk(slab, chunk_size, index, payload_bytes=nbytes)

    def free(self, chunk):
        """Return a chunk to its slab; reclaim the slab if it empties."""
        slab = chunk.slab
        slab.free_indices.append(chunk.index)
        slab.used -= 1
        self.allocated_chunks -= 1
        self.stored_payload_bytes -= chunk.payload_bytes
        self.stored_chunk_bytes -= chunk.chunk_size
        if slab.used == 0:
            self._class_slabs[slab.chunk_size].remove(slab)
            slab.reset()
            self._free_slabs.append(slab)

    def allocate_entry(self, nbytes):
        """Allocate a *list* of chunks covering ``nbytes``.

        Payloads larger than the largest size class are split into
        largest-class pieces plus a tail chunk.  Either the whole entry
        is allocated or nothing is (partial allocations roll back).
        """
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        largest = self.size_classes[-1]
        chunks = []
        remaining = nbytes
        try:
            while remaining > 0:
                piece = min(remaining, largest)
                chunks.append(self.allocate(piece))
                remaining -= piece
        except AllocationError:
            for chunk in chunks:
                self.free(chunk)
            raise
        return chunks

    def free_entry(self, chunks):
        """Free every chunk of an entry."""
        for chunk in chunks:
            self.free(chunk)

    def grow(self, slab_count):
        """Add ``slab_count`` fresh slabs to the pool."""
        if slab_count < 0:
            raise ValueError("slab_count must be >= 0")
        base = self._next_slab_id()
        for i in range(slab_count):
            self._free_slabs.append(_Slab(base + i, self.slab_bytes))
        self.capacity_bytes += slab_count * self.slab_bytes

    def shrink(self, slab_count):
        """Remove up to ``slab_count`` *idle* slabs; returns how many went."""
        if slab_count < 0:
            raise ValueError("slab_count must be >= 0")
        removed = min(slab_count, len(self._free_slabs))
        for _ in range(removed):
            self._free_slabs.pop()
        self.capacity_bytes -= removed * self.slab_bytes
        return removed

    def compact(self):
        """Slab pools don't defragment in place; a no-op (0 bytes moved).

        Chunk packing already keeps at most one partial slab per class,
        so the arena-style consolidation pass has nothing to do here.
        """
        return 0

    def _next_slab_id(self):
        highest = -1
        for slab in self._free_slabs:
            highest = max(highest, slab.slab_id)
        for slabs in self._class_slabs.values():
            for slab in slabs:
                highest = max(highest, slab.slab_id)
        return highest + 1

    def _slab_with_space(self, chunk_size):
        for slab in self._class_slabs[chunk_size]:
            if slab.free_indices:
                return slab
        if self._free_slabs:
            slab = self._free_slabs.pop()
            slab.assign(chunk_size)
            self._class_slabs[chunk_size].append(slab)
            return slab
        return None
