"""Cluster-wide RDMA buffer pools (paper Section IV-B, IV-F).

Each node reserves part of its physical DRAM as RDMA-registered memory
and maintains two pools of registered slabs:

* the **send buffer pool** — staging area for data on its way to a
  remote node's disaggregated memory;
* the **receive buffer pool** — the memory this node donates to the
  cluster, written by remote peers with one-sided RDMA WRITEs.

Registration costs real time (pinning + mapping); the remote-slab
eviction handler of Section IV-F deregisters slabs preemptively when
local pressure rises, which this class supports via :meth:`shrink`.
"""

from repro.mem.allocator import AllocationError, SlabAllocator
from repro.mem.arena import make_allocator


class _TicketedEntry(list):
    """An entry's block handles, tagged with the pool's reserve ticket.

    Subclasses ``list`` so every existing caller that treats the
    reservation as an opaque chunk list keeps working; the ticket pairs
    the ``alloc.reserve``/``alloc.free`` trace instants.
    """

    ticket = None


class RdmaBufferPool:
    """A pool of RDMA-registered slabs on one node."""

    DEFAULT_SLAB_BYTES = 1024 * 1024

    def __init__(self, device, role, size_classes=(512, 1024, 2048, 4096),
                 slab_bytes=None, name=None, policy="slab"):
        if role not in ("send", "receive"):
            raise ValueError("role must be 'send' or 'receive'")
        self.device = device
        self.env = device.env
        self.role = role
        self.policy = policy
        self.slab_bytes = slab_bytes or self.DEFAULT_SLAB_BYTES
        self.name = name or "{}-pool:{}".format(role, device.node_id)
        self._allocator = make_allocator(
            policy, 0, size_classes=size_classes, slab_bytes=self.slab_bytes
        )
        # Only arena-backed pools narrate allocation: the historical
        # backends keep their traces (and seq numbering) untouched.
        self._traced = policy == "arena"
        self._ticket = 0
        self._regions = []  # one MemoryRegion per registered slab
        self.registrations = 0
        self.deregistrations = 0

    # -- capacity ------------------------------------------------------------

    @property
    def capacity_bytes(self):
        return self._allocator.capacity_bytes

    @property
    def used_bytes(self):
        return self._allocator.stored_chunk_bytes

    @property
    def free_bytes(self):
        return self._allocator.free_bytes

    @property
    def regions(self):
        """The registered memory regions backing this pool."""
        return list(self._regions)

    def allocatable_bytes(self, request=None):
        """Bytes actually satisfiable at the ``request`` grain.

        Under fragmentation this can be far below :attr:`free_bytes`;
        the balance telemetry reports it so harvest policies plan
        against what the pool can really absorb.
        """
        return self._allocator.allocatable_bytes(request)

    def frag_stats(self):
        """The allocator's :class:`FragmentationStats` snapshot."""
        return self._allocator.frag_stats()

    def compact(self):
        """Defragment the backing allocator; returns the bytes copied.

        Callers charge the returned byte count at DRAM-copy cost.  A
        no-op (0) on the slab and uniform backends.
        """
        tracer = self.env.tracer
        if not (self._traced and tracer.enabled):
            return self._allocator.compact()
        live = self._allocator.live_bytes
        span = tracer.begin(
            "alloc.compact", store=self.name, live_before=live
        )
        moved = self._allocator.compact()
        tracer.end(
            span,
            live_after=self._allocator.live_bytes,
            moved_bytes=moved,
        )
        return moved

    def grow(self, slab_count):
        """Generator: register ``slab_count`` new slabs (costs time)."""
        for _ in range(slab_count):
            region = yield from self.device.register_memory(self.slab_bytes)
            self._regions.append(region)
            self._allocator.grow(1)
            self.registrations += 1

    def shrink(self, slab_count):
        """Deregister up to ``slab_count`` idle slabs; returns how many.

        Deregistration is immediate (unpinning does not block the data
        path); only slabs with no live chunks are taken.
        """
        removed = self._allocator.shrink(slab_count)
        for _ in range(removed):
            region = self._regions.pop()
            self.device.deregister_memory(region)
            self.deregistrations += 1
        return removed

    def migrate_slabs(self, other, slab_count):
        """Generator: move ownership of up to ``slab_count`` idle slabs
        to ``other`` (a pool on a different node).

        This is the donation transfer of the balancing control plane:
        the slabs are deregistered here immediately (shrink semantics —
        only idle slabs move) and re-registered on the receiving node,
        which pays the usual pinning/mapping time.  Returns how many
        slabs actually moved.
        """
        if other.slab_bytes != self.slab_bytes:
            raise ValueError("pools must share a slab size to trade slabs")
        moved = self.shrink(slab_count)
        if moved:
            yield from other.grow(moved)
        return moved

    # -- allocation ------------------------------------------------------------

    def reserve(self, nbytes):
        """Allocate a buffer chunk; returns it or ``None`` when full."""
        try:
            return self._allocator.allocate(nbytes)
        except AllocationError:
            return None

    def release(self, chunk):
        """Return a buffer chunk to the pool."""
        self._allocator.free(chunk)

    def reserve_entry(self, nbytes):
        """Allocate chunks covering ``nbytes``; ``None`` when full."""
        try:
            chunks = self._allocator.allocate_entry(nbytes)
        except AllocationError:
            return None
        if self._traced:
            entry = _TicketedEntry(chunks)
            self._ticket += 1
            entry.ticket = self._ticket
            tracer = self.env.tracer
            if tracer.enabled:
                tracer.instant(
                    "alloc.reserve",
                    store=self.name,
                    key=entry.ticket,
                    nbytes=nbytes,
                )
            return entry
        return chunks

    def release_entry(self, chunks):
        """Return an entry's chunks to the pool."""
        ticket = getattr(chunks, "ticket", None)
        if ticket is not None:
            tracer = self.env.tracer
            if tracer.enabled:
                tracer.instant(
                    "alloc.free", store=self.name, key=ticket
                )
        self._allocator.free_entry(chunks)

    def purge_revoked(self):
        """Drop slabs whose regions a crash revoked; returns the count.

        After :meth:`~repro.net.rdma.RdmaDevice.crash` every region is
        revoked but the pool still carries the slabs on its books.  A
        reboot purges them (their chunks died with the DRAM contents)
        before re-registering fresh slabs via :meth:`grow`.
        """
        revoked = [region for region in self._regions if not region.valid]
        if not revoked:
            return 0
        # Crash semantics dropped every hosted entry first, so the
        # revoked slabs are idle; ``shrink`` only takes idle slabs, so
        # any chunk still live keeps its slab on the books.
        removed = self._allocator.shrink(len(revoked))
        keep = len(revoked) - removed
        valid = [region for region in self._regions if region.valid]
        self._regions = valid + revoked[:keep]
        self.deregistrations += removed
        return removed

    def any_region(self):
        """A registered region usable as a one-sided op target.

        Returns ``None`` when the pool has no registered slabs.
        """
        return self._regions[-1] if self._regions else None
