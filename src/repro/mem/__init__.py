"""Memory substrate: pages, slabs, pools and compression.

Building blocks under the disaggregated memory system:

* :mod:`repro.mem.page` — pages with per-page compressibility;
* :mod:`repro.mem.allocator` — a slab/chunk allocator in the memcached
  style, used by the shared pool and by compressed stores;
* :mod:`repro.mem.arena` — a jemalloc-style extent/run arena with real
  fragmentation, the idealized uniform-slot baseline, and the
  ``make_allocator`` policy factory;
* :mod:`repro.mem.fragstats` — the :class:`FragmentationStats`
  reporting surface shared by every allocator backend;
* :mod:`repro.mem.compression` — the multi-granularity compression
  model of Section IV-H (FastSwap's 512 B/1 K/2 K/4 K classes) and a
  zbud-pairing model of zswap;
* :mod:`repro.mem.shared_pool` — the node-coordinated shared memory
  pool assembled from virtual-server donations (Section III/IV-F);
* :mod:`repro.mem.buffer_pool` — cluster-wide RDMA send/receive buffer
  pools of registered slabs (Section IV-B).
"""

from repro.mem.allocator import AllocationError, Chunk, SlabAllocator
from repro.mem.arena import (
    ALLOC_POLICIES,
    Allocation,
    Arena,
    UniformAllocator,
    geometric_size_classes,
    make_allocator,
)
from repro.mem.buffer_pool import RdmaBufferPool
from repro.mem.compression import (
    CompressibilityProfile,
    CompressionEngine,
    GranularityStore,
    ZbudStore,
)
from repro.mem.fragstats import FragmentationStats
from repro.mem.page import Page, make_pages
from repro.mem.shared_pool import SharedMemoryPool, SharedSlot

__all__ = [
    "ALLOC_POLICIES",
    "Allocation",
    "AllocationError",
    "Arena",
    "Chunk",
    "CompressibilityProfile",
    "CompressionEngine",
    "FragmentationStats",
    "GranularityStore",
    "Page",
    "RdmaBufferPool",
    "SharedMemoryPool",
    "SharedSlot",
    "SlabAllocator",
    "UniformAllocator",
    "ZbudStore",
    "geometric_size_classes",
    "make_allocator",
    "make_pages",
]
