"""Pages: the unit of swapping.

A :class:`Page` carries its identity, owner and *compressibility* — the
ratio ``page_size / compressed_size`` an LZO-class compressor would
achieve on its contents.  Compressibility is sampled once per page from
the owning workload's profile and stays fixed, mirroring how a given
page's content compresses the same way every time it is swapped.
"""

from repro.hw.latency import PAGE_SIZE


class Page:
    """A fixed-size virtual memory page."""

    __slots__ = ("page_id", "owner", "size", "compressibility", "dirty")

    def __init__(self, page_id, owner=None, size=PAGE_SIZE, compressibility=1.0):
        if compressibility < 1.0:
            raise ValueError("compressibility must be >= 1.0 (ratio raw/compressed)")
        self.page_id = page_id
        self.owner = owner
        self.size = size
        self.compressibility = compressibility
        self.dirty = False

    @property
    def compressed_size(self):
        """Bytes after compression (before any granularity rounding)."""
        return max(1, int(round(self.size / self.compressibility)))

    def __repr__(self):
        return "<Page {} owner={!r} ratio={:.2f}>".format(
            self.page_id, self.owner, self.compressibility
        )


def make_pages(count, owner=None, size=PAGE_SIZE, compressibility_sampler=None):
    """Build ``count`` pages, sampling per-page compressibility.

    ``compressibility_sampler`` is a zero-argument callable returning a
    ratio >= 1.0 (e.g. from a
    :class:`~repro.mem.compression.CompressibilityProfile`); without it
    pages are incompressible.
    """
    pages = []
    for page_id in range(count):
        ratio = compressibility_sampler() if compressibility_sampler else 1.0
        pages.append(Page(page_id, owner=owner, size=size, compressibility=ratio))
    return pages
