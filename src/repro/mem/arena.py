"""A jemalloc-style arena allocator over a node's byte pool.

Where :class:`repro.mem.allocator.SlabAllocator` models memcached's
fixed 1 MiB slabs, this module models the allocator family actually
used under remote-memory pools (jemalloc / arralloc): the pool is a
byte range managed as *extents* (contiguous free ranges, coalesced by
address), small allocations are served from *runs* (an extent carved
into equal regions of one geometrically spaced size class, with a
per-run header), and large allocations take whole extents.  Metadata —
run headers plus the slack a run cannot carve into regions — is charged
against the pool itself, so the conservation identity

    ``live_bytes + free_bytes + metadata_bytes == capacity_bytes``

holds exactly at every step (the hypothesis suite in
``tests/property/test_arena_props.py`` churns on it).

Fragmentation is therefore *real* here: a pool can report plenty of raw
free bytes while no extent is large enough to start a new run of the
class a request needs.  :meth:`Arena.allocatable_bytes` derives what is
actually satisfiable from the free structure, and :meth:`Arena.compact`
models a defragmentation pass — consolidating half-empty runs and
sliding everything to the bottom of the address space — returning the
bytes copied so callers can charge simulated copy cost.

:class:`UniformAllocator` is the idealized baseline the cluster-level
numbers were previously computed against: one free-byte counter, no
fragmentation ever.  Both backends share the allocator surface of
:class:`SlabAllocator` (``allocate/free/allocate_entry/free_entry/
grow/shrink``) and the :class:`~repro.mem.fragstats.FragmentationStats`
reporting surface, so pools and tiers can switch policy by name via
:func:`make_allocator`.
"""

import heapq

from repro.mem.allocator import AllocationError, SlabAllocator
from repro.mem.fragstats import FragmentationStats, build_histogram

#: Arena growth granularity when none is given (matches the slab size).
DEFAULT_GROW_UNIT = 1024 * 1024

#: Per-run header carved from the run's extent.
RUN_HEADER_BYTES = 64

#: Extents are sized and split in multiples of this.
EXTENT_QUANTUM = 4096


def geometric_size_classes(quantum=512, max_small=16384, group_classes=4):
    """jemalloc-style size classes: ``group_classes`` per doubling.

    Starting at ``quantum``, each power-of-two group ``[g, 2g)`` is
    split into ``group_classes`` evenly spaced classes, bounding
    internal fragmentation at roughly ``1/group_classes``.
    """
    if quantum < 1 or max_small < quantum:
        raise ValueError("need 1 <= quantum <= max_small")
    if group_classes < 1:
        raise ValueError("group_classes must be >= 1")
    classes = [quantum]
    group = quantum
    while group < max_small:
        spacing = max(group // group_classes, 1)
        for step in range(1, group_classes + 1):
            size = group + spacing * step
            if size > max_small:
                break
            if size != classes[-1]:
                classes.append(size)
        group *= 2
    return tuple(classes)


def _round_up(nbytes, quantum):
    return ((nbytes + quantum - 1) // quantum) * quantum


class Extent:
    """A contiguous byte range ``[offset, offset + length)``."""

    __slots__ = ("offset", "length")

    def __init__(self, offset, length):
        self.offset = offset
        self.length = length

    @property
    def end(self):
        return self.offset + self.length

    def __repr__(self):
        return "<Extent [{}, {})>".format(self.offset, self.end)


class _Run:
    """An extent carved into equal regions of one size class."""

    __slots__ = ("extent", "chunk_size", "regions", "free_indices", "used",
                 "allocations")

    def __init__(self, extent, chunk_size, regions):
        self.extent = extent
        self.chunk_size = chunk_size
        self.regions = regions
        self.free_indices = list(range(regions))
        heapq.heapify(self.free_indices)
        self.used = 0
        #: index -> live Allocation, so compaction can retarget handles.
        self.allocations = {}


class Allocation:
    """A handle to one live arena block (small region or large extent)."""

    __slots__ = ("run", "index", "extent", "block_bytes", "payload_bytes",
                 "freed")

    def __init__(self, block_bytes, payload_bytes, run=None, index=None,
                 extent=None):
        self.run = run
        self.index = index
        self.extent = extent
        self.block_bytes = block_bytes
        self.payload_bytes = payload_bytes
        self.freed = False

    @property
    def chunk_size(self):
        """Block cost of this handle (named like :class:`Chunk` for pools)."""
        return self.block_bytes

    def __repr__(self):
        kind = "large" if self.extent is not None else "small"
        return "<Allocation {} {}B>".format(kind, self.block_bytes)


class Arena:
    """Extent/run allocation with explicit fragmentation accounting."""

    def __init__(self, capacity_bytes, quantum=512, max_small=16384,
                 group_classes=4, grow_unit=None):
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes must be >= 0")
        self.capacity_bytes = int(capacity_bytes)
        self.grow_unit = int(grow_unit) if grow_unit else DEFAULT_GROW_UNIT
        if self.grow_unit <= 0:
            raise ValueError("grow_unit must be positive")
        self.size_classes = geometric_size_classes(
            quantum, max_small, group_classes
        )
        self.max_small = max_small
        self._free = []  # Extents sorted by offset.
        if self.capacity_bytes:
            self._free.append(Extent(0, self.capacity_bytes))
        self._runs = {chunk_size: [] for chunk_size in self.size_classes}
        self._large = []
        self.payload_bytes = 0
        self.live_bytes = 0
        self.metadata_bytes = 0
        self.compactions = 0

    # -- introspection -------------------------------------------------------

    @property
    def total_slabs(self):
        """Capacity in grow units (the pools' slab-count view)."""
        return self.capacity_bytes // self.grow_unit

    @property
    def free_bytes(self):
        """Free extent bytes plus free regions inside partial runs."""
        free = sum(extent.length for extent in self._free)
        for chunk_size, runs in self._runs.items():
            for run in runs:
                free += len(run.free_indices) * chunk_size
        return free

    @property
    def stored_payload_bytes(self):
        return self.payload_bytes

    @property
    def stored_chunk_bytes(self):
        return self.live_bytes

    @property
    def largest_free_extent(self):
        """Largest contiguous free range (free region class as floor)."""
        largest = max((extent.length for extent in self._free), default=0)
        for chunk_size in reversed(self.size_classes):
            if chunk_size <= largest:
                break
            if any(run.free_indices for run in self._runs[chunk_size]):
                largest = chunk_size
                break
        return largest

    def utilization(self):
        if self.capacity_bytes == 0:
            return 0.0
        return self.payload_bytes / self.capacity_bytes

    def internal_fragmentation(self):
        if self.live_bytes == 0:
            return 0.0
        return 1.0 - self.payload_bytes / self.live_bytes

    def conserves(self):
        """The arena invariant: live + free + metadata == capacity."""
        return (
            self.live_bytes + self.free_bytes + self.metadata_bytes
            == self.capacity_bytes
        )

    def class_for(self, nbytes):
        """Smallest size class fitting ``nbytes`` (None when large)."""
        for chunk_size in self.size_classes:
            if nbytes <= chunk_size:
                return chunk_size
        return None

    def run_bytes(self, chunk_size):
        """Extent size backing a run of ``chunk_size`` regions."""
        target = max(1, (64 * 1024) // chunk_size)
        return _round_up(RUN_HEADER_BYTES + chunk_size * target, EXTENT_QUANTUM)

    def _run_layout(self, chunk_size):
        nbytes = self.run_bytes(chunk_size)
        regions = (nbytes - RUN_HEADER_BYTES) // chunk_size
        slack = nbytes - RUN_HEADER_BYTES - regions * chunk_size
        return nbytes, regions, RUN_HEADER_BYTES + slack

    def free_extent_sizes(self):
        """Sizes feeding the free-extent histogram (extents + regions)."""
        sizes = [extent.length for extent in self._free]
        for chunk_size, runs in self._runs.items():
            for run in runs:
                sizes.extend([chunk_size] * len(run.free_indices))
        return sizes

    def allocatable_bytes(self, request=None):
        """Bytes satisfiable by requests of ``request`` payload each.

        Derived from the free structure: free regions of the request's
        class serve one request apiece, and every free extent can be
        carved into whole new runs of that class.  Requests above the
        largest small class split into largest-class pieces, so their
        capacity is the piece capacity floored to whole requests.
        """
        if request is None:
            request = self.max_small
        if request <= 0:
            raise ValueError("request must be positive")
        if request > self.max_small:
            pieces_per_request = -(-request // self.max_small)
            piece_capacity = (
                self.allocatable_bytes(self.max_small) // self.max_small
            )
            return (piece_capacity // pieces_per_request) * request
        chunk_size = self.class_for(request)
        run_nbytes, regions, _meta = self._run_layout(chunk_size)
        count = sum(
            len(run.free_indices) for run in self._runs[chunk_size]
        )
        for extent in self._free:
            count += (extent.length // run_nbytes) * regions
        return count * request

    def frag_stats(self):
        return FragmentationStats(
            capacity_bytes=self.capacity_bytes,
            payload_bytes=self.payload_bytes,
            live_bytes=self.live_bytes,
            free_bytes=self.free_bytes,
            metadata_bytes=self.metadata_bytes,
            largest_free_extent=self.largest_free_extent,
            allocatable_bytes=self.allocatable_bytes(),
            free_extent_histogram=build_histogram(self.free_extent_sizes()),
        )

    # -- extent management ---------------------------------------------------

    def _take_extent(self, length):
        """Best-fit: smallest free extent >= length, lowest offset on ties."""
        best = None
        for position, extent in enumerate(self._free):
            if extent.length < length:
                continue
            if best is None or extent.length < self._free[best].length:
                best = position
        if best is None:
            return None
        extent = self._free[best]
        offset = extent.offset
        if extent.length == length:
            self._free.pop(best)
        else:
            extent.offset += length
            extent.length -= length
        return offset

    def _release_extent(self, offset, length):
        """Insert a free range by address, coalescing with neighbours."""
        position = 0
        for position, extent in enumerate(self._free):
            if extent.offset > offset:
                break
        else:
            position = len(self._free)
        self._free.insert(position, Extent(offset, length))
        merged = self._free[position]
        if position + 1 < len(self._free):
            after = self._free[position + 1]
            if merged.end == after.offset:
                merged.length += after.length
                self._free.pop(position + 1)
        if position > 0:
            before = self._free[position - 1]
            if before.end == merged.offset:
                before.length += merged.length
                self._free.pop(position)

    # -- allocation ----------------------------------------------------------

    def allocate(self, nbytes):
        """Allocate one block for a payload of ``nbytes``."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        chunk_size = self.class_for(nbytes)
        if chunk_size is None:
            return self._allocate_large(nbytes)
        run = None
        for candidate in self._runs[chunk_size]:
            if candidate.free_indices and (
                run is None or candidate.extent.offset < run.extent.offset
            ):
                run = candidate
        if run is None:
            run = self._new_run(chunk_size)
        index = heapq.heappop(run.free_indices)
        run.used += 1
        allocation = Allocation(
            chunk_size, nbytes, run=run, index=index
        )
        run.allocations[index] = allocation
        self.live_bytes += chunk_size
        self.payload_bytes += nbytes
        return allocation

    def _new_run(self, chunk_size):
        nbytes, regions, metadata = self._run_layout(chunk_size)
        offset = self._take_extent(nbytes)
        if offset is None:
            raise AllocationError(
                "no extent of {} bytes for a {}-class run".format(
                    nbytes, chunk_size
                )
            )
        run = _Run(Extent(offset, nbytes), chunk_size, regions)
        self._runs[chunk_size].append(run)
        self.metadata_bytes += metadata
        return run

    def _allocate_large(self, nbytes):
        block = _round_up(nbytes, EXTENT_QUANTUM)
        offset = self._take_extent(block)
        if offset is None:
            raise AllocationError(
                "no extent of {} bytes for a large allocation".format(block)
            )
        allocation = Allocation(
            block, nbytes, extent=Extent(offset, block)
        )
        self._large.append(allocation)
        self.live_bytes += block
        self.payload_bytes += nbytes
        return allocation

    def free(self, allocation):
        """Free one block; coalesce and reclaim empty runs."""
        if allocation.freed:
            raise AllocationError("double free of {!r}".format(allocation))
        allocation.freed = True
        if allocation.extent is not None:
            self._large.remove(allocation)
            self._release_extent(
                allocation.extent.offset, allocation.extent.length
            )
            self.live_bytes -= allocation.block_bytes
            self.payload_bytes -= allocation.payload_bytes
            return
        run = allocation.run
        del run.allocations[allocation.index]
        heapq.heappush(run.free_indices, allocation.index)
        run.used -= 1
        self.live_bytes -= allocation.block_bytes
        self.payload_bytes -= allocation.payload_bytes
        if run.used == 0:
            chunk_size = run.chunk_size
            _nbytes, _regions, metadata = self._run_layout(chunk_size)
            self._runs[chunk_size].remove(run)
            self.metadata_bytes -= metadata
            self._release_extent(run.extent.offset, run.extent.length)

    def allocate_entry(self, nbytes):
        """Allocate a list of blocks covering ``nbytes``, all or nothing.

        Entries split into largest-small-class pieces plus a tail, the
        same splitting contract as :meth:`SlabAllocator.allocate_entry`.
        """
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        blocks = []
        remaining = nbytes
        try:
            while remaining > 0:
                piece = min(remaining, self.max_small)
                blocks.append(self.allocate(piece))
                remaining -= piece
        except AllocationError:
            for block in blocks:
                self.free(block)
            raise
        return blocks

    def free_entry(self, blocks):
        for block in blocks:
            self.free(block)

    # -- resizing ------------------------------------------------------------

    def grow(self, slab_count):
        """Append ``slab_count`` grow units of fresh address space."""
        if slab_count < 0:
            raise ValueError("slab_count must be >= 0")
        if slab_count == 0:
            return
        added = slab_count * self.grow_unit
        self._release_extent(self.capacity_bytes, added)
        self.capacity_bytes += added

    def shrink(self, slab_count):
        """Trim up to ``slab_count`` grow units off the *free tail*.

        Unlike the uniform baseline, a fragmented arena may be unable
        to give space back even when plenty is free — only address
        space that is free right up to the top can go.  Returns how
        many units went.
        """
        if slab_count < 0:
            raise ValueError("slab_count must be >= 0")
        removed = 0
        while removed < slab_count and self._free:
            tail = self._free[-1]
            if tail.end != self.capacity_bytes or tail.length < self.grow_unit:
                break
            tail.length -= self.grow_unit
            self.capacity_bytes -= self.grow_unit
            if tail.length == 0:
                self._free.pop()
            removed += 1
        return removed

    # -- compaction ----------------------------------------------------------

    def compact(self):
        """Defragment: consolidate partial runs, slide everything down.

        Phase 1 migrates live regions out of the emptiest runs of each
        class into the fullest, releasing whole runs; phase 2 packs the
        surviving runs and large extents to the bottom of the address
        space so the free bytes coalesce into one top extent.  Handles
        stay valid throughout.  Returns the bytes copied, which callers
        charge at simulated memory-copy cost; live and payload bytes
        never change.
        """
        moved = 0
        for chunk_size in self.size_classes:
            moved += self._consolidate_class(chunk_size)
        moved += self._pack()
        self.compactions += 1
        return moved

    def _consolidate_class(self, chunk_size):
        runs = sorted(
            self._runs[chunk_size],
            key=lambda run: (-run.used, run.extent.offset),
        )
        moved = 0
        receiver = 0
        donor = len(runs) - 1
        while receiver < donor:
            target = runs[receiver]
            source = runs[donor]
            if not target.free_indices:
                receiver += 1
                continue
            if source.used == 0:
                donor -= 1
                continue
            index = max(source.allocations)
            allocation = source.allocations.pop(index)
            heapq.heappush(source.free_indices, index)
            source.used -= 1
            new_index = heapq.heappop(target.free_indices)
            target.allocations[new_index] = allocation
            target.used += 1
            allocation.run = target
            allocation.index = new_index
            moved += chunk_size
        for run in runs:
            if run.used == 0:
                _nbytes, _regions, metadata = self._run_layout(chunk_size)
                self._runs[chunk_size].remove(run)
                self.metadata_bytes -= metadata
                self._release_extent(run.extent.offset, run.extent.length)
        return moved

    def _pack(self):
        placements = []
        for runs in self._runs.values():
            for run in runs:
                placements.append((run.extent, run.used * run.chunk_size))
        for allocation in self._large:
            placements.append((allocation.extent, allocation.block_bytes))
        placements.sort(key=lambda pair: pair[0].offset)
        cursor = 0
        moved = 0
        for extent, live in placements:
            if extent.offset != cursor:
                extent.offset = cursor
                moved += live
            cursor += extent.length
        self._free = []
        if cursor < self.capacity_bytes:
            self._free.append(Extent(cursor, self.capacity_bytes - cursor))
        return moved


class UniformAllocator:
    """The idealized uniform-slot baseline: one counter, zero fragmentation.

    This is exactly the remote-pool model the cluster experiments used
    before the arena existed — every free byte is contiguous and
    allocatable, metadata is free, shrink always succeeds up to the
    free-byte count.  It exists so the ``allocation_fragmentation``
    experiment can quantify what that idealization hides.
    """

    def __init__(self, capacity_bytes, grow_unit=None):
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes must be >= 0")
        self.capacity_bytes = int(capacity_bytes)
        self.grow_unit = int(grow_unit) if grow_unit else DEFAULT_GROW_UNIT
        if self.grow_unit <= 0:
            raise ValueError("grow_unit must be positive")
        self.payload_bytes = 0
        self.compactions = 0

    # -- introspection -------------------------------------------------------

    @property
    def total_slabs(self):
        return self.capacity_bytes // self.grow_unit

    @property
    def live_bytes(self):
        return self.payload_bytes

    @property
    def metadata_bytes(self):
        return 0

    @property
    def free_bytes(self):
        return self.capacity_bytes - self.payload_bytes

    @property
    def largest_free_extent(self):
        return self.free_bytes

    @property
    def stored_payload_bytes(self):
        return self.payload_bytes

    @property
    def stored_chunk_bytes(self):
        return self.payload_bytes

    def utilization(self):
        if self.capacity_bytes == 0:
            return 0.0
        return self.payload_bytes / self.capacity_bytes

    def internal_fragmentation(self):
        return 0.0

    def conserves(self):
        return True

    def allocatable_bytes(self, request=None):
        return self.free_bytes

    def free_extent_sizes(self):
        return [self.free_bytes] if self.free_bytes else []

    def frag_stats(self):
        return FragmentationStats(
            capacity_bytes=self.capacity_bytes,
            payload_bytes=self.payload_bytes,
            live_bytes=self.payload_bytes,
            free_bytes=self.free_bytes,
            metadata_bytes=0,
            largest_free_extent=self.free_bytes,
            allocatable_bytes=self.free_bytes,
            free_extent_histogram=build_histogram(self.free_extent_sizes()),
        )

    # -- allocation ----------------------------------------------------------

    def allocate(self, nbytes):
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        if nbytes > self.free_bytes:
            raise AllocationError("pool exhausted")
        self.payload_bytes += nbytes
        return Allocation(nbytes, nbytes)

    def free(self, allocation):
        if allocation.freed:
            raise AllocationError("double free of {!r}".format(allocation))
        allocation.freed = True
        self.payload_bytes -= allocation.payload_bytes

    def allocate_entry(self, nbytes):
        return [self.allocate(nbytes)]

    def free_entry(self, blocks):
        for block in blocks:
            self.free(block)

    # -- resizing ------------------------------------------------------------

    def grow(self, slab_count):
        if slab_count < 0:
            raise ValueError("slab_count must be >= 0")
        self.capacity_bytes += slab_count * self.grow_unit

    def shrink(self, slab_count):
        if slab_count < 0:
            raise ValueError("slab_count must be >= 0")
        removed = min(slab_count, self.free_bytes // self.grow_unit)
        self.capacity_bytes -= removed * self.grow_unit
        return removed

    def compact(self):
        self.compactions += 1
        return 0


#: Allocation policies accepted by pools, tiers and ClusterConfig.
ALLOC_POLICIES = ("slab", "uniform", "arena")


def make_allocator(policy, capacity_bytes, size_classes=None, slab_bytes=None):
    """Build an allocator backend by policy name.

    ``slab`` is the memcached-style allocator (the historical default
    for node pools), ``uniform`` the idealized counter baseline, and
    ``arena`` the jemalloc-style allocator with real fragmentation.
    ``size_classes`` only applies to the slab policy; ``slab_bytes``
    doubles as the grow unit for the other two.
    """
    if policy == "slab":
        if size_classes is None:
            raise ValueError("slab policy needs size_classes")
        return SlabAllocator(capacity_bytes, size_classes, slab_bytes)
    if policy == "uniform":
        return UniformAllocator(capacity_bytes, grow_unit=slab_bytes)
    if policy == "arena":
        return Arena(capacity_bytes, grow_unit=slab_bytes)
    raise ValueError(
        "unknown alloc policy {!r} (choose from {})".format(
            policy, ", ".join(ALLOC_POLICIES)
        )
    )
