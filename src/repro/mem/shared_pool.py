"""The node-coordinated shared memory pool (paper Sections III, IV-B, IV-F).

Every virtual server on a node donates a configurable x% of its
allocated memory; the node manager coordinates the resulting pool and
serves put/get requests from any co-hosted server *at DRAM speed* —
this is the paper's central node-level disaggregation argument.

The pool is slab-allocated (so compressed pages of different
granularities pack well), tracks LRU order for eviction toward the
cluster level, and charges shared-memory copy time for every operation.
"""

from collections import OrderedDict

from repro.mem.allocator import AllocationError, SlabAllocator
from repro.mem.arena import make_allocator


class SharedSlot:
    """A stored entry: where one data item lives in the pool."""

    __slots__ = ("key", "chunks", "nbytes")

    def __init__(self, key, chunks, nbytes):
        self.key = key
        self.chunks = chunks
        self.nbytes = nbytes


class PoolFull(Exception):
    """The pool cannot hold the entry even after reclaiming free slabs."""


class SharedMemoryPool:
    """A per-node shared memory pool assembled from server donations."""

    DEFAULT_SIZE_CLASSES = (512, 1024, 2048, 4096)

    def __init__(self, env, spec, size_classes=None, slab_bytes=None,
                 name="shm", policy="slab"):
        self.env = env
        self.spec = spec
        self.name = name
        self.policy = policy
        self.size_classes = tuple(size_classes or self.DEFAULT_SIZE_CLASSES)
        self.slab_bytes = slab_bytes or SlabAllocator.DEFAULT_SLAB_BYTES
        self.donations = {}
        self._allocator = make_allocator(
            policy, 0, size_classes=self.size_classes,
            slab_bytes=self.slab_bytes,
        )
        # Only arena-backed pools narrate allocation (trace stability).
        self._traced = policy == "arena"
        self._entries = OrderedDict()  # key -> SharedSlot, LRU order
        self.puts = 0
        self.gets = 0
        self.evictions = 0

    # -- donations ---------------------------------------------------------

    @property
    def capacity_bytes(self):
        return self._allocator.capacity_bytes

    @property
    def used_bytes(self):
        return self._allocator.stored_chunk_bytes

    @property
    def free_bytes(self):
        return self._allocator.free_bytes

    def allocatable_bytes(self, request=None):
        """Bytes actually satisfiable at the ``request`` grain."""
        return self._allocator.allocatable_bytes(request)

    def frag_stats(self):
        """The allocator's :class:`FragmentationStats` snapshot."""
        return self._allocator.frag_stats()

    def compact(self):
        """Defragment the backing allocator; returns the bytes copied."""
        tracer = self.env.tracer
        if not (self._traced and tracer.enabled):
            return self._allocator.compact()
        live = self._allocator.live_bytes
        span = tracer.begin(
            "alloc.compact", store=self.name, live_before=live
        )
        moved = self._allocator.compact()
        tracer.end(
            span,
            live_after=self._allocator.live_bytes,
            moved_bytes=moved,
        )
        return moved

    def donate(self, server_id, nbytes):
        """Add ``nbytes`` from ``server_id`` to the pool."""
        if nbytes < 0:
            raise ValueError("donation must be >= 0")
        self.donations[server_id] = self.donations.get(server_id, 0) + nbytes
        self._rebuild_capacity()

    def retract(self, server_id, nbytes):
        """Withdraw part of a server's donation (e.g. ballooning it back).

        Retracting below current usage is allowed — the allocator keeps
        existing entries but refuses new ones until usage drops.
        """
        current = self.donations.get(server_id, 0)
        if nbytes > current:
            raise ValueError("retracting more than donated")
        self.donations[server_id] = current - nbytes
        self._rebuild_capacity()

    def _rebuild_capacity(self):
        target_slabs = sum(self.donations.values()) // self.slab_bytes
        current = self._allocator.total_slabs
        if target_slabs > current:
            self._allocator.grow(target_slabs - current)
        elif target_slabs < current:
            # Only idle slabs can be taken away; busy slabs shrink later
            # as entries drain.
            self._allocator.shrink(current - target_slabs)

    # -- data path ---------------------------------------------------------

    def op_time(self, nbytes):
        """Shared-memory access time: software overhead + DRAM-speed copy."""
        return self.spec.op_overhead + nbytes / self.spec.copy_bandwidth

    def contains(self, key):
        return key in self._entries

    def try_reserve(self, key, nbytes):
        """Allocate space for ``key`` without charging time (planning step).

        Returns the :class:`SharedSlot` or ``None`` if the pool is full
        for that size.
        """
        if key in self._entries:
            raise KeyError("duplicate key {!r}".format(key))
        try:
            chunks = self._allocator.allocate_entry(nbytes)
        except AllocationError:
            return None
        if self._traced and self.env.tracer.enabled:
            self.env.tracer.instant(
                "alloc.reserve", store=self.name, key=key, nbytes=nbytes
            )
        slot = SharedSlot(key, chunks, nbytes)
        self._entries[key] = slot
        return slot

    def put(self, key, nbytes):
        """Generator: store ``nbytes`` under ``key``; returns the slot.

        Raises :class:`PoolFull` when space cannot be found — callers
        (the LDMS) are expected to fall back to the cluster level.
        """
        slot = self.try_reserve(key, nbytes)
        if slot is None:
            raise PoolFull(
                "{}: no space for {} bytes ({} free)".format(
                    self.name, nbytes, self.free_bytes
                )
            )
        yield self.env.timeout(self.op_time(nbytes))
        self.puts += 1
        return slot

    def get(self, key):
        """Generator: read the entry under ``key``; returns its size.

        Touches LRU order.  Raises ``KeyError`` if absent.
        """
        slot = self._entries[key]
        self._entries.move_to_end(key)
        yield self.env.timeout(self.op_time(slot.nbytes))
        self.gets += 1
        return slot.nbytes

    def remove(self, key):
        """Drop the entry under ``key``, freeing its chunk (no time cost)."""
        slot = self._entries.pop(key)
        if self._traced and self.env.tracer.enabled:
            self.env.tracer.instant(
                "alloc.free", store=self.name, key=key
            )
        self._allocator.free_entry(slot.chunks)
        return slot.nbytes

    def evict_lru(self):
        """Remove and return ``(key, nbytes)`` of the least recently used
        entry, or ``None`` if the pool is empty."""
        if not self._entries:
            return None
        key, slot = next(iter(self._entries.items()))
        self.remove(key)
        self.evictions += 1
        return key, slot.nbytes

    def keys(self):
        """Keys in LRU-to-MRU order."""
        return list(self._entries)
