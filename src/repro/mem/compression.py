"""Page compression models (paper Section IV-H, Figure 3).

Three pieces:

* :class:`CompressibilityProfile` — how well a workload's pages
  compress: a log-normal ratio distribution plus a fraction of
  effectively incompressible pages;
* :class:`CompressionEngine` — the *time* cost of (de)compressing,
  from the calibration table;
* storage models that turn raw compressed sizes into *charged* sizes:

  - :class:`GranularityStore` — FastSwap's scheme: round the compressed
    page up to the nearest granularity out of a configured set
    (Figure 3 compares {2K, 4K} against {512, 1K, 2K, 4K});
  - :class:`ZbudStore` — the zswap baseline: zbud pairs at most two
    compressed pages per physical page, charging half a page per
    buddy-fit page and a whole page otherwise.
"""

import math

from repro.hw.latency import PAGE_SIZE, CompressionSpec


class CompressibilityProfile:
    """Sampler of per-page compression ratios for one workload."""

    def __init__(self, name, mean_ratio, sigma=0.25, incompressible_fraction=0.05):
        if mean_ratio < 1.0:
            raise ValueError("mean_ratio must be >= 1.0")
        if not 0.0 <= incompressible_fraction <= 1.0:
            raise ValueError("incompressible_fraction must be in [0, 1]")
        self.name = name
        self.mean_ratio = mean_ratio
        self.sigma = sigma
        self.incompressible_fraction = incompressible_fraction

    def sampler(self, rng):
        """A zero-argument callable drawing ratios using ``rng``."""

        mu = math.log(self.mean_ratio)

        def draw():
            if rng.random() < self.incompressible_fraction:
                return 1.0
            return max(1.0, rng.lognormvariate(mu, self.sigma))

        return draw

    def __repr__(self):
        return "CompressibilityProfile({!r}, mean={:.2f})".format(
            self.name, self.mean_ratio
        )


class CompressionEngine:
    """Time model for LZO-class software compression."""

    def __init__(self, spec=None):
        self.spec = spec or CompressionSpec()

    def compress_time(self, nbytes):
        """Seconds to compress ``nbytes`` of raw data."""
        return self.spec.per_page_overhead + nbytes / self.spec.compress_bandwidth

    def decompress_time(self, nbytes):
        """Seconds to decompress back to ``nbytes`` of raw data."""
        return self.spec.per_page_overhead + nbytes / self.spec.decompress_bandwidth


class GranularityStore:
    """FastSwap's multi-granularity compressed store accounting.

    ``granularities`` is the set of chunk sizes compressed pages may be
    stored in.  FastSwap's two configurations from Figure 3::

        GranularityStore([2048, 4096])             # 2 page sizes
        GranularityStore([512, 1024, 2048, 4096])   # 4 page sizes
    """

    def __init__(self, granularities, page_size=PAGE_SIZE):
        granularities = sorted(set(granularities))
        if not granularities:
            raise ValueError("need at least one granularity")
        if granularities[-1] < page_size:
            raise ValueError("largest granularity must cover a raw page")
        self.granularities = granularities
        self.page_size = page_size
        self.pages_stored = 0
        self.raw_bytes = 0
        self.charged_bytes = 0

    def charged_size(self, compressed_size):
        """Bytes actually charged for a page of ``compressed_size``."""
        for granularity in self.granularities:
            if compressed_size <= granularity:
                return granularity
        return self.granularities[-1]

    def store(self, page):
        """Account for storing ``page``; returns the charged size."""
        charged = self.charged_size(page.compressed_size)
        self.pages_stored += 1
        self.raw_bytes += page.size
        self.charged_bytes += charged
        return charged

    def effective_ratio(self):
        """Raw bytes / charged bytes over everything stored so far."""
        if self.charged_bytes == 0:
            return 1.0
        return self.raw_bytes / self.charged_bytes


class ZbudStore:
    """The zswap baseline: zbud buddy pairing of compressed pages.

    zbud packs at most two compressed pages into one physical page and
    never splits across pages, so its effective ratio is capped at 2.
    A page whose compressed form fits in half a page (minus the zbud
    header) can pair with a buddy and is charged half a page; anything
    larger occupies a whole page.  Pairing is greedy over the incoming
    stream, matching zbud's unbuddied-list behaviour.
    """

    HEADER_BYTES = 64

    def __init__(self, page_size=PAGE_SIZE):
        self.page_size = page_size
        self.pages_stored = 0
        self.raw_bytes = 0
        self.charged_bytes = 0
        self._unbuddied = 0  # pages waiting for a partner in a half-slot

    def charged_size(self, compressed_size):
        """Charged bytes assuming a buddy is (eventually) found."""
        if compressed_size + self.HEADER_BYTES <= self.page_size // 2:
            return self.page_size // 2
        return self.page_size

    def store(self, page):
        """Account for storing ``page``; returns the charged size."""
        compressed = page.compressed_size
        self.pages_stored += 1
        self.raw_bytes += page.size
        if compressed + self.HEADER_BYTES <= self.page_size // 2:
            if self._unbuddied:
                # Pair with a waiting page: the physical page was already
                # charged in full when the first half arrived.
                self._unbuddied -= 1
                charged = 0
            else:
                self._unbuddied += 1
                charged = self.page_size
        else:
            charged = self.page_size
        self.charged_bytes += charged
        return charged

    def effective_ratio(self):
        """Raw bytes / charged bytes over everything stored so far."""
        if self.charged_bytes == 0:
            return 1.0
        return self.raw_bytes / self.charged_bytes
