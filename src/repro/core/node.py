"""A physical node: DRAM, disk, NIC, pools, servers and counters.

Figure 1 of the paper, per node: virtual servers with their LDMCs on
top; the node manager coordinating a shared memory pool; and the
cluster-facing send/receive RDMA buffer pools.  This class owns the
hardware and pool state; the agents in :mod:`repro.core.agents` own the
protocol behaviour.
"""

from repro.hw.disk import Hdd, Ssd
from repro.hw.dram import DramModule
from repro.mem.buffer_pool import RdmaBufferPool
from repro.mem.shared_pool import SharedMemoryPool
from repro.net.rdma import RdmaDevice


class PhysicalNode:
    """One machine participating in the disaggregated memory system."""

    def __init__(self, env, node_id, config, fabric):
        self.env = env
        self.node_id = node_id
        self.config = config
        calibration = config.calibration
        self.dram = DramModule(
            env,
            config.node_memory_bytes,
            spec=calibration.dram,
            name="dram:{}".format(node_id),
        )
        self.hdd = Hdd(env, spec=calibration.hdd, name="hdd:{}".format(node_id))
        self.ssd = Ssd(env, spec=calibration.ssd, name="ssd:{}".format(node_id))
        self.device = RdmaDevice(env, fabric, node_id)
        self.shared_pool = SharedMemoryPool(
            env,
            calibration.shared_memory,
            size_classes=config.size_classes,
            slab_bytes=config.slab_bytes,
            name="shm:{}".format(node_id),
            policy=config.alloc_policy,
        )
        self.send_pool = RdmaBufferPool(
            self.device,
            role="send",
            size_classes=config.size_classes,
            slab_bytes=config.slab_bytes,
            policy=config.alloc_policy,
        )
        self.receive_pool = RdmaBufferPool(
            self.device,
            role="receive",
            size_classes=config.size_classes,
            slab_bytes=config.slab_bytes,
            policy=config.alloc_policy,
        )
        self.servers = []
        #: Agents, wired by the cluster facade.
        self.ldms = None
        self.rdmc = None
        self.rdms = None
        #: Counters feeding balancing/eviction policies and reports.
        self.remote_puts = 0
        self.remote_gets = 0
        self.disk_puts = 0
        self.disk_gets = 0
        self.shared_pool_misses = 0
        self._disk_cursor = 0
        self._remote_puts_at_last_check = 0

    # -- servers -----------------------------------------------------------

    def add_server(self, server):
        """Host a virtual server: allocate its DRAM, take its donation."""
        self.dram.allocate(server.memory_bytes)
        self.servers.append(server)
        if server.donated_bytes:
            self.shared_pool.donate(server.server_id, server.donated_bytes)

    def setup(self):
        """Generator: register the RDMA buffer pools (costs time)."""
        yield from self.send_pool.grow(self.config.send_pool_slabs)
        yield from self.receive_pool.grow(self.config.receive_pool_slabs)

    def reboot(self):
        """Generator: come back from a crash, empty-handed.

        The crash revoked every registered region and dropped hosted
        entries; a reboot purges the dead slabs from both pools and
        re-registers fresh ones (paying registration time again), so
        the node can donate memory to the cluster once more.
        """
        self.send_pool.purge_revoked()
        self.receive_pool.purge_revoked()
        yield from self.setup()

    # -- bookkeeping ----------------------------------------------------------

    def alloc_disk_span(self, nbytes):
        """Byte offset of a fresh span in the node's swap/spill area."""
        offset = self._disk_cursor
        self._disk_cursor += nbytes
        return offset

    def donated_cluster_bytes(self):
        """What this node offers to the cluster (free receive-pool bytes)."""
        return self.receive_pool.free_bytes

    def remote_put_rate_since_last_check(self, elapsed):
        """Cluster-level requests per second since the previous check."""
        if elapsed <= 0:
            return 0.0
        delta = self.remote_puts - self._remote_puts_at_last_check
        self._remote_puts_at_last_check = self.remote_puts
        return delta / elapsed

    def __repr__(self):
        return "<PhysicalNode {!r} servers={}>".format(
            self.node_id, len(self.servers)
        )
