"""The four agents of the paper's architecture (Figures 1 and 2).

* :class:`Ldmc` — local disaggregated memory client, one per virtual
  server: the API applications (or the swap/caching layers) call.
* :class:`Ldms` — local disaggregated memory server, one per node:
  serves put/get/remove, keeps the per-server disaggregated memory
  maps, orders the tiers (shared memory pool → remote memory → disk).
* :class:`Rdmc` — remote disaggregated memory client: placement,
  replication, staging through the send buffer pool, one-sided writes
  into remote receive pools, replica failover on reads.
* :class:`Rdms` — remote disaggregated memory server: a control-plane
  message loop that reserves/frees receive-pool space for remote peers;
  the data plane never involves it (one-sided RDMA).

Control messages travel as two-sided SEND/RECV over real queue pairs
and cost wire time both ways; a request that gets no reply within
``CONTROL_TIMEOUT`` (peer crashed mid-protocol) fails like a verbs
timeout would.
"""

from repro.core.errors import (
    ControlTimeout,
    EntryLost,
    NoRemoteCapacity,
    UnknownKey,
)
from repro.core.memory_map import DisaggregatedMemoryMap, Location
from repro.core.placement import CandidateView
from repro.mem.shared_pool import PoolFull
from repro.net.errors import NetworkError
from repro.net.rdma import RemoteAccessError

CONTROL_MESSAGE_BYTES = 128
CONTROL_TIMEOUT = 2e-3


class Ldmc:
    """Per-virtual-server client agent: the public data-path API."""

    def __init__(self, server, ldms):
        self.server = server
        self.ldms = ldms
        server.ldmc = self

    def put(self, key, nbytes):
        """Generator: store ``nbytes`` under ``key`` in disaggregated memory."""
        self.server.disaggregated_requests += 1
        return (yield from self.ldms.put(self.server, key, nbytes))

    def get(self, key):
        """Generator: fetch the entry under ``key``; returns its size."""
        self.server.disaggregated_requests += 1
        return (yield from self.ldms.get(self.server, key))

    def remove(self, key):
        """Generator: drop the entry under ``key`` everywhere."""
        return (yield from self.ldms.remove(self.server, key))

    def location_of(self, key):
        """Where ``key`` currently lives (for tests/diagnostics)."""
        record = self.ldms.map_for(self.server).lookup((self.server.server_id, key))
        return record.location if record else None


class Ldms:
    """Per-node server agent: tier ordering + the memory maps."""

    def __init__(self, node, rdmc):
        self.node = node
        self.env = node.env
        self.rdmc = rdmc
        self._maps = {}
        node.ldms = self

    def map_for(self, server):
        server_map = self._maps.get(server.server_id)
        if server_map is None:
            server_map = DisaggregatedMemoryMap(server.server_id)
            self._maps[server.server_id] = server_map
        return server_map

    def all_maps(self):
        return dict(self._maps)

    def remote_record(self, full_key):
        """The committed remote record for ``(server_id, key)``, if any.

        The balancing control plane uses this to find the owner-side map
        record of a hosted entry before migrating it; non-remote entries
        (and unknown keys) return ``None``.
        """
        server_map = self._maps.get(full_key[0])
        if server_map is None:
            return None
        record = server_map.lookup(full_key)
        if record is None or record.location != Location.REMOTE:
            return None
        return record

    def map_of(self, server_id):
        """The memory map for ``server_id`` (``None`` when absent)."""
        return self._maps.get(server_id)

    # -- data path ---------------------------------------------------------

    def put(self, server, key, nbytes):
        """Generator: place an entry, preferring the cheapest tier.

        Order (paper Section IV-B): node shared memory pool, then remote
        disaggregated memory via the RDMC, then the local disk.  An
        existing entry under the same key is replaced (upsert), which is
        what repeated swap-outs of the same page need.
        """
        full_key = (server.server_id, key)
        server_map = self.map_for(server)
        if server_map.lookup(full_key) is not None:
            yield from self.remove(server, key)
        # Tier 1: node-coordinated shared memory (DRAM speed).
        try:
            server_map.begin(full_key, Location.SHARED_MEMORY, nbytes)
            yield from self.node.shared_pool.put(full_key, nbytes)
            server_map.commit(full_key, now=self.env.now)
            return Location.SHARED_MEMORY
        except PoolFull:
            server_map.abort(full_key)
            self.node.shared_pool_misses += 1
        # Tier 2: remote disaggregated memory.
        try:
            replicas = yield from self.rdmc.remote_put(full_key, nbytes)
            server_map.begin(full_key, Location.REMOTE, nbytes, replicas)
            server_map.commit(full_key, now=self.env.now)
            self.node.remote_puts += 1
            return Location.REMOTE
        except (NoRemoteCapacity, NetworkError, ControlTimeout):
            pass
        # Tier 3: local disk.
        offset = self.node.alloc_disk_span(nbytes)
        server_map.begin(full_key, Location.DISK, nbytes)
        yield from self.node.hdd.write(offset, nbytes)
        server_map.commit(full_key, now=self.env.now)
        self.node.disk_puts += 1
        return Location.DISK

    def get(self, server, key):
        """Generator: fetch an entry from wherever it lives."""
        full_key = (server.server_id, key)
        server_map = self.map_for(server)
        record = server_map.lookup(full_key)
        if record is None:
            raise UnknownKey(full_key)
        if record.location == Location.SHARED_MEMORY:
            return (yield from self.node.shared_pool.get(full_key))
        if record.location == Location.REMOTE:
            nbytes = yield from self.rdmc.remote_get(record)
            self.node.remote_gets += 1
            return nbytes
        # Disk: we do not track the original offset per entry (the swap
        # layer owns real offsets); charge a random-access read.
        yield from self.node.hdd.read(self.node.alloc_disk_span(0), record.nbytes)
        self.node.disk_gets += 1
        return record.nbytes

    def remove(self, server, key):
        """Generator: drop an entry and free its space everywhere."""
        full_key = (server.server_id, key)
        server_map = self.map_for(server)
        record = server_map.remove(full_key)
        if record is None:
            raise UnknownKey(full_key)
        if record.location == Location.SHARED_MEMORY:
            self.node.shared_pool.remove(full_key)
        elif record.location == Location.REMOTE:
            yield from self.rdmc.remote_free(record)
        # Disk entries need no reclamation in the model.
        return record.nbytes

    # -- re-replication (Section IV-F eviction protocol) ------------------------

    def handle_replica_eviction(self, key, lost_node):
        """Generator: restore replication after a remote slab eviction."""
        server_id = key[0]
        server_map = self._maps.get(server_id)
        if server_map is None:
            return
        record = server_map.lookup(key)
        if record is None or lost_node not in record.replica_nodes:
            return
        survivors = [n for n in record.replica_nodes if n != lost_node]
        try:
            new_nodes = yield from self.rdmc.remote_put(
                key, record.nbytes, count=1, exclude=set(record.replica_nodes)
            )
        except (NoRemoteCapacity, NetworkError, ControlTimeout):
            new_nodes = []
        if new_nodes:
            server_map.replace_replica(key, lost_node, new_nodes[0])
        elif survivors:
            record.replica_nodes = tuple(survivors)
        else:
            # Last replica gone and nowhere to go: demote to disk.
            server_map.remove(key)
            offset = self.node.alloc_disk_span(record.nbytes)
            yield from self.node.hdd.write(offset, record.nbytes)
            server_map.begin(key, Location.DISK, record.nbytes)
            server_map.commit(key, now=self.env.now)
            self.node.disk_puts += 1


class Rdmc:
    """Per-node remote client agent: replication + one-sided data path."""

    def __init__(self, node, directory, placement, replication_factor):
        self.node = node
        self.env = node.env
        self.directory = directory
        self.placement = placement
        self.replication_factor = replication_factor
        node.rdmc = self
        self.control_calls = 0
        self.control_timeouts = 0

    # -- control plane -----------------------------------------------------

    def control_call(self, target_node_id, body):
        """Generator: request/response over SEND/RECV with a timeout."""
        reply = self.env.event(name="reply")
        body = dict(body, src=self.node.node_id, reply=reply)
        target_device = self.directory.device_of(target_node_id)
        qp = yield from self.node.device.connect(target_device)
        yield from qp.send(body, CONTROL_MESSAGE_BYTES)
        self.control_calls += 1
        outcome = yield self.env.any_of([reply, self.env.timeout(CONTROL_TIMEOUT)])
        if reply not in outcome:
            self.control_timeouts += 1
            if self.env.tracer.enabled:
                self.env.tracer.instant(
                    "net.timeout",
                    timeout_s=CONTROL_TIMEOUT,
                    what="control:{}".format(target_node_id),
                )
            raise ControlTimeout(target_node_id)
        return reply.value

    # -- placement ---------------------------------------------------------

    def _candidates(self, nbytes, exclude=()):
        exclude = set(exclude) | {self.node.node_id}
        views = []
        for peer in self.directory.peers_of(self.node.node_id):
            if peer in exclude or self.directory.is_down(peer):
                continue
            views.append(
                CandidateView(peer, self.directory.free_receive_bytes(peer))
            )
        return views

    # -- data plane -----------------------------------------------------------

    def remote_put(self, key, nbytes, count=None, exclude=()):
        """Generator: write an entry to ``count`` remote replicas.

        Atomic per replica: a replica either completes reserve+write or
        contributes nothing (its reservation is rolled back).  Succeeds
        if at least one replica commits; raises
        :class:`NoRemoteCapacity` otherwise.  Returns the node ids that
        hold the data.
        """
        count = count or self.replication_factor
        candidates = self._candidates(nbytes, exclude)
        targets = self.placement.select(candidates, count, nbytes)
        if not targets:
            raise NoRemoteCapacity(
                "no viable peer for {} bytes from {!r}".format(
                    nbytes, self.node.node_id
                )
            )
        staged = self.node.send_pool.reserve_entry(nbytes)
        committed = []
        try:
            for target in targets:
                try:
                    reply = yield from self.control_call(
                        target, {"op": "reserve", "key": key, "nbytes": nbytes}
                    )
                    if not reply.get("ok"):
                        continue
                    region = self.directory.receive_region_of(target)
                    if region is None:
                        yield from self._best_effort_free(target, key)
                        continue
                    target_device = self.directory.device_of(target)
                    qp = yield from self.node.device.connect(target_device)
                    yield from qp.write(region, nbytes)
                    committed.append(target)
                except (NetworkError, ControlTimeout, RemoteAccessError):
                    continue
        finally:
            if staged is not None:
                self.node.send_pool.release_entry(staged)
        if not committed:
            raise NoRemoteCapacity("all {} replica writes failed".format(count))
        return committed

    def remote_get(self, record):
        """Generator: one-sided read from the first live replica."""
        last_error = None
        for target in record.replica_nodes:
            if self.directory.is_down(target):
                continue
            region = self.directory.receive_region_of(target)
            if region is None:
                continue
            try:
                target_device = self.directory.device_of(target)
                qp = yield from self.node.device.connect(target_device)
                yield from qp.read(region, record.nbytes)
                return record.nbytes
            except (NetworkError, RemoteAccessError, ControlTimeout) as error:
                last_error = error
                continue
        raise EntryLost(record.key) from last_error

    def remote_free(self, record):
        """Generator: release an entry's space on every live replica."""
        for target in record.replica_nodes:
            if self.directory.is_down(target):
                continue
            yield from self._best_effort_free(target, record.key)

    def best_effort_free(self, target, key):
        """Generator: free ``key`` on ``target``, swallowing network loss.

        Used on rollback paths (failed replica writes, aborted page
        migrations) where the reservation either gets freed now or dies
        with the target node anyway.
        """
        try:
            yield from self.control_call(target, {"op": "free", "key": key})
        except (NetworkError, ControlTimeout):
            pass

    # Backwards-compatible internal alias.
    _best_effort_free = best_effort_free


class RemoteEntry:
    """RDMS-side record of one hosted entry."""

    __slots__ = ("key", "owner_node_id", "chunks", "nbytes")

    def __init__(self, key, owner_node_id, chunks, nbytes):
        self.key = key
        self.owner_node_id = owner_node_id
        self.chunks = chunks
        self.nbytes = nbytes


class Rdms:
    """Per-node remote server agent: the control-plane message loop."""

    #: CPU time to process one control request.
    PROCESSING_TIME = 1.0e-6
    REPLY_BYTES = 64

    def __init__(self, node, directory):
        self.node = node
        self.env = node.env
        self.directory = directory
        self.entries = {}
        self.requests_served = 0
        self._process = None
        node.rdms = self

    def start(self):
        """Spawn the message loop."""
        self._process = self.env.process(
            self._serve(), name="rdms:{}".format(self.node.node_id)
        )
        return self._process

    @property
    def hosted_bytes(self):
        return sum(e.nbytes for e in self.entries.values())

    def _serve(self):
        while True:
            message = yield self.node.device.recv()
            yield self.env.timeout(self.PROCESSING_TIME)
            if self.node.device.fabric.is_node_down(self.node.node_id):
                # The CPU died while this request was in flight: a
                # crashed server must never mutate state it already
                # lost to drop_all(), nor reply as if it were alive.
                continue
            body = message.body
            result = self._dispatch(body)
            self.requests_served += 1
            reply = body.get("reply")
            if reply is None:
                continue
            try:
                yield from self.node.device.fabric.transfer(
                    self.node.node_id, body["src"], self.REPLY_BYTES
                )
            except NetworkError:
                continue  # requester's timeout handles it
            if not reply.triggered:
                reply.succeed(result)

    def _dispatch(self, body):
        op = body.get("op")
        if op == "reserve":
            return self._reserve(body)
        if op == "free":
            return self._free(body)
        return {"ok": False, "error": "unknown op {!r}".format(op)}

    def _reserve(self, body):
        key, nbytes = body["key"], body["nbytes"]
        if key in self.entries:
            self._release(key)
        chunks = self.node.receive_pool.reserve_entry(nbytes)
        if chunks is None:
            return {"ok": False, "error": "no capacity"}
        self.entries[key] = RemoteEntry(key, body["src"], chunks, nbytes)
        return {"ok": True}

    def _free(self, body):
        self._release(body["key"])
        return {"ok": True}

    def _release(self, key):
        entry = self.entries.pop(key, None)
        if entry is not None:
            self.node.receive_pool.release_entry(entry.chunks)

    def evict_entries(self, bytes_needed):
        """Free hosted entries until ``bytes_needed`` is reclaimed.

        Returns the evicted entries (oldest first) so the eviction
        manager can notify their owners to re-replicate.
        """
        evicted = []
        reclaimed = 0
        for key in list(self.entries):
            if reclaimed >= bytes_needed:
                break
            entry = self.entries[key]
            self._release(key)
            evicted.append(entry)
            reclaimed += entry.nbytes
        return evicted

    def drop_all(self):
        """Crash semantics: hosted data vanishes with the node."""
        for key in list(self.entries):
            self._release(key)
