"""The cluster facade: builds and wires the whole system.

:class:`DisaggregatedCluster` owns the simulation environment, fabric,
nodes, virtual servers, agents, groups, election and eviction manager,
and doubles as the *directory* the agents consult (who are my group
peers, are they up, how much do they donate) — the role the group
leader's metadata plays in the paper.

Synchronous convenience wrappers (:meth:`put`, :meth:`get`, ...) drive
the simulation until the operation completes, which is what examples
and simple tests want; composite workloads spawn their own processes
against the ``env`` instead.
"""

from repro.core.agents import Ldmc, Ldms, Rdmc, Rdms
from repro.core.config import ClusterConfig
from repro.core.election import LeaderElection
from repro.core.eviction import EvictionManager
from repro.core.groups import GroupManager
from repro.core.placement import make_placement_policy
from repro.core.node import PhysicalNode
from repro.core.virtual_server import ServerKind, VirtualServer
from repro.net.fabric import Fabric
from repro.net.failures import FailureInjector
from repro.sim import Environment, RngStreams


class DisaggregatedCluster:
    """A fully wired disaggregated memory system."""

    def __init__(self, config=None):
        self.config = config or ClusterConfig()
        self.env = Environment()
        self.rng = RngStreams(self.config.seed)
        self.fabric = Fabric(
            self.env,
            self.config.calibration.network,
            core_concurrency=self.config.fabric_core_concurrency,
        )
        self.injector = FailureInjector(self.env, self.fabric)
        self.nodes_by_id = {}
        self.virtual_servers = []
        for node_index in range(self.config.num_nodes):
            node_id = "node{}".format(node_index)
            node = PhysicalNode(self.env, node_id, self.config, self.fabric)
            self.nodes_by_id[node_id] = node
            for server_index in range(self.config.servers_per_node):
                server = VirtualServer(
                    "{}/vm{}".format(node_id, server_index),
                    node,
                    self.config.server_memory_bytes,
                    kind=ServerKind.VM,
                    donation_fraction=self.config.donation_fraction,
                )
                node.add_server(server)
                self.virtual_servers.append(server)
        self.groups = GroupManager(list(self.nodes_by_id), self.config.group_size)
        placement = make_placement_policy(
            self.config.placement_policy, self.rng.stream("placement")
        )
        for node in self.nodes_by_id.values():
            rdmc = Rdmc(node, self, placement, self.config.replication_factor)
            Ldms(node, rdmc)
            Rdms(node, self)
            for server in node.servers:
                Ldmc(server, node.ldms)
        self.election = LeaderElection(
            self.env,
            self.fabric,
            self.groups,
            self.free_receive_bytes,
            heartbeat_period=self.config.heartbeat_period,
            heartbeat_timeout=self.config.heartbeat_timeout,
        )
        self.eviction = EvictionManager(self.env, self, self.config)
        #: Optional memory-balancing control plane (attach_balancer).
        self.balancer = None
        self._services_started = False

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, config=None, start_services=False):
        """Construct the cluster and run pool registration to completion.

        ``start_services=True`` additionally starts heartbeats and the
        eviction monitors (they keep the event heap non-empty, so only
        time-bounded runs terminate afterwards).
        """
        cluster = cls(config)
        setup = [
            cluster.env.process(node.setup(), name="setup:" + node.node_id)
            for node in cluster.nodes_by_id.values()
        ]
        cluster.env.run(until=cluster.env.all_of(setup))
        for node in cluster.nodes_by_id.values():
            node.rdms.start()
        cluster.election.elect_all()
        if start_services:
            cluster.start_services()
        return cluster

    def start_services(self):
        """Start heartbeat and eviction background processes."""
        if not self._services_started:
            self.election.start()
            self.eviction.start()
            self._services_started = True

    def attach_balancer(self, policy="threshold", epoch=0.1, start=False,
                        **policy_options):
        """Wire a memory-balancing control plane onto this cluster.

        Imported lazily so the core facade keeps no hard dependency on
        :mod:`repro.balance`.  With ``start=True`` the epoch loop is
        spawned immediately; otherwise call ``balancer.start()`` once
        the workload processes are in place.
        """
        from repro.balance import BalanceController

        self.balancer = BalanceController(
            self, policy=policy, epoch=epoch, **policy_options
        )
        if start:
            self.balancer.start()
        return self.balancer

    # -- directory protocol (consulted by the agents) ---------------------------

    def nodes(self):
        return list(self.nodes_by_id.values())

    def node(self, node_id):
        return self.nodes_by_id[node_id]

    def peers_of(self, node_id):
        """Group peers eligible to host this node's remote entries."""
        return self.groups.peers_of(node_id)

    def is_down(self, node_id):
        return self.fabric.is_node_down(node_id)

    def free_receive_bytes(self, node_id):
        return self.nodes_by_id[node_id].receive_pool.free_bytes

    def receive_region_of(self, node_id):
        return self.nodes_by_id[node_id].receive_pool.any_region()

    def device_of(self, node_id):
        return self.nodes_by_id[node_id].device

    def maybe_regroup(self, node_id, min_free_bytes):
        """Dynamic re-grouping (§IV-C): when ``node_id``'s group cannot
        offer ``min_free_bytes`` of remote memory, merge it with the
        group currently offering the most, and re-elect a leader.

        Returns the merged group, or ``None`` if no re-group happened.
        """
        group = self.groups.group_of(node_id)
        group_free = sum(
            self.free_receive_bytes(peer) for peer in self.peers_of(node_id)
        )
        if group_free >= min_free_bytes:
            return None
        candidates = [
            other for other in self.groups.groups.values()
            if other.group_id != group.group_id
        ]
        if not candidates:
            return None
        richest = max(
            candidates,
            key=lambda g: sum(self.free_receive_bytes(m) for m in g.members),
        )
        merged = self.groups.merge_groups(group.group_id, richest.group_id)
        self.election.elect(merged)
        return merged

    # -- failure control -------------------------------------------------------

    def crash_node(self, node_id):
        """Crash a node: fabric state, RDMA state and hosted entries go."""
        node = self.nodes_by_id[node_id]
        self.injector.crash_node(node_id)
        node.device.crash()
        node.rdms.drop_all()

    def recover_node(self, node_id):
        """Bring a crashed node back (empty-handed, as after a reboot)."""
        self.injector.recover_node(node_id)

    def reboot_node(self, node_id):
        """Generator: recover a crashed node and re-register its pools.

        Recovery listeners fire immediately (so tiers can start probing
        for the node's return); the pool re-registration that makes the
        node a usable remote target again costs simulated time.
        """
        self.recover_node(node_id)
        yield from self.nodes_by_id[node_id].reboot()

    # -- synchronous convenience API ----------------------------------------------

    def run_process(self, generator, name=None):
        """Drive the simulation until ``generator`` finishes; return its value."""
        return self.env.run(until=self.env.process(generator, name=name))

    def put(self, server, key, nbytes):
        """Store an entry for ``server``; returns the tier it landed in."""
        return self.run_process(server.ldmc.put(key, nbytes))

    def get(self, server, key):
        """Fetch an entry; returns its size in bytes."""
        return self.run_process(server.ldmc.get(key))

    def remove(self, server, key):
        """Drop an entry everywhere; returns its size in bytes."""
        return self.run_process(server.ldmc.remove(key))

    # -- reporting ----------------------------------------------------------------

    def stats(self):
        """Aggregate counters across the cluster (for reports/tests)."""
        nodes = self.nodes_by_id.values()
        stats = {
            "time": self.env.now,
            "shared_pool_puts": sum(n.shared_pool.puts for n in nodes),
            "shared_pool_evictions": sum(n.shared_pool.evictions for n in nodes),
            "remote_puts": sum(n.remote_puts for n in nodes),
            "remote_gets": sum(n.remote_gets for n in nodes),
            "disk_puts": sum(n.disk_puts for n in nodes),
            "disk_gets": sum(n.disk_gets for n in nodes),
            "network_bytes": self.fabric.total_bytes,
            "elections": self.election.elections_held,
            "slab_evictions": self.eviction.slab_evictions,
            "hosted_remote_bytes": sum(n.rdms.hosted_bytes for n in nodes),
        }
        if self.balancer is not None:
            stats["balance_migrations"] = self.balancer.metrics.migrations_completed
            stats["balance_moved_bytes"] = self.balancer.metrics.moved_bytes
        return stats
