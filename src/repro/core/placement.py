"""Memory-balancing placement policies (paper Section IV-E).

Given a set of candidate remote nodes, a policy picks the ``k`` nodes
(primary + replicas) that should host a new data entry.  The paper
names four candidates: random, round robin, weighted round robin, and
the power of two choices; all four are implemented and benchmarked
against each other in the placement ablation.

Policies only see a narrow :class:`CandidateView` per node — its id and
currently free receive-pool bytes — mirroring the information a node
manager can cheaply keep fresh via the group leader.

A fifth, deliberately naive policy — :class:`FirstFitPlacement` — packs
everything onto the lowest-id peers; it is the skewed static baseline
the `repro.balance` control plane is measured against.
"""

from repro.core.election import node_sort_key


class CandidateView:
    """What a placement policy may know about one candidate node."""

    __slots__ = ("node_id", "free_bytes")

    def __init__(self, node_id, free_bytes):
        self.node_id = node_id
        self.free_bytes = free_bytes

    def __repr__(self):
        return "CandidateView({!r}, free={})".format(self.node_id, self.free_bytes)


class PlacementPolicy:
    """Base class: select ``k`` distinct nodes for a new entry."""

    name = "abstract"

    def select(self, candidates, k, nbytes):
        """Return up to ``k`` distinct node ids able to fit ``nbytes``.

        Candidates that cannot fit the entry are skipped.  Fewer than
        ``k`` ids may be returned when the cluster is tight; the caller
        decides whether degraded replication is acceptable.
        """
        raise NotImplementedError

    @staticmethod
    def _viable(candidates, nbytes):
        return [c for c in candidates if c.free_bytes >= nbytes]


class RandomPlacement(PlacementPolicy):
    """Uniformly random choice among viable candidates."""

    name = "random"

    def __init__(self, rng):
        self.rng = rng

    def select(self, candidates, k, nbytes):
        viable = self._viable(candidates, nbytes)
        self.rng.shuffle(viable)
        return [c.node_id for c in viable[:k]]


class RoundRobinPlacement(PlacementPolicy):
    """Cycle through candidates in a fixed order."""

    name = "round_robin"

    def __init__(self):
        self._cursor = 0

    def select(self, candidates, k, nbytes):
        viable = self._viable(sorted(candidates, key=lambda c: str(c.node_id)), nbytes)
        if not viable:
            return []
        chosen = []
        for i in range(len(viable)):
            candidate = viable[(self._cursor + i) % len(viable)]
            chosen.append(candidate.node_id)
            if len(chosen) == k:
                break
        self._cursor = (self._cursor + 1) % max(1, len(viable))
        return chosen


class WeightedRoundRobin(PlacementPolicy):
    """Round robin where weight is proportional to free memory.

    Implemented as smooth weighted round-robin: each pick adds a node's
    weight to its running credit and serves the highest-credit node.
    """

    name = "weighted_round_robin"

    def __init__(self):
        self._credit = {}

    def select(self, candidates, k, nbytes):
        viable = self._viable(candidates, nbytes)
        total = sum(c.free_bytes for c in viable)
        if not viable or total == 0:
            return []
        chosen = []
        credit = self._credit
        for _ in range(min(k, len(viable))):
            best = None
            for candidate in viable:
                if candidate.node_id in chosen:
                    continue
                credit[candidate.node_id] = (
                    credit.get(candidate.node_id, 0.0) + candidate.free_bytes
                )
                if best is None or credit[candidate.node_id] > credit[best]:
                    best = candidate.node_id
            if best is None:
                break
            credit[best] -= total
            chosen.append(best)
        return chosen


class PowerOfTwoChoices(PlacementPolicy):
    """Sample two random candidates, keep the emptier one (per pick).

    The classic load-balancing result [Richa, Mitzenmacher, Sitaraman]:
    two random probes get exponentially better balance than one, at a
    fraction of the bookkeeping full knowledge would cost.  This is
    also the policy Infiniswap uses for slab placement.
    """

    name = "power_of_two"

    def __init__(self, rng):
        self.rng = rng

    def select(self, candidates, k, nbytes):
        viable = self._viable(candidates, nbytes)
        chosen = []
        remaining = list(viable)
        while remaining and len(chosen) < k:
            if len(remaining) == 1:
                pick = remaining[0]
            else:
                first, second = self.rng.sample(remaining, 2)
                pick = first if first.free_bytes >= second.free_bytes else second
            chosen.append(pick.node_id)
            remaining = [c for c in remaining if c.node_id != pick.node_id]
        return chosen


class FirstFitPlacement(PlacementPolicy):
    """Fill the lowest-id viable candidates first (static baseline).

    This is what a placement layer with no balancing feedback degrades
    to: every node piles its entries onto the same few peers, leaving
    the rest idle.  It exists to generate the skewed layouts the
    memory-balancing control plane (``repro.balance``) has to fix, and
    is the static baseline of the ``memory_balancing`` experiment.
    """

    name = "first_fit"

    def select(self, candidates, k, nbytes):
        ordered = sorted(candidates, key=lambda c: node_sort_key(c.node_id))
        viable = self._viable(ordered, nbytes)
        return [c.node_id for c in viable[:k]]


def make_placement_policy(name, rng):
    """Factory keyed by the :class:`~repro.core.config.ClusterConfig` name."""
    if name == "random":
        return RandomPlacement(rng)
    if name == "round_robin":
        return RoundRobinPlacement()
    if name == "weighted_round_robin":
        return WeightedRoundRobin()
    if name == "power_of_two":
        return PowerOfTwoChoices(rng)
    if name == "first_fit":
        return FirstFitPlacement()
    raise ValueError("unknown placement policy {!r}".format(name))
