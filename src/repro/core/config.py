"""Cluster configuration.

One :class:`ClusterConfig` describes a whole disaggregated-memory
deployment: topology, per-server memory, the donation fraction x% of
Section IV-F, placement/replication/grouping choices, and the hardware
calibration.  The defaults mirror a scaled-down version of the paper's
32-machine / 80-VM testbed.
"""

from dataclasses import dataclass, field, replace

from repro.hw.latency import DEFAULT_CALIBRATION, Calibration, MiB


@dataclass
class ClusterConfig:
    """Everything needed to build a :class:`~repro.core.cluster.DisaggregatedCluster`."""

    #: Number of physical nodes.
    num_nodes: int = 4
    #: Virtual servers hosted per node.
    servers_per_node: int = 2
    #: DRAM allocated to each virtual server at initialization time.
    server_memory_bytes: int = 64 * MiB
    #: Physical DRAM per node beyond the server allocations (host reserve).
    host_reserved_bytes: int = 16 * MiB
    #: Fraction of each server's memory donated to the node shared pool
    #: (the paper's x%, "10% initially, up to 40% or down to zero").
    donation_fraction: float = 0.25
    #: Slabs (of ``slab_bytes``) each node registers for its RDMA
    #: receive buffer pool — its donation to the cluster level.
    receive_pool_slabs: int = 16
    #: Slabs registered for the send (staging) pool.
    send_pool_slabs: int = 4
    #: Slab size for every pool.
    slab_bytes: int = 1 * MiB
    #: Chunk size classes used by pools (compressed page granularities
    #: plus larger classes for RDD partitions).
    size_classes: tuple = (512, 1024, 2048, 4096, 65536, 262144, 1048576)
    #: Allocation policy backing node pools: "slab" (memcached-style,
    #: the historical default), "uniform" (idealized single-counter
    #: baseline) or "arena" (jemalloc-style extents/runs with real
    #: fragmentation; see docs/ALLOCATION.md).
    alloc_policy: str = "slab"
    #: Replicas per remote entry ("triple replica modularity", §IV-D).
    replication_factor: int = 3
    #: Placement policy: "random", "round_robin", "weighted_round_robin",
    #: "power_of_two" (§IV-E) or "first_fit" (the deliberately skewed
    #: static baseline the balancing control plane corrects).
    placement_policy: str = "power_of_two"
    #: Nodes per coordination group (§IV-C); 0 means one flat group.
    group_size: int = 0
    #: Leader heartbeat period and handshake timeout (§IV-C).
    heartbeat_period: float = 0.5
    heartbeat_timeout: float = 2.0
    #: Free-DRAM fraction below which the eviction handler deregisters
    #: remote receive slabs (§IV-F policy 1).
    eviction_low_watermark: float = 0.1
    #: Remote-request rate above which ballooning is recommended
    #: (§IV-F policy 2), requests per second per server.
    balloon_request_rate: float = 1000.0
    #: Concurrent transfers the switch core admits; 0 = non-blocking
    #: full-bisection fabric (the paper's testbed).
    fabric_core_concurrency: int = 0
    #: Master RNG seed.
    seed: int = 0
    #: Hardware calibration table.
    calibration: Calibration = field(default_factory=lambda: DEFAULT_CALIBRATION)

    def __post_init__(self):
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.servers_per_node < 1:
            raise ValueError("servers_per_node must be >= 1")
        if not 0.0 <= self.donation_fraction <= 1.0:
            raise ValueError("donation_fraction must be in [0, 1]")
        if self.replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        if self.group_size < 0:
            raise ValueError("group_size must be >= 0")
        if self.group_size == 1:
            raise ValueError("group_size 1 is degenerate (no peers to share with)")
        if self.heartbeat_timeout <= self.heartbeat_period:
            raise ValueError("heartbeat_timeout must exceed heartbeat_period")
        if self.alloc_policy not in ("slab", "uniform", "arena"):
            raise ValueError(
                "alloc_policy must be 'slab', 'uniform' or 'arena'"
            )

    @property
    def total_servers(self):
        return self.num_nodes * self.servers_per_node

    @property
    def node_memory_bytes(self):
        """Physical DRAM installed per node."""
        return (
            self.servers_per_node * self.server_memory_bytes
            + self.host_reserved_bytes
        )

    def with_overrides(self, **kwargs):
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)
