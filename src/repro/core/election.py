"""Leader election with heartbeats and handshake timeouts (Section IV-C).

Each group periodically elects the member that "meets certain
constraints" — here, the node with the maximum available disaggregated
memory, the paper's own example.  The sitting leader heartbeats its
group over the control plane; when heartbeats stop for longer than the
handshake timeout (leader crash or partition), a new election is
triggered among the members that remain reachable.  A leader can also
be deposed deliberately (e.g. after a dynamic re-group).
"""

from itertools import groupby

from repro.net.errors import NetworkError

HEARTBEAT_BYTES = 64


def node_sort_key(node_id):
    """Type-stable, numeric-aware ordering key for node ids.

    Plain ``str(node_id)`` puts ``node10`` before ``node9`` (and makes
    integer ids compare lexicographically), so a tie-break built on it
    silently prefers the wrong node once a cluster passes ten members.
    This key splits the id into digit and non-digit runs and compares
    digit runs numerically; runs are tagged so mixed alpha/numeric ids
    never compare ``int`` against ``str``.
    """
    return tuple(
        (1, int(run), "") if is_digit else (0, 0, run)
        for is_digit, chunk in groupby(str(node_id), str.isdigit)
        for run in ("".join(chunk),)
    )


class LeaderElection:
    """Runs heartbeat + election for every group of a cluster."""

    def __init__(self, env, fabric, group_manager, free_bytes_of,
                 heartbeat_period=0.5, heartbeat_timeout=2.0):
        """``free_bytes_of(node_id)`` reports a node's available
        disaggregated memory — the election fitness function."""
        if heartbeat_timeout <= heartbeat_period:
            raise ValueError("timeout must exceed period")
        self.env = env
        self.fabric = fabric
        self.groups = group_manager
        self.free_bytes_of = free_bytes_of
        self.heartbeat_period = heartbeat_period
        self.heartbeat_timeout = heartbeat_timeout
        self.elections_held = 0
        self.heartbeats_sent = 0
        self._last_heard = {}  # group_id -> time of last successful heartbeat
        self._processes = []

    # -- election ------------------------------------------------------------

    def elect(self, group):
        """Choose a leader for ``group`` among reachable members.

        Fitness: maximum free disaggregated memory, ties broken by node
        id for determinism.  Returns the leader or ``None`` when every
        member is down.
        """
        alive = [m for m in group.members if not self.fabric.is_node_down(m)]
        if not alive:
            group.leader = None
            return None
        group.leader = max(
            alive,
            key=lambda node_id: (self.free_bytes_of(node_id), node_sort_key(node_id)),
        )
        group.term += 1
        self.elections_held += 1
        self._last_heard[group.group_id] = self.env.now
        return group.leader

    def elect_all(self):
        """Run an initial election in every group."""
        return {
            group_id: self.elect(group)
            for group_id, group in self.groups.groups.items()
        }

    def leader_of(self, node_id):
        """Current leader of ``node_id``'s group (may be ``None``)."""
        return self.groups.group_of(node_id).leader

    def elect_tier2(self):
        """Second coordination tier (§IV-C): among the tier-1 group
        leaders, pick the cluster coordinator by the same fitness rule.

        Returns the coordinator node id, or ``None`` when no group has
        a live leader.
        """
        leaders = [
            leader for leader in self.groups.tier2_members()
            if not self.fabric.is_node_down(leader)
        ]
        if not leaders:
            return None
        return max(
            leaders,
            key=lambda node_id: (self.free_bytes_of(node_id), node_sort_key(node_id)),
        )

    # -- heartbeat machinery ------------------------------------------------

    def start(self):
        """Spawn one heartbeat/monitor process per group."""
        for group in self.groups.groups.values():
            process = self.env.process(
                self._heartbeat_loop(group), name="election:g{}".format(group.group_id)
            )
            self._processes.append(process)
        return self._processes

    def _heartbeat_loop(self, group):
        while True:
            yield self.env.timeout(self.heartbeat_period)
            if not group.members:
                continue
            if group.leader is None:
                self.elect(group)
                continue
            delivered = yield from self._broadcast_heartbeat(group)
            if delivered:
                self._last_heard[group.group_id] = self.env.now
            elif (
                self.env.now - self._last_heard.get(group.group_id, 0.0)
                >= self.heartbeat_timeout
            ):
                # Handshake timeout: the leader is gone; re-elect.
                self.elect(group)

    def _broadcast_heartbeat(self, group):
        """Send a heartbeat from the leader to every other member.

        Returns True when at least one member (or the sole member
        itself) confirmed the leader alive.
        """
        leader = group.leader
        if self.fabric.is_node_down(leader):
            return False
        peers = [m for m in group.members if m != leader]
        if not peers:
            return True
        any_delivered = False
        for peer in peers:
            if self.fabric.is_node_down(peer):
                continue
            try:
                yield from self.fabric.control_send(leader, peer, HEARTBEAT_BYTES)
                self.heartbeats_sent += 1
                any_delivered = True
            except NetworkError:
                continue
        return any_delivered
