"""The disaggregated memory map (paper Sections IV-C and IV-G).

Each virtual server keeps a *memory map* — a log table recording, for
every data entry it pushed to disaggregated memory, where that entry
currently lives: the node-coordinated shared memory, the local RDMA
buffer pool, one or more remote nodes, or external storage.  Every
remote operation is atomic — all or nothing — and only a completed
operation updates the map, which is what removes inconsistency after
connection or node failures.

The module also carries the Section IV-C scalability arithmetic: a flat
in-memory hash table costs ``entries x metadata_bytes`` per node (the
paper's example: 4 KB entries, 8 B of location metadata ⇒ ~5 GB of map
for 2 TB of cluster memory), which motivates group-based sharing.
"""

from repro.hw.latency import PAGE_SIZE


class Location:
    """Where a data entry lives."""

    SHARED_MEMORY = "shared_memory"
    LOCAL_BUFFER = "local_buffer"
    REMOTE = "remote"
    DISK = "disk"

    ALL = (SHARED_MEMORY, LOCAL_BUFFER, REMOTE, DISK)


class EntryRecord:
    """One committed entry in a server's memory map."""

    __slots__ = ("key", "location", "nbytes", "replica_nodes", "committed_at")

    def __init__(self, key, location, nbytes, replica_nodes=(), committed_at=0.0):
        if location not in Location.ALL:
            raise ValueError("unknown location {!r}".format(location))
        if location == Location.REMOTE and not replica_nodes:
            raise ValueError("remote entries need at least one replica node")
        self.key = key
        self.location = location
        self.nbytes = nbytes
        self.replica_nodes = tuple(replica_nodes)
        self.committed_at = committed_at

    def __repr__(self):
        return "<Entry {!r} @{} {}B replicas={}>".format(
            self.key, self.location, self.nbytes, self.replica_nodes
        )


class DisaggregatedMemoryMap:
    """Per-virtual-server log table of entry locations.

    Updates are transactional from the caller's perspective: agents call
    :meth:`begin` to stage an entry, then :meth:`commit` after the data
    movement finished, or :meth:`abort` if it failed.  Readers only ever
    observe committed entries.
    """

    #: Bytes of location metadata per entry (paper's §IV-C example).
    METADATA_BYTES = 8
    #: Hash-table structural overhead on top of raw metadata.
    HASH_OVERHEAD = 1.25

    def __init__(self, owner_id):
        self.owner_id = owner_id
        self._committed = {}
        self._pending = {}
        #: key -> (old_node, new_node) for in-flight replica migrations.
        self._moves = {}
        self.commits = 0
        self.aborts = 0

    def __len__(self):
        return len(self._committed)

    def __contains__(self, key):
        return key in self._committed

    # -- transactions --------------------------------------------------------

    def begin(self, key, location, nbytes, replica_nodes=()):
        """Stage a new location for ``key``; invisible until committed."""
        record = EntryRecord(key, location, nbytes, replica_nodes)
        self._pending[key] = record
        return record

    def commit(self, key, now=0.0):
        """Make the staged record for ``key`` the visible truth."""
        record = self._pending.pop(key)
        record.committed_at = now
        self._committed[key] = record
        self.commits += 1
        return record

    def abort(self, key):
        """Discard the staged record for ``key`` (failure rollback)."""
        self._pending.pop(key, None)
        self.aborts += 1

    # -- reads / maintenance ---------------------------------------------------

    def lookup(self, key):
        """The committed record for ``key`` or ``None``."""
        return self._committed.get(key)

    def remove(self, key):
        """Forget ``key``; returns the removed record or ``None``."""
        return self._committed.pop(key, None)

    def entries_at(self, node_id):
        """Committed remote entries that have a replica on ``node_id``."""
        return [
            record
            for record in self._committed.values()
            if record.location == Location.REMOTE and node_id in record.replica_nodes
        ]

    def replace_replica(self, key, old_node, new_node):
        """Point one replica of ``key`` from ``old_node`` to ``new_node``."""
        record = self._committed[key]
        replicas = list(record.replica_nodes)
        replicas[replicas.index(old_node)] = new_node
        record.replica_nodes = tuple(replicas)
        return record

    # -- replica migration (dual-entry protocol) -----------------------------

    def stage_replica_move(self, key, old_node, new_node):
        """Open the dual-entry window for migrating one replica of ``key``.

        While staged, both locations exist physically — the committed
        record still points readers at ``old_node`` (whose copy stays
        valid) while the migration engine fills ``new_node``.  Exactly
        one of :meth:`commit_replica_move` / :meth:`abort_replica_move`
        must follow.  Raises :class:`ValueError` when the move makes no
        sense (unknown key, replica not at ``old_node``, a replica
        already at ``new_node``, or a move already staged for ``key``).
        """
        record = self._committed.get(key)
        if record is None or record.location != Location.REMOTE:
            raise ValueError("no committed remote record for {!r}".format(key))
        if key in self._moves:
            raise ValueError("a move is already staged for {!r}".format(key))
        if old_node not in record.replica_nodes:
            raise ValueError("{!r} holds no replica of {!r}".format(old_node, key))
        if new_node in record.replica_nodes:
            raise ValueError("{!r} already replicates {!r}".format(new_node, key))
        self._moves[key] = (old_node, new_node)
        return record

    def pending_move(self, key):
        """The staged ``(old_node, new_node)`` move for ``key``, or ``None``."""
        return self._moves.get(key)

    def commit_replica_move(self, key, now=0.0):
        """Atomically remap the staged replica move for ``key``.

        Returns the updated record, or ``None`` when the committed
        record changed underneath the migration (entry removed, or the
        old replica already replaced by eviction repair) — the caller
        must then treat the migration as aborted and release the new
        copy.  Readers observe either the old location or the new one,
        never an intermediate state.
        """
        old_node, new_node = self._moves.pop(key)
        record = self._committed.get(key)
        if (
            record is None
            or record.location != Location.REMOTE
            or old_node not in record.replica_nodes
            or new_node in record.replica_nodes
        ):
            self.aborts += 1
            return None
        self.replace_replica(key, old_node, new_node)
        record.committed_at = now
        self.commits += 1
        return record

    def abort_replica_move(self, key):
        """Close the dual-entry window without remapping (rollback)."""
        if self._moves.pop(key, None) is not None:
            self.aborts += 1

    def metadata_bytes(self):
        """Resident size of this map (hash table + per-entry metadata)."""
        raw = (len(self._committed) + len(self._pending)) * self.METADATA_BYTES
        return int(raw * self.HASH_OVERHEAD)


def map_overhead_bytes(disaggregated_bytes, entry_bytes=PAGE_SIZE,
                       metadata_bytes=DisaggregatedMemoryMap.METADATA_BYTES,
                       hash_overhead=DisaggregatedMemoryMap.HASH_OVERHEAD):
    """Map memory needed to track ``disaggregated_bytes`` of cluster memory.

    Reproduces the paper's Section IV-C estimate: with 4 KB entries and
    8 B of metadata, tracking 2 TB costs ~5 GB per node and 10 TB costs
    ~25 GB — the scalability argument for group-based sharing.
    """
    entries = disaggregated_bytes // entry_bytes
    return int(entries * metadata_bytes * hash_overhead)
