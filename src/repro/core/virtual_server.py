"""Virtual servers: VMs, containers and JVM executors.

The paper treats all three uniformly — each is a unit of memory
allocation fixed at initialization time, donating x% of that allocation
to the node shared pool and consuming disaggregated memory through its
LDMC when under pressure.
"""


class ServerKind:
    """The three virtual-server flavours the paper names."""

    VM = "vm"
    CONTAINER = "container"
    JVM_EXECUTOR = "jvm_executor"

    ALL = (VM, CONTAINER, JVM_EXECUTOR)


class VirtualServer:
    """One virtual server hosted on a physical node."""

    def __init__(self, server_id, node, memory_bytes, kind=ServerKind.VM,
                 donation_fraction=0.0):
        if kind not in ServerKind.ALL:
            raise ValueError("unknown server kind {!r}".format(kind))
        if memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if not 0.0 <= donation_fraction <= 1.0:
            raise ValueError("donation_fraction must be in [0, 1]")
        self.server_id = server_id
        self.node = node
        self.kind = kind
        self.memory_bytes = memory_bytes
        self.donated_bytes = int(memory_bytes * donation_fraction)
        #: Set by the cluster facade when agents are wired up.
        self.ldmc = None
        #: Rolling counters used by the ballooning policy (§IV-F (2)).
        self.disaggregated_requests = 0
        self._requests_at_last_check = 0

    @property
    def private_bytes(self):
        """Memory the server keeps for itself after its donation."""
        return self.memory_bytes - self.donated_bytes

    def balloon(self, nbytes):
        """Grow this server's private memory by reclaiming its donation.

        Returns how many bytes were actually reclaimed (bounded by what
        is still donated and removable from the pool).
        """
        reclaim = min(nbytes, self.donated_bytes)
        if reclaim <= 0:
            return 0
        self.node.shared_pool.retract(self.server_id, reclaim)
        self.donated_bytes -= reclaim
        return reclaim

    def request_rate_since_last_check(self, elapsed):
        """Disaggregated-memory requests per second since the last check."""
        if elapsed <= 0:
            return 0.0
        delta = self.disaggregated_requests - self._requests_at_last_check
        self._requests_at_last_check = self.disaggregated_requests
        return delta / elapsed

    def __repr__(self):
        return "<VirtualServer {!r} kind={} mem={}>".format(
            self.server_id, self.kind, self.memory_bytes
        )
