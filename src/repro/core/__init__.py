"""The disaggregated memory system of the paper (Figures 1 and 2).

This package implements the paper's reference architecture:

* per-node functional components — the **node manager**, the node-level
  shared memory pool, the RDMA **send/receive buffer pools**, and the
  four agents: LDMC (local disaggregated memory client, one per virtual
  server), LDMS (local server), RDMC (remote client) and RDMS (remote
  server) — :mod:`repro.core.node`, :mod:`repro.core.agents`;
* the **disaggregated memory map** (the per-server log table tracking
  where every data entry lives) with the Section IV-C metadata
  scalability math — :mod:`repro.core.memory_map`;
* **placement** policies for memory balancing (random, round-robin,
  weighted round-robin, power-of-two-choices; Section IV-E) —
  :mod:`repro.core.placement`;
* **triple replication** with atomic all-or-nothing remote writes
  (Section IV-D) — baked into the RDMC write path;
* **hierarchical groups** and **leader election** with handshake
  timeouts (Section IV-C) — :mod:`repro.core.groups`,
  :mod:`repro.core.election`;
* slab **registration/eviction** handling and ballooning
  recommendations (Section IV-F) — :mod:`repro.core.eviction`;
* a cluster **facade** that wires everything together —
  :mod:`repro.core.cluster`.
"""

from repro.core.cluster import DisaggregatedCluster
from repro.core.config import ClusterConfig
from repro.core.election import LeaderElection
from repro.core.eviction import EvictionManager
from repro.core.groups import GroupManager
from repro.core.memory_map import (
    DisaggregatedMemoryMap,
    EntryRecord,
    Location,
    map_overhead_bytes,
)
from repro.core.node import PhysicalNode
from repro.core.placement import (
    PlacementPolicy,
    PowerOfTwoChoices,
    RandomPlacement,
    RoundRobinPlacement,
    WeightedRoundRobin,
    make_placement_policy,
)
from repro.core.virtual_server import ServerKind, VirtualServer

__all__ = [
    "ClusterConfig",
    "DisaggregatedCluster",
    "DisaggregatedMemoryMap",
    "EntryRecord",
    "EvictionManager",
    "GroupManager",
    "LeaderElection",
    "Location",
    "PhysicalNode",
    "PlacementPolicy",
    "PowerOfTwoChoices",
    "RandomPlacement",
    "RoundRobinPlacement",
    "ServerKind",
    "VirtualServer",
    "WeightedRoundRobin",
    "make_placement_policy",
    "map_overhead_bytes",
]
